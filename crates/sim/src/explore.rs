//! Seed exploration: sweep `(scenario, seed)` pairs hunting for
//! verification failures.
//!
//! A failure found here is a bug — in a replica algorithm, the fault
//! layer, or a checker — and its `(scenario, seed)` coordinates are
//! enough to replay it exactly. The `scenario_runner` binary can
//! append failures to the committed regression corpus
//! (`tests/regression_corpus.txt`), which the tier-1 test
//! `tests/scenarios.rs` replays on every run.

use crate::runner::{run_scenario, ScenarioOutcome};
use crate::scenario::Scenario;
use std::ops::Range;

/// One failing `(scenario, seed)` pair.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Scenario name.
    pub scenario: String,
    /// The failing seed.
    pub seed: u64,
    /// What went wrong.
    pub reason: String,
}

/// Aggregate result of sweeping one scenario over a seed range.
#[derive(Debug, Clone)]
pub struct ExplorationReport {
    /// Scenario name.
    pub scenario: String,
    /// Seeds run.
    pub runs: usize,
    /// Verification or expectation failures found.
    pub failures: Vec<Failure>,
    /// Mean simulated quiescence time across seeds.
    pub mean_convergence_time: f64,
    /// Mean messages sent per run.
    pub mean_msgs_sent: f64,
    /// Mean bytes sent per run.
    pub mean_bytes_sent: f64,
    /// Total messages lost across all runs.
    pub total_dropped: u64,
    /// Total duplicate copies injected across all runs.
    pub total_duplicated: u64,
    /// How many runs converged.
    pub converged_runs: usize,
}

impl ExplorationReport {
    /// No failures?
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Sweep one scenario across a seed range.
pub fn explore(scenario: &Scenario, seeds: Range<u64>) -> ExplorationReport {
    let mut report = ExplorationReport {
        scenario: scenario.name.to_string(),
        runs: 0,
        failures: Vec::new(),
        mean_convergence_time: 0.0,
        mean_msgs_sent: 0.0,
        mean_bytes_sent: 0.0,
        total_dropped: 0,
        total_duplicated: 0,
        converged_runs: 0,
    };
    let mut sum_ct = 0u64;
    let mut sum_msgs = 0u64;
    let mut sum_bytes = 0u64;
    for seed in seeds {
        let o = run_scenario(scenario, seed);
        report.runs += 1;
        sum_ct += o.convergence_time;
        sum_msgs += o.msgs_sent;
        sum_bytes += o.bytes_sent;
        report.total_dropped += o.msgs_dropped;
        report.total_duplicated += o.msgs_duplicated;
        if o.converged {
            report.converged_runs += 1;
        }
        if let Some(reason) = o.failure() {
            report.failures.push(Failure {
                scenario: o.scenario.clone(),
                seed,
                reason,
            });
        }
    }
    if report.runs > 0 {
        report.mean_convergence_time = sum_ct as f64 / report.runs as f64;
        report.mean_msgs_sent = sum_msgs as f64 / report.runs as f64;
        report.mean_bytes_sent = sum_bytes as f64 / report.runs as f64;
    }
    report
}

/// Sweep every registry scenario across the same seed range.
pub fn explore_all(seeds: Range<u64>) -> Vec<ExplorationReport> {
    crate::registry::scenarios()
        .iter()
        .map(|s| explore(s, seeds.clone()))
        .collect()
}

/// Replay a single `(scenario, seed)` pair by name (corpus replays and
/// the CLI use this).
pub fn replay(scenario_name: &str, seed: u64) -> Option<ScenarioOutcome> {
    crate::registry::by_name(scenario_name).map(|s| run_scenario(&s, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn exploration_aggregates_runs() {
        let s = registry::by_name("skewed-clocks").unwrap();
        let r = explore(&s, 0..3);
        assert_eq!(r.runs, 3);
        assert!(r.clean(), "failures: {:?}", r.failures);
        assert!(r.mean_msgs_sent > 0.0);
        assert!(r.mean_convergence_time > 0.0);
        assert_eq!(r.converged_runs, 3);
    }

    #[test]
    fn replay_resolves_names() {
        assert!(replay("flapping-links", 1).is_some());
        assert!(replay("nope", 1).is_none());
    }
}
