//! Seed exploration: sweep `(scenario, seed)` pairs hunting for
//! verification failures.
//!
//! A failure found here is a bug — in a replica algorithm, the fault
//! layer, or a checker — and its `(scenario, seed)` coordinates are
//! enough to replay it exactly. The `scenario_runner` binary can
//! append failures to the committed regression corpus
//! (`tests/regression_corpus.txt`), which the tier-1 test
//! `tests/scenarios.rs` replays on every run.
//!
//! ## Parallel sweeps
//!
//! Each `(scenario, seed)` run is a pure function of its coordinates,
//! so sweeps parallelize trivially: [`explore_threaded`] and
//! [`explore_all_threaded`] split the pair list into contiguous chunks
//! across scoped worker threads, with every worker writing into its own
//! disjoint slice of the outcome table. Aggregation then walks the
//! table **in pair order**, so reports — failure lists, means, and the
//! per-run fingerprints inside — are byte-identical whatever the thread
//! count (`--threads 1` and `--threads N` agree exactly).

use crate::runner::{run_scenario, ScenarioOutcome};
use crate::scenario::Scenario;
use std::ops::Range;

/// One failing `(scenario, seed)` pair.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Scenario name.
    pub scenario: String,
    /// The failing seed.
    pub seed: u64,
    /// What went wrong.
    pub reason: String,
}

/// Aggregate result of sweeping one scenario over a seed range.
#[derive(Debug, Clone)]
pub struct ExplorationReport {
    /// Scenario name.
    pub scenario: String,
    /// Seeds run.
    pub runs: usize,
    /// Verification or expectation failures found.
    pub failures: Vec<Failure>,
    /// Mean simulated quiescence time across seeds.
    pub mean_convergence_time: f64,
    /// Mean messages sent per run.
    pub mean_msgs_sent: f64,
    /// Mean bytes sent per run.
    pub mean_bytes_sent: f64,
    /// Total messages lost across all runs.
    pub total_dropped: u64,
    /// Total duplicate copies injected across all runs.
    pub total_duplicated: u64,
    /// How many runs converged.
    pub converged_runs: usize,
}

impl ExplorationReport {
    /// No failures?
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Sweep one scenario across a seed range (single-threaded).
pub fn explore(scenario: &Scenario, seeds: Range<u64>) -> ExplorationReport {
    explore_threaded(scenario, seeds, 1)
}

/// Sweep one scenario across a seed range on up to `threads` workers.
/// The report is byte-identical to the single-threaded sweep.
pub fn explore_threaded(
    scenario: &Scenario,
    seeds: Range<u64>,
    threads: usize,
) -> ExplorationReport {
    let pairs: Vec<(&Scenario, u64)> = seeds.map(|s| (scenario, s)).collect();
    let outcomes = run_pairs(&pairs, threads);
    aggregate(scenario.name, &outcomes)
}

/// Sweep every registry scenario across the same seed range
/// (single-threaded).
pub fn explore_all(seeds: Range<u64>) -> Vec<ExplorationReport> {
    explore_all_threaded(seeds, 1)
}

/// Sweep every registry scenario across the same seed range, spreading
/// the full `(scenario, seed)` pair list over up to `threads` workers
/// (one global pool — a slow scenario does not serialize the others).
/// Reports come back in registry order and are byte-identical to the
/// single-threaded sweep.
pub fn explore_all_threaded(seeds: Range<u64>, threads: usize) -> Vec<ExplorationReport> {
    let scenarios = crate::registry::scenarios();
    let pairs: Vec<(&Scenario, u64)> = scenarios
        .iter()
        .flat_map(|s| seeds.clone().map(move |seed| (s, seed)))
        .collect();
    let outcomes = run_pairs(&pairs, threads);
    let per = seeds.end.saturating_sub(seeds.start) as usize;
    scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| aggregate(s.name, &outcomes[i * per..(i + 1) * per]))
        .collect()
}

/// Run every pair, producing outcomes in pair order. With `threads > 1`
/// the list is split into contiguous chunks, one scoped worker per
/// chunk, each writing only its own slice — determinism needs no
/// locks, just the fixed chunk geometry.
fn run_pairs(pairs: &[(&Scenario, u64)], threads: usize) -> Vec<ScenarioOutcome> {
    let mut out: Vec<Option<ScenarioOutcome>> = Vec::new();
    out.resize_with(pairs.len(), || None);
    let threads = threads.max(1).min(pairs.len().max(1));
    if threads <= 1 {
        for (slot, (s, seed)) in out.iter_mut().zip(pairs) {
            *slot = Some(run_scenario(s, *seed));
        }
    } else {
        let chunk = pairs.len().div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for (out_chunk, pair_chunk) in out.chunks_mut(chunk).zip(pairs.chunks(chunk)) {
                scope.spawn(move |_| {
                    for (slot, (s, seed)) in out_chunk.iter_mut().zip(pair_chunk) {
                        *slot = Some(run_scenario(s, *seed));
                    }
                });
            }
        })
        .expect("exploration worker panicked");
    }
    out.into_iter()
        .map(|o| o.expect("every pair ran"))
        .collect()
}

/// Fold outcomes (already in seed order) into a report.
fn aggregate(name: &str, outcomes: &[ScenarioOutcome]) -> ExplorationReport {
    let mut report = ExplorationReport {
        scenario: name.to_string(),
        runs: 0,
        failures: Vec::new(),
        mean_convergence_time: 0.0,
        mean_msgs_sent: 0.0,
        mean_bytes_sent: 0.0,
        total_dropped: 0,
        total_duplicated: 0,
        converged_runs: 0,
    };
    let mut sum_ct = 0u64;
    let mut sum_msgs = 0u64;
    let mut sum_bytes = 0u64;
    for o in outcomes {
        report.runs += 1;
        sum_ct += o.convergence_time;
        sum_msgs += o.msgs_sent;
        sum_bytes += o.bytes_sent;
        report.total_dropped += o.msgs_dropped;
        report.total_duplicated += o.msgs_duplicated;
        if o.converged {
            report.converged_runs += 1;
        }
        if let Some(reason) = o.failure() {
            report.failures.push(Failure {
                scenario: o.scenario.clone(),
                seed: o.seed,
                reason,
            });
        }
    }
    if report.runs > 0 {
        report.mean_convergence_time = sum_ct as f64 / report.runs as f64;
        report.mean_msgs_sent = sum_msgs as f64 / report.runs as f64;
        report.mean_bytes_sent = sum_bytes as f64 / report.runs as f64;
    }
    report
}

/// Replay a single `(scenario, seed)` pair by name (corpus replays and
/// the CLI use this).
pub fn replay(scenario_name: &str, seed: u64) -> Option<ScenarioOutcome> {
    crate::registry::by_name(scenario_name).map(|s| run_scenario(&s, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn exploration_aggregates_runs() {
        let s = registry::by_name("skewed-clocks").unwrap();
        let r = explore(&s, 0..3);
        assert_eq!(r.runs, 3);
        assert!(r.clean(), "failures: {:?}", r.failures);
        assert!(r.mean_msgs_sent > 0.0);
        assert!(r.mean_convergence_time > 0.0);
        assert_eq!(r.converged_runs, 3);
    }

    #[test]
    fn replay_resolves_names() {
        assert!(replay("flapping-links", 1).is_some());
        assert!(replay("nope", 1).is_none());
    }

    /// `--threads N` must not change a single byte of the report: same
    /// failure list, same means, and (transitively) the same per-run
    /// fingerprints, because aggregation walks outcomes in pair order.
    #[test]
    fn threaded_sweep_is_deterministic() {
        let s = registry::by_name("partition-while-writing").unwrap();
        let solo = explore_threaded(&s, 0..6, 1);
        let multi = explore_threaded(&s, 0..6, 3);
        assert_eq!(solo.runs, multi.runs);
        assert_eq!(solo.failures.len(), multi.failures.len());
        assert_eq!(solo.mean_convergence_time, multi.mean_convergence_time);
        assert_eq!(solo.mean_msgs_sent, multi.mean_msgs_sent);
        assert_eq!(solo.mean_bytes_sent, multi.mean_bytes_sent);
        assert_eq!(solo.total_dropped, multi.total_dropped);
        assert_eq!(solo.converged_runs, multi.converged_runs);
    }

    #[test]
    fn threaded_explore_all_matches_sequential() {
        let solo = explore_all_threaded(0..2, 1);
        let multi = explore_all_threaded(0..2, 4);
        assert_eq!(solo.len(), multi.len());
        for (a, b) in solo.iter().zip(&multi) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.runs, b.runs);
            assert_eq!(a.failures.len(), b.failures.len());
            assert_eq!(a.mean_convergence_time, b.mean_convergence_time);
            assert_eq!(a.total_dropped, b.total_dropped);
        }
    }

    /// More workers than pairs must not panic or drop work.
    #[test]
    fn more_threads_than_pairs_is_fine() {
        let s = registry::by_name("skewed-clocks").unwrap();
        let r = explore_threaded(&s, 0..2, 16);
        assert_eq!(r.runs, 2);
    }
}
