//! # cbm-sim — scenario-driven fault-injection simulation
//!
//! The paper's system model is fully asynchronous — "there is no bound
//! on the time between the sending and the reception of a message"
//! (§6.1) — and Propositions 6 and 7 are claims about *all* executions
//! of the Fig. 4/5 algorithms. This crate turns those claims into a
//! harness: named, seeded, fault-injected **scenarios** whose recorded
//! histories are verified against the matching consistency criterion
//! after every run.
//!
//! The subsystem has four parts (see `docs/SIMULATION.md` for the
//! architecture):
//!
//! * [`scenario`] — a [`Scenario`] bundles a
//!   cluster size, replica flavour, workload shape, latency model,
//!   [`FaultPlan`](cbm_net::fault::FaultPlan), and expectations;
//! * [`registry`] — ≥8 built-in scenarios (partitions, flapping
//!   links, stragglers, duplicate storms, rolling crashes, skewed
//!   clocks, asymmetric partitions, latency spikes);
//! * [`runner`] — executes a `(scenario, seed)` pair through
//!   `cbm-core::Cluster` and verifies the history with
//!   `cbm-check::verify` (CC for causal flavours, CCv for arbitrated
//!   ones), producing a deterministic
//!   [`ScenarioOutcome`] with a replayable
//!   fingerprint;
//! * [`explore`](mod@explore) + [`corpus`] — sweep seeds looking for failures and
//!   record any failing `(scenario, seed)` into a committed regression
//!   corpus that a tier-1 test replays forever after.
//!
//! ```
//! use cbm_sim::registry;
//! use cbm_sim::runner::run_scenario;
//!
//! let s = registry::by_name("partition-while-writing").unwrap();
//! let outcome = run_scenario(&s, 7);
//! assert!(outcome.verified.is_ok(), "CCv witness must verify");
//! assert!(outcome.converged, "replicas converge once the partition heals");
//! // same (scenario, seed) ⇒ bit-identical run
//! assert_eq!(outcome.fingerprint, run_scenario(&s, 7).fingerprint);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod explore;
pub mod registry;
pub mod runner;
pub mod scenario;

pub use explore::{explore, explore_all, ExplorationReport};
pub use registry::{by_name, scenarios};
pub use runner::{run_scenario, ScenarioOutcome};
pub use scenario::{Flavour, Scenario};
