//! Execute a `(scenario, seed)` pair and verify the recorded history.
//!
//! Runs are bit-reproducible: the workload script, the network RNG,
//! and the fault plan are all derived from the scenario and the seed,
//! and [`ScenarioOutcome::fingerprint`] hashes the full observable
//! result (history labels, apply orders, final transport counters) so
//! two runs of the same pair can be compared exactly.

use crate::scenario::{Flavour, Scenario};
use cbm_adt::window::WindowArray;
use cbm_check::verify::{verify_cc_execution, verify_ccv_execution};
use cbm_core::causal::CausalShared;
use cbm_core::cluster::{Cluster, RunResult};
use cbm_core::convergent::ConvergentShared;
use cbm_core::workload::{window_script, WindowWorkload};
use cbm_core::Replica;

/// Everything one verified run produces.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: String,
    /// The seed that drove workload, latencies, and fault rolls.
    pub seed: u64,
    /// Checker verdict: `Ok(())` or a description of the violation.
    pub verified: Result<(), String>,
    /// Criterion the history was verified against ("CC" or "CCv").
    pub criterion: &'static str,
    /// Did all live replicas hold equal state at quiescence?
    pub converged: bool,
    /// Whether the scenario *requires* convergence.
    pub expect_converge: bool,
    /// Simulated time at which the network went quiescent.
    pub convergence_time: u64,
    /// Time of the last operation completion.
    pub makespan: u64,
    /// Events in the recorded history.
    pub history_len: usize,
    /// Messages sent / bytes sent.
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages lost (crashes + lossy links).
    pub msgs_dropped: u64,
    /// Extra copies injected by duplication faults.
    pub msgs_duplicated: u64,
    /// Messages still parked on blocked links at the end.
    pub msgs_parked: u64,
    /// Losses per recipient node.
    pub dropped_per_node: Vec<u64>,
    /// Operations that never completed (blocking flavours only).
    pub incomplete_ops: usize,
    /// FNV-1a hash of the observable run (see module docs).
    pub fingerprint: u64,
}

impl ScenarioOutcome {
    /// Did the run meet the scenario's expectations?
    pub fn passes(&self) -> bool {
        self.verified.is_ok() && (!self.expect_converge || self.converged)
    }

    /// Human-readable failure description, if any.
    pub fn failure(&self) -> Option<String> {
        match &self.verified {
            Err(e) => Some(format!("{} violation: {e}", self.criterion)),
            Ok(()) if self.expect_converge && !self.converged => {
                Some("expected convergence, replicas diverged".into())
            }
            Ok(()) => None,
        }
    }
}

/// Run one scenario under one seed and verify the result.
pub fn run_scenario(scenario: &Scenario, seed: u64) -> ScenarioOutcome {
    match scenario.flavour {
        Flavour::Causal => run_flavoured::<CausalShared<WindowArray>>(scenario, seed),
        Flavour::Convergent => run_flavoured::<ConvergentShared<WindowArray>>(scenario, seed),
    }
}

fn run_flavoured<R: Replica<WindowArray>>(scenario: &Scenario, seed: u64) -> ScenarioOutcome {
    let cfg = WindowWorkload {
        procs: scenario.procs,
        ops_per_proc: scenario.ops_per_proc,
        streams: scenario.streams,
        write_ratio: scenario.write_ratio,
        max_think: scenario.max_think,
        seed,
    };
    let script = window_script(&cfg);
    let adt = WindowArray::new(scenario.streams, scenario.window_k);
    // decorrelate the network RNG from the workload RNG
    let net_seed = seed ^ 0x9E37_79B9_7F4A_7C15;
    let cluster: Cluster<WindowArray, R> =
        Cluster::new(scenario.procs, adt, scenario.latency, net_seed);
    let res = cluster.run_faulted(script, scenario.faults.clone());

    let verified = match scenario.flavour {
        Flavour::Causal => {
            verify_cc_execution(&adt, &res.history, &res.causal, &res.apply_orders, &res.own)
                .map_err(|e| format!("{e:?}"))
        }
        Flavour::Convergent => {
            let arb = res
                .arbitration
                .clone()
                .ok_or_else(|| "arbitrated flavour produced no arbitration".to_string());
            arb.and_then(|arb| {
                let total = res
                    .ccv_total(&arb)
                    .ok_or_else(|| "arbitration contradicts delivered-before".to_string())?;
                verify_ccv_execution(&adt, &res.history, &res.causal, &total, 1)
                    .map_err(|e| format!("{e:?}"))
            })
        }
    };

    let fingerprint = fingerprint(&res);
    let net = res.stats.net.clone();
    ScenarioOutcome {
        scenario: scenario.name.to_string(),
        seed,
        verified,
        criterion: scenario.flavour.criterion(),
        converged: res.stats.converged,
        expect_converge: scenario.expect_converge,
        convergence_time: res.stats.quiescent_at,
        makespan: res.stats.makespan,
        history_len: res.history.len(),
        msgs_sent: net.msgs_sent,
        bytes_sent: net.bytes_sent,
        msgs_dropped: net.msgs_dropped,
        msgs_duplicated: net.msgs_duplicated,
        msgs_parked: net.msgs_parked,
        dropped_per_node: net.dropped_per_node,
        incomplete_ops: res.stats.incomplete_ops,
        fingerprint,
    }
}

/// FNV-1a (the shared `cbm_history::Fnv`) over the observable run:
/// every history label, every per-replica apply order, and the
/// transport counters. Two runs of the same `(scenario, seed)` must
/// produce the same value.
fn fingerprint(res: &RunResult<WindowArray>) -> u64 {
    use std::hash::Hasher;
    let mut h = cbm_history::Fnv::default();
    for e in res.history.events() {
        h.write(format!("{:?}", res.history.label(e)).as_bytes());
    }
    for order in &res.apply_orders {
        for e in order {
            h.write(&e.0.to_le_bytes());
        }
        h.write(b"|");
    }
    let s = &res.stats;
    for v in [
        s.msgs_sent,
        s.bytes_sent,
        s.net.msgs_dropped,
        s.quiescent_at,
        s.makespan,
        s.converged as u64,
        s.net.msgs_delivered,
        s.net.msgs_duplicated,
        s.net.msgs_parked,
    ] {
        h.write(&v.to_le_bytes());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn faultless_baseline_verifies_and_converges() {
        let mut s = crate::scenario::Scenario::base(
            "baseline",
            "no faults",
            crate::scenario::Flavour::Convergent,
        );
        s.ops_per_proc = 8;
        let o = run_scenario(&s, 3);
        assert_eq!(o.verified, Ok(()), "{:?}", o.failure());
        assert!(o.converged);
        assert_eq!(o.history_len, s.procs * s.ops_per_proc);
        assert_eq!(o.incomplete_ops, 0, "wait-free flavours never block");
    }

    #[test]
    fn outcomes_are_bit_identical_across_reruns() {
        let s = registry::by_name("partition-while-writing").unwrap();
        let a = run_scenario(&s, 11);
        let b = run_scenario(&s, 11);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.msgs_sent, b.msgs_sent);
        assert_eq!(a.convergence_time, b.convergence_time);
    }

    #[test]
    fn different_seeds_differ() {
        let s = registry::by_name("partition-while-writing").unwrap();
        let a = run_scenario(&s, 1);
        let b = run_scenario(&s, 2);
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn failure_reports_are_none_on_pass() {
        let s = registry::by_name("duplicate-storm").unwrap();
        let o = run_scenario(&s, 5);
        assert!(o.passes(), "{:?}", o.failure());
        assert!(o.failure().is_none());
    }
}
