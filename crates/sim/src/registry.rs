//! The built-in scenario registry.
//!
//! Every scenario here is deterministic given a seed, survives its
//! fault plan with a verified history, and exercises a different
//! corner of the fault space. Times are simulated ticks; workloads
//! invoke for roughly 100–250 ticks (16 ops × think ≤ 12), so fault
//! windows in the 30–250 range overlap the write traffic.

use crate::scenario::{Flavour, Scenario};
use cbm_net::fault::{Fault, FaultPlan};

/// All built-in scenarios.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        partition_while_writing(),
        heal_and_converge(),
        asymmetric_partition(),
        flapping_links(),
        straggler_node(),
        duplicate_storm(),
        rolling_crashes(),
        skewed_clocks(),
        latency_spike(),
        lossy_mesh(),
    ]
}

/// Look a scenario up by registry name.
pub fn by_name(name: &str) -> Option<Scenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

/// Cluster splits in half mid-write; the halves keep writing
/// independently, then the partition heals and parked traffic flows.
fn partition_while_writing() -> Scenario {
    let mut s = Scenario::base(
        "partition-while-writing",
        "split 2|2 during writes, heal before quiescence; CCv must converge",
        Flavour::Convergent,
    );
    s.faults = FaultPlan::new()
        .at(40, Fault::Partition { side: vec![0, 1] })
        .at(260, Fault::HealAll);
    s
}

/// Total partition for the whole write phase; convergence happens
/// entirely in the post-heal tail.
fn heal_and_converge() -> Scenario {
    let mut s = Scenario::base(
        "heal-and-converge",
        "full 1|3 outage across the write phase; all mixing happens after heal",
        Flavour::Convergent,
    );
    s.faults = FaultPlan::new()
        .at(1, Fault::Partition { side: vec![0] })
        .at(400, Fault::HealAll);
    s
}

/// One-directional outage: node 0's messages are blocked but it keeps
/// hearing the others.
fn asymmetric_partition() -> Scenario {
    let mut s = Scenario::base(
        "asymmetric-partition",
        "node 0's outbound blocked (inbound open), then healed",
        Flavour::Convergent,
    );
    s.faults = FaultPlan::new()
        .at(
            30,
            Fault::PartitionOneWay {
                from: vec![0],
                to: vec![1, 2, 3],
            },
        )
        .at(240, Fault::HealAll);
    s
}

/// A link that blocks and heals repeatedly.
fn flapping_links() -> Scenario {
    let mut s = Scenario::base(
        "flapping-links",
        "the 0↔1 link flaps every 30 ticks; CC safety under churn",
        Flavour::Causal,
    );
    let mut plan = FaultPlan::new();
    for i in 0..5u64 {
        let down = 20 + i * 60;
        let up = down + 30;
        plan.push(down, Fault::BlockLink { from: 0, to: 1 });
        plan.push(down, Fault::BlockLink { from: 1, to: 0 });
        plan.push(up, Fault::HealLink { from: 0, to: 1 });
        plan.push(up, Fault::HealLink { from: 1, to: 0 });
    }
    s.faults = plan;
    s
}

/// One node's links are an order of magnitude slower than the rest.
fn straggler_node() -> Scenario {
    let mut s = Scenario::base(
        "straggler-node",
        "node 3 is 10× slower both ways; CCv still converges",
        Flavour::Convergent,
    );
    let mut plan = FaultPlan::new();
    for p in 0..3 {
        plan.push(
            0,
            Fault::LinkDelay {
                from: p,
                to: 3,
                extra: 200,
            },
        );
        plan.push(
            0,
            Fault::LinkDelay {
                from: 3,
                to: p,
                extra: 200,
            },
        );
    }
    s.faults = plan;
    s
}

/// Every link duplicates most messages for a window; the causal
/// broadcast must deduplicate.
fn duplicate_storm() -> Scenario {
    let mut s = Scenario::base(
        "duplicate-storm",
        "80% duplication on every link during writes; dedup keeps CCv intact",
        Flavour::Convergent,
    );
    s.faults = FaultPlan::new()
        .at(0, Fault::DupAll { prob: 0.8 })
        .at(200, Fault::DupAll { prob: 0.0 });
    s
}

/// Nodes crash one after another and come back; messages missed while
/// down stay missed (crash-recovery without a log).
fn rolling_crashes() -> Scenario {
    let mut s = Scenario::base(
        "rolling-crashes",
        "nodes 1 then 2 crash and recover in turn; CC safety with lossy recovery",
        Flavour::Causal,
    );
    s.faults = FaultPlan::new()
        .at(50, Fault::Crash(1))
        .at(140, Fault::Recover(1))
        .at(160, Fault::Crash(2))
        .at(250, Fault::Recover(2));
    s
}

/// Two nodes run behind the cluster clock: everything they send
/// arrives late.
fn skewed_clocks() -> Scenario {
    let mut s = Scenario::base(
        "skewed-clocks",
        "nodes 0 and 2 skewed +40/+80 ticks; arbitration untangles the lag",
        Flavour::Convergent,
    );
    s.faults = FaultPlan::new()
        .at(
            0,
            Fault::ClockSkew {
                node: 0,
                offset: 40,
            },
        )
        .at(
            0,
            Fault::ClockSkew {
                node: 2,
                offset: 80,
            },
        )
        .at(300, Fault::ClockSkew { node: 0, offset: 0 })
        .at(300, Fault::ClockSkew { node: 2, offset: 0 });
    s
}

/// A global latency spike (every link degrades) that later clears.
fn latency_spike() -> Scenario {
    let mut s = Scenario::base(
        "latency-spike",
        "all links +150 ticks during the middle of the run, then normal",
        Flavour::Convergent,
    );
    s.faults = FaultPlan::new()
        .at(60, Fault::DelayAll { extra: 150 })
        .at(180, Fault::DelayAll { extra: 0 });
    s
}

/// Moderate random loss on every link: liveness degrades (gaps block
/// causal delivery) but safety must hold.
fn lossy_mesh() -> Scenario {
    let mut s = Scenario::base(
        "lossy-mesh",
        "15% loss on every link during writes; CC safety under loss",
        Flavour::Causal,
    );
    s.faults = FaultPlan::new()
        .at(0, Fault::DropAll { prob: 0.15 })
        .at(220, Fault::DropAll { prob: 0.0 });
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbm_net::latency::LatencyModel;

    #[test]
    fn registry_has_at_least_eight_distinct_scenarios() {
        let all = scenarios();
        assert!(all.len() >= 8, "only {} scenarios", all.len());
        let mut names: Vec<_> = all.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate scenario names");
    }

    #[test]
    fn by_name_finds_every_entry() {
        for s in scenarios() {
            assert!(by_name(s.name).is_some(), "{} not found", s.name);
        }
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn fault_plans_stay_inside_the_cluster() {
        for s in scenarios() {
            for ev in s.faults.events() {
                let nodes: Vec<usize> = match &ev.fault {
                    Fault::Crash(p) | Fault::Recover(p) => vec![*p],
                    Fault::Partition { side } => side.clone(),
                    Fault::PartitionOneWay { from, to } => from.iter().chain(to).copied().collect(),
                    Fault::BlockLink { from, to }
                    | Fault::HealLink { from, to }
                    | Fault::LinkDrop { from, to, .. }
                    | Fault::LinkDup { from, to, .. }
                    | Fault::LinkDelay { from, to, .. } => vec![*from, *to],
                    Fault::ClockSkew { node, .. } => vec![*node],
                    Fault::HealAll
                    | Fault::DropAll { .. }
                    | Fault::DupAll { .. }
                    | Fault::DelayAll { .. } => vec![],
                };
                for p in nodes {
                    assert!(p < s.procs, "{}: fault names node {p}", s.name);
                }
            }
        }
    }

    #[test]
    fn latency_models_are_positive() {
        for s in scenarios() {
            match s.latency {
                LatencyModel::Constant(d) => assert!(d > 0),
                LatencyModel::Uniform(lo, hi) => assert!(lo > 0 && hi >= lo),
                LatencyModel::HeavyTail { base, .. } => assert!(base > 0),
            }
        }
    }
}
