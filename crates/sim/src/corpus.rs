//! The regression corpus: failing `(scenario, seed)` pairs committed
//! to the repository.
//!
//! Format (one entry per line, `#` comments and blank lines ignored):
//!
//! ```text
//! <scenario-name> <seed> [note...]
//! ```
//!
//! The explorer (via `scenario_runner explore --record`) appends a
//! line whenever a sweep finds a failure; after the underlying bug is
//! fixed the entry stays forever, and the tier-1 test
//! `tests/scenarios.rs` replays every entry asserting it passes. A
//! `synthetic` note marks entries added only to exercise the replay
//! path.

use std::fmt;
use std::path::Path;

/// One committed corpus entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Scenario registry name.
    pub scenario: String,
    /// Seed to replay.
    pub seed: u64,
    /// Free-form note (why it was recorded).
    pub note: String,
}

impl fmt::Display for CorpusEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.note.is_empty() {
            write!(f, "{} {}", self.scenario, self.seed)
        } else {
            write!(f, "{} {} {}", self.scenario, self.seed, self.note)
        }
    }
}

/// Parse corpus text. Unparseable lines are errors (the corpus is
/// hand-auditable and must stay clean).
pub fn parse(text: &str) -> Result<Vec<CorpusEntry>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let scenario = parts
            .next()
            .ok_or_else(|| format!("line {}: missing scenario", i + 1))?
            .to_string();
        let seed: u64 = parts
            .next()
            .ok_or_else(|| format!("line {}: missing seed", i + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad seed: {e}", i + 1))?;
        let note = parts.collect::<Vec<_>>().join(" ");
        entries.push(CorpusEntry {
            scenario,
            seed,
            note,
        });
    }
    Ok(entries)
}

/// Load a corpus file; a missing file is an empty corpus.
pub fn load(path: &Path) -> Result<Vec<CorpusEntry>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Append an entry to a corpus file (creating it if needed).
pub fn append(path: &Path, entry: &CorpusEntry) -> Result<(), String> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    writeln!(f, "{entry}").map_err(|e| format!("{}: {e}", path.display()))
}

/// Append an entry unless the corpus already replays the same
/// `(scenario, seed)` pair; returns whether anything was written.
///
/// The explorer records every failure of a sweep, and overlapping
/// sweeps (or re-runs of the same range) find the same pairs again —
/// without this check duplicates silently accumulate in the committed
/// corpus, bloating the tier-1 replay for zero extra coverage. Notes
/// are ignored for identity: the pair is what the replay runs.
pub fn append_unique(path: &Path, entry: &CorpusEntry) -> Result<bool, String> {
    let existing = load(path)?;
    if existing
        .iter()
        .any(|e| e.scenario == entry.scenario && e.seed == entry.seed)
    {
        return Ok(false);
    }
    append(path, entry)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_skips_comments_and_blanks() {
        let text = "# corpus\n\npartition-while-writing 42 synthetic smoke entry\nlossy-mesh 7\n";
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].scenario, "partition-while-writing");
        assert_eq!(entries[0].seed, 42);
        assert_eq!(entries[0].note, "synthetic smoke entry");
        assert_eq!(entries[1].note, "");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("only-a-name").is_err());
        assert!(parse("name not-a-seed").is_err());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let e = CorpusEntry {
            scenario: "flapping-links".into(),
            seed: 9,
            note: "found by sweep".into(),
        };
        let parsed = parse(&e.to_string()).unwrap();
        assert_eq!(parsed, vec![e]);
    }

    #[test]
    fn load_missing_file_is_empty() {
        let entries = load(Path::new("/nonexistent/corpus.txt")).unwrap();
        assert!(entries.is_empty());
    }

    #[test]
    fn append_unique_refuses_duplicates() {
        let dir = std::env::temp_dir().join(format!("cbm-corpus-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.txt");
        let _ = std::fs::remove_file(&path);
        let e = CorpusEntry {
            scenario: "lossy-mesh".into(),
            seed: 7,
            note: "first sweep".into(),
        };
        assert!(append_unique(&path, &e).unwrap(), "fresh pair is recorded");
        // same pair again — different note must not matter
        let dup = CorpusEntry {
            note: "second sweep, same failure".into(),
            ..e.clone()
        };
        assert!(!append_unique(&path, &dup).unwrap(), "duplicate refused");
        // same scenario, new seed: recorded
        let other = CorpusEntry { seed: 8, ..e };
        assert!(append_unique(&path, &other).unwrap());
        let entries = load(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].note, "first sweep", "original line untouched");
        let _ = std::fs::remove_file(&path);
    }
}
