//! Scenario descriptions: everything needed to reproduce a run except
//! the seed.

use cbm_net::fault::FaultPlan;
use cbm_net::latency::LatencyModel;

/// Which replica algorithm runs the scenario, and hence which
/// criterion verifies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavour {
    /// `CausalShared` (Fig. 4 generalized): wait-free causal
    /// consistency; runs are verified against **CC** (Def. 9) via
    /// `cbm_check::verify::verify_cc_execution`.
    Causal,
    /// `ConvergentShared` (Fig. 5 generalized): causal convergence
    /// with Lamport arbitration; runs are verified against **CCv**
    /// (Def. 12) via `cbm_check::verify::verify_ccv_execution`.
    Convergent,
}

impl Flavour {
    /// The criterion this flavour is verified against.
    pub fn criterion(&self) -> &'static str {
        match self {
            Flavour::Causal => "CC",
            Flavour::Convergent => "CCv",
        }
    }
}

/// A named, reproducible fault-injection scenario.
///
/// A scenario plus a seed is a complete description of a run: the
/// workload script, the network latencies, and the fault timings are
/// all pure functions of `(scenario, seed)`.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Registry name (stable; referenced by the regression corpus).
    pub name: &'static str,
    /// One-line description for `scenario_runner list`.
    pub description: &'static str,
    /// Cluster size.
    pub procs: usize,
    /// Replica flavour (decides the verified criterion).
    pub flavour: Flavour,
    /// Operations per process.
    pub ops_per_proc: usize,
    /// Number of window streams `K`.
    pub streams: usize,
    /// Window size `k` of each stream.
    pub window_k: usize,
    /// Probability an operation is a write.
    pub write_ratio: f64,
    /// Maximum think time between operations.
    pub max_think: u64,
    /// Baseline link latency model.
    pub latency: LatencyModel,
    /// Timed transport faults.
    pub faults: FaultPlan,
    /// Must all live replicas hold equal state at quiescence?
    /// (Asserted only for [`Flavour::Convergent`] scenarios whose
    /// fault plan lets every message eventually through; CC alone
    /// never promises convergence.)
    pub expect_converge: bool,
}

impl Scenario {
    /// Baseline scenario: no faults, moderate workload. Registry
    /// entries customize from here.
    pub fn base(name: &'static str, description: &'static str, flavour: Flavour) -> Self {
        Scenario {
            name,
            description,
            procs: 4,
            flavour,
            ops_per_proc: 16,
            streams: 2,
            window_k: 2,
            write_ratio: 0.6,
            max_think: 12,
            latency: LatencyModel::Uniform(2, 25),
            faults: FaultPlan::new(),
            expect_converge: matches!(flavour, Flavour::Convergent),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_scenario_defaults_are_sane() {
        let s = Scenario::base("x", "d", Flavour::Causal);
        assert_eq!(s.procs, 4);
        assert!(!s.expect_converge, "CC does not promise convergence");
        let c = Scenario::base("y", "d", Flavour::Convergent);
        assert!(c.expect_converge);
        assert_eq!(c.flavour.criterion(), "CCv");
    }
}
