//! Offline stand-in for `serde`. The workspace uses serde only to tag
//! message types with `#[derive(Serialize, Deserialize)]`; no actual
//! serialization happens in-process (the wire codec in `cbm-net::msg`
//! is hand-rolled). Both traits are blanket-implemented markers and
//! the derives are no-ops, so swapping the real serde back in is a
//! manifest-only change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
