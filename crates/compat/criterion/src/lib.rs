//! Offline stand-in for the subset of Criterion this workspace uses.
//!
//! Each benchmark closure runs a small, bounded number of iterations
//! and a `name ... ns/iter` line is printed — enough for the `BENCH_*`
//! trajectories to track relative movement without the statistical
//! machinery (or the compile time) of the real crate. Swapping the
//! real Criterion back in is a manifest-only change.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Hide a value from the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration input regime for `iter_batched` (ignored here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: batch many per measurement.
    SmallInput,
    /// Large inputs: batch few per measurement.
    LargeInput,
    /// One input per measurement.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render to the printed id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Measure a routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measure a routine with a fresh input per iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like `iter_batched` but the routine borrows the input.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stub runs a fixed small
    /// iteration count regardless.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            iters: self.iters,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(&id.into_id(), self.iters, f);
        self
    }

    /// Upstream prints a summary here; the stub prints per-bench lines
    /// eagerly instead.
    pub fn final_summary(&self) {}
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration throughput (printed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_id()), self.iters, f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.into_id()),
            self.iters,
            |b| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(name: &str, iters: u64, mut f: F) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
        _marker: std::marker::PhantomData,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed.as_nanos() / b.iters as u128
    } else {
        0
    };
    println!("bench {name:<56} {per_iter:>12} ns/iter");
}

/// Build the group-runner function Criterion expects.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Build the bench `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = sample_bench
    }

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }
}
