//! Offline stand-in for the subset of `rand` 0.8 used by this
//! workspace: `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods `gen_range` / `gen_bool` over integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic, which is all the simulator
//! needs (it never claims numeric compatibility with upstream
//! `StdRng`).

#![forbid(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive integer range that can be sampled.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics if the range is
    /// empty (matching upstream `gen_range` semantics).
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling helpers, blanket-implemented for any bit source.
pub trait Rng: RngCore {
    /// Uniform draw from an integer range (`0..n` or `0..=n`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, exactly representable in f64
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3u64..9);
            assert!((3..9).contains(&x));
            let y = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&y));
            let z = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..2000).filter(|_| r.gen_bool(0.5)).count();
        assert!((700..1300).contains(&hits), "p=0.5 gave {hits}/2000");
    }
}
