//! Offline stand-in for the `crossbeam` API subset used here, mapped
//! onto `std`: `channel::{unbounded, Sender, Receiver, TryRecvError}`
//! over `std::sync::mpsc`, and `thread::scope` over
//! `std::thread::scope`.

#![forbid(unsafe_code)]

/// MPSC channels (maps onto `std::sync::mpsc`).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, SendError, Sender, TryRecvError};

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Scoped threads (maps onto `std::thread::scope`).
pub mod thread {
    /// Handle passed to scoped closures; crossbeam's spawn closures
    /// receive `&Scope` (usually ignored as `|_|`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives a
        /// `&Scope` so nested spawns compile, like crossbeam's.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before
    /// returning. Panics in scoped threads propagate as `Err`, like
    /// crossbeam's `scope(...)` result.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn scope_joins_threads() {
        let mut hits = 0;
        super::thread::scope(|s| {
            let h = s.spawn(|_| 21);
            hits += h.join().unwrap();
            hits += s.spawn(|_| 21).join().unwrap();
        })
        .unwrap();
        assert_eq!(hits, 42);
    }
}
