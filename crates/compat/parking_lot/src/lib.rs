//! Offline stand-in for `parking_lot::Mutex` over `std::sync::Mutex`:
//! `lock()` returns the guard directly (poisoning is treated as a
//! bug, matching parking_lot's no-poisoning semantics).

#![forbid(unsafe_code)]

/// Mutex with parking_lot's `lock() -> guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, returning the guard directly.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
    }
}
