//! Offline stand-in for the subset of `bytes` used by the wire codec:
//! `BytesMut` + `BufMut` big-endian writers, `Bytes` + `Buf`
//! big-endian readers, `freeze`, and `len`.

#![forbid(unsafe_code)]

/// Growable byte buffer (writer side).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

/// Immutable byte buffer with a read cursor (reader side).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freeze into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Bytes {
    /// Remaining unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Any bytes left?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// Big-endian write access.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16);
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32);
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
}

/// Big-endian read access (consumes from the front).
pub trait Buf {
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16;
    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32;
    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64;
}

impl Bytes {
    fn take(&mut self, n: usize) -> &[u8] {
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

impl Buf for Bytes {
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().unwrap())
    }
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u16(0xBEEF);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        assert_eq!(b.len(), 15);
        let mut r = b.freeze();
        assert_eq!(r.len(), 15);
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert!(r.is_empty());
    }
}
