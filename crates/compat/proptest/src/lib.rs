//! Offline mini-proptest.
//!
//! Implements the subset of the `proptest` API this workspace uses —
//! the `proptest!` / `prop_assert*` macros, `Strategy` with
//! `prop_map`, range and tuple strategies, `prop::collection::vec`,
//! `prop_oneof!` / `Just`, `sample::subsequence`, and a deterministic
//! `TestRunner` — with seeded random generation and **no shrinking**.
//! Failing cases report the generated values instead of a minimized
//! counterexample.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// Number of elements a [`vec()`] strategy may produce.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let len = runner.rng().gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, runner: &mut TestRunner) -> bool {
            runner.rng().gen_range(0u8..2) == 1
        }
    }
}

/// Sampling strategies (`proptest::sample::subsequence`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// Strategy choosing an order-preserving subsequence.
    #[derive(Debug, Clone)]
    pub struct Subsequence<T> {
        items: Vec<T>,
        size: usize,
    }

    /// A uniformly chosen subsequence of exactly `size` elements of
    /// `items`, in their original order.
    pub fn subsequence<T: Clone>(items: Vec<T>, size: usize) -> Subsequence<T> {
        assert!(size <= items.len(), "subsequence larger than source");
        Subsequence { items, size }
    }

    impl<T: Clone + core::fmt::Debug> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            // Floyd-style selection of `size` distinct indices.
            let n = self.items.len();
            let mut chosen = vec![false; n];
            let mut picked = 0usize;
            while picked < self.size {
                let i = runner.rng().gen_range(0..n);
                if !chosen[i] {
                    chosen[i] = true;
                    picked += 1;
                }
            }
            self.items
                .iter()
                .zip(&chosen)
                .filter(|(_, &c)| c)
                .map(|(v, _)| v.clone())
                .collect()
        }
    }
}

/// Everything a test module usually imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias exported by proptest's prelude.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Assert inside a proptest body; failure aborts this case with a
/// report of the condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{}: {:?} == {:?}", format!($($fmt)*), a, b);
    }};
}

/// `assert_ne!` inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{}: {:?} != {:?}", format!($($fmt)*), a, b);
    }};
}

/// Discard the current case unless the hypothesis holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).into(),
            ));
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define `#[test]` functions whose arguments are drawn from
/// strategies. Supports the optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::deterministic();
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(16).max(64) {
                    panic!(
                        "proptest '{}': too many rejected cases ({} passed of {})",
                        stringify!($name), passed, config.cases
                    );
                }
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut runner);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest '{}' failed: {}", stringify!($name), msg)
                    }
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 1u64..10, pair in (0usize..5, 0usize..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(pair.0 < 5 && pair.1 < 5);
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec((0u32..3).prop_map(|x| x * 2), 0..8)) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|x| [0, 2, 4].contains(x)));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(7u64), 0u64..3]) {
            prop_assert!(v == 7 || v < 3);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_accepted(x in 0u8..2) {
            prop_assert!(x < 2);
        }
    }

    #[test]
    fn subsequence_of_full_length_is_identity() {
        use crate::strategy::Strategy;
        let mut runner = TestRunner::deterministic();
        let s = crate::sample::subsequence((0..9usize).collect::<Vec<_>>(), 9);
        assert_eq!(s.generate(&mut runner), (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn new_tree_current_api() {
        use crate::strategy::{Strategy, ValueTree};
        let mut runner = TestRunner::deterministic();
        let v = (0u64..5).new_tree(&mut runner).expect("strategy").current();
        assert!(v < 5);
    }

    #[test]
    fn deterministic_runner_reproduces() {
        use crate::strategy::Strategy;
        let gen = |runner: &mut TestRunner| {
            (0..20)
                .map(|_| (0u64..1000).generate(runner))
                .collect::<Vec<_>>()
        };
        let a = gen(&mut TestRunner::deterministic());
        let b = gen(&mut TestRunner::deterministic());
        assert_eq!(a, b);
    }
}
