//! Deterministic test runner and configuration.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast while
        // still exploring a meaningful slice of each space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Hypothesis not met (`prop_assume!`); the case is discarded.
    Reject(String),
    /// Assertion failed; the whole property fails.
    Fail(String),
}

/// Result of one case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Seeded RNG state threaded through strategies.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner with a fixed seed — every run generates the same
    /// cases.
    pub fn deterministic() -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(0x5EED_CA5E_D00D_F00D),
        }
    }

    /// A runner honouring `config` (seeding is fixed either way).
    pub fn new(_config: ProptestConfig) -> Self {
        Self::deterministic()
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

impl Default for TestRunner {
    fn default() -> Self {
        Self::deterministic()
    }
}
