//! The `Strategy` trait and combinators (generation only, no
//! shrinking).

use crate::test_runner::TestRunner;
use rand::Rng;

/// A generated value wrapper; `current()` returns the value. Real
/// proptest shrinks through this — here it is a plain holder.
pub struct Node<V>(V);

/// Access to a generated value (`proptest::strategy::ValueTree`).
pub trait ValueTree {
    /// The value type.
    type Value;
    /// The current (here: only) value.
    fn current(&self) -> Self::Value;
}

impl<V: Clone> ValueTree for Node<V> {
    type Value = V;
    fn current(&self) -> V {
        self.0.clone()
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Draw one value wrapped in a [`ValueTree`] (proptest-compatible
    /// entry point used with `TestRunner` directly).
    fn new_tree(&self, runner: &mut TestRunner) -> Result<Node<Self::Value>, String> {
        Ok(Node(self.generate(runner)))
    }

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        std::rc::Rc::new(self)
    }
}

/// A type-erased, cheaply clonable strategy.
pub type BoxedStrategy<V> = std::rc::Rc<dyn Strategy<Value = V>>;

impl<V> Strategy for std::rc::Rc<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, runner: &mut TestRunner) -> V {
        (**self).generate(runner)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<V>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _runner: &mut TestRunner) -> V {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<V> {
    branches: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Choose uniformly among `branches` (must be non-empty).
    pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, runner: &mut TestRunner) -> V {
        let i = runner.rng().gen_range(0..self.branches.len());
        self.branches[i].generate(runner)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);
