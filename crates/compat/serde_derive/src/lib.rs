//! No-op `Serialize` / `Deserialize` derives. The vendored `serde`
//! crate blanket-implements both traits for every type, so the derive
//! only needs to exist syntactically.

use proc_macro::TokenStream;

/// Expands to nothing — `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing — `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
