//! The streaming monitor threaded through the live engine: 100%
//! certification accounting, escalation determinism, and survival of
//! sharding, chaos, and crash recovery.
//!
//! The accounting identity under test everywhere: every operation is
//! certified exactly once — own invocations at their issuer, routed
//! reads at their server — so `monitor.ops_checked == total_ops` on a
//! complete run, at any replication factor and under any fault plan
//! the engine tolerates. A correct engine never produces a confirmed
//! violation, so all runs here must certify.

use cbm_adt::counter::{Counter, CtInput};
use cbm_adt::register::{RegInput, Register};
use cbm_adt::space::SpaceInput;
use cbm_net::fault::FaultPlan;
use cbm_store::{
    profile, run, BatchPolicy, DurableConfig, Mode, ObsConfig, ShardConfig, StoreConfig,
    StoreReport, VerifyConfig,
};
use rand::rngs::StdRng;
use rand::Rng;

fn reg_gen(objects: u32) -> impl Fn(usize, u64, &mut StdRng) -> SpaceInput<RegInput> + Sync {
    move |_, _, rng| {
        let obj = rng.gen_range(0u32..objects);
        if rng.gen_bool(0.5) {
            SpaceInput::new(obj, RegInput::Read)
        } else {
            SpaceInput::new(obj, RegInput::Write(rng.gen_range(1u64..1000)))
        }
    }
}

fn monitored_cfg(mode: Mode, workers: usize, seed: u64) -> StoreConfig {
    StoreConfig {
        workers,
        objects: 32,
        ops_per_worker: 2_000,
        mode,
        batch: BatchPolicy::Every(8),
        verify: VerifyConfig {
            every_ops: 500,
            window_ops: 16,
            sample_every: 1,
            monitor: true,
        },
        seed,
        sharding: ShardConfig::full(),
        chaos: FaultPlan::new(),
        obs: ObsConfig::default(),
        durable: DurableConfig::default(),
    }
}

fn assert_certified(r: &StoreReport) {
    assert!(r.monitor.enabled);
    assert_eq!(
        r.monitor.ops_checked, r.total_ops,
        "certification shortfall: {}/{} ops",
        r.monitor.ops_checked, r.total_ops
    );
    assert_eq!(
        r.monitor.violations, 0,
        "confirmed violations on a correct engine: {:?}",
        r.monitor.records
    );
    assert!(r.monitor.certified(r.total_ops));
    assert!(r.verified(), "monitored run failed verification");
}

#[test]
fn cc_run_certifies_every_op() {
    let r = run(&Register, &monitored_cfg(Mode::Causal, 4, 11), reg_gen(32));
    assert_certified(&r);
    assert_eq!(
        r.monitor.escalations, 0,
        "false alarms: {:?}",
        r.monitor.records
    );
    assert!(r.monitor.folds > 0, "remote updates must fold into shadows");
}

#[test]
fn ccv_run_certifies_every_op() {
    let r = run(
        &Register,
        &monitored_cfg(Mode::Convergent, 4, 11),
        reg_gen(32),
    );
    assert_certified(&r);
    assert_eq!(
        r.monitor.escalations, 0,
        "false alarms: {:?}",
        r.monitor.records
    );
    assert!(r.drains_converged);
}

#[test]
fn monitor_off_reports_disabled() {
    let mut cfg = monitored_cfg(Mode::Causal, 4, 11);
    cfg.verify.monitor = false;
    let r = run(&Register, &cfg, reg_gen(32));
    assert!(!r.monitor.enabled);
    assert_eq!(r.monitor.ops_checked, 0);
    assert!(!r.monitor.certified(r.total_ops), "vacuous certification");
    assert!(r.verified(), "monitor-off runs keep the sampled verdicts");
}

/// rf=2: reads of non-hosted objects route to a serving replica; the
/// server certifies them (`on_served_read`), the issuer doesn't. The
/// sum still covers every op exactly once.
#[test]
fn rf2_certifies_routed_reads_at_the_server() {
    let mut cfg = monitored_cfg(Mode::Causal, 4, 17);
    cfg.sharding = ShardConfig::rf(2);
    let r = run(&Register, &cfg, reg_gen(32));
    assert!(r.remote_reads > 0, "workload must route reads");
    assert_certified(&r);
}

#[test]
fn convergent_rf2_certifies() {
    let mut cfg = monitored_cfg(Mode::Convergent, 4, 17);
    cfg.sharding = ShardConfig::rf(2);
    let r = run(&Register, &cfg, reg_gen(32));
    assert_certified(&r);
}

/// Monitor counters are deterministic per `(config, seed)` — the same
/// contract the loadgen `--gate` enforces on the committed baseline.
#[test]
fn monitor_counters_are_deterministic_across_runs() {
    let cfg = monitored_cfg(Mode::Causal, 4, 23);
    let a = run(&Register, &cfg, reg_gen(32));
    let b = run(&Register, &cfg, reg_gen(32));
    assert_certified(&a);
    assert_eq!(a.monitor.ops_checked, b.monitor.ops_checked);
    assert_eq!(a.monitor.folds, b.monitor.folds);
    assert_eq!(a.monitor.escalations, b.monitor.escalations);
    assert_eq!(a.monitor.records.len(), b.monitor.records.len());
}

/// Chaos: loss + repair must not desynchronize the shadows (nack
/// retransmits re-deliver in causal order; the monitor sees each
/// update exactly once).
#[test]
fn lossy_mesh_still_certifies() {
    let mut cfg = monitored_cfg(Mode::Causal, 4, 29);
    cfg.chaos = profile("lossy-mesh", 4, 500).unwrap();
    let r = run(&Register, &cfg, reg_gen(32));
    assert_certified(&r);
}

#[test]
fn duplicate_storm_folds_each_update_once() {
    let mut cfg = monitored_cfg(Mode::Causal, 4, 29);
    cfg.chaos = profile("duplicate-storm", 4, 500).unwrap();
    let r = run(&Register, &cfg, reg_gen(32));
    assert_certified(&r);
    assert_eq!(r.monitor.escalations, 0, "{:?}", r.monitor.records);
}

/// Crash + recovery: the recovering worker's monitor rebuilds from
/// the per-shard state transfer (`install_slot` + `resync`), so
/// post-recovery traffic certifies against transferred — not
/// crashed-placeholder — shadows, the same anchoring rule recovery
/// verification windows follow.
#[test]
fn crash_recovery_rebuilds_monitor_state() {
    // counters: commutative updates keep the causal-mode comparison
    // exact across the recovery replay
    let mut cfg = monitored_cfg(Mode::Causal, 4, 31);
    cfg.chaos = profile("crash-recover", 4, 500).unwrap();
    let r = run(&Counter, &cfg, |_, _, rng: &mut StdRng| {
        let obj = rng.gen_range(0u32..32);
        if rng.gen_bool(0.5) {
            SpaceInput::new(obj, CtInput::Read)
        } else {
            SpaceInput::new(obj, CtInput::Add(rng.gen_range(1i64..100)))
        }
    });
    assert!(r.chaos.active);
    assert_certified(&r);
}

/// The chaos analog of the determinism contract: same fault plan,
/// same seed, same monitor counters.
#[test]
fn chaos_monitor_counters_are_deterministic() {
    let mut cfg = monitored_cfg(Mode::Causal, 4, 37);
    cfg.chaos = profile("mixed-chaos", 4, 500).unwrap();
    cfg.sharding = ShardConfig::rf(2);
    let a = run(&Register, &cfg, reg_gen(32));
    let b = run(&Register, &cfg, reg_gen(32));
    assert_certified(&a);
    assert_eq!(a.monitor.ops_checked, b.monitor.ops_checked);
    assert_eq!(a.monitor.escalations, b.monitor.escalations);
    assert_eq!(a.monitor.violations, b.monitor.violations);
}
