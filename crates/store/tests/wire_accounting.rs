//! Store-level mirror of the transport accounting pin
//! (`bytes_are_exact_under_chaos_with_reliable_control` in
//! `cbm-net::chaos`), retargeted at the varint wire format: across
//! lossless faults (block + heal parking, link delays) interleaved
//! with reliable control traffic (routed reads under partial
//! replication), the transport's `bytes_sent` must equal exactly the
//! varint sizes the engine declared — the delta-encoded knowledge
//! headers of every shipped copy, the per-op payload bytes, and the
//! request/reply control sizes. Delta headers size by flush-time
//! knowledge, so byte totals are **not** run-to-run deterministic
//! (see `docs/SHARDING.md`); this test pins the complementary
//! guarantee that they are *exact* within a run.

use cbm_adt::register::{RegInput, RegOutput, Register};
use cbm_adt::space::SpaceInput;
use cbm_net::fault::{Fault, FaultPlan};
use cbm_store::wire::{read_reply_bytes, read_req_bytes};
use cbm_store::{
    run, BatchPolicy, DurableConfig, Mode, ObsConfig, ShardConfig, StoreConfig, StoreReport,
    VerifyConfig,
};
use rand::rngs::StdRng;
use rand::Rng;

fn metric(r: &StoreReport, name: &str) -> u64 {
    r.metrics
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("metric {name} not in snapshot"))
        .1
}

#[test]
fn bytes_are_exact_under_chaos_with_reliable_control() {
    // Lossless plan: parked copies heal back mid-epoch, delayed copies
    // flush at the cut — every copy reaches the wire exactly once, so
    // the declared sizes must reconcile to the byte.
    let mut chaos = FaultPlan::new();
    chaos.push(
        200,
        Fault::PartitionOneWay {
            from: vec![0],
            to: vec![1, 2, 3],
        },
    );
    chaos.push(350, Fault::DelayAll { extra: 5 });
    chaos.push(600, Fault::HealAll);
    chaos.push(700, Fault::DelayAll { extra: 0 });
    let cfg = StoreConfig {
        workers: 4,
        objects: 32,
        ops_per_worker: 3_000,
        mode: Mode::Causal,
        batch: BatchPolicy::Every(8),
        verify: VerifyConfig {
            every_ops: 1_000,
            window_ops: 24,
            sample_every: 1,
            monitor: false,
        },
        seed: 7,
        sharding: ShardConfig::rf(2),
        chaos,
        obs: ObsConfig::default(),
        durable: DurableConfig::default(),
    };
    let r = run(&Register, &cfg, |_, _, rng: &mut StdRng| {
        let obj = rng.gen_range(0u32..32);
        if rng.gen_bool(0.5) {
            SpaceInput::new(obj, RegInput::Read)
        } else {
            SpaceInput::new(obj, RegInput::Write(rng.gen_range(1u64..1000)))
        }
    });
    assert!(r.verified(), "windows must verify under the lossless plan");
    assert!(r.chaos.parked > 0, "the block actually parked copies");
    assert!(r.chaos.delayed > 0, "the delay actually held copies back");
    assert_eq!(r.chaos.nacks, 0, "lossless plan: no gaps at drains");
    assert!(r.remote_reads > 0, "reliable control traffic exercised");

    // batch copies: exact delta headers + flat per-op charge (see
    // `cbm_store::wire::batch_bytes`); control: one req + one reply
    // per routed read
    let per_op = (4 + 10 + 1 + std::mem::size_of::<RegInput>()) as u64;
    let expected = metric(&r, "matrix_header_bytes_total")
        + per_op * metric(&r, "payload_copy_ops_total")
        + r.remote_reads * (read_req_bytes::<RegInput>() + read_reply_bytes::<RegOutput>()) as u64;
    assert_eq!(r.bytes_sent, expected, "byte count is exact");
}
