//! End-to-end engine runs: live threads, batched broadcast, sampled
//! window verification, deterministic message accounting.

use cbm_adt::counter::{Counter, CtInput};
use cbm_adt::register::{RegInput, Register};
use cbm_adt::space::SpaceInput;
use cbm_net::fault::FaultPlan;
use cbm_store::{
    run, BatchPolicy, DurableConfig, Mode, ObsConfig, ShardConfig, StoreConfig, StoreReport,
    VerifyConfig,
};
use rand::rngs::StdRng;
use rand::Rng;

fn reg_gen(
    objects: u32,
    read_ratio: f64,
) -> impl Fn(usize, u64, &mut StdRng) -> SpaceInput<RegInput> + Sync {
    move |_, _, rng| {
        let obj = rng.gen_range(0u32..objects);
        if rng.gen_bool(read_ratio) {
            SpaceInput::new(obj, RegInput::Read)
        } else {
            SpaceInput::new(obj, RegInput::Write(rng.gen_range(1u64..1000)))
        }
    }
}

fn small_cfg(mode: Mode, batch: BatchPolicy) -> StoreConfig {
    StoreConfig {
        workers: 4,
        objects: 32,
        ops_per_worker: 3_000,
        mode,
        batch,
        verify: VerifyConfig {
            every_ops: 1_000,
            window_ops: 24,
            sample_every: 1,
            monitor: false,
        },
        seed: 11,
        sharding: ShardConfig::full(),
        chaos: FaultPlan::new(),
        obs: ObsConfig::default(),
        durable: DurableConfig::default(),
    }
}

fn assert_healthy(r: &StoreReport) {
    assert_eq!(r.total_ops, r.config.total_ops());
    assert!(!r.windows.is_empty(), "sampling produced no windows");
    for w in &r.windows {
        assert!(
            w.result.is_ok(),
            "window {} failed: {:?}",
            w.window,
            w.result
        );
        assert!(w.events > 0);
    }
    assert!(r.verified());
    assert!(r.latency.count == r.total_ops);
}

#[test]
fn causal_mode_verifies_cc_windows() {
    let cfg = small_cfg(Mode::Causal, BatchPolicy::Every(8));
    let r = run(&Register, &cfg, reg_gen(32, 0.5));
    assert_healthy(&r);
    assert!(r.windows.iter().all(|w| w.criterion == "CC"));
    // 2 interior rendezvous (k = 1000, 2000) -> 2 windows
    assert_eq!(r.windows.len(), 2);
    // message fan-out: every batch goes to n-1 peers
    assert_eq!(r.msgs_sent, r.batches_sent * 3);
    assert!(r.bytes_sent > 0);
    assert!(r.mean_batch > 4.0, "mean batch {}", r.mean_batch);
}

#[test]
fn convergent_mode_verifies_ccv_windows_and_converges() {
    let cfg = small_cfg(Mode::Convergent, BatchPolicy::Every(8));
    let r = run(&Register, &cfg, reg_gen(32, 0.5));
    assert_healthy(&r);
    assert!(r.windows.iter().all(|w| w.criterion == "CCv"));
    assert!(r.drains_converged);
}

#[test]
fn convergent_mode_with_counter_updates() {
    // commutative updates: convergence must also hold
    let cfg = small_cfg(Mode::Convergent, BatchPolicy::Every(4));
    let r = run(&Counter, &cfg, |_, _, rng: &mut StdRng| {
        let obj = rng.gen_range(0u32..16);
        if rng.gen_bool(0.4) {
            SpaceInput::new(obj, CtInput::Read)
        } else {
            SpaceInput::new(obj, CtInput::Add(rng.gen_range(1i64..5)))
        }
    });
    assert_healthy(&r);
}

#[test]
fn batching_cuts_messages_at_least_5x() {
    let on = run(
        &Register,
        &small_cfg(Mode::Causal, BatchPolicy::Every(16)),
        reg_gen(32, 0.5),
    );
    let off = run(
        &Register,
        &small_cfg(Mode::Causal, BatchPolicy::Off),
        reg_gen(32, 0.5),
    );
    assert_healthy(&on);
    assert_healthy(&off);
    // same seed => same update stream => same payload counts
    assert_eq!(on.payloads_sent, off.payloads_sent);
    assert!(
        off.msgs_sent >= 5 * on.msgs_sent,
        "batching cut only {}x ({} vs {})",
        off.msgs_sent as f64 / on.msgs_sent as f64,
        off.msgs_sent,
        on.msgs_sent
    );
    assert!((off.mean_batch - 1.0).abs() < f64::EPSILON);
}

#[test]
fn message_counts_are_deterministic_across_runs() {
    let cfg = small_cfg(Mode::Causal, BatchPolicy::Every(8));
    let a = run(&Register, &cfg, reg_gen(32, 0.5));
    let b = run(&Register, &cfg, reg_gen(32, 0.5));
    assert_eq!(a.msgs_sent, b.msgs_sent);
    // bytes_sent is interleaving-dependent (delta-encoded knowledge
    // headers size by what changed per edge) and deliberately not part
    // of the deterministic contract — see docs/SHARDING.md
    assert_eq!(a.batches_sent, b.batches_sent);
    assert_eq!(a.payloads_sent, b.payloads_sent);
    assert_eq!(a.windows.len(), b.windows.len());
    for (x, y) in a.per_worker.iter().zip(&b.per_worker) {
        assert_eq!(x.updates, y.updates);
        assert_eq!(x.batches_sent, y.batches_sent);
    }
}

#[test]
fn single_worker_degenerates_gracefully() {
    let cfg = StoreConfig {
        workers: 1,
        objects: 8,
        ops_per_worker: 500,
        mode: Mode::Causal,
        batch: BatchPolicy::Every(8),
        verify: VerifyConfig {
            every_ops: 200,
            window_ops: 16,
            sample_every: 1,
            monitor: false,
        },
        seed: 3,
        sharding: ShardConfig::full(),
        chaos: FaultPlan::new(),
        obs: ObsConfig::default(),
        durable: DurableConfig::default(),
    };
    let r = run(&Register, &cfg, reg_gen(8, 0.5));
    assert_healthy(&r);
    assert_eq!(r.msgs_sent, 0, "no peers, no messages");
}

#[test]
fn sampling_disabled_still_completes() {
    let cfg = StoreConfig {
        workers: 3,
        objects: 16,
        ops_per_worker: 1_000,
        mode: Mode::Causal,
        batch: BatchPolicy::Every(8),
        verify: VerifyConfig {
            every_ops: 0,
            window_ops: 16,
            sample_every: 1,
            monitor: false,
        },
        seed: 5,
        sharding: ShardConfig::full(),
        chaos: FaultPlan::new(),
        obs: ObsConfig::default(),
        durable: DurableConfig::default(),
    };
    let r = run(&Register, &cfg, reg_gen(16, 0.5));
    assert_eq!(r.total_ops, 3_000);
    assert!(r.windows.is_empty());
    assert!(r.verified());
}

fn sharded_cfg(mode: Mode, rf: usize) -> StoreConfig {
    StoreConfig {
        sharding: ShardConfig::rf(rf),
        ..small_cfg(mode, BatchPolicy::Every(8))
    }
}

/// Health check for partially replicated runs: every sampled window
/// splits per shard, every split verifies, and every shard shows up.
fn assert_sharded_healthy(r: &StoreReport, shards: usize) {
    assert_eq!(r.total_ops, r.config.total_ops());
    assert!(!r.windows.is_empty(), "sampling produced no windows");
    for w in &r.windows {
        assert!(
            w.result.is_ok(),
            "window {} shard {:?} failed: {:?}",
            w.window,
            w.shard,
            w.result
        );
        assert!(w.shard.is_some(), "partial replication verifies per shard");
    }
    for s in 0..shards {
        assert!(
            r.windows.iter().any(|w| w.shard == Some(s as u32)),
            "shard {s} never verified"
        );
    }
    assert!(r.verified());
    assert!(r.latency.count == r.total_ops);
}

#[test]
fn rf2_verifies_per_shard_windows_and_routes_reads() {
    let r = run(&Register, &sharded_cfg(Mode::Causal, 2), reg_gen(32, 0.5));
    assert_sharded_healthy(&r, 4);
    assert!(
        r.remote_reads > 0,
        "half the objects are non-hosted: reads must route"
    );
    let served: u64 = r.per_worker.iter().map(|w| w.reads_served).sum();
    assert_eq!(served, r.remote_reads, "every routed read was answered");
    // updates always executed at replicas: every worker's updates ran
    // locally, so payload counts match the update counts
    let updates: u64 = r.per_worker.iter().map(|w| w.updates).sum();
    assert!(r.payloads_sent <= updates);
}

#[test]
fn rf2_cuts_replication_traffic_vs_full() {
    // update-only workload isolates the multicast fan-out: at rf 2 of
    // 4 workers each batch goes to 1 peer instead of 3
    let full = run(&Register, &sharded_cfg(Mode::Causal, 0), reg_gen(32, 0.0));
    let rf2 = run(&Register, &sharded_cfg(Mode::Causal, 2), reg_gen(32, 0.0));
    assert_healthy(&full);
    assert_sharded_healthy(&rf2, 4);
    assert_eq!(rf2.remote_reads, 0, "no reads in this workload");
    assert!(
        rf2.msgs_sent * 2 <= full.msgs_sent,
        "rf=2/4 workers must at least halve messages ({} vs {})",
        rf2.msgs_sent,
        full.msgs_sent
    );
    assert!(rf2.bytes_sent * 2 <= full.bytes_sent);
}

#[test]
fn rf1_replicates_nothing_and_still_serves_reads() {
    let r = run(&Register, &sharded_cfg(Mode::Causal, 1), reg_gen(32, 0.5));
    assert_sharded_healthy(&r, 4);
    assert_eq!(r.batches_sent, 0, "single replicas have no peers");
    assert!(r.remote_reads > 0);
    // the only traffic is read request/reply pairs
    assert_eq!(r.msgs_sent, 2 * r.remote_reads);
}

#[test]
fn convergent_rf2_converges_per_shard() {
    let r = run(
        &Register,
        &sharded_cfg(Mode::Convergent, 2),
        reg_gen(32, 0.5),
    );
    assert_sharded_healthy(&r, 4);
    assert!(r.drains_converged, "shard replicas must agree at drains");
    assert!(r.windows.iter().all(|w| w.criterion == "CCv"));
}

#[test]
fn sharded_counts_are_deterministic_across_runs() {
    let cfg = sharded_cfg(Mode::Causal, 2);
    let a = run(&Register, &cfg, reg_gen(32, 0.5));
    let b = run(&Register, &cfg, reg_gen(32, 0.5));
    assert_eq!(a.msgs_sent, b.msgs_sent);
    // bytes_sent deliberately uncompared: delta headers are
    // interleaving-dependent (see docs/SHARDING.md)
    assert_eq!(a.batches_sent, b.batches_sent);
    assert_eq!(a.payloads_sent, b.payloads_sent);
    assert_eq!(a.remote_reads, b.remote_reads);
    assert_eq!(a.windows.len(), b.windows.len());
    for (x, y) in a.per_worker.iter().zip(&b.per_worker) {
        assert_eq!(x.updates, y.updates);
        assert_eq!(x.remote_reads, y.remote_reads);
        assert_eq!(x.batches_sent, y.batches_sent);
    }
}

#[test]
fn placement_seed_moves_traffic_but_keeps_verification() {
    let mut cfg = sharded_cfg(Mode::Causal, 2);
    cfg.sharding.placement_seed = 1;
    let a = run(&Register, &cfg, reg_gen(32, 0.5));
    cfg.sharding.placement_seed = 99;
    let b = run(&Register, &cfg, reg_gen(32, 0.5));
    assert_sharded_healthy(&a, 4);
    assert_sharded_healthy(&b, 4);
}

#[test]
fn read_heavy_workloads_send_fewer_payloads() {
    let mostly_reads = run(
        &Register,
        &small_cfg(Mode::Causal, BatchPolicy::Every(8)),
        reg_gen(32, 0.9),
    );
    let mostly_writes = run(
        &Register,
        &small_cfg(Mode::Causal, BatchPolicy::Every(8)),
        reg_gen(32, 0.1),
    );
    assert_healthy(&mostly_reads);
    assert_healthy(&mostly_writes);
    assert!(mostly_reads.payloads_sent < mostly_writes.payloads_sent / 4);
    let rw: u64 = mostly_reads.per_worker.iter().map(|w| w.reads).sum();
    assert!(rw > mostly_reads.total_ops * 8 / 10);
}
