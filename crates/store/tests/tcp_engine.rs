//! The determinism contract over real sockets: for a given
//! `(StoreConfig, seed)`, [`cbm_store::run_tcp`] must reproduce the
//! deterministic report columns of [`cbm_store::run`] **exactly** —
//! same messages, same batches, same payloads, same monitor verdicts.
//! This is what lets one committed `--gate` baseline file gate both
//! transports (docs/DEPLOYMENT.md).

use cbm_adt::counter::{Counter, CtInput};
use cbm_adt::register::{RegInput, Register};
use cbm_adt::space::SpaceInput;
use cbm_net::fault::FaultPlan;
use cbm_store::{
    run, run_tcp, BatchPolicy, DurableConfig, Mode, ObsConfig, ShardConfig, StoreConfig,
    StoreReport, VerifyConfig,
};
use rand::Rng;

fn cfg(workers: usize, mode: Mode) -> StoreConfig {
    StoreConfig {
        workers,
        objects: 16,
        ops_per_worker: 600,
        mode,
        batch: BatchPolicy::Every(4),
        verify: VerifyConfig {
            every_ops: 200,
            window_ops: 24,
            sample_every: 1,
            monitor: true,
        },
        seed: 0xC0FFEE,
        sharding: ShardConfig::full(),
        chaos: FaultPlan::new(),
        obs: ObsConfig::default(),
        durable: DurableConfig::default(),
    }
}

/// The columns the `--gate` contract pins: everything that is a pure
/// function of `(config, seed)` — deliberately excluding wall-clock
/// derived fields and `bytes_sent` (a declared estimate that stays
/// transport-independent by construction, asserted separately).
fn deterministic_columns(r: &StoreReport) -> (u64, u64, u64, f64, u64, usize, usize, bool) {
    (
        r.msgs_sent,
        r.batches_sent,
        r.payloads_sent,
        r.mean_batch,
        r.remote_reads,
        r.windows.len(),
        r.windows_failed,
        r.drains_converged,
    )
}

fn register_gen(
    objects: u32,
) -> impl Fn(usize, u64, &mut rand::rngs::StdRng) -> SpaceInput<RegInput> + Clone + Sync {
    move |_, _, rng| {
        let obj = rng.gen_range(0u32..objects);
        if rng.gen_bool(0.5) {
            SpaceInput::new(obj, RegInput::Read)
        } else {
            SpaceInput::new(obj, RegInput::Write(rng.gen_range(1u64..1_000_000)))
        }
    }
}

#[test]
fn tcp_reproduces_thread_net_columns_register_cc() {
    let c = cfg(3, Mode::Causal);
    let a = run(&Register, &c, register_gen(16));
    let b = run_tcp(&Register, &c, register_gen(16));
    assert!(a.verified(), "{:?}", a.windows);
    assert!(b.verified(), "{:?}", b.windows);
    assert_eq!(deterministic_columns(&a), deterministic_columns(&b));
    // bytes_sent is deliberately NOT asserted: the declared batch size
    // includes the delta-encoded knowledge header, a function of
    // delivery interleaving — the one column the gate also excludes.
    // Ditto final_state_hashes in CC mode: concurrent writes apply in
    // delivery order, so the final register values are a function of
    // the interleaving (the CCv test asserts them instead).
    assert_eq!(a.monitor.ops_checked, b.monitor.ops_checked);
    assert_eq!(a.monitor.folds, b.monitor.folds);
    assert_eq!(a.monitor.violations, b.monitor.violations);
}

#[test]
fn tcp_reproduces_thread_net_columns_counter_ccv() {
    let c = cfg(4, Mode::Convergent);
    let gen = |_: usize, _: u64, rng: &mut rand::rngs::StdRng| {
        let obj = rng.gen_range(0u32..16);
        if rng.gen_bool(0.3) {
            SpaceInput::new(obj, CtInput::Read)
        } else {
            SpaceInput::new(obj, CtInput::Add(rng.gen_range(1i64..1_000)))
        }
    };
    let a = run(&Counter, &c, gen);
    let b = run_tcp(&Counter, &c, gen);
    assert!(a.verified(), "{:?}", a.windows);
    assert!(b.verified(), "{:?}", b.windows);
    assert_eq!(deterministic_columns(&a), deterministic_columns(&b));
    assert_eq!(a.final_state_hashes, b.final_state_hashes);
}

#[test]
fn tcp_runs_partial_replication_with_routed_reads() {
    let mut c = cfg(4, Mode::Causal);
    c.sharding = ShardConfig::rf(2);
    let a = run(&Register, &c, register_gen(16));
    let b = run_tcp(&Register, &c, register_gen(16));
    assert!(b.verified(), "{:?}", b.windows);
    assert!(b.remote_reads > 0, "rf=2 must route some reads over TCP");
    assert_eq!(deterministic_columns(&a), deterministic_columns(&b));
}

#[test]
fn tcp_survives_a_chaos_profile_identically() {
    // One fault profile over real sockets: the chaos layer sits above
    // the transport, so the deterministic columns and the repair
    // counters must match ThreadNet exactly.
    let mut c = cfg(3, Mode::Causal);
    c.chaos =
        cbm_store::profile("lossy-mesh", c.workers, c.verify.every_ops).expect("known profile");
    let a = run(&Register, &c, register_gen(16));
    let b = run_tcp(&Register, &c, register_gen(16));
    assert!(b.verified(), "{:?}", b.windows);
    assert_eq!(deterministic_columns(&a), deterministic_columns(&b));
    assert_eq!(a.chaos.drops, b.chaos.drops);
    assert_eq!(a.chaos.nacks, b.chaos.nacks);
    assert_eq!(a.chaos.repairs, b.chaos.repairs);
}
