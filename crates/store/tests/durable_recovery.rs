//! Durable epoch log: disk-first crash recovery, cold fleet restart,
//! and corruption hardening (`docs/DURABILITY.md`).
//!
//! Three properties ride on the chaos twin contract:
//!
//! * **disk recovery** — a crashed worker that replays its own
//!   snapshot + log tail and fetches only the post-cut delta from its
//!   co-replicas converges to the same final object space as the
//!   fault-free run of the same seed;
//! * **cold restart** — halting the whole fleet at a sealed boundary
//!   and resuming every worker from disk ends byte-identical (state
//!   hashes *and* monitor totals) to the uninterrupted twin;
//! * **corruption** — truncating or flipping bytes anywhere in a
//!   recorded log makes `durable::recover` fall back to an earlier
//!   seal or fail with a typed error; it never panics and never
//!   returns a state that disagrees with its seal.

use cbm_adt::counter::{Counter, CtInput};
use cbm_adt::space::SpaceInput;
use cbm_net::fault::{Fault, FaultPlan};
use cbm_store::durable::{self, LogError};
use cbm_store::{
    run, BatchPolicy, DurableConfig, Mode, ObsConfig, ShardConfig, StoreConfig, StoreReport,
    VerifyConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

const EVERY: usize = 80;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Fresh scratch directory per call: proptest cases and parallel test
/// threads must never share a log directory.
fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cbm-durable-it-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_cfg(dir: &Path, snapshot_every: u64) -> DurableConfig {
    DurableConfig {
        log_dir: Some(dir.to_string_lossy().into_owned()),
        snapshot_every,
        recover_from_disk: true,
        resume: false,
        halt_at_boundary: 0,
    }
}

fn cfg(mode: Mode, workers: usize, ops: usize, seed: u64, chaos: FaultPlan) -> StoreConfig {
    StoreConfig {
        workers,
        objects: 16,
        ops_per_worker: ops,
        mode,
        batch: BatchPolicy::Every(4),
        verify: VerifyConfig {
            every_ops: EVERY,
            window_ops: 12,
            sample_every: 1,
            monitor: false,
        },
        seed,
        sharding: ShardConfig::full(),
        chaos,
        obs: ObsConfig::default(),
        durable: DurableConfig::default(),
    }
}

fn counter_gen(objects: u32) -> impl Fn(usize, u64, &mut StdRng) -> SpaceInput<CtInput> + Sync {
    move |_, _, rng| {
        let obj = rng.gen_range(0u32..objects);
        if rng.gen_bool(0.3) {
            SpaceInput::new(obj, CtInput::Read)
        } else {
            SpaceInput::new(obj, CtInput::Add(rng.gen_range(1i64..100)))
        }
    }
}

fn assert_windows_ok(r: &StoreReport) {
    assert!(!r.windows.is_empty(), "no verification windows sampled");
    for w in &r.windows {
        assert!(
            w.result.is_ok(),
            "window {} [{}] failed: {:?}",
            w.window,
            w.criterion,
            w.result
        );
    }
    assert!(r.verified());
}

fn assert_same_final_state(a: &StoreReport, b: &StoreReport, what: &str) {
    let h = a.final_state_hashes[0];
    assert!(
        a.final_state_hashes.iter().all(|&x| x == h),
        "{what}: replicas diverged: {:?}",
        a.final_state_hashes
    );
    assert!(
        b.final_state_hashes.iter().all(|&x| x == h),
        "{what}: twin disagrees: {:?} vs {h:#x}",
        b.final_state_hashes
    );
}

/// Crash `victim` at `crash_e`, recover it at `recover_e` *from its
/// own disk* (rung 1 of the ladder) plus the co-replica delta (rung
/// 2), and require convergence with the fault-free in-memory twin.
fn check_disk_recovery(mode: Mode, victim: usize, crash_e: u64, recover_e: u64, seed: u64) {
    let dir = tmpdir("crash");
    let ops = 4 * EVERY;
    let plan = FaultPlan::new()
        .at(crash_e * EVERY as u64, Fault::Crash(victim))
        .at(recover_e * EVERY as u64, Fault::Recover(victim));
    let mut chaos_cfg = cfg(mode, 3, ops, seed, plan);
    // snapshot_every = 0: never compact, so the victim's replay always
    // walks log records and the replayed_records assertion is exact
    chaos_cfg.durable = durable_cfg(&dir, 0);
    let chaos = run(&Counter, &chaos_cfg, counter_gen(16));
    let free = run(
        &Counter,
        &cfg(mode, 3, ops, seed, FaultPlan::new()),
        counter_gen(16),
    );

    assert_eq!(chaos.total_ops, free.total_ops, "script must resume fully");
    assert_same_final_state(&chaos, &free, "disk-recovery");
    assert_windows_ok(&chaos);
    assert_windows_ok(&free);

    assert_eq!(chaos.chaos.recoveries.len(), 1);
    let rec = &chaos.chaos.recoveries[0];
    assert_eq!(rec.worker, victim);
    assert_eq!((rec.crash_epoch, rec.recover_epoch), (crash_e, recover_e));
    assert!(
        rec.replayed_records > 0,
        "disk replay must reconstruct the crash cut, not the helpers"
    );
    assert!(rec.log_bytes > 0, "the victim's log was non-empty");
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// The tentpole property: restart-from-disk converges to the
    /// fault-free twin across random cuts, seeds, and both modes.
    #[test]
    fn disk_recovery_matches_fault_free_run(
        crash_e in 1u64..=2,
        extra in 1u64..=2,
        seed in 0u64..1_000,
        convergent in proptest::bool::ANY,
    ) {
        let mode = if convergent { Mode::Convergent } else { Mode::Causal };
        check_disk_recovery(mode, 2, crash_e, crash_e + extra, seed);
    }
}

/// Rolling disk recoveries with live compaction: snapshots truncate
/// the log prefix mid-run, and the disk columns (`log_bytes`,
/// `replayed_records`) are deterministic across identical runs.
#[test]
fn rolling_disk_recoveries_with_snapshots_are_deterministic() {
    let e = EVERY as u64;
    let plan = FaultPlan::new()
        .at(e, Fault::Crash(2))
        .at(2 * e, Fault::Recover(2))
        .at(2 * e, Fault::Crash(1))
        .at(3 * e, Fault::Recover(1));
    let make = |dir: &Path| {
        let mut c = cfg(Mode::Convergent, 3, 4 * EVERY, 9, plan.clone());
        c.durable = durable_cfg(dir, 2);
        run(&Counter, &c, counter_gen(16))
    };
    let (da, db) = (tmpdir("rolla"), tmpdir("rollb"));
    let a = make(&da);
    let b = make(&db);
    let free = run(
        &Counter,
        &cfg(Mode::Convergent, 3, 4 * EVERY, 9, FaultPlan::new()),
        counter_gen(16),
    );
    assert_same_final_state(&a, &free, "rolling-disk");
    assert_windows_ok(&a);
    assert_eq!(a.chaos.recoveries.len(), 2);
    assert_eq!(b.chaos.recoveries.len(), 2);
    for (x, y) in a.chaos.recoveries.iter().zip(&b.chaos.recoveries) {
        assert_eq!(x.worker, y.worker);
        assert_eq!(x.replayed_records, y.replayed_records, "replayed_records");
        assert_eq!(x.log_bytes, y.log_bytes, "log_bytes");
        assert_eq!(x.synced_shards, y.synced_shards);
        assert_eq!(x.synced_objects, y.synced_objects);
    }
    let _ = fs::remove_dir_all(&da);
    let _ = fs::remove_dir_all(&db);
}

/// Halt the whole fleet at a sealed boundary, restart it from disk,
/// and require the resumed run to finish byte-identical — state
/// hashes *and* monitor counter totals — to the uninterrupted twin.
fn check_cold_restart(mode: Mode, seed: u64) -> (StoreReport, StoreReport) {
    let dir = tmpdir("cold");
    let ops = 4 * EVERY;
    let mut halted_cfg = cfg(mode, 3, ops, seed, FaultPlan::new());
    halted_cfg.verify.monitor = true;
    // snapshot_every = 4 keeps the halt boundary (2) out of the
    // compaction cadence, so resume replays actual log records
    halted_cfg.durable = durable_cfg(&dir, 4);
    halted_cfg.durable.halt_at_boundary = 2;
    let halted = run(&Counter, &halted_cfg, counter_gen(16));
    assert_eq!(
        halted.total_ops,
        3 * 2 * EVERY as u64,
        "halt must stop the script at the boundary cut"
    );
    assert!(halted.verified(), "{:?}", halted.windows);

    let mut resumed_cfg = halted_cfg.clone();
    resumed_cfg.durable.halt_at_boundary = 0;
    resumed_cfg.durable.resume = true;
    let resumed = run(&Counter, &resumed_cfg, counter_gen(16));

    let mut twin_cfg = cfg(mode, 3, ops, seed, FaultPlan::new());
    twin_cfg.verify.monitor = true;
    let twin = run(&Counter, &twin_cfg, counter_gen(16));

    assert_eq!(resumed.total_ops, twin.total_ops, "script must complete");
    assert_eq!(
        resumed.final_state_hashes, twin.final_state_hashes,
        "cold restart must land on the twin's exact final state"
    );
    assert_windows_ok(&resumed);
    // the sealed monitor counters are seeded back on resume, so the
    // totals cover the whole script exactly once
    assert_eq!(resumed.monitor.ops_checked, twin.monitor.ops_checked);
    assert_eq!(resumed.monitor.folds, twin.monitor.folds);
    assert_eq!(resumed.monitor.violations, 0);
    assert_eq!(twin.monitor.violations, 0);
    // every worker resumed from its own disk: self-helper rows with a
    // non-trivial replay
    assert_eq!(resumed.chaos.recoveries.len(), 3);
    for rec in &resumed.chaos.recoveries {
        assert_eq!(rec.helper, rec.worker, "resume is served from own disk");
        assert!(rec.replayed_records > 0, "worker {}", rec.worker);
        assert!(rec.log_bytes > 0, "worker {}", rec.worker);
    }
    let _ = fs::remove_dir_all(&dir);
    (resumed, twin)
}

#[test]
fn cold_restart_resumes_to_the_twin_state_causal() {
    check_cold_restart(Mode::Causal, 77);
}

#[test]
fn cold_restart_resumes_to_the_twin_state_convergent() {
    check_cold_restart(Mode::Convergent, 78);
}

/// The halt → resume pair itself is deterministic: two independent
/// cold restarts of the same `(config, seed)` produce identical final
/// hashes and monitor totals.
#[test]
fn cold_restart_is_deterministic() {
    let (a, _) = check_cold_restart(Mode::Convergent, 79);
    let (b, _) = check_cold_restart(Mode::Convergent, 79);
    assert_eq!(a.final_state_hashes, b.final_state_hashes);
    assert_eq!(a.monitor.ops_checked, b.monitor.ops_checked);
    assert_eq!(a.monitor.folds, b.monitor.folds);
    for (x, y) in a.chaos.recoveries.iter().zip(&b.chaos.recoveries) {
        assert_eq!(x.replayed_records, y.replayed_records);
        assert_eq!(x.log_bytes, y.log_bytes);
    }
}

/// One uncompacted durable run, recorded once and shared by the
/// corruption cases below: worker 0's full log plus the final state
/// hash its seal carries.
fn recorded_log() -> &'static (Vec<u8>, u64) {
    static BASE: OnceLock<(Vec<u8>, u64)> = OnceLock::new();
    BASE.get_or_init(|| {
        let dir = tmpdir("base");
        let mut c = cfg(Mode::Convergent, 3, 2 * EVERY, 55, FaultPlan::new());
        c.durable = durable_cfg(&dir, 0);
        let r = run(&Counter, &c, counter_gen(16));
        assert!(r.verified());
        let bytes = fs::read(dir.join("worker-0.log")).unwrap();
        assert!(!bytes.is_empty(), "an uncompacted run must leave a log");
        let hash = r.final_state_hashes[0];
        let _ = fs::remove_dir_all(&dir);
        (bytes, hash)
    })
}

/// The pristine log replays to the run's final cut: the last seal is
/// the final drain's boundary seal and the re-hashed states match the
/// report's published hash.
#[test]
fn pristine_log_replays_to_the_final_cut() {
    let (bytes, hash) = recorded_log();
    let dir = tmpdir("pristine");
    fs::write(dir.join("worker-0.log"), bytes).unwrap();
    let rec = durable::recover::<Counter>(&Counter, &dir, 0, 16, Mode::Convergent)
        .expect("pristine log must replay");
    assert_eq!(rec.seal.epoch, 2, "final drain seals n_epochs");
    assert!(rec.seal.boundary);
    assert_eq!(rec.seal.state_hash, *hash);
    assert_eq!(rec.states.len(), 16);
    assert!(rec.replayed_records > 0);
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Corruption hardening: truncate the log at an arbitrary offset,
    /// or flip an arbitrary byte, and recovery either lands on a seal
    /// whose state re-verifies or fails with a typed error — it never
    /// panics, and a seal-less prefix is exactly `NoSeal`.
    #[test]
    fn corrupted_logs_never_install_wrong_state(
        permille in 0u64..1000,
        flip in proptest::bool::ANY,
        xor in 1u64..=255,
    ) {
        let (bytes, _) = recorded_log();
        let off = (bytes.len() - 1) * permille as usize / 1000;
        let mut mauled = bytes.clone();
        if flip {
            mauled[off] ^= xor as u8;
        } else {
            mauled.truncate(off);
        }
        let dir = tmpdir("maul");
        fs::write(dir.join("worker-0.log"), &mauled).unwrap();
        match durable::recover::<Counter>(&Counter, &dir, 0, 16, Mode::Convergent) {
            Ok(rec) => {
                // landed on some intact seal: the arity is right and
                // recover() has already re-verified the state hash
                prop_assert_eq!(rec.states.len(), 16);
                prop_assert!(rec.seal.epoch <= 2);
                prop_assert!(rec.log_bytes <= bytes.len() as u64);
            }
            Err(e) => {
                // typed, descriptive failure — never a panic
                let shown = format!("{e}");
                prop_assert!(!shown.is_empty(), "error must render: {:?}", e);
                let typed = matches!(
                    e,
                    LogError::NoSeal
                        | LogError::StateHash
                        | LogError::Arity
                        | LogError::CorruptRecord { .. }
                        | LogError::CorruptSnapshot
                        | LogError::Io(_)
                );
                prop_assert!(typed, "unexpected error shape: {:?}", e);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
