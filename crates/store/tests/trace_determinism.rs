//! The flight-recorder determinism contract (`docs/OBSERVABILITY.md`):
//!
//! * the **logical timeline** (the JSONL export) is byte-identical
//!   across runs at the same `(config, seed)` — under full and partial
//!   replication, and with a fault plan active;
//! * every `deliver` span's vector clock pointwise dominates its
//!   matching `batch_flush` span's clock (the flush half records the
//!   sender's knowledge *before* stamping, the deliver half the
//!   envelope's stamped edge matrix).

use cbm_adt::register::{RegInput, Register};
use cbm_adt::space::SpaceInput;
use cbm_obs::export::jsonl;
use cbm_obs::{FlightRecord, SpanKind};
use cbm_store::{
    profile, run, BatchPolicy, DurableConfig, Mode, ObsConfig, ShardConfig, StoreConfig,
    VerifyConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// A small traced config: exhaustive envelope spans (stride 1) and a
/// cap far above the span volume, so nothing is sampled away or
/// truncated and the whole timeline takes part in the byte comparison.
fn cfg(workers: usize, rf: usize, mode: Mode, batch: usize, seed: u64) -> StoreConfig {
    StoreConfig {
        workers,
        objects: 16,
        ops_per_worker: 600,
        mode,
        batch: BatchPolicy::Every(batch),
        verify: VerifyConfig {
            every_ops: 200,
            window_ops: 16,
            sample_every: 1,
            monitor: false,
        },
        seed,
        sharding: if rf == 0 {
            ShardConfig::full()
        } else {
            ShardConfig::rf(rf)
        },
        chaos: cbm_net::fault::FaultPlan::new(),
        obs: ObsConfig {
            trace: true,
            op_sample_every: 16,
            batch_sample_every: 1,
            epoch_cap: 1_000_000,
            keep_epochs: 0,
        },
        durable: DurableConfig::default(),
    }
}

fn traced(cfg: &StoreConfig) -> FlightRecord {
    let report = run(&Register, cfg, |_, _, rng: &mut StdRng| {
        let obj = rng.gen_range(0u32..16);
        if rng.gen_bool(0.5) {
            SpaceInput::new(obj, RegInput::Read)
        } else {
            SpaceInput::new(obj, RegInput::Write(rng.gen_range(1u64..1_000)))
        }
    });
    assert!(report.verified(), "{:?}", report.windows);
    report.trace.expect("tracing was enabled")
}

#[test]
fn jsonl_byte_identical_full_replication() {
    let c = cfg(4, 0, Mode::Causal, 4, 11);
    assert_eq!(jsonl(&traced(&c)), jsonl(&traced(&c)));
}

#[test]
fn jsonl_byte_identical_rf2() {
    let c = cfg(4, 2, Mode::Convergent, 4, 12);
    assert_eq!(jsonl(&traced(&c)), jsonl(&traced(&c)));
}

#[test]
fn jsonl_byte_identical_under_chaos() {
    // chaos runs trace automatically; the fault schedule is part of
    // the deterministic timeline (fault spans key on virtual tick)
    let mut c = cfg(4, 0, Mode::Causal, 4, 13);
    c.ops_per_worker = 2_000;
    c.verify.every_ops = 500;
    c.chaos = profile("lossy-mesh", 4, 500).expect("known profile");
    c.obs.trace = false; // exercise the automatic chaos path
    assert_eq!(jsonl(&traced(&c)), jsonl(&traced(&c)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn deliver_clock_dominates_matching_flush_clock(
        seed in 0u64..=500,
        workers in 2usize..=4,
        batch in 1usize..=4,
        convergent in proptest::bool::ANY,
    ) {
        let mode = if convergent { Mode::Convergent } else { Mode::Causal };
        let rec = traced(&cfg(workers, 0, mode, batch, seed));
        prop_assert_eq!(rec.dropped, 0, "cap must not break flush/deliver pairing");
        // flush(worker=s, peer=r, logical=seq)  <->
        // deliver(worker=r, peer=s, logical=seq): seqs are per-edge,
        // so the triple identifies the envelope
        let flushes: HashMap<(u64, u64, u64), &cbm_obs::Span> = rec
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::BatchFlush)
            .map(|s| ((u64::from(s.worker), s.peer as u64, s.logical), s))
            .collect();
        let mut matched = 0usize;
        for d in rec.spans.iter().filter(|s| s.kind == SpanKind::Deliver) {
            let key = (d.peer as u64, u64::from(d.worker), d.logical);
            let f = flushes
                .get(&key)
                .expect("every delivered envelope was flushed");
            prop_assert_eq!(d.vc.len(), f.vc.len());
            prop_assert!(!d.vc.is_empty(), "deliver spans carry the edge matrix");
            for (i, (dv, fv)) in d.vc.iter().zip(f.vc.iter()).enumerate() {
                prop_assert!(
                    dv >= fv,
                    "deliver clock [{}] = {} < flush clock {} for envelope {:?}",
                    i, dv, fv, key
                );
            }
            matched += 1;
        }
        prop_assert!(matched > 0, "workload produced no deliveries");
    }
}
