//! Chaos-hardened engine: fault-injected live runs, crash/recovery
//! state transfer, and the determinism contract.
//!
//! The headline property (the proptest below): a run that crashes a
//! worker at a random epoch and recovers it later converges to **the
//! same final object space** as the fault-free run of the same seed,
//! in both modes — the recovery protocol (cut snapshot + frontier +
//! missed-envelope replay + script resumption) loses nothing and
//! duplicates nothing. The counter space makes the comparison exact in
//! causal mode too: counter updates commute, so any causally
//! consistent delivery of the same op multiset folds to the same sums.

use cbm_adt::counter::{Counter, CtInput};
use cbm_adt::register::{RegInput, Register};
use cbm_adt::space::SpaceInput;
use cbm_net::fault::{Fault, FaultPlan};
use cbm_store::{
    profile, run, BatchPolicy, DurableConfig, Mode, ObsConfig, ShardConfig, StoreConfig,
    StoreReport, VerifyConfig, PROFILE_NAMES,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

const EVERY: usize = 80;

fn cfg(mode: Mode, workers: usize, ops: usize, seed: u64, chaos: FaultPlan) -> StoreConfig {
    StoreConfig {
        workers,
        objects: 16,
        ops_per_worker: ops,
        mode,
        batch: BatchPolicy::Every(4),
        verify: VerifyConfig {
            every_ops: EVERY,
            window_ops: 12,
            sample_every: 1,
            monitor: false,
        },
        seed,
        sharding: ShardConfig::full(),
        chaos,
        obs: ObsConfig::default(),
        durable: DurableConfig::default(),
    }
}

fn counter_gen(objects: u32) -> impl Fn(usize, u64, &mut StdRng) -> SpaceInput<CtInput> + Sync {
    move |_, _, rng| {
        let obj = rng.gen_range(0u32..objects);
        if rng.gen_bool(0.3) {
            SpaceInput::new(obj, CtInput::Read)
        } else {
            SpaceInput::new(obj, CtInput::Add(rng.gen_range(1i64..100)))
        }
    }
}

fn reg_gen(objects: u32) -> impl Fn(usize, u64, &mut StdRng) -> SpaceInput<RegInput> + Sync {
    move |_, _, rng| {
        let obj = rng.gen_range(0u32..objects);
        if rng.gen_bool(0.5) {
            SpaceInput::new(obj, RegInput::Read)
        } else {
            SpaceInput::new(obj, RegInput::Write(rng.gen_range(1u64..1000)))
        }
    }
}

fn assert_windows_ok(r: &StoreReport) {
    assert!(!r.windows.is_empty(), "no verification windows sampled");
    for w in &r.windows {
        assert!(
            w.result.is_ok(),
            "window {} [{}] failed: {:?}",
            w.window,
            w.criterion,
            w.result
        );
    }
    assert!(r.verified());
}

fn assert_same_final_state(a: &StoreReport, b: &StoreReport, what: &str) {
    let h = a.final_state_hashes[0];
    assert!(
        a.final_state_hashes.iter().all(|&x| x == h),
        "{what}: chaos-run replicas diverged: {:?}",
        a.final_state_hashes
    );
    assert!(
        b.final_state_hashes.iter().all(|&x| x == h),
        "{what}: fault-free twin disagrees: {:?} vs {h:#x}",
        b.final_state_hashes
    );
}

/// Crash worker `victim` at epoch `crash_e`, recover at `recover_e`,
/// and require byte-identical convergence with the fault-free twin.
fn check_crash_recovery(mode: Mode, victim: usize, crash_e: u64, recover_e: u64, seed: u64) {
    let ops = 4 * EVERY; // 4 fault-free epochs; the span stretches the run
    let plan = FaultPlan::new()
        .at(crash_e * EVERY as u64, Fault::Crash(victim))
        .at(recover_e * EVERY as u64, Fault::Recover(victim));
    let chaos = run(&Counter, &cfg(mode, 3, ops, seed, plan), counter_gen(16));
    let free = run(
        &Counter,
        &cfg(mode, 3, ops, seed, FaultPlan::new()),
        counter_gen(16),
    );

    assert_eq!(chaos.total_ops, free.total_ops, "script must resume fully");
    assert_same_final_state(&chaos, &free, "crash-recovery");
    assert_windows_ok(&chaos);
    assert_windows_ok(&free);

    // exactly one recovery, through a live helper, replaying the
    // envelopes the victim missed
    assert_eq!(chaos.chaos.recoveries.len(), 1);
    let rec = &chaos.chaos.recoveries[0];
    assert_eq!(rec.worker, victim);
    assert_eq!((rec.crash_epoch, rec.recover_epoch), (crash_e, recover_e));
    assert_ne!(rec.helper, victim);
    assert!(
        rec.synced_shards > 0,
        "recovery must install every hosted shard's state"
    );
    assert!(rec.synced_objects > 0);

    // at least one window spans the recovery drain and still verifies
    let spanning: Vec<_> = chaos.windows.iter().filter(|w| w.spans_recovery).collect();
    assert!(!spanning.is_empty(), "no window spans the recovery");
    assert!(spanning.iter().all(|w| w.result.is_ok()));
    // windows during the outage carry the victim as a crashed part
    assert!(chaos.windows.iter().any(|w| w.crashed_workers == 1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// The satellite property: crash at a random epoch + recovery
    /// converges to the fault-free final state, in both modes.
    #[test]
    fn crash_recovery_matches_fault_free_run(
        crash_e in 1u64..=2,
        extra in 1u64..=2,
        seed in 0u64..1_000,
        convergent in proptest::bool::ANY,
    ) {
        let mode = if convergent { Mode::Convergent } else { Mode::Causal };
        check_crash_recovery(mode, 2, crash_e, crash_e + extra, seed);
    }
}

/// Crash/recovery under partial replication (rf = 2 of 4 workers):
/// every hosted shard is re-installed from live co-replica helpers,
/// and the run ends byte-identical — replica by replica — to its
/// fault-free twin (cross-replica equality does not apply: partial
/// replicas host different shards).
fn check_sharded_crash_recovery(
    mode: Mode,
    victim: usize,
    crash_e: u64,
    recover_e: u64,
    seed: u64,
    placement_seed: u64,
) {
    let ops = 4 * EVERY;
    let plan = FaultPlan::new()
        .at(crash_e * EVERY as u64, Fault::Crash(victim))
        .at(recover_e * EVERY as u64, Fault::Recover(victim));
    let mut chaos_cfg = cfg(mode, 4, ops, seed, plan);
    chaos_cfg.sharding = ShardConfig {
        shards: 0,
        replication: 2,
        placement_seed,
        locality: 0,
    };
    let mut free_cfg = cfg(mode, 4, ops, seed, FaultPlan::new());
    free_cfg.sharding = chaos_cfg.sharding;

    let chaos = run(&Counter, &chaos_cfg, counter_gen(16));
    let free = run(&Counter, &free_cfg, counter_gen(16));

    assert_eq!(chaos.total_ops, free.total_ops, "script must resume fully");
    assert_eq!(
        chaos.final_state_hashes, free.final_state_hashes,
        "every replica must end byte-identical to its fault-free twin"
    );
    assert_windows_ok(&chaos);
    assert_windows_ok(&free);
    assert!(chaos.windows.iter().all(|w| w.shard.is_some()));

    assert_eq!(chaos.chaos.recoveries.len(), 1);
    let rec = &chaos.chaos.recoveries[0];
    assert_eq!(rec.worker, victim);
    assert!(
        rec.synced_shards > 0,
        "the victim hosts shards; recovery must re-install them"
    );
    let spanning: Vec<_> = chaos.windows.iter().filter(|w| w.spans_recovery).collect();
    assert!(!spanning.is_empty(), "no window spans the recovery");
    assert!(spanning.iter().all(|w| w.result.is_ok()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// The sharded satellite property: crash/recovery at rf=2
    /// converges to the fault-free twin across random victims, spans,
    /// seeds, and placements, in both modes.
    #[test]
    fn sharded_crash_recovery_matches_fault_free_run(
        victim in 1usize..=3,
        crash_e in 1u64..=2,
        extra in 1u64..=2,
        seed in 0u64..1_000,
        placement_seed in 0u64..8,
        convergent in proptest::bool::ANY,
    ) {
        let mode = if convergent { Mode::Convergent } else { Mode::Causal };
        check_sharded_crash_recovery(mode, victim, crash_e, crash_e + extra, seed, placement_seed);
    }
}

#[test]
fn crash_of_a_finished_worker_still_recovers() {
    // the victim completes its whole script in epoch 0, then crashes:
    // the schedule must stretch the run through the recovery boundary
    // so the worker rejoins (and the final convergence check sees a
    // synced replica, not a stale one)
    let e = EVERY as u64;
    let plan = FaultPlan::new()
        .at(e, Fault::Crash(2))
        .at(2 * e, Fault::Recover(2));
    let chaos = run(
        &Counter,
        &cfg(Mode::Convergent, 3, EVERY, 13, plan),
        counter_gen(16),
    );
    let free = run(
        &Counter,
        &cfg(Mode::Convergent, 3, EVERY, 13, FaultPlan::new()),
        counter_gen(16),
    );
    assert_eq!(chaos.chaos.recoveries.len(), 1);
    assert_same_final_state(&chaos, &free, "finished-worker crash");
    assert!(chaos.verified());
}

#[test]
fn rolling_crashes_recover_in_sequence() {
    let e = EVERY as u64;
    let plan = FaultPlan::new()
        .at(e, Fault::Crash(2))
        .at(2 * e, Fault::Recover(2))
        .at(2 * e, Fault::Crash(1))
        .at(3 * e, Fault::Recover(1));
    let chaos = run(
        &Counter,
        &cfg(Mode::Convergent, 3, 4 * EVERY, 9, plan),
        counter_gen(16),
    );
    let free = run(
        &Counter,
        &cfg(Mode::Convergent, 3, 4 * EVERY, 9, FaultPlan::new()),
        counter_gen(16),
    );
    assert_same_final_state(&chaos, &free, "rolling-crashes");
    assert_windows_ok(&chaos);
    assert_eq!(chaos.chaos.recoveries.len(), 2);
}

#[test]
fn link_fault_profiles_verify_windows_in_both_modes() {
    for name in [
        "lossy-mesh",
        "duplicate-storm",
        "latency-spike",
        "partition-flap",
    ] {
        for mode in [Mode::Causal, Mode::Convergent] {
            let plan = profile(name, 3, EVERY).expect(name);
            let r = run(&Register, &cfg(mode, 3, 3 * EVERY, 21, plan), reg_gen(16));
            assert_windows_ok(&r);
            assert!(r.chaos.active);
            match name {
                "lossy-mesh" => {
                    assert!(r.chaos.drops > 0, "{name}: nothing dropped");
                    assert!(r.chaos.repairs > 0, "{name}: drops need repairs");
                }
                "duplicate-storm" => assert!(r.chaos.dups > 0, "{name}: nothing duplicated"),
                "latency-spike" => assert!(r.chaos.delayed > 0, "{name}: nothing delayed"),
                "partition-flap" => {
                    assert!(r.chaos.parked > 0, "{name}: nothing parked");
                    assert!(
                        r.chaos.released > 0,
                        "{name}: heal must release parked sends"
                    );
                }
                _ => unreachable!(),
            }
        }
    }
}

#[test]
fn every_profile_reproduces_counts_exactly() {
    for name in PROFILE_NAMES {
        let plan = profile(name, 3, EVERY).expect(name);
        let make = || {
            run(
                &Register,
                &cfg(Mode::Convergent, 3, 3 * EVERY, 33, plan.clone()),
                reg_gen(16),
            )
        };
        let a = make();
        let b = make();
        assert_windows_ok(&a);
        assert_eq!(a.msgs_sent, b.msgs_sent, "{name}: msgs_sent");
        // note: bytes_sent is *not* compared — delta-encoded knowledge
        // headers size by how much changed on an edge since its
        // previous envelope, which depends on delivery interleaving;
        // the deterministic contract covers message/batch/payload
        // counts, not byte totals (see docs/SHARDING.md)
        assert_eq!(a.batches_sent, b.batches_sent, "{name}: batches_sent");
        assert_eq!(a.payloads_sent, b.payloads_sent, "{name}: payloads_sent");
        assert_eq!(a.chaos.drops, b.chaos.drops, "{name}: drops");
        assert_eq!(a.chaos.dups, b.chaos.dups, "{name}: dups");
        assert_eq!(a.chaos.nacks, b.chaos.nacks, "{name}: nacks");
        assert_eq!(a.chaos.repairs, b.chaos.repairs, "{name}: repairs");
        assert_eq!(
            a.chaos.repaired_batches, b.chaos.repaired_batches,
            "{name}: repaired_batches"
        );
        assert_eq!(
            a.chaos.dropped_per_node, b.chaos.dropped_per_node,
            "{name}: dropped_per_node"
        );
        // note: register *states* are not compared — Lamport timestamps
        // depend on delivery interleaving, so the arbitration winner may
        // legitimately differ between runs; state identity is asserted
        // with the commutative counter space elsewhere
        for (x, y) in a.chaos.recoveries.iter().zip(&b.chaos.recoveries) {
            assert_eq!(x.synced_shards, y.synced_shards, "{name}: synced shards");
            assert_eq!(x.synced_objects, y.synced_objects, "{name}: synced objects");
        }
    }
}

#[test]
fn mixed_chaos_survives_with_counter_state_identity() {
    let plan = profile("mixed-chaos", 3, EVERY).unwrap();
    let chaos = run(
        &Counter,
        &cfg(Mode::Convergent, 3, 4 * EVERY, 5, plan),
        counter_gen(16),
    );
    let free = run(
        &Counter,
        &cfg(Mode::Convergent, 3, 4 * EVERY, 5, FaultPlan::new()),
        counter_gen(16),
    );
    assert_windows_ok(&chaos);
    assert_same_final_state(&chaos, &free, "mixed-chaos");
    assert!(chaos.chaos.drops > 0 && chaos.chaos.dups > 0);
    assert_eq!(chaos.chaos.recoveries.len(), 1);
}
