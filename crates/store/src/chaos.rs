//! Chaos orchestration for the live engine: fault schedules projected
//! onto the workers' deterministic timelines, crash/recovery spans,
//! helper election, and the named fault profiles the chaos loadgen
//! sweeps.
//!
//! ## Timelines
//!
//! A [`FaultPlan`]'s event times are **virtual ticks**: worker-local
//! operation counts aligned so that tick `e * every_ops` is the
//! rendezvous opening epoch `e` (every worker passes each boundary at
//! the same barrier, so boundary events are globally agreed even
//! though wall-clock time is not). Link-level faults (drop, dup,
//! delay, partitions, skew) may fire at any tick — each endpoint
//! applies them when its own counter passes the tick. `Crash` and
//! `Recover` must fall **on epoch boundaries**: a crash is a clean cut
//! (the crashing worker completes the boundary drain first), and
//! recovery anchors on another drain — so the state transfer is a
//! plain install of drained shard states plus a frontier reset, never
//! a full resynchronisation (`docs/CHAOS.md`).
//!
//! ## Schedule derivation
//!
//! [`ChaosSchedule::build`] validates a plan against a config and
//! precomputes everything every worker must agree on without
//! communicating: who is crashed in which epoch, how many operations
//! each worker issues per epoch (a crashed worker pauses its script
//! and *resumes* it after recovery, so the run stretches by extra
//! epochs until everyone has issued their full quota — the chaos run
//! executes exactly the op multiset of its fault-free twin), and who
//! serves each recovery. Recovery state moves **per shard** from live
//! co-replicas at the recovery drain ([`ChaosSchedule::shard_helper`];
//! `docs/SHARDING.md`): the build also validates that every shard of a
//! crashing worker has an eligible helper and that every shard keeps a
//! live replica in every epoch (routed reads must always have a
//! server). [`CrashSpan::helper`] remains the span's deterministic
//! anchor worker for statistics.

use crate::config::StoreConfig;
use cbm_net::fault::{Fault, FaultEvent, FaultPlan};
use cbm_net::NodeId;

/// One crash span: the worker is down from the start of `crash_epoch`
/// (exclusive of that boundary's drain, which it completes) to the
/// start of `recover_epoch` (where it rejoins via state transfer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpan {
    /// Crashing worker.
    pub worker: NodeId,
    /// Epoch whose opening drain is the consistent cut.
    pub crash_epoch: u64,
    /// Epoch whose opening drain performs the state transfer.
    pub recover_epoch: u64,
    /// The span's anchor worker for statistics: the smallest id alive
    /// throughout the span. The actual transfer is served per shard by
    /// [`ChaosSchedule::shard_helper`]-elected co-replicas (at full
    /// replication those all resolve to live workers including this
    /// one).
    pub helper: NodeId,
}

/// A [`FaultPlan`] validated against a [`StoreConfig`] and projected
/// onto epochs (see module docs).
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    /// Operations per epoch (the rendezvous stride).
    pub every_ops: usize,
    /// Total epochs the run executes (≥ the fault-free epoch count;
    /// crash spans stretch it until every worker finishes its script).
    pub n_epochs: u64,
    /// All crash spans, in crash-epoch order.
    pub spans: Vec<CrashSpan>,
    /// The plan's non-crash events (link faults), times in virtual
    /// ticks; each worker replays these against its own endpoint.
    pub link_plan: FaultPlan,
    /// Operations worker `w` issues in epoch `e`
    /// (`ops_in_epoch[w][e]`; 0 while crashed or after finishing).
    pub ops_in_epoch: Vec<Vec<usize>>,
}

impl ChaosSchedule {
    /// Derive and validate the schedule for `cfg`. Panics on an
    /// invalid plan (misaligned or unmatched crash events, no live
    /// helper, faults naming unknown workers): a chaos plan is test
    /// infrastructure, and a bad one is a bug in the harness, not a
    /// runtime condition.
    pub fn build(cfg: &StoreConfig) -> Self {
        let n = cfg.workers.max(1);
        let every = cfg.verify.every_ops;
        assert!(
            cfg.chaos.is_empty() || every > 0,
            "chaos plans need rendezvous: set verify.every_ops > 0"
        );
        let every = if every > 0 {
            every
        } else {
            cfg.ops_per_worker.max(1)
        };

        // split crash/recover from link faults
        let mut link_plan = FaultPlan::new();
        let mut crash_marks: Vec<(u64, bool, NodeId)> = Vec::new(); // (epoch, is_crash, worker)
        for FaultEvent { at, fault } in cfg.chaos.events() {
            match fault {
                Fault::Crash(p) | Fault::Recover(p) => {
                    assert!(
                        *p < n,
                        "crash fault names worker {p} outside cluster of {n}"
                    );
                    assert!(
                        *at % every as u64 == 0,
                        "crash/recover at tick {at} is not an epoch boundary (every_ops {every})"
                    );
                    crash_marks.push((*at / every as u64, matches!(fault, Fault::Crash(_)), *p));
                }
                f => link_plan.push(*at, f.clone()),
            }
        }
        // recoveries sort before crashes at the same boundary, so a
        // worker may recover and another (or even the same one) crash
        // at one drain
        crash_marks.sort_by_key(|&(e, is_crash, _)| (e, is_crash));

        // pair crashes with recoveries per worker
        let mut open: Vec<Option<u64>> = vec![None; n];
        let mut raw_spans: Vec<(NodeId, u64, u64)> = Vec::new();
        for (e, is_crash, p) in crash_marks {
            if is_crash {
                assert!(
                    open[p].is_none(),
                    "worker {p} crashes twice without recovering"
                );
                assert!(
                    e > 0,
                    "worker {p} cannot crash before the first epoch completes"
                );
                open[p] = Some(e);
            } else {
                let c = open[p]
                    .take()
                    .unwrap_or_else(|| panic!("worker {p} recovers at epoch {e} without a crash"));
                assert!(e > c, "worker {p} must recover strictly after crashing");
                raw_spans.push((p, c, e));
            }
        }
        for (p, o) in open.iter().enumerate() {
            assert!(o.is_none(), "worker {p} crashes and never recovers");
        }

        // liveness per epoch (unbounded query via spans)
        let crashed_at =
            |w: NodeId, e: u64| raw_spans.iter().any(|&(p, c, r)| p == w && e >= c && e < r);

        // helper per span: smallest id alive throughout [crash, recover]
        let mut spans: Vec<CrashSpan> = raw_spans
            .iter()
            .map(|&(worker, crash_epoch, recover_epoch)| {
                let helper = (0..n)
                    .find(|&h| {
                        h != worker && (crash_epoch..=recover_epoch).all(|e| !crashed_at(h, e))
                    })
                    .unwrap_or_else(|| {
                        panic!(
                            "no live helper for worker {worker} across epochs \
                             {crash_epoch}..={recover_epoch}"
                        )
                    });
                CrashSpan {
                    worker,
                    crash_epoch,
                    recover_epoch,
                    helper,
                }
            })
            .collect();
        spans.sort_by_key(|s| (s.crash_epoch, s.worker));

        // per-worker per-epoch op counts: crashed workers pause their
        // script and resume after recovery; the run stretches until
        // everyone has issued ops_per_worker and every span is closed
        let last_recover = spans.iter().map(|s| s.recover_epoch).max().unwrap_or(0);
        let mut ops_in_epoch: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut issued = vec![0usize; n];
        let mut e = 0u64;
        loop {
            let all_done = issued.iter().all(|&i| i >= cfg.ops_per_worker);
            // strictly past the last recovery: the drain opening epoch
            // `recover_epoch` performs the state transfer, so that
            // boundary must be an executed epoch even when the
            // crashed worker already finished its script
            if all_done && e > last_recover && e > 0 {
                break;
            }
            for w in 0..n {
                let take = if crashed_at(w, e) {
                    0
                } else {
                    (cfg.ops_per_worker - issued[w]).min(every)
                };
                issued[w] += take;
                ops_in_epoch[w].push(take);
            }
            e += 1;
            assert!(
                e <= last_recover + (cfg.ops_per_worker / every.max(1)) as u64 + 2,
                "chaos schedule failed to terminate (unrecovered worker?)"
            );
        }

        let sched = ChaosSchedule {
            every_ops: every,
            n_epochs: e,
            spans,
            link_plan,
            ops_in_epoch,
        };

        // sharding-aware liveness: recovery is served per shard by
        // live co-replicas, and routed reads need a live replica per
        // shard in every epoch — a plan that cannot satisfy either is
        // harness misconfiguration, caught here
        if !sched.spans.is_empty() {
            let map = crate::shard::ShardMap::build(cfg);
            for span in &sched.spans {
                for &s in map.hosted(span.worker) {
                    assert!(
                        sched.shard_helper(span, map.replicas(s)).is_some(),
                        "no live co-replica can serve shard {s} of worker {} at its \
                         recovery (epoch {}); raise the replication factor or move \
                         the crash span",
                        span.worker,
                        span.recover_epoch
                    );
                }
            }
            for e in 0..sched.n_epochs {
                for s in 0..map.shards() {
                    assert!(
                        map.replicas(s).iter().any(|&q| !sched.crashed_at(q, e)),
                        "shard {s} has no live replica in epoch {e}: reads could \
                         not route and the shard would stall"
                    );
                }
            }
        }
        sched
    }

    /// The live co-replica elected to ship one shard's state for a
    /// recovery: the first of `replicas` that is not the recovering
    /// worker, was live through the epoch preceding the recovery drain
    /// (so its shard state at that drain is complete — a replica that
    /// crashed *earlier* and already recovered qualifies), and is not
    /// itself mid-recovery at the same boundary. A replica crashing
    /// *at* the recovery boundary still qualifies: it completes the
    /// boundary drain, serves, then stops.
    pub fn shard_helper(&self, span: &CrashSpan, replicas: &[NodeId]) -> Option<NodeId> {
        replicas.iter().copied().find(|&h| {
            h != span.worker
                && !self.crashed_at(h, span.recover_epoch.saturating_sub(1))
                && !self
                    .spans
                    .iter()
                    .any(|s| s.worker == h && s.recover_epoch == span.recover_epoch)
        })
    }

    /// Is `w` crashed during epoch `e`?
    pub fn crashed_at(&self, w: NodeId, e: u64) -> bool {
        self.spans
            .iter()
            .any(|s| s.worker == w && e >= s.crash_epoch && e < s.recover_epoch)
    }

    /// Operations worker `w` issues in epoch `e`.
    pub fn ops_of(&self, w: NodeId, e: u64) -> usize {
        self.ops_in_epoch[w].get(e as usize).copied().unwrap_or(0)
    }

    /// Crash spans whose cut is the drain opening epoch `e`.
    pub fn crashes_at(&self, e: u64) -> impl Iterator<Item = &CrashSpan> {
        self.spans.iter().filter(move |s| s.crash_epoch == e)
    }

    /// Crash spans whose recovery transfer runs at the drain opening
    /// epoch `e`.
    pub fn recoveries_at(&self, e: u64) -> impl Iterator<Item = &CrashSpan> {
        self.spans.iter().filter(move |s| s.recover_epoch == e)
    }

    /// Does any chaos dimension apply to this run?
    pub fn is_active(&self) -> bool {
        !self.spans.is_empty() || !self.link_plan.is_empty()
    }

    /// Can this plan make a fast-path envelope miss a drain (drops,
    /// blocked links, or crash suppression)? Only then can a drain
    /// nack arrive, so only then is the epoch repair log worth
    /// retaining — duplication/latency-only plans keep the fault-free
    /// hot path.
    pub fn can_lose(&self) -> bool {
        !self.spans.is_empty()
            || self.link_plan.events().iter().any(|e| {
                matches!(
                    e.fault,
                    Fault::LinkDrop { .. }
                        | Fault::DropAll { .. }
                        | Fault::Partition { .. }
                        | Fault::PartitionOneWay { .. }
                        | Fault::BlockLink { .. }
                )
            })
    }
}

/// Names of the built-in live-engine fault profiles, the axis the
/// chaos loadgen sweeps (see `docs/CHAOS.md` for prose descriptions).
pub const PROFILE_NAMES: &[&str] = &[
    "lossy-mesh",
    "duplicate-storm",
    "latency-spike",
    "partition-flap",
    "crash-recover",
    "rolling-crashes",
    "mixed-chaos",
];

/// Build a named fault profile for a cluster of `workers` with the
/// given rendezvous stride. Returns `None` for unknown names.
///
/// Profiles are parameterised by the stride so crash events land on
/// epoch boundaries whatever the configuration; every plan recovers
/// every crashed worker, keeps worker 0 alive throughout (a helper
/// always exists), and heals nothing silently — what the profile
/// injects stays in force unless the plan says otherwise.
pub fn profile(name: &str, workers: usize, every_ops: usize) -> Option<FaultPlan> {
    let n = workers.max(2);
    let e = every_ops as u64;
    let plan = match name {
        // every link loses 5% of fast-path envelopes, all run long
        "lossy-mesh" => FaultPlan::new().at(1, Fault::DropAll { prob: 0.05 }),
        // every link delivers 25% of envelopes twice
        "duplicate-storm" => FaultPlan::new().at(1, Fault::DupAll { prob: 0.25 }),
        // a global latency spike through the middle of epoch 0, healed
        // before epoch 1: held-back envelopes release on later ops
        "latency-spike" => FaultPlan::new()
            .at(
                e / 4,
                Fault::DelayAll {
                    extra: (every_ops / 8).max(1) as u64,
                },
            )
            .at(3 * e / 4, Fault::DelayAll { extra: 0 }),
        // the cluster splits mid-epoch and heals within it, twice:
        // parked envelopes release on heal (park-and-release)
        "partition-flap" => {
            let side: Vec<NodeId> = (0..n / 2).collect();
            FaultPlan::new()
                .at(e / 4, Fault::Partition { side: side.clone() })
                .at(3 * e / 4, Fault::HealAll)
                .at(e + e / 4, Fault::Partition { side })
                .at(e + 3 * e / 4, Fault::HealAll)
        }
        // the last worker dies at the first boundary and rejoins two
        // epochs later via state transfer
        "crash-recover" => FaultPlan::new()
            .at(e, Fault::Crash(n - 1))
            .at(3 * e, Fault::Recover(n - 1)),
        // consecutive single-worker outages (needs ≥ 3 workers to keep
        // a helper alive; with 2 it degrades to crash-recover)
        "rolling-crashes" => {
            if n >= 3 {
                FaultPlan::new()
                    .at(e, Fault::Crash(n - 1))
                    .at(2 * e, Fault::Recover(n - 1))
                    .at(2 * e, Fault::Crash(n - 2))
                    .at(3 * e, Fault::Recover(n - 2))
            } else {
                FaultPlan::new()
                    .at(e, Fault::Crash(n - 1))
                    .at(2 * e, Fault::Recover(n - 1))
            }
        }
        // loss, duplication, a crash span, and a latency spike at once
        "mixed-chaos" => FaultPlan::new()
            .at(1, Fault::DropAll { prob: 0.02 })
            .at(1, Fault::DupAll { prob: 0.10 })
            .at(e, Fault::Crash(n - 1))
            .at(2 * e, Fault::Recover(n - 1))
            .at(
                2 * e + e / 2,
                Fault::DelayAll {
                    extra: (every_ops / 16).max(1) as u64,
                },
            )
            .at(3 * e, Fault::DelayAll { extra: 0 }),
        _ => return None,
    };
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{
        BatchPolicy, DurableConfig, Mode, ObsConfig, ShardConfig, StoreConfig, VerifyConfig,
    };

    fn cfg(workers: usize, ops: usize, every: usize, chaos: FaultPlan) -> StoreConfig {
        StoreConfig {
            workers,
            objects: 8,
            ops_per_worker: ops,
            mode: Mode::Causal,
            batch: BatchPolicy::Every(4),
            verify: VerifyConfig {
                every_ops: every,
                window_ops: 8,
                sample_every: 1,
                monitor: false,
            },
            seed: 1,
            sharding: ShardConfig::full(),
            chaos,
            obs: ObsConfig::default(),
            durable: DurableConfig::default(),
        }
    }

    #[test]
    fn fault_free_schedule_matches_op_arithmetic() {
        let s = ChaosSchedule::build(&cfg(3, 400, 100, FaultPlan::new()));
        assert_eq!(s.n_epochs, 4);
        assert!(!s.is_active());
        for w in 0..3 {
            assert_eq!(s.ops_in_epoch[w], vec![100; 4]);
        }
    }

    #[test]
    fn partial_last_epoch() {
        let s = ChaosSchedule::build(&cfg(2, 250, 100, FaultPlan::new()));
        assert_eq!(s.n_epochs, 3);
        assert_eq!(s.ops_in_epoch[0], vec![100, 100, 50]);
    }

    #[test]
    fn crash_span_stretches_the_run_and_resumes_the_script() {
        let plan = FaultPlan::new()
            .at(100, Fault::Crash(1))
            .at(300, Fault::Recover(1));
        let s = ChaosSchedule::build(&cfg(2, 400, 100, plan));
        assert_eq!(s.spans.len(), 1);
        let span = s.spans[0];
        assert_eq!(
            (span.worker, span.crash_epoch, span.recover_epoch),
            (1, 1, 3)
        );
        assert_eq!(span.helper, 0);
        // worker 1 pauses two epochs, resumes, and still issues all 400
        assert_eq!(s.ops_in_epoch[1], vec![100, 0, 0, 100, 100, 100]);
        assert_eq!(s.ops_in_epoch[0], vec![100, 100, 100, 100, 0, 0]);
        assert_eq!(s.n_epochs, 6);
        assert!(s.crashed_at(1, 1) && s.crashed_at(1, 2));
        assert!(!s.crashed_at(1, 3));
        assert_eq!(s.recoveries_at(3).count(), 1);
        assert_eq!(s.crashes_at(1).count(), 1);
    }

    #[test]
    fn recovery_at_the_natural_end_still_gets_an_epoch() {
        // the crashing worker has already finished its script before
        // the crash: the run must still stretch past the recovery
        // boundary so the state transfer actually executes
        let plan = FaultPlan::new()
            .at(100, Fault::Crash(1))
            .at(200, Fault::Recover(1));
        let s = ChaosSchedule::build(&cfg(3, 100, 100, plan));
        assert_eq!(s.spans[0].recover_epoch, 2);
        assert!(
            s.n_epochs > s.spans[0].recover_epoch,
            "recovery boundary must be an executed epoch (n_epochs {})",
            s.n_epochs
        );
        assert!(!s.crashed_at(1, s.n_epochs - 1));
    }

    #[test]
    fn helper_skips_workers_crashed_in_overlapping_spans() {
        let plan = FaultPlan::new()
            .at(100, Fault::Crash(0))
            .at(200, Fault::Recover(0))
            .at(100, Fault::Crash(1))
            .at(300, Fault::Recover(1));
        let s = ChaosSchedule::build(&cfg(4, 300, 100, plan));
        for span in &s.spans {
            assert!(span.helper >= 2, "helpers must be alive: {span:?}");
        }
    }

    #[test]
    #[should_panic(expected = "never recovers")]
    fn unrecovered_crash_is_rejected() {
        ChaosSchedule::build(&cfg(2, 200, 100, FaultPlan::new().at(100, Fault::Crash(1))));
    }

    #[test]
    #[should_panic(expected = "not an epoch boundary")]
    fn misaligned_crash_is_rejected() {
        let plan = FaultPlan::new()
            .at(150, Fault::Crash(1))
            .at(300, Fault::Recover(1));
        ChaosSchedule::build(&cfg(2, 400, 100, plan));
    }

    #[test]
    fn link_faults_pass_through_to_the_link_plan() {
        let plan = FaultPlan::new()
            .at(7, Fault::DropAll { prob: 0.1 })
            .at(100, Fault::Crash(1))
            .at(200, Fault::Recover(1));
        let s = ChaosSchedule::build(&cfg(2, 200, 100, plan));
        assert_eq!(s.link_plan.len(), 1);
        assert!(s.is_active());
    }

    #[test]
    fn all_profiles_build_valid_schedules() {
        for name in PROFILE_NAMES {
            let plan = profile(name, 4, 100).expect(name);
            let s = ChaosSchedule::build(&cfg(4, 400, 100, plan));
            assert!(s.is_active(), "{name} must inject something");
        }
        assert!(profile("no-such", 4, 100).is_none());
    }
}
