//! Binary codecs for everything the store moves across process
//! boundaries: engine messages over the real-socket transport
//! ([`cbm_net::tcp`]), and configs/reports over the bench control
//! protocol. Built on [`cbm_net::wire::Wire`]; see that module for the
//! format conventions.
//!
//! The ADT payload scalars ([`RegInput`], [`CtOutput`], …) are foreign
//! to this crate and so is `Wire`, so they encode through the local
//! [`PayloadCodec`] trait instead — implemented here for exactly the
//! alphabets the bench workloads drive through the engine. A new
//! workload ADT only needs a `PayloadCodec` impl to ride the socket
//! transport.
//!
//! `&'static str` report fields (window criterion, escalation pattern
//! and verdict names) travel as strings and re-intern on decode
//! against the known vocabulary; an unknown name (a newer peer) leaks
//! one small allocation rather than failing the decode.
//!
//! Flight-recorder traces deliberately do **not** cross the wire: a
//! multi-process run dumps traces node-side (the files are the
//! artifact CI collects) and ships reports with `trace: None`.

use crate::config::{
    BatchPolicy, DurableConfig, Mode, ObsConfig, ShardConfig, StoreConfig, VerifyConfig,
};
use crate::stats::{
    ChaosReport, EpochMetrics, LatencySummary, MonitorEscalation, MonitorReport, RecoveryStats,
    StoreReport, WindowVerdict, WorkerStats,
};
use crate::wire::{ShardDeltaPayload, ShardSyncPayload, StoreMsg, WireOp};
use cbm_adt::counter::{CtInput, CtOutput};
use cbm_adt::register::{RegInput, RegOutput};
use cbm_net::clock::Timestamp;
use cbm_net::fault::FaultPlan;
use cbm_net::wire::Wire;

/// Local codec surface for ADT input/output/state scalars (mirrors
/// [`Wire`]; exists because both `Wire` and the ADT alphabets are
/// foreign here, so a blanket orphan impl is impossible).
pub trait PayloadCodec: Sized {
    /// Append this value's encoding to `out`.
    fn enc(&self, out: &mut Vec<u8>);
    /// Decode one value at `*pos`, advancing past it.
    fn dec(buf: &[u8], pos: &mut usize) -> Option<Self>;
}

impl PayloadCodec for u64 {
    fn enc(&self, out: &mut Vec<u8>) {
        Wire::put(self, out);
    }
    fn dec(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Wire::get(buf, pos)
    }
}

impl PayloadCodec for i64 {
    fn enc(&self, out: &mut Vec<u8>) {
        Wire::put(self, out);
    }
    fn dec(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Wire::get(buf, pos)
    }
}

impl PayloadCodec for RegInput {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            RegInput::Write(v) => {
                out.push(0);
                Wire::put(v, out);
            }
            RegInput::Read => out.push(1),
        }
    }
    fn dec(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(match u8::get(buf, pos)? {
            0 => RegInput::Write(Wire::get(buf, pos)?),
            1 => RegInput::Read,
            _ => return None,
        })
    }
}

impl PayloadCodec for RegOutput {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            RegOutput::Ack => out.push(0),
            RegOutput::Val(v) => {
                out.push(1);
                Wire::put(v, out);
            }
        }
    }
    fn dec(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(match u8::get(buf, pos)? {
            0 => RegOutput::Ack,
            1 => RegOutput::Val(Wire::get(buf, pos)?),
            _ => return None,
        })
    }
}

impl PayloadCodec for CtInput {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            CtInput::Add(n) => {
                out.push(0);
                Wire::put(n, out);
            }
            CtInput::Read => out.push(1),
        }
    }
    fn dec(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(match u8::get(buf, pos)? {
            0 => CtInput::Add(Wire::get(buf, pos)?),
            1 => CtInput::Read,
            _ => return None,
        })
    }
}

impl PayloadCodec for CtOutput {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            CtOutput::Ack => out.push(0),
            CtOutput::Val(n) => {
                out.push(1);
                Wire::put(n, out);
            }
        }
    }
    fn dec(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(match u8::get(buf, pos)? {
            0 => CtOutput::Ack,
            1 => CtOutput::Val(Wire::get(buf, pos)?),
            _ => return None,
        })
    }
}

pub(crate) fn put_payload_vec<T: PayloadCodec>(v: &[T], out: &mut Vec<u8>) {
    Wire::put(&v.len(), out);
    for x in v {
        x.enc(out);
    }
}

pub(crate) fn get_payload_vec<T: PayloadCodec>(buf: &[u8], pos: &mut usize) -> Option<Vec<T>> {
    let len = usize::get(buf, pos)?;
    let mut out = Vec::with_capacity(len.min(buf.len().saturating_sub(*pos)));
    for _ in 0..len {
        out.push(T::dec(buf, pos)?);
    }
    Some(out)
}

impl<I: PayloadCodec> Wire for WireOp<I> {
    fn put(&self, out: &mut Vec<u8>) {
        self.obj.put(out);
        self.input.enc(out);
        self.ts.put(out);
        self.wseq.put(out);
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(WireOp {
            obj: u32::get(buf, pos)?,
            input: I::dec(buf, pos)?,
            ts: Timestamp::get(buf, pos)?,
            wseq: Option::get(buf, pos)?,
        })
    }
}

impl<S: PayloadCodec> Wire for ShardSyncPayload<S> {
    fn put(&self, out: &mut Vec<u8>) {
        self.shards.len().put(out);
        for (shard, states) in &self.shards {
            shard.put(out);
            put_payload_vec(states, out);
        }
        self.lamport.put(out);
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let n = usize::get(buf, pos)?;
        let mut shards = Vec::with_capacity(n.min(buf.len().saturating_sub(*pos)));
        for _ in 0..n {
            let shard = u32::get(buf, pos)?;
            let states = get_payload_vec(buf, pos)?;
            shards.push((shard, states));
        }
        Some(ShardSyncPayload {
            shards,
            lamport: u64::get(buf, pos)?,
        })
    }
}

impl<I: PayloadCodec> Wire for ShardDeltaPayload<I> {
    fn put(&self, out: &mut Vec<u8>) {
        self.shards.len().put(out);
        for (shard, ops) in &self.shards {
            shard.put(out);
            ops.put(out);
        }
        self.lamport.put(out);
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let n = usize::get(buf, pos)?;
        let mut shards = Vec::with_capacity(n.min(buf.len().saturating_sub(*pos)));
        for _ in 0..n {
            let shard = u32::get(buf, pos)?;
            let ops = Vec::get(buf, pos)?;
            shards.push((shard, ops));
        }
        Some(ShardDeltaPayload {
            shards,
            lamport: u64::get(buf, pos)?,
        })
    }
}

impl<I: PayloadCodec, O: PayloadCodec, S: PayloadCodec> Wire for StoreMsg<I, O, S> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            StoreMsg::Batch(env) => {
                out.push(0);
                env.put(out);
            }
            StoreMsg::Nack => out.push(1),
            StoreMsg::Repair(batches) => {
                out.push(2);
                batches.put(out);
            }
            StoreMsg::ShardSync(p) => {
                out.push(3);
                p.put(out);
            }
            StoreMsg::ReadReq { obj, input } => {
                out.push(4);
                obj.put(out);
                input.enc(out);
            }
            StoreMsg::ReadReply { output } => {
                out.push(5);
                output.enc(out);
            }
            StoreMsg::SyncReq { full } => {
                out.push(6);
                full.put(out);
            }
            StoreMsg::ShardDelta(p) => {
                out.push(7);
                p.put(out);
            }
        }
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(match u8::get(buf, pos)? {
            0 => StoreMsg::Batch(Wire::get(buf, pos)?),
            1 => StoreMsg::Nack,
            2 => StoreMsg::Repair(Vec::get(buf, pos)?),
            3 => StoreMsg::ShardSync(Box::new(ShardSyncPayload::get(buf, pos)?)),
            4 => StoreMsg::ReadReq {
                obj: u32::get(buf, pos)?,
                input: I::dec(buf, pos)?,
            },
            5 => StoreMsg::ReadReply {
                output: O::dec(buf, pos)?,
            },
            6 => StoreMsg::SyncReq {
                full: bool::get(buf, pos)?,
            },
            7 => StoreMsg::ShardDelta(Box::new(ShardDeltaPayload::get(buf, pos)?)),
            _ => return None,
        })
    }
}

impl Wire for Mode {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Mode::Causal => 0,
            Mode::Convergent => 1,
        });
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(match u8::get(buf, pos)? {
            0 => Mode::Causal,
            1 => Mode::Convergent,
            _ => return None,
        })
    }
}

impl Wire for BatchPolicy {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            BatchPolicy::Off => out.push(0),
            BatchPolicy::Every(k) => {
                out.push(1);
                k.put(out);
            }
        }
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(match u8::get(buf, pos)? {
            0 => BatchPolicy::Off,
            1 => BatchPolicy::Every(usize::get(buf, pos)?),
            _ => return None,
        })
    }
}

impl Wire for ShardConfig {
    fn put(&self, out: &mut Vec<u8>) {
        self.shards.put(out);
        self.replication.put(out);
        self.placement_seed.put(out);
        self.locality.put(out);
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(ShardConfig {
            shards: usize::get(buf, pos)?,
            replication: usize::get(buf, pos)?,
            placement_seed: u64::get(buf, pos)?,
            locality: usize::get(buf, pos)?,
        })
    }
}

impl Wire for VerifyConfig {
    fn put(&self, out: &mut Vec<u8>) {
        self.every_ops.put(out);
        self.window_ops.put(out);
        self.sample_every.put(out);
        self.monitor.put(out);
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(VerifyConfig {
            every_ops: usize::get(buf, pos)?,
            window_ops: usize::get(buf, pos)?,
            sample_every: usize::get(buf, pos)?,
            monitor: bool::get(buf, pos)?,
        })
    }
}

impl Wire for ObsConfig {
    fn put(&self, out: &mut Vec<u8>) {
        self.trace.put(out);
        self.op_sample_every.put(out);
        self.batch_sample_every.put(out);
        self.epoch_cap.put(out);
        self.keep_epochs.put(out);
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(ObsConfig {
            trace: bool::get(buf, pos)?,
            op_sample_every: usize::get(buf, pos)?,
            batch_sample_every: usize::get(buf, pos)?,
            epoch_cap: usize::get(buf, pos)?,
            keep_epochs: usize::get(buf, pos)?,
        })
    }
}

impl Wire for DurableConfig {
    fn put(&self, out: &mut Vec<u8>) {
        self.log_dir.put(out);
        self.snapshot_every.put(out);
        self.recover_from_disk.put(out);
        self.resume.put(out);
        self.halt_at_boundary.put(out);
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(DurableConfig {
            log_dir: Option::get(buf, pos)?,
            snapshot_every: u64::get(buf, pos)?,
            recover_from_disk: bool::get(buf, pos)?,
            resume: bool::get(buf, pos)?,
            halt_at_boundary: u64::get(buf, pos)?,
        })
    }
}

impl Wire for StoreConfig {
    fn put(&self, out: &mut Vec<u8>) {
        self.workers.put(out);
        self.objects.put(out);
        self.ops_per_worker.put(out);
        self.mode.put(out);
        self.batch.put(out);
        self.verify.put(out);
        self.seed.put(out);
        self.sharding.put(out);
        self.chaos.put(out);
        self.obs.put(out);
        self.durable.put(out);
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(StoreConfig {
            workers: usize::get(buf, pos)?,
            objects: usize::get(buf, pos)?,
            ops_per_worker: usize::get(buf, pos)?,
            mode: Mode::get(buf, pos)?,
            batch: BatchPolicy::get(buf, pos)?,
            verify: VerifyConfig::get(buf, pos)?,
            seed: u64::get(buf, pos)?,
            sharding: ShardConfig::get(buf, pos)?,
            chaos: FaultPlan::get(buf, pos)?,
            obs: ObsConfig::get(buf, pos)?,
            durable: DurableConfig::get(buf, pos)?,
        })
    }
}

/// Re-intern a decoded report label against the known vocabulary
/// (window criteria, monitor pattern names, kernel verdicts). An
/// unknown label — a peer ahead of this binary — leaks one small
/// allocation instead of failing the decode.
fn intern(s: String) -> &'static str {
    const KNOWN: &[&str] = &[
        "CC",
        "CCv",
        "thin_air_read",
        "write_co_init_read",
        "write_co_read",
        "write_hb_init_read",
        "cyclic_cf",
        "cyclic_co",
        "sat",
        "unsat",
        "unknown",
    ];
    match KNOWN.iter().find(|k| **k == s) {
        Some(k) => k,
        None => Box::leak(s.into_boxed_str()),
    }
}

impl Wire for LatencySummary {
    fn put(&self, out: &mut Vec<u8>) {
        for v in [
            self.count,
            self.p50_ns,
            self.p90_ns,
            self.p99_ns,
            self.p999_ns,
            self.max_ns,
            self.mean_ns,
        ] {
            v.put(out);
        }
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(LatencySummary {
            count: u64::get(buf, pos)?,
            p50_ns: u64::get(buf, pos)?,
            p90_ns: u64::get(buf, pos)?,
            p99_ns: u64::get(buf, pos)?,
            p999_ns: u64::get(buf, pos)?,
            max_ns: u64::get(buf, pos)?,
            mean_ns: u64::get(buf, pos)?,
        })
    }
}

impl Wire for WorkerStats {
    fn put(&self, out: &mut Vec<u8>) {
        self.worker.put(out);
        self.ops.put(out);
        self.reads.put(out);
        self.updates.put(out);
        self.remote_reads.put(out);
        self.reads_served.put(out);
        self.batches_sent.put(out);
        self.payloads_sent.put(out);
        self.batches_delivered.put(out);
        self.latency.put(out);
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(WorkerStats {
            worker: usize::get(buf, pos)?,
            ops: u64::get(buf, pos)?,
            reads: u64::get(buf, pos)?,
            updates: u64::get(buf, pos)?,
            remote_reads: u64::get(buf, pos)?,
            reads_served: u64::get(buf, pos)?,
            batches_sent: u64::get(buf, pos)?,
            payloads_sent: u64::get(buf, pos)?,
            batches_delivered: u64::get(buf, pos)?,
            latency: LatencySummary::get(buf, pos)?,
        })
    }
}

impl Wire for WindowVerdict {
    fn put(&self, out: &mut Vec<u8>) {
        self.window.put(out);
        self.shard.put(out);
        self.criterion.to_string().put(out);
        self.events.put(out);
        self.crashed_workers.put(out);
        self.spans_recovery.put(out);
        // Result<(), String> as Option<String>: None = Ok
        match &self.result {
            Ok(()) => Option::<String>::None.put(out),
            Err(e) => Some(e.clone()).put(out),
        }
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(WindowVerdict {
            window: u64::get(buf, pos)?,
            shard: Option::get(buf, pos)?,
            criterion: intern(String::get(buf, pos)?),
            events: usize::get(buf, pos)?,
            crashed_workers: usize::get(buf, pos)?,
            spans_recovery: bool::get(buf, pos)?,
            result: match Option::<String>::get(buf, pos)? {
                None => Ok(()),
                Some(e) => Err(e),
            },
        })
    }
}

impl Wire for RecoveryStats {
    fn put(&self, out: &mut Vec<u8>) {
        self.worker.put(out);
        self.crash_epoch.put(out);
        self.recover_epoch.put(out);
        self.helper.put(out);
        self.synced_shards.put(out);
        self.synced_objects.put(out);
        self.sync_wall_ns.put(out);
        self.replayed_records.put(out);
        self.log_bytes.put(out);
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(RecoveryStats {
            worker: usize::get(buf, pos)?,
            crash_epoch: u64::get(buf, pos)?,
            recover_epoch: u64::get(buf, pos)?,
            helper: usize::get(buf, pos)?,
            synced_shards: u64::get(buf, pos)?,
            synced_objects: u64::get(buf, pos)?,
            sync_wall_ns: u64::get(buf, pos)?,
            replayed_records: u64::get(buf, pos)?,
            log_bytes: u64::get(buf, pos)?,
        })
    }
}

impl Wire for MonitorEscalation {
    fn put(&self, out: &mut Vec<u8>) {
        self.worker.put(out);
        self.epoch.put(out);
        self.at_op.put(out);
        self.obj.put(out);
        self.pattern.to_string().put(out);
        self.events.put(out);
        self.confirmed.put(out);
        self.verdict.to_string().put(out);
        self.spans_recovery.put(out);
        self.detail.put(out);
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(MonitorEscalation {
            worker: usize::get(buf, pos)?,
            epoch: u64::get(buf, pos)?,
            at_op: u64::get(buf, pos)?,
            obj: Option::get(buf, pos)?,
            pattern: intern(String::get(buf, pos)?),
            events: usize::get(buf, pos)?,
            confirmed: bool::get(buf, pos)?,
            verdict: intern(String::get(buf, pos)?),
            spans_recovery: bool::get(buf, pos)?,
            detail: String::get(buf, pos)?,
        })
    }
}

impl Wire for MonitorReport {
    fn put(&self, out: &mut Vec<u8>) {
        self.enabled.put(out);
        self.ops_checked.put(out);
        self.folds.put(out);
        self.escalations.put(out);
        self.cleared.put(out);
        self.violations.put(out);
        self.kernel_unknown.put(out);
        self.records.put(out);
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(MonitorReport {
            enabled: bool::get(buf, pos)?,
            ops_checked: u64::get(buf, pos)?,
            folds: u64::get(buf, pos)?,
            escalations: u64::get(buf, pos)?,
            cleared: u64::get(buf, pos)?,
            violations: u64::get(buf, pos)?,
            kernel_unknown: u64::get(buf, pos)?,
            records: Vec::get(buf, pos)?,
        })
    }
}

impl Wire for ChaosReport {
    fn put(&self, out: &mut Vec<u8>) {
        self.active.put(out);
        self.drops.put(out);
        self.dups.put(out);
        self.parked.put(out);
        self.released.put(out);
        self.delayed.put(out);
        self.pruned.put(out);
        self.crash_discarded.put(out);
        self.nacks.put(out);
        self.repairs.put(out);
        self.repaired_batches.put(out);
        self.dropped_per_node.put(out);
        self.dup_per_node.put(out);
        self.recoveries.put(out);
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(ChaosReport {
            active: bool::get(buf, pos)?,
            drops: u64::get(buf, pos)?,
            dups: u64::get(buf, pos)?,
            parked: u64::get(buf, pos)?,
            released: u64::get(buf, pos)?,
            delayed: u64::get(buf, pos)?,
            pruned: u64::get(buf, pos)?,
            crash_discarded: u64::get(buf, pos)?,
            nacks: u64::get(buf, pos)?,
            repairs: u64::get(buf, pos)?,
            repaired_batches: u64::get(buf, pos)?,
            dropped_per_node: Vec::get(buf, pos)?,
            dup_per_node: Vec::get(buf, pos)?,
            recoveries: Vec::get(buf, pos)?,
        })
    }
}

impl Wire for EpochMetrics {
    fn put(&self, out: &mut Vec<u8>) {
        for v in [
            self.epoch,
            self.ops,
            self.updates,
            self.remote_reads,
            self.batches,
            self.payloads,
            self.delivered,
            self.nacks,
            self.repairs,
            self.faults,
            self.crashed,
        ] {
            v.put(out);
        }
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(EpochMetrics {
            epoch: u64::get(buf, pos)?,
            ops: u64::get(buf, pos)?,
            updates: u64::get(buf, pos)?,
            remote_reads: u64::get(buf, pos)?,
            batches: u64::get(buf, pos)?,
            payloads: u64::get(buf, pos)?,
            delivered: u64::get(buf, pos)?,
            nacks: u64::get(buf, pos)?,
            repairs: u64::get(buf, pos)?,
            faults: u64::get(buf, pos)?,
            crashed: u64::get(buf, pos)?,
        })
    }
}

impl Wire for StoreReport {
    fn put(&self, out: &mut Vec<u8>) {
        self.config.put(out);
        u128::put(&self.wall_ns, out);
        self.total_ops.put(out);
        self.ops_per_sec.put(out);
        self.latency.put(out);
        self.msgs_sent.put(out);
        self.bytes_sent.put(out);
        self.batches_sent.put(out);
        self.payloads_sent.put(out);
        self.mean_batch.put(out);
        self.remote_reads.put(out);
        self.windows.put(out);
        self.windows_failed.put(out);
        self.drains_converged.put(out);
        self.final_state_hashes.put(out);
        self.monitor.put(out);
        self.chaos.put(out);
        self.per_worker.put(out);
        self.epochs.put(out);
        self.metrics.put(out);
        // traces never cross the wire (dumped node-side); pin the slot
        // so the layout stays stable if that ever changes
        false.put(out);
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let report = StoreReport {
            config: StoreConfig::get(buf, pos)?,
            wall_ns: u128::get(buf, pos)?,
            total_ops: u64::get(buf, pos)?,
            ops_per_sec: f64::get(buf, pos)?,
            latency: LatencySummary::get(buf, pos)?,
            msgs_sent: u64::get(buf, pos)?,
            bytes_sent: u64::get(buf, pos)?,
            batches_sent: u64::get(buf, pos)?,
            payloads_sent: u64::get(buf, pos)?,
            mean_batch: f64::get(buf, pos)?,
            remote_reads: u64::get(buf, pos)?,
            windows: Vec::get(buf, pos)?,
            windows_failed: usize::get(buf, pos)?,
            drains_converged: bool::get(buf, pos)?,
            final_state_hashes: Vec::get(buf, pos)?,
            monitor: MonitorReport::get(buf, pos)?,
            chaos: ChaosReport::get(buf, pos)?,
            per_worker: Vec::get(buf, pos)?,
            epochs: Vec::get(buf, pos)?,
            metrics: Vec::get(buf, pos)?,
            trace: None,
        };
        if bool::get(buf, pos)? {
            return None; // a wire trace is not a thing this version speaks
        }
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbm_net::broadcast::InterestMsg;
    use cbm_net::delta::KnowledgeDelta;
    use cbm_net::wire::{from_bytes, to_bytes};

    type RegMsg = StoreMsg<RegInput, RegOutput, u64>;
    type CtMsg = StoreMsg<CtInput, CtOutput, i64>;

    fn batch() -> InterestMsg<Vec<WireOp<RegInput>>> {
        InterestMsg {
            sender: 2,
            seq: 40,
            knows: KnowledgeDelta {
                rows: vec![(2, vec![(0, 40), (1, 7)]), (3, vec![(1, 9)])],
            },
            payload: vec![
                WireOp {
                    obj: 17,
                    input: RegInput::Write(123_456),
                    ts: Timestamp { time: 99, pid: 2 },
                    wseq: Some(3),
                },
                WireOp {
                    obj: 0,
                    input: RegInput::Read,
                    ts: Timestamp { time: 0, pid: 0 },
                    wseq: None,
                },
            ],
        }
    }

    #[test]
    fn store_msgs_roundtrip() {
        let msgs: Vec<RegMsg> = vec![
            StoreMsg::Batch(batch()),
            StoreMsg::Nack,
            StoreMsg::Repair(vec![batch(), batch()]),
            StoreMsg::ShardSync(Box::new(ShardSyncPayload {
                shards: vec![(0, vec![1u64, 2, 3]), (4, vec![])],
                lamport: 77,
            })),
            StoreMsg::ReadReq {
                obj: 9,
                input: RegInput::Read,
            },
            StoreMsg::ReadReply {
                output: RegOutput::Val(5),
            },
            StoreMsg::SyncReq { full: true },
            StoreMsg::ShardDelta(Box::new(ShardDeltaPayload {
                shards: vec![(
                    1,
                    vec![WireOp {
                        obj: 17,
                        input: RegInput::Write(9),
                        ts: Timestamp { time: 4, pid: 1 },
                        wseq: None,
                    }],
                )],
                lamport: 11,
            })),
        ];
        for m in msgs {
            let bytes = to_bytes(&m);
            let back: RegMsg = from_bytes(&bytes).expect("decodes");
            assert_eq!(format!("{m:?}"), format!("{back:?}"));
        }
        let c: CtMsg = StoreMsg::ReadReply {
            output: CtOutput::Val(-12),
        };
        let back: CtMsg = from_bytes(&to_bytes(&c)).expect("decodes");
        assert_eq!(format!("{c:?}"), format!("{back:?}"));
    }

    #[test]
    fn truncated_store_msg_is_none() {
        let bytes = to_bytes::<RegMsg>(&StoreMsg::Batch(batch()));
        for cut in 0..bytes.len() {
            assert!(from_bytes::<RegMsg>(&bytes[..cut]).is_none());
        }
    }

    #[test]
    fn config_roundtrips_exactly() {
        let mut cfg = StoreConfig {
            workers: 6,
            objects: 512,
            ops_per_worker: 10_000,
            mode: Mode::Convergent,
            batch: BatchPolicy::Every(8),
            seed: 42,
            ..StoreConfig::default()
        };
        cfg.sharding = ShardConfig::rf_local(2, 4);
        cfg.verify.monitor = true;
        cfg.chaos
            .push(100, cbm_net::fault::Fault::DropAll { prob: 0.01 });
        cfg.obs.trace = true;
        cfg.durable.log_dir = Some("/tmp/cbm-logs".into());
        cfg.durable.recover_from_disk = true;
        cfg.durable.halt_at_boundary = 3;
        let back: StoreConfig = from_bytes(&to_bytes(&cfg)).expect("decodes");
        assert_eq!(format!("{cfg:?}"), format!("{back:?}"));
    }

    #[test]
    fn report_roundtrips_with_interned_labels() {
        let report = StoreReport {
            config: StoreConfig::default(),
            wall_ns: u128::from(u64::MAX) + 17,
            total_ops: 1_000_000,
            ops_per_sec: 123_456.789,
            latency: LatencySummary {
                count: 9,
                p50_ns: 1,
                p90_ns: 2,
                p99_ns: 3,
                p999_ns: 4,
                max_ns: 5,
                mean_ns: 2,
            },
            msgs_sent: 10,
            bytes_sent: 11,
            batches_sent: 12,
            payloads_sent: 13,
            mean_batch: 1.083,
            remote_reads: 14,
            windows: vec![WindowVerdict {
                window: 0,
                shard: Some(3),
                criterion: "CCv",
                events: 48,
                crashed_workers: 1,
                spans_recovery: true,
                result: Err("divergent replica".into()),
            }],
            windows_failed: 1,
            drains_converged: false,
            final_state_hashes: vec![1, 2, 3],
            monitor: MonitorReport {
                enabled: true,
                ops_checked: 100,
                folds: 50,
                escalations: 1,
                cleared: 1,
                violations: 0,
                kernel_unknown: 0,
                records: vec![MonitorEscalation {
                    worker: 1,
                    epoch: 2,
                    at_op: 3,
                    obj: None,
                    pattern: "cyclic_co",
                    events: 7,
                    confirmed: false,
                    verdict: "sat",
                    spans_recovery: false,
                    detail: String::new(),
                }],
            },
            chaos: ChaosReport {
                active: true,
                drops: 5,
                dropped_per_node: vec![0, 5],
                dup_per_node: vec![0, 0],
                recoveries: vec![RecoveryStats {
                    worker: 1,
                    crash_epoch: 1,
                    recover_epoch: 3,
                    helper: 0,
                    synced_shards: 2,
                    synced_objects: 64,
                    sync_wall_ns: 12345,
                    replayed_records: 40,
                    log_bytes: 2048,
                }],
                ..ChaosReport::default()
            },
            per_worker: vec![WorkerStats {
                worker: 0,
                ops: 100,
                reads: 50,
                updates: 50,
                remote_reads: 0,
                reads_served: 4,
                batches_sent: 9,
                payloads_sent: 50,
                batches_delivered: 8,
                latency: LatencySummary::default(),
            }],
            epochs: vec![EpochMetrics {
                epoch: 0,
                ops: 100,
                faults: 5,
                ..EpochMetrics::default()
            }],
            metrics: vec![("store.ops".into(), 100), ("store.batches".into(), 9)],
            trace: None,
        };
        let bytes = to_bytes(&report);
        let back: StoreReport = from_bytes(&bytes).expect("decodes");
        assert_eq!(format!("{report:?}"), format!("{back:?}"));
        assert_eq!(back.windows[0].criterion, "CCv");
        assert_eq!(back.monitor.records[0].pattern, "cyclic_co");
    }
}
