//! One replica's view of the sharded object space.
//!
//! Both modes keep a current state per object for **wait-free local
//! reads** (a query is one `λ` evaluation on the local component; no
//! locks, no messages):
//!
//! * [`Mode::Causal`] applies updates in delivery order — `δ` on the
//!   addressed component, nothing else;
//! * [`Mode::Convergent`] arbitrates updates by Lamport timestamp into
//!   a per-object log (Fig. 5 generalized); an out-of-order arrival
//!   refolds the object from its epoch seed. At every drain the engine
//!   calls [`ObjectTable::compact`]: all replicas have delivered the
//!   same set, every future timestamp exceeds every logged one, so the
//!   fold becomes the new seed and the log is dropped — keeping memory
//!   bounded by the epoch length instead of the run length.

use crate::config::Mode;
use cbm_adt::{Adt, AdtExt};
use cbm_net::clock::Timestamp;
use std::hash::{Hash, Hasher};

/// Per-object replica state for one worker.
pub struct ObjectTable<T: Adt> {
    mode: Mode,
    /// Current state per object (the read path in both modes).
    states: Vec<T::State>,
    /// Convergent mode: per-object epoch log, sorted by timestamp.
    logs: Vec<Vec<(Timestamp, T::Input)>>,
    /// Convergent mode: per-object state at the last compaction.
    seeds: Vec<T::State>,
    /// Mid-log inserts since the last compaction (arbitration work).
    pub refolds: u64,
}

impl<T: Adt> ObjectTable<T> {
    /// Fresh table of `objects` initial states.
    pub fn new(adt: &T, objects: usize, mode: Mode) -> Self {
        let states: Vec<T::State> = (0..objects).map(|_| adt.initial()).collect();
        let (logs, seeds) = match mode {
            Mode::Causal => (Vec::new(), Vec::new()),
            Mode::Convergent => (vec![Vec::new(); objects], states.clone()),
        };
        ObjectTable {
            mode,
            states,
            logs,
            seeds,
            refolds: 0,
        }
    }

    /// Number of objects.
    pub fn objects(&self) -> usize {
        self.states.len()
    }

    /// The slot an object id maps to.
    #[inline]
    pub fn slot(&self, obj: u32) -> usize {
        obj as usize % self.states.len()
    }

    /// Wait-free local read: `λ` on the addressed component.
    #[inline]
    pub fn output(&self, adt: &T, obj: u32, input: &T::Input) -> T::Output {
        adt.output(&self.states[self.slot(obj)], input)
    }

    /// Integrate one update (own at invocation, remote at delivery).
    pub fn apply_update(&mut self, adt: &T, obj: u32, ts: Timestamp, input: &T::Input) {
        let slot = self.slot(obj);
        match self.mode {
            Mode::Causal => {
                self.states[slot] = adt.transition(&self.states[slot], input);
            }
            Mode::Convergent => {
                let log = &mut self.logs[slot];
                if log.last().is_none_or(|(last, _)| *last < ts) {
                    // in arbitration order already: extend the fold
                    log.push((ts, input.clone()));
                    self.states[slot] = adt.transition(&self.states[slot], input);
                } else {
                    // late arrival: insert and refold from the seed
                    let pos = log.partition_point(|(t, _)| *t < ts);
                    log.insert(pos, (ts, input.clone()));
                    self.states[slot] =
                        adt.fold_inputs_from(self.seeds[slot].clone(), log.iter().map(|(_, i)| i));
                    self.refolds += 1;
                }
            }
        }
    }

    /// Drain-point compaction (convergent mode; no-op in causal mode).
    pub fn compact(&mut self) {
        if self.mode == Mode::Convergent {
            for (slot, log) in self.logs.iter_mut().enumerate() {
                if !log.is_empty() {
                    self.seeds[slot] = self.states[slot].clone();
                    log.clear();
                }
            }
        }
    }

    /// Snapshot every object's current state.
    pub fn snapshot(&self) -> Vec<T::State> {
        self.states.clone()
    }

    /// Install a snapshot taken at a consistent cut (crash recovery).
    ///
    /// The cut is a drain point, so in convergent mode the snapshot is
    /// post-compaction state: it becomes both the current states and
    /// the epoch seeds, and the arbitration logs restart empty — the
    /// missed-envelope replay then applies on top exactly as live
    /// delivery would have.
    pub fn install(&mut self, snapshot: &[T::State]) {
        assert_eq!(snapshot.len(), self.states.len(), "snapshot arity");
        self.states = snapshot.to_vec();
        if self.mode == Mode::Convergent {
            self.seeds = snapshot.to_vec();
            for log in self.logs.iter_mut() {
                log.clear();
            }
        }
    }

    /// Install one shard's slot states at a consistent cut (partial-
    /// replication crash recovery): `slots` names the table indices in
    /// the order `states` lists them. Same compaction contract as
    /// [`ObjectTable::install`], applied per slot.
    pub fn install_slots(&mut self, slots: impl Iterator<Item = usize>, states: &[T::State]) {
        let mut n = 0;
        for (slot, state) in slots.zip(states) {
            self.states[slot] = state.clone();
            if self.mode == Mode::Convergent {
                self.seeds[slot] = state.clone();
                self.logs[slot].clear();
            }
            n += 1;
        }
        assert_eq!(n, states.len(), "shard snapshot arity");
    }

    /// Order-sensitive hash of one shard's slots (per-shard drain
    /// convergence evidence under partial replication).
    pub fn shard_hash(&self, slots: impl Iterator<Item = usize>) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for slot in slots {
            self.states[slot].hash(&mut h);
        }
        h.finish()
    }

    /// Clone one shard's slot states, ascending slot order.
    pub fn shard_snapshot(&self, slots: impl Iterator<Item = usize>) -> Vec<T::State> {
        slots.map(|slot| self.states[slot].clone()).collect()
    }

    /// Order-sensitive hash of the full space state (drain-point
    /// convergence evidence).
    pub fn state_hash(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for s in &self.states {
            s.hash(&mut h);
        }
        h.finish()
    }

    /// Log entries currently held (convergent arbitration backlog).
    pub fn log_len(&self) -> usize {
        self.logs.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbm_adt::register::{RegInput, RegOutput, Register};

    fn ts(t: u64, p: usize) -> Timestamp {
        Timestamp::new(t, p)
    }

    #[test]
    fn causal_mode_applies_in_delivery_order() {
        let adt = Register;
        let mut tab = ObjectTable::new(&adt, 4, Mode::Causal);
        tab.apply_update(&adt, 1, ts(1, 0), &RegInput::Write(5));
        tab.apply_update(&adt, 1, ts(2, 1), &RegInput::Write(7));
        tab.apply_update(&adt, 5, ts(3, 0), &RegInput::Write(9)); // wraps to slot 1
        assert_eq!(tab.output(&adt, 1, &RegInput::Read), RegOutput::Val(9));
        assert_eq!(tab.output(&adt, 0, &RegInput::Read), RegOutput::Val(0));
    }

    #[test]
    fn convergent_mode_arbitrates_by_timestamp() {
        let adt = Register;
        let mut a = ObjectTable::new(&adt, 2, Mode::Convergent);
        let mut b = ObjectTable::new(&adt, 2, Mode::Convergent);
        // same updates, opposite delivery orders
        let u1 = (ts(1, 0), RegInput::Write(5));
        let u2 = (ts(2, 1), RegInput::Write(7));
        a.apply_update(&adt, 0, u1.0, &u1.1);
        a.apply_update(&adt, 0, u2.0, &u2.1);
        b.apply_update(&adt, 0, u2.0, &u2.1);
        b.apply_update(&adt, 0, u1.0, &u1.1);
        assert_eq!(a.output(&adt, 0, &RegInput::Read), RegOutput::Val(7));
        assert_eq!(b.output(&adt, 0, &RegInput::Read), RegOutput::Val(7));
        assert_eq!(a.state_hash(), b.state_hash());
        assert_eq!(b.refolds, 1);
        assert_eq!(a.refolds, 0);
    }

    #[test]
    fn shard_install_and_hash_touch_only_their_slots() {
        let adt = Register;
        let mut tab = ObjectTable::new(&adt, 4, Mode::Convergent);
        tab.apply_update(&adt, 1, ts(1, 0), &RegInput::Write(5));
        // shard = even slots {0, 2}
        let even = || [0usize, 2].into_iter();
        let before_even = tab.shard_hash(even());
        tab.install_slots(even(), &[7, 9]);
        assert_ne!(tab.shard_hash(even()), before_even);
        assert_eq!(tab.output(&adt, 0, &RegInput::Read), RegOutput::Val(7));
        assert_eq!(tab.output(&adt, 2, &RegInput::Read), RegOutput::Val(9));
        // the odd slot survives untouched
        assert_eq!(tab.output(&adt, 1, &RegInput::Read), RegOutput::Val(5));
        assert_eq!(tab.shard_snapshot(even()), vec![7, 9]);
        // post-install updates fold from the installed seed
        tab.apply_update(&adt, 0, ts(9, 1), &RegInput::Write(8));
        assert_eq!(tab.output(&adt, 0, &RegInput::Read), RegOutput::Val(8));
    }

    #[test]
    fn compaction_preserves_state_and_clears_logs() {
        let adt = Register;
        let mut tab = ObjectTable::new(&adt, 2, Mode::Convergent);
        tab.apply_update(&adt, 0, ts(2, 0), &RegInput::Write(4));
        tab.apply_update(&adt, 0, ts(1, 1), &RegInput::Write(3)); // refold
        assert_eq!(tab.log_len(), 2);
        let before = tab.state_hash();
        tab.compact();
        assert_eq!(tab.log_len(), 0);
        assert_eq!(tab.state_hash(), before);
        // post-compaction updates fold from the new seed
        tab.apply_update(&adt, 0, ts(5, 0), &RegInput::Write(8));
        assert_eq!(tab.output(&adt, 0, &RegInput::Read), RegOutput::Val(8));
    }
}
