//! The per-worker durable epoch log: crash recovery that survives a
//! process restart (see `docs/DURABILITY.md`).
//!
//! Each worker appends to its own file, `worker-{id}.log`, in the
//! configured [`crate::DurableConfig::log_dir`]: one record per
//! **applied** event — an own update at invocation, a delivered
//! envelope batch at delivery — plus a *seal* record at every drain
//! cut, followed by one `fdatasync`. The cut is the durability unit:
//! everything up to a seal is on disk before any worker issues an op
//! past the rendezvous, so replaying the log to its last seal
//! reconstructs exactly the replica state the fleet agreed on at that
//! cut (drain invariant: in convergent mode every post-cut timestamp
//! exceeds every pre-cut one, so the replayed fold equals the live
//! fold even though compactions are not replayed).
//!
//! Every record is framed exactly like a socket frame
//! ([`cbm_net::tcp`]): `[len u32 LE][crc32 u32 LE][body]`, with bodies
//! in the canonical fixed-width little-endian [`Wire`]/
//! [`PayloadCodec`] encoding. Periodically ([`snapshot_every`
//! boundary seals](crate::DurableConfig::snapshot_every)) the worker
//! writes a compacted snapshot — full state vector + delivered
//! frontier + Lamport clock + monitor shadow seeds, as one framed
//! record in `worker-{id}.snap`, written to a temp file and renamed so
//! it is atomic — and truncates the log prefix it replaces.
//!
//! [`recover`] is strict about what it trusts: a torn or corrupt tail
//! *past* the last seal is the expected shape of a crash mid-write and
//! is silently discarded; anything wrong at or before the last seal —
//! an unreadable snapshot, a record that fails its CRC or decode, a
//! replayed state that disagrees with the seal's recorded hash —
//! surfaces as a typed [`LogError`] and installs nothing. Callers walk
//! the recovery ladder: replay from disk, fetch the op delta past the
//! replayed cut from co-replicas, or fall back to the full state
//! transfer.

use crate::codec::{get_payload_vec, put_payload_vec, PayloadCodec};
use crate::config::Mode;
use crate::objects::ObjectTable;
use crate::wire::WireOp;
use cbm_adt::Adt;
use cbm_check::monitor::MonitorStats;
use cbm_net::clock::Timestamp;
use cbm_net::tcp::crc32;
use cbm_net::wire::Wire;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Frame header: `[len u32 LE][crc32 u32 LE]`, identical to the socket
/// transport's framing.
pub const FRAME_HEADER: usize = 8;

/// Hard cap on one record body (matches [`cbm_net::tcp::MAX_FRAME`]);
/// a length field above this is corruption, not a record.
pub const MAX_RECORD: usize = 64 << 20;

/// Record tag: one own update applied at invocation.
pub const TAG_OWN: u8 = 0;
/// Record tag: one delivered envelope batch.
pub const TAG_BATCH: u8 = 1;
/// Record tag: a sealed drain cut (followed by `fdatasync`).
pub const TAG_SEAL: u8 = 2;

/// What a seal record pins: the identity of the cut and everything a
/// restart needs besides the replayed object states.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SealInfo {
    /// The cut's epoch: boundary seals carry the epoch whose opening
    /// drain this is; the final drain seals `n_epochs`.
    pub epoch: u64,
    /// `true` for epoch-boundary (and final) drains — the cuts
    /// snapshots and restarts anchor to; `false` for the mid-epoch
    /// window-close drain.
    pub boundary: bool,
    /// Ops this worker had issued at the cut (script position).
    pub issued: u64,
    /// The worker's Lamport clock at the cut.
    pub lamport: u64,
    /// Delivered-envelope frontier per origin worker at the cut.
    pub delivered: Vec<u64>,
    /// Order-sensitive hash of the full object table at the cut —
    /// cross-checked against the replayed state on recovery.
    pub state_hash: u64,
    /// The streaming monitor's counters at the cut (shadow states
    /// reseed from the replayed object states; the counters carry the
    /// certified-ops accounting across the restart).
    pub monitor: MonitorStats,
}

impl SealInfo {
    fn put(&self, out: &mut Vec<u8>) {
        self.epoch.put(out);
        self.boundary.put(out);
        self.issued.put(out);
        self.lamport.put(out);
        self.delivered.put(out);
        self.state_hash.put(out);
        for v in [
            self.monitor.ops_checked,
            self.monitor.folds,
            self.monitor.escalations,
            self.monitor.cleared,
            self.monitor.violations,
            self.monitor.kernel_unknown,
        ] {
            v.put(out);
        }
    }

    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(SealInfo {
            epoch: u64::get(buf, pos)?,
            boundary: bool::get(buf, pos)?,
            issued: u64::get(buf, pos)?,
            lamport: u64::get(buf, pos)?,
            delivered: Vec::get(buf, pos)?,
            state_hash: u64::get(buf, pos)?,
            monitor: MonitorStats {
                ops_checked: u64::get(buf, pos)?,
                folds: u64::get(buf, pos)?,
                escalations: u64::get(buf, pos)?,
                cleared: u64::get(buf, pos)?,
                violations: u64::get(buf, pos)?,
                kernel_unknown: u64::get(buf, pos)?,
            },
        })
    }
}

/// Why a disk recovery refused to install anything. Every variant is a
/// clean fallback signal — the caller drops to the next rung of the
/// recovery ladder (full co-replica transfer, or a fresh run on cold
/// start); none of them can panic the engine or install partial state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// Filesystem error opening or reading the log/snapshot.
    Io(String),
    /// No sealed cut on disk at all (fresh directory, or a crash
    /// before the first drain): nothing to restore.
    NoSeal,
    /// The snapshot file exists but fails its CRC or decode.
    CorruptSnapshot,
    /// The snapshot's state vector does not match the configured
    /// object count.
    Arity,
    /// A record at or before the last seal passed its CRC but failed
    /// to decode — the committed prefix itself is damaged.
    CorruptRecord {
        /// Byte offset of the offending frame in the log file.
        offset: u64,
    },
    /// The replayed state's hash disagrees with the hash the seal
    /// recorded at the live cut.
    StateHash,
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "durable log io: {e}"),
            LogError::NoSeal => write!(f, "no sealed cut on disk"),
            LogError::CorruptSnapshot => write!(f, "snapshot fails CRC or decode"),
            LogError::Arity => write!(f, "snapshot arity mismatch"),
            LogError::CorruptRecord { offset } => {
                write!(f, "corrupt record at byte {offset} of the committed prefix")
            }
            LogError::StateHash => write!(f, "replayed state disagrees with sealed hash"),
        }
    }
}

/// A successful disk replay: the object states at the last sealed cut
/// plus everything else the seal pinned.
pub struct Recovered<T: Adt> {
    /// Every object's state at the cut (arity = configured objects).
    pub states: Vec<T::State>,
    /// The last seal — the cut the replay landed on.
    pub seal: SealInfo,
    /// Records replayed (snapshot counts as one).
    pub replayed_records: u64,
    /// Bytes read from disk for the replay (snapshot file + committed
    /// log prefix).
    pub log_bytes: u64,
}

fn log_path(dir: &Path, me: usize) -> PathBuf {
    dir.join(format!("worker-{me}.log"))
}

fn snap_path(dir: &Path, me: usize) -> PathBuf {
    dir.join(format!("worker-{me}.snap"))
}

fn frame_into(body: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
}

/// One worker's append-side handle: the open log file plus the paths
/// and scratch buffers the record writers reuse.
pub struct EpochLog {
    file: File,
    dir: PathBuf,
    log_path: PathBuf,
    snap_path: PathBuf,
    body: Vec<u8>,
    frame: Vec<u8>,
    /// Boundary seals since the last snapshot (snapshot cadence).
    boundary_seals: u64,
    /// Bytes appended to the log since open or last truncation.
    pub appended: u64,
}

impl EpochLog {
    /// Open this worker's log for appending. `fresh` truncates the log
    /// and deletes any snapshot (a new run); otherwise both survive
    /// (resuming after [`recover`]).
    pub fn open(dir: &Path, me: usize, fresh: bool) -> std::io::Result<EpochLog> {
        fs::create_dir_all(dir)?;
        let log_path = log_path(dir, me);
        let snap_path = snap_path(dir, me);
        let file = if fresh {
            match fs::remove_file(&snap_path) {
                Err(e) if e.kind() != std::io::ErrorKind::NotFound => return Err(e),
                _ => {}
            }
            File::create(&log_path)?
        } else {
            OpenOptions::new()
                .append(true)
                .create(true)
                .open(&log_path)?
        };
        Ok(EpochLog {
            file,
            dir: dir.to_path_buf(),
            log_path,
            snap_path,
            body: Vec::new(),
            frame: Vec::new(),
            boundary_seals: 0,
            appended: 0,
        })
    }

    fn append_frame(&mut self) -> std::io::Result<()> {
        self.frame.clear();
        let body = std::mem::take(&mut self.body);
        frame_into(&body, &mut self.frame);
        self.body = body;
        self.file.write_all(&self.frame)?;
        self.appended += self.frame.len() as u64;
        Ok(())
    }

    /// Record one own update, applied at invocation.
    pub fn log_own<I: PayloadCodec>(
        &mut self,
        obj: u32,
        ts: Timestamp,
        input: &I,
    ) -> std::io::Result<()> {
        self.body.clear();
        self.body.push(TAG_OWN);
        obj.put(&mut self.body);
        ts.put(&mut self.body);
        input.enc(&mut self.body);
        self.append_frame()
    }

    /// Record one delivered envelope batch.
    pub fn log_batch<I: PayloadCodec>(
        &mut self,
        sender: usize,
        seq: u64,
        ops: &[WireOp<I>],
    ) -> std::io::Result<()> {
        self.body.clear();
        self.body.push(TAG_BATCH);
        sender.put(&mut self.body);
        seq.put(&mut self.body);
        ops.len().put(&mut self.body);
        for op in ops {
            op.put(&mut self.body);
        }
        self.append_frame()
    }

    /// Seal a drain cut and make everything up to it durable
    /// (`fdatasync`). Returns whether the snapshot cadence says this
    /// boundary should compact next.
    pub fn seal(&mut self, seal: &SealInfo, snapshot_every: u64) -> std::io::Result<bool> {
        self.body.clear();
        self.body.push(TAG_SEAL);
        seal.put(&mut self.body);
        self.append_frame()?;
        self.file.sync_data()?;
        if seal.boundary {
            self.boundary_seals += 1;
            return Ok(snapshot_every != 0 && self.boundary_seals >= snapshot_every);
        }
        Ok(false)
    }

    /// Write a compacted snapshot of the cut `seal` describes and
    /// truncate the log prefix it replaces. The snapshot goes to a
    /// temp file first and is renamed into place, so a crash leaves
    /// either the old snapshot or the new one — never a torn mix.
    pub fn snapshot<S: PayloadCodec>(
        &mut self,
        seal: &SealInfo,
        states: &[S],
    ) -> std::io::Result<()> {
        self.body.clear();
        seal.put(&mut self.body);
        put_payload_vec(states, &mut self.body);
        self.frame.clear();
        let body = std::mem::take(&mut self.body);
        frame_into(&body, &mut self.frame);
        self.body = body;
        let tmp = self.snap_path.with_extension("snap.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&self.frame)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &self.snap_path)?;
        // the rename and the truncation below are directory metadata;
        // sync it so the snapshot's existence is as durable as its
        // bytes
        File::open(&self.dir)?.sync_all()?;
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.appended = 0;
        self.boundary_seals = 0;
        Ok(())
    }

    /// Path of the log file (tests and diagnostics).
    pub fn path(&self) -> &Path {
        &self.log_path
    }
}

/// Scan the framed records of `buf`, stopping at the first frame that
/// is torn (header or body past EOF, oversized length) or fails its
/// CRC. Returns the record ranges `(offset, body_range)` of the clean
/// prefix.
#[allow(clippy::type_complexity)]
fn scan_frames(buf: &[u8]) -> Vec<(u64, std::ops::Range<usize>)> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= FRAME_HEADER {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD || buf.len() - pos - FRAME_HEADER < len {
            break; // torn tail: length runs past EOF
        }
        let body = pos + FRAME_HEADER..pos + FRAME_HEADER + len;
        if crc32(&buf[body.clone()]) != crc {
            break; // torn tail: body half-written
        }
        frames.push((pos as u64, body.clone()));
        pos = body.end;
    }
    frames
}

/// Replay this worker's snapshot + log tail to the last sealed cut.
///
/// On success the returned states are exactly the replica's states at
/// that cut and the seal's hash has been re-verified against them.
/// Anything short of that is a typed [`LogError`]; nothing is ever
/// installed from a failed replay. A torn or corrupt tail *past* the
/// last seal is not an error — it is the expected residue of a crash
/// mid-write, and the replay simply lands on the seal before it.
pub fn recover<T: Adt>(
    adt: &T,
    dir: &Path,
    me: usize,
    objects: usize,
    mode: Mode,
) -> Result<Recovered<T>, LogError>
where
    T::Input: PayloadCodec,
    T::State: PayloadCodec,
{
    let mut table = ObjectTable::new(adt, objects, mode);
    let mut base: Option<SealInfo> = None;
    let mut replayed_records = 0u64;
    let mut log_bytes = 0u64;

    // rung 0: the compacted snapshot, if one exists
    let snap = snap_path(dir, me);
    match fs::read(&snap) {
        Ok(bytes) => {
            let frames = scan_frames(&bytes);
            let (_, body) = frames.first().ok_or(LogError::CorruptSnapshot)?;
            let buf = &bytes[body.clone()];
            let mut pos = 0usize;
            let seal = SealInfo::get(buf, &mut pos).ok_or(LogError::CorruptSnapshot)?;
            let states: Vec<T::State> =
                get_payload_vec(buf, &mut pos).ok_or(LogError::CorruptSnapshot)?;
            if pos != buf.len() {
                return Err(LogError::CorruptSnapshot);
            }
            if states.len() != objects {
                return Err(LogError::Arity);
            }
            table.install(&states);
            log_bytes += bytes.len() as u64;
            replayed_records += 1;
            base = Some(seal);
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(LogError::Io(e.to_string())),
    }

    // rung 1: the log tail, committed only up to its last valid seal
    let log = match fs::read(log_path(dir, me)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(LogError::Io(e.to_string())),
    };
    let frames = scan_frames(&log);
    let last_seal = frames
        .iter()
        .rposition(|(_, body)| log[body.clone()].first() == Some(&TAG_SEAL));
    let mut seal = None;
    if let Some(last) = last_seal {
        for (offset, body) in &frames[..=last] {
            let buf = &log[body.clone()];
            let corrupt = LogError::CorruptRecord { offset: *offset };
            let mut pos = 1usize;
            match buf.first() {
                Some(&TAG_OWN) => {
                    let obj = u32::get(buf, &mut pos).ok_or(corrupt.clone())?;
                    let ts = Timestamp::get(buf, &mut pos).ok_or(corrupt.clone())?;
                    let input = T::Input::dec(buf, &mut pos).ok_or(corrupt)?;
                    table.apply_update(adt, obj, ts, &input);
                }
                Some(&TAG_BATCH) => {
                    let _sender = usize::get(buf, &mut pos).ok_or(corrupt.clone())?;
                    let _seq = u64::get(buf, &mut pos).ok_or(corrupt.clone())?;
                    let n = usize::get(buf, &mut pos).ok_or(corrupt.clone())?;
                    for _ in 0..n {
                        let op: WireOp<T::Input> =
                            WireOp::get(buf, &mut pos).ok_or(corrupt.clone())?;
                        table.apply_update(adt, op.obj, op.ts, &op.input);
                    }
                }
                Some(&TAG_SEAL) => {
                    seal = Some(SealInfo::get(buf, &mut pos).ok_or(corrupt)?);
                }
                _ => return Err(corrupt),
            }
            replayed_records += 1;
        }
        let (_, last_body) = &frames[last];
        log_bytes += last_body.end as u64;
    }

    let seal = match (seal, base) {
        (Some(s), _) => s,
        (None, Some(b)) => b,
        (None, None) => return Err(LogError::NoSeal),
    };
    // the drain invariant makes the replayed fold equal the live one;
    // the sealed hash is the end-to-end witness that it actually did
    table.compact();
    if table.state_hash() != seal.state_hash {
        return Err(LogError::StateHash);
    }
    Ok(Recovered {
        states: table.snapshot(),
        seal,
        replayed_records,
        log_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbm_adt::counter::{Counter, CtInput};
    use cbm_adt::register::{RegInput, Register};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cbm-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ts(t: u64, p: usize) -> Timestamp {
        Timestamp::new(t, p)
    }

    fn seal_of<T: Adt>(table: &ObjectTable<T>, epoch: u64, issued: u64) -> SealInfo {
        SealInfo {
            epoch,
            boundary: true,
            issued,
            lamport: 10 * epoch,
            delivered: vec![epoch, epoch + 1],
            state_hash: table.state_hash(),
            monitor: MonitorStats::default(),
        }
    }

    #[test]
    fn replay_lands_on_last_seal_and_matches_live_state() {
        let dir = tmpdir("roundtrip");
        let adt = Register;
        let mut live = ObjectTable::new(&adt, 4, Mode::Convergent);
        let mut log = EpochLog::open(&dir, 0, true).unwrap();

        live.apply_update(&adt, 1, ts(1, 0), &RegInput::Write(5));
        log.log_own(1, ts(1, 0), &RegInput::Write(5)).unwrap();
        let batch = vec![WireOp {
            obj: 2,
            input: RegInput::Write(9),
            ts: ts(2, 1),
            wseq: None,
        }];
        for op in &batch {
            live.apply_update(&adt, op.obj, op.ts, &op.input);
        }
        log.log_batch(1, 0, &batch).unwrap();
        live.compact();
        let s1 = seal_of(&live, 1, 1);
        log.seal(&s1, 0).unwrap();

        // records past the last seal must be discarded by the replay
        log.log_own(3, ts(7, 0), &RegInput::Write(77)).unwrap();

        let rec = recover::<Register>(&adt, &dir, 0, 4, Mode::Convergent).unwrap();
        assert_eq!(rec.seal, s1);
        assert_eq!(rec.replayed_records, 3);
        let mut replayed = ObjectTable::new(&adt, 4, Mode::Convergent);
        replayed.install(&rec.states);
        assert_eq!(replayed.state_hash(), s1.state_hash);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_truncates_and_survives_restart() {
        let dir = tmpdir("snapshot");
        let adt = Counter;
        let mut live = ObjectTable::new(&adt, 2, Mode::Causal);
        let mut log = EpochLog::open(&dir, 3, true).unwrap();
        live.apply_update(&adt, 0, ts(1, 3), &CtInput::Add(4));
        log.log_own(0, ts(1, 3), &CtInput::Add(4)).unwrap();
        let s1 = seal_of(&live, 1, 1);
        assert!(log.seal(&s1, 1).unwrap(), "cadence of 1 compacts");
        log.snapshot(&s1, &live.snapshot()).unwrap();
        assert_eq!(fs::metadata(log.path()).unwrap().len(), 0);

        // the tail past the snapshot replays on top of it
        live.apply_update(&adt, 1, ts(2, 3), &CtInput::Add(-2));
        log.log_own(1, ts(2, 3), &CtInput::Add(-2)).unwrap();
        let s2 = seal_of(&live, 2, 2);
        log.seal(&s2, 1).unwrap();

        let rec = recover::<Counter>(&adt, &dir, 3, 2, Mode::Causal).unwrap();
        assert_eq!(rec.seal, s2);
        assert_eq!(rec.replayed_records, 3); // snapshot + own + seal
        assert_eq!(rec.states, vec![4, -2]);

        // reopening non-fresh appends; reopening fresh wipes
        drop(log);
        let log = EpochLog::open(&dir, 3, false).unwrap();
        drop(log);
        let rec = recover::<Counter>(&adt, &dir, 3, 2, Mode::Causal).unwrap();
        assert_eq!(rec.seal, s2);
        let _ = EpochLog::open(&dir, 3, true).unwrap();
        assert!(matches!(
            recover::<Counter>(&adt, &dir, 3, 2, Mode::Causal),
            Err(LogError::NoSeal)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_clean_but_damaged_prefix_is_typed() {
        let dir = tmpdir("torn");
        let adt = Counter;
        let mut live = ObjectTable::new(&adt, 2, Mode::Causal);
        let mut log = EpochLog::open(&dir, 0, true).unwrap();
        live.apply_update(&adt, 0, ts(1, 0), &CtInput::Add(1));
        log.log_own(0, ts(1, 0), &CtInput::Add(1)).unwrap();
        let s1 = seal_of(&live, 1, 1);
        log.seal(&s1, 0).unwrap();
        let committed = fs::read(log.path()).unwrap();

        // a half-written record after the seal: clean replay to the seal
        let mut torn = committed.clone();
        torn.extend_from_slice(&[9, 0, 0, 0, 1, 2, 3]); // header cut short
        fs::write(log.path(), &torn).unwrap();
        let rec = recover::<Counter>(&adt, &dir, 0, 2, Mode::Causal).unwrap();
        assert_eq!(rec.seal, s1);
        assert_eq!(rec.log_bytes, committed.len() as u64);

        // a flipped byte inside the committed prefix: the CRC cuts the
        // scan before the seal, so nothing sealed remains -> typed error
        let mut flipped = committed.clone();
        flipped[FRAME_HEADER] ^= 0xff;
        fs::write(log.path(), &flipped).unwrap();
        assert!(matches!(
            recover::<Counter>(&adt, &dir, 0, 2, Mode::Causal),
            Err(LogError::NoSeal)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_typed_not_fatal() {
        let dir = tmpdir("badsnap");
        let adt = Counter;
        let live = ObjectTable::new(&adt, 2, Mode::Causal);
        let mut log = EpochLog::open(&dir, 0, true).unwrap();
        let s1 = seal_of(&live, 1, 0);
        log.seal(&s1, 1).unwrap();
        log.snapshot(&s1, &live.snapshot()).unwrap();
        let snap = snap_path(&dir, 0);
        let mut bytes = fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&snap, &bytes).unwrap();
        assert!(matches!(
            recover::<Counter>(&adt, &dir, 0, 2, Mode::Causal),
            Err(LogError::CorruptSnapshot)
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
