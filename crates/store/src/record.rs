//! Window recording and reconstruction.
//!
//! During a sampled window each worker records its own events (input,
//! output, timestamp) and its **apply order** — the sequence of window
//! events it integrated, own ops at invocation and remote updates at
//! delivery. Windows open and close at *drained* points (every replica
//! has delivered every earlier message), so a window is self-contained:
//! every window event's causal past inside the run splits into a
//! common pre-window part (applied everywhere, folded into the
//! recorded snapshots) and a window part fully visible to the
//! recorder.
//!
//! The verifier thread reassembles the per-worker records into a
//! `cbm-history::History` over the composite [`ObjectSpace`] ADT,
//! derives the delivered-before causal order from the apply prefixes
//! (exactly as the simulation driver does for recorded executions),
//! and runs the witness checkers of `cbm-check::verify` — CC for
//! delivery-order replicas, CCv (with the Lamport-timestamp total
//! order) for arbitrated ones.

use crate::config::Mode;
use crate::shard::ShardMap;
use cbm_adt::space::{ObjectSpace, SpaceInput};
use cbm_adt::Adt;
use cbm_check::verify::{verify_cc_window, verify_ccv_window};
use cbm_history::{EventId, HistoryBuilder, Relation};
use cbm_net::clock::Timestamp;
use cbm_net::NodeId;

/// One recorded own event.
#[derive(Debug, Clone)]
pub struct OwnEvent<T: Adt> {
    /// Target object.
    pub obj: u32,
    /// Input.
    pub input: T::Input,
    /// Observed output (local, wait-free).
    pub output: T::Output,
    /// Invocation timestamp (arbitration order in convergent mode).
    pub ts: Timestamp,
}

/// A window event reference: (origin worker, origin's own-event index).
pub type EventRef = (NodeId, u32);

/// One worker's contribution to a window.
pub struct WindowRecord<T: Adt> {
    /// Recording worker.
    pub worker: NodeId,
    /// Window number.
    pub window: u64,
    /// Own events, in invocation order (index = the `wseq` tag peers
    /// saw on the wire).
    pub own: Vec<OwnEvent<T>>,
    /// Apply order over window events (own + delivered remote).
    pub applies: Vec<EventRef>,
    /// Pre-window snapshot of this worker's object states.
    pub snapshot: Vec<T::State>,
    /// Untagged remote ops applied while recording (must be 0: windows
    /// open and close at drained points).
    pub foreign: u64,
    /// The worker was crashed for this window: it contributes no
    /// events, its apply order is empty, and its (stale) snapshot is
    /// excluded from convergence checks.
    pub crashed: bool,
    /// The window opened at a drain that performed a crash-recovery
    /// state transfer (its pre-window snapshots include a freshly
    /// synced replica).
    pub spans_recovery: bool,
}

impl<T: Adt> WindowRecord<T> {
    /// The record a crashed worker contributes: no events, no applies,
    /// its stale snapshot carried only for arity.
    pub fn crashed(worker: NodeId, window: u64, snapshot: Vec<T::State>) -> Self {
        WindowRecord {
            worker,
            window,
            own: Vec::new(),
            applies: Vec::new(),
            snapshot,
            foreign: 0,
            crashed: true,
            spans_recovery: false,
        }
    }
}

/// The per-worker recorder driven by the engine's hot loop.
pub struct WindowRecorder<T: Adt> {
    active: bool,
    window: u64,
    quota: usize,
    own: Vec<OwnEvent<T>>,
    applies: Vec<EventRef>,
    snapshot: Vec<T::State>,
    foreign: u64,
    spans_recovery: bool,
}

impl<T: Adt> WindowRecorder<T> {
    /// An idle recorder.
    pub fn new() -> Self {
        WindowRecorder {
            active: false,
            window: 0,
            quota: 0,
            own: Vec::new(),
            applies: Vec::new(),
            snapshot: Vec::new(),
            foreign: 0,
            spans_recovery: false,
        }
    }

    /// Recording?
    pub fn active(&self) -> bool {
        self.active
    }

    /// Start recording `quota` own events from the drained state
    /// `snapshot`. `spans_recovery` marks windows whose opening drain
    /// performed a crash-recovery state transfer.
    pub fn start(
        &mut self,
        window: u64,
        quota: usize,
        snapshot: Vec<T::State>,
        spans_recovery: bool,
    ) {
        self.active = true;
        self.window = window;
        self.quota = quota;
        self.own.clear();
        self.applies.clear();
        self.snapshot = snapshot;
        self.foreign = 0;
        self.spans_recovery = spans_recovery;
    }

    /// Record one own event; returns its wire tag. `None` when the
    /// recorder is idle or this worker's quota is already met.
    pub fn on_own(&mut self, me: NodeId, ev: OwnEvent<T>) -> Option<u32> {
        if !self.active || self.own.len() >= self.quota {
            return None;
        }
        let wseq = self.own.len() as u32;
        self.own.push(ev);
        self.applies.push((me, wseq));
        Some(wseq)
    }

    /// Own events still to record before this worker's quota is met.
    pub fn remaining(&self) -> usize {
        if self.active {
            self.quota - self.own.len()
        } else {
            0
        }
    }

    /// Record the delivery of a remote update.
    pub fn on_remote(&mut self, origin: NodeId, wseq: Option<u32>) {
        if !self.active {
            return;
        }
        match wseq {
            Some(k) => self.applies.push((origin, k)),
            None => self.foreign += 1,
        }
    }

    /// Close the window and hand over the record.
    pub fn finish(&mut self, me: NodeId) -> WindowRecord<T> {
        self.active = false;
        WindowRecord {
            worker: me,
            window: self.window,
            own: std::mem::take(&mut self.own),
            applies: std::mem::take(&mut self.applies),
            snapshot: std::mem::take(&mut self.snapshot),
            foreign: self.foreign,
            crashed: false,
            spans_recovery: self.spans_recovery,
        }
    }
}

impl<T: Adt> Default for WindowRecorder<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Rebuild a frozen window from all workers' records and verify it
/// against the mode's criterion. Returns `Ok(events)` with the window
/// size, or a violation description.
///
/// Crashed workers contribute placeholder records ([`WindowRecord::crashed`]):
/// they carry no events and no apply order, and their stale snapshots
/// are excluded from the convergence checks — the window is verified
/// over the live replicas, which is exactly the guarantee a crashed
/// process retains (§6.1: a crashed process simply stops operating).
pub fn verify_window<T: Adt>(
    space: &ObjectSpace<T>,
    mode: Mode,
    sample_every: usize,
    parts: &[WindowRecord<T>],
) -> Result<usize, String> {
    let n = parts.len();
    for part in parts {
        if part.foreign != 0 {
            return Err(format!(
                "worker {} applied {} untagged op(s) inside the window \
                 (drain boundary violated)",
                part.worker, part.foreign
            ));
        }
        if part.crashed && !(part.own.is_empty() && part.applies.is_empty()) {
            return Err(format!(
                "crashed worker {} recorded events inside the window",
                part.worker
            ));
        }
    }
    let Some(first_live) = parts.iter().position(|p| !p.crashed) else {
        return Err("window has no live workers".to_string());
    };

    // global ids: worker-major over own events
    let mut base = vec![0u32; n + 1];
    for p in 0..n {
        base[p + 1] = base[p] + parts[p].own.len() as u32;
    }
    let m = base[n] as usize;
    let id_of = |(origin, wseq): EventRef| -> Result<EventId, String> {
        if origin >= n || wseq >= parts[origin].own.len() as u32 {
            return Err(format!(
                "apply order references unknown event ({origin},{wseq})"
            ));
        }
        Ok(EventId(base[origin] + wseq))
    };

    // the window history over the composite space ADT
    let mut b: HistoryBuilder<SpaceInput<T::Input>, T::Output> = HistoryBuilder::new();
    for (p, part) in parts.iter().enumerate() {
        for ev in &part.own {
            b.op(
                p,
                SpaceInput::new(ev.obj, ev.input.clone()),
                ev.output.clone(),
            );
        }
    }
    let h = b.build();

    // apply orders and own sets in global ids
    let mut apply_orders: Vec<Vec<EventId>> = Vec::with_capacity(n);
    let mut own: Vec<Vec<EventId>> = Vec::with_capacity(n);
    for (p, part) in parts.iter().enumerate() {
        let mut order = Vec::with_capacity(part.applies.len());
        for &r in &part.applies {
            order.push(id_of(r)?);
        }
        apply_orders.push(order);
        own.push((base[p]..base[p + 1]).map(EventId).collect());
    }

    // delivered-before causal order from apply prefixes (the same
    // construction the simulation driver uses on recorded executions)
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (p, order) in apply_orders.iter().enumerate() {
        let lo = base[p];
        let hi = base[p + 1];
        let mut prefix: Vec<usize> = Vec::with_capacity(order.len());
        for e in order {
            if e.0 >= lo && e.0 < hi {
                for &g in &prefix {
                    edges.push((g, e.idx()));
                }
            }
            prefix.push(e.idx());
        }
    }
    let causal = Relation::from_edges(m, &edges)
        .ok_or_else(|| "delivered-before relation is cyclic".to_string())?;

    match mode {
        Mode::Causal => {
            let initials: Vec<Vec<T::State>> =
                parts.iter().map(|part| part.snapshot.clone()).collect();
            verify_cc_window(space, &h, &causal, &apply_orders, &own, &initials)
                .map_err(|e| format!("CC violation: {e:?}"))?;
        }
        Mode::Convergent => {
            for part in parts.iter().filter(|p| !p.crashed) {
                if part.worker != parts[first_live].worker
                    && part.snapshot != parts[first_live].snapshot
                {
                    return Err(format!(
                        "replicas {} and {} diverged at the window's drain point",
                        parts[first_live].worker, part.worker
                    ));
                }
            }
            // arbitration total order: Lamport timestamps extend the
            // causal order (broadcasts tick, deliveries observe)
            let mut total: Vec<EventId> = (0..m as u32).map(EventId).collect();
            let ts_of = |e: &EventId| -> Timestamp {
                let p = match base[1..].iter().position(|&hi| e.0 < hi) {
                    Some(p) => p,
                    None => unreachable!("event id in range"),
                };
                parts[p].own[(e.0 - base[p]) as usize].ts
            };
            total.sort_by_key(|e| ts_of(e));
            verify_ccv_window(
                space,
                &h,
                &causal,
                &total,
                sample_every,
                &parts[first_live].snapshot,
            )
            .map_err(|e| format!("CCv violation: {e:?}"))?;
        }
    }
    Ok(m)
}

/// One per-shard verification verdict produced by
/// [`verify_shard_windows`].
pub struct ShardVerdict {
    /// The shard verified (`None` for a whole-space window under full
    /// replication, or for a window-level failure that prevented the
    /// split).
    pub shard: Option<u32>,
    /// Crashed workers among the shard's replicas.
    pub crashed_workers: usize,
    /// `Ok(events)` with the sub-window size, or a violation.
    pub result: Result<usize, String>,
}

/// Verify one frozen epoch window under a placement.
///
/// Under full replication this is exactly [`verify_window`] (one
/// whole-space verdict). Under partial replication the window is split
/// **per shard**: for each shard, the sub-window contains the shard's
/// hosting replicas as processes, their own events on the shard's
/// objects (re-tagged to the sub-window's index space), and their apply
/// orders filtered to those events — every replica of a shard applies
/// every update of that shard, so each sub-window is self-contained and
/// verifies with the unchanged window checkers. Events a replica
/// applied for *other* shards simply fall out of the projection, and
/// routed remote reads are never recorded (they are served from a
/// replica's current state and carry no apply position; see
/// `docs/SHARDING.md` for the verification contract).
pub fn verify_shard_windows<T: Adt>(
    space: &ObjectSpace<T>,
    mode: Mode,
    sample_every: usize,
    parts: &[WindowRecord<T>],
    map: &ShardMap,
) -> Vec<ShardVerdict> {
    // the shard projection indexes parts by worker id (replica sets
    // name workers), so the slice must hold exactly one record per
    // worker, in id order — unlike verify_window, which is positional
    assert!(
        parts.iter().enumerate().all(|(i, p)| p.worker == i),
        "verify_shard_windows needs one record per worker, sorted by id"
    );
    if map.is_full() {
        return vec![ShardVerdict {
            shard: None,
            crashed_workers: parts.iter().filter(|p| p.crashed).count(),
            result: verify_window(space, mode, sample_every, parts),
        }];
    }
    // window-level integrity first: a drain-boundary violation poisons
    // every projection, so fail the window whole instead of splitting
    for part in parts {
        if part.foreign != 0 {
            return vec![ShardVerdict {
                shard: None,
                crashed_workers: parts.iter().filter(|p| p.crashed).count(),
                result: Err(format!(
                    "worker {} applied {} untagged op(s) inside the window \
                     (drain boundary violated)",
                    part.worker, part.foreign
                )),
            }];
        }
    }

    let mut out = Vec::with_capacity(map.shards());
    for s in 0..map.shards() {
        let replicas = map.replicas(s);
        // global worker id -> sub-window process index
        let local_of = |w: NodeId| replicas.iter().position(|&r| r == w);
        // per replica: old own index -> new own index, for this shard
        let mut remap: Vec<std::collections::HashMap<u32, u32>> =
            vec![std::collections::HashMap::new(); replicas.len()];
        let mut sub: Vec<WindowRecord<T>> = Vec::with_capacity(replicas.len());
        for (li, &w) in replicas.iter().enumerate() {
            let part = &parts[w];
            let mut own: Vec<OwnEvent<T>> = Vec::new();
            for (k, ev) in part.own.iter().enumerate() {
                if map.shard_of(ev.obj) == s {
                    remap[li].insert(k as u32, own.len() as u32);
                    own.push(OwnEvent {
                        obj: ev.obj,
                        input: ev.input.clone(),
                        output: ev.output.clone(),
                        ts: ev.ts,
                    });
                }
            }
            sub.push(WindowRecord {
                worker: w,
                window: part.window,
                own,
                applies: Vec::new(), // filled below (needs all remaps)
                snapshot: part.snapshot.clone(),
                foreign: 0,
                crashed: part.crashed,
                spans_recovery: part.spans_recovery,
            });
        }
        for (li, &w) in replicas.iter().enumerate() {
            let mut applies = Vec::new();
            for &(origin, wseq) in &parts[w].applies {
                if let Some(lo) = local_of(origin) {
                    if let Some(&new) = remap[lo].get(&wseq) {
                        applies.push((lo, new));
                    }
                }
            }
            sub[li].applies = applies;
        }
        // the convergent-mode snapshot-equality check compares whole
        // snapshots, but replicas of one shard only agree on *its*
        // slots — normalize the others to the first live replica's
        // values (they carry no events in this sub-window, so the CC
        // and CCv replays never read them)
        if let Some(first_live) = sub.iter().position(|p| !p.crashed) {
            let anchor = sub[first_live].snapshot.clone();
            let shard_slots: Vec<usize> = map.slots_of(s).collect();
            for p in sub.iter_mut() {
                let mut norm = anchor.clone();
                for &slot in &shard_slots {
                    norm[slot] = p.snapshot[slot].clone();
                }
                p.snapshot = norm;
            }
        }
        out.push(ShardVerdict {
            shard: Some(s as u32),
            crashed_workers: sub.iter().filter(|p| p.crashed).count(),
            result: verify_window(space, mode, sample_every, &sub),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbm_adt::register::{RegInput, RegOutput, Register};

    fn ev(obj: u32, input: RegInput, output: RegOutput, t: u64, p: usize) -> OwnEvent<Register> {
        OwnEvent {
            obj,
            input,
            output,
            ts: Timestamp::new(t, p),
        }
    }

    /// Two workers, two objects: w0 writes obj0=5 (seen by w1 before
    /// its read), w1 reads obj0 then writes obj1.
    fn healthy_parts() -> Vec<WindowRecord<Register>> {
        let snapshot = vec![0u64, 9u64]; // obj1 carried 9 in from the prefix
        vec![
            WindowRecord {
                worker: 0,
                window: 0,
                own: vec![ev(0, RegInput::Write(5), RegOutput::Ack, 1, 0)],
                // own write, then w1's remote write (w1's read is a
                // pure query: never broadcast, never applied remotely)
                applies: vec![(0, 0), (1, 1)],
                snapshot: snapshot.clone(),
                foreign: 0,
                crashed: false,
                spans_recovery: false,
            },
            WindowRecord {
                worker: 1,
                window: 0,
                own: vec![
                    ev(0, RegInput::Read, RegOutput::Val(5), 2, 1),
                    ev(1, RegInput::Write(4), RegOutput::Ack, 3, 1),
                ],
                // w1 applied w0's write before reading it
                applies: vec![(0, 0), (1, 0), (1, 1)],
                snapshot,
                foreign: 0,
                crashed: false,
                spans_recovery: false,
            },
        ]
    }

    #[test]
    fn healthy_window_verifies_under_both_modes() {
        let space = ObjectSpace::new(Register, 2);
        let parts = healthy_parts();
        assert_eq!(verify_window(&space, Mode::Causal, 1, &parts), Ok(3));
        assert_eq!(verify_window(&space, Mode::Convergent, 1, &parts), Ok(3));
    }

    #[test]
    fn snapshot_feeds_the_replay() {
        // w1 reads obj1 = 9: only explainable through the snapshot
        let space = ObjectSpace::new(Register, 2);
        let mut parts = healthy_parts();
        parts[1].own[1] = ev(1, RegInput::Read, RegOutput::Val(9), 3, 1);
        assert_eq!(verify_window(&space, Mode::Causal, 1, &parts), Ok(3));
        // ...and a wrong carried-in value is caught
        parts[1].own[1] = ev(1, RegInput::Read, RegOutput::Val(8), 3, 1);
        let res = verify_window(&space, Mode::Causal, 1, &parts);
        assert!(
            res.is_err_and(|e| e.contains("OutputMismatch")),
            "snapshot replay must gate"
        );
    }

    #[test]
    fn tampered_output_fails_both_modes() {
        let space = ObjectSpace::new(Register, 2);
        for mode in [Mode::Causal, Mode::Convergent] {
            let mut parts = healthy_parts();
            parts[1].own[0] = ev(0, RegInput::Read, RegOutput::Val(777), 2, 1);
            let res = verify_window(&space, mode, 1, &parts);
            assert!(res.is_err_and(|e| e.contains("OutputMismatch")), "{mode:?}");
        }
    }

    #[test]
    fn non_causal_apply_order_rejected() {
        let space = ObjectSpace::new(Register, 2);
        let mut parts = healthy_parts();
        // w1 claims it read 5 but applied the write *after* the read
        parts[1].applies = vec![(1, 0), (0, 0), (1, 1)];
        let res = verify_window(&space, Mode::Causal, 1, &parts);
        assert!(res.is_err(), "read of 5 without its write applied first");
    }

    #[test]
    fn foreign_ops_fail_fast() {
        let space = ObjectSpace::new(Register, 2);
        let mut parts = healthy_parts();
        parts[0].foreign = 2;
        let res = verify_window(&space, Mode::Causal, 1, &parts);
        assert!(res.is_err_and(|e| e.contains("untagged")));
    }

    #[test]
    fn divergent_snapshots_fail_convergent_windows() {
        let space = ObjectSpace::new(Register, 2);
        let mut parts = healthy_parts();
        parts[1].snapshot = vec![1, 9];
        let res = verify_window(&space, Mode::Convergent, 1, &parts);
        assert!(res.is_err_and(|e| e.contains("diverged")));
    }

    #[test]
    fn crashed_part_is_ignored_but_convergence_checks_live_parts() {
        let space = ObjectSpace::new(Register, 2);
        for mode in [Mode::Causal, Mode::Convergent] {
            let mut parts = healthy_parts();
            // worker 2 is crashed with a stale (divergent) snapshot
            parts.push(WindowRecord::crashed(2, 0, vec![7, 7]));
            assert_eq!(
                verify_window(&space, mode, 1, &parts),
                Ok(3),
                "{mode:?}: crashed part must not fail the window"
            );
        }
        // a crashed part claiming events is a recording bug
        let space = ObjectSpace::new(Register, 2);
        let mut parts = healthy_parts();
        let mut bad = WindowRecord::crashed(2, 0, vec![0, 0]);
        bad.applies.push((0, 0));
        parts.push(bad);
        let res = verify_window(&space, Mode::Causal, 1, &parts);
        assert!(res.is_err_and(|e| e.contains("crashed worker")));
    }

    #[test]
    fn first_live_snapshot_anchors_convergent_windows() {
        // part 0 crashed: the convergent snapshot-equality and the CCv
        // replay must anchor on the first live part instead. Worker 1
        // records a self-contained window (a crashed peer contributes
        // no events for anyone to apply).
        let space = ObjectSpace::new(Register, 2);
        let parts = vec![
            WindowRecord::crashed(0, 0, vec![1, 2]),
            WindowRecord {
                worker: 1,
                window: 0,
                own: vec![
                    ev(1, RegInput::Read, RegOutput::Val(9), 2, 1),
                    ev(1, RegInput::Write(4), RegOutput::Ack, 3, 1),
                ],
                applies: vec![(1, 0), (1, 1)],
                snapshot: vec![0, 9],
                foreign: 0,
                crashed: false,
                spans_recovery: true,
            },
        ];
        assert_eq!(verify_window(&space, Mode::Convergent, 1, &parts), Ok(2));
        // ...and a live divergence is still caught with crashed peers
        let mut parts = healthy_parts();
        parts.push(WindowRecord::crashed(2, 0, vec![9, 9]));
        parts[1].snapshot = vec![4, 4];
        let res = verify_window(&space, Mode::Convergent, 1, &parts);
        assert!(res.is_err_and(|e| e.contains("diverged")));
    }

    #[test]
    fn all_crashed_window_is_rejected() {
        let space = ObjectSpace::new(Register, 2);
        let parts = vec![
            WindowRecord::<Register>::crashed(0, 0, vec![0, 0]),
            WindowRecord::crashed(1, 0, vec![0, 0]),
        ];
        let res = verify_window(&space, Mode::Causal, 1, &parts);
        assert!(res.is_err_and(|e| e.contains("no live workers")));
    }

    /// Build a healthy 3-worker, 2-shard, rf-2 window against whatever
    /// placement the map chose: each shard's home writes its object,
    /// the co-replica applies the write then reads it; non-replicas
    /// never touch the shard.
    fn sharded_parts(map: &ShardMap) -> Vec<WindowRecord<Register>> {
        let mut parts: Vec<WindowRecord<Register>> = (0..3)
            .map(|w| WindowRecord {
                worker: w,
                window: 0,
                own: Vec::new(),
                applies: Vec::new(),
                snapshot: vec![0u64; 4],
                foreign: 0,
                crashed: false,
                spans_recovery: false,
            })
            .collect();
        for s in 0..2u32 {
            let [a, b] = [map.replicas(s as usize)[0], map.replicas(s as usize)[1]];
            let wa = parts[a].own.len() as u32;
            parts[a]
                .own
                .push(ev(s, RegInput::Write(5 + s as u64), RegOutput::Ack, 1, a));
            parts[a].applies.push((a, wa));
            let wb = parts[b].own.len() as u32;
            parts[b].applies.push((a, wa));
            parts[b]
                .own
                .push(ev(s, RegInput::Read, RegOutput::Val(5 + s as u64), 2, b));
            parts[b].applies.push((b, wb));
        }
        parts
    }

    #[test]
    fn shard_windows_split_and_verify_per_replica_set() {
        let map = ShardMap::new(3, 4, 2, 2, 11);
        assert!(!map.is_full());
        let space = ObjectSpace::new(Register, 4);
        let parts = sharded_parts(&map);
        let verdicts = verify_shard_windows(&space, Mode::Causal, 1, &parts, &map);
        assert_eq!(verdicts.len(), 2);
        for v in &verdicts {
            assert!(v.shard.is_some());
            assert_eq!(v.crashed_workers, 0);
            assert_eq!(
                v.result,
                Ok(2),
                "shard {:?} should hold its write + read",
                v.shard
            );
        }
        // convergent mode: replicas of a shard agree on its slots even
        // though their other slots (normalized away) differ
        let mut parts = sharded_parts(&map);
        for p in parts.iter_mut() {
            // scribble on slots the worker does not host: must not
            // break per-shard convergence checks
            for slot in 0..4usize {
                if !map.hosts(p.worker, map.shard_of(slot as u32)) {
                    p.snapshot[slot] = 77 + p.worker as u64;
                }
            }
        }
        let verdicts = verify_shard_windows(&space, Mode::Convergent, 1, &parts, &map);
        assert!(
            verdicts.iter().all(|v| v.result.is_ok()),
            "{:?}",
            verdicts
                .iter()
                .map(|v| (&v.shard, &v.result))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn shard_windows_catch_violations_in_the_right_shard() {
        let map = ShardMap::new(3, 4, 2, 2, 11);
        let space = ObjectSpace::new(Register, 4);
        let mut parts = sharded_parts(&map);
        // tamper shard 1's read output
        let b = map.replicas(1)[1];
        let idx = parts[b]
            .own
            .iter()
            .position(|e| map.shard_of(e.obj) == 1 && matches!(e.input, RegInput::Read))
            .expect("co-replica read");
        parts[b].own[idx].output = RegOutput::Val(999);
        let verdicts = verify_shard_windows(&space, Mode::Causal, 1, &parts, &map);
        for v in &verdicts {
            if v.shard == Some(1) {
                assert!(v
                    .result
                    .as_ref()
                    .is_err_and(|e| e.contains("OutputMismatch")));
            } else {
                assert_eq!(v.result, Ok(2), "untampered shard must still pass");
            }
        }
    }

    #[test]
    fn full_replication_maps_to_a_single_whole_space_verdict() {
        let map = ShardMap::new(2, 2, 2, 0, 0);
        let space = ObjectSpace::new(Register, 2);
        let verdicts = verify_shard_windows(&space, Mode::Causal, 1, &healthy_parts(), &map);
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].shard, None);
        assert_eq!(verdicts[0].result, Ok(3));
    }

    #[test]
    fn foreign_ops_fail_the_whole_window_not_one_shard() {
        let map = ShardMap::new(3, 4, 2, 2, 11);
        let space = ObjectSpace::new(Register, 4);
        let mut parts = sharded_parts(&map);
        parts[0].foreign = 1;
        let verdicts = verify_shard_windows(&space, Mode::Causal, 1, &parts, &map);
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].shard, None);
        assert!(verdicts[0]
            .result
            .as_ref()
            .is_err_and(|e| e.contains("untagged")));
    }

    #[test]
    fn recorder_tags_up_to_quota() {
        let mut r: WindowRecorder<Register> = WindowRecorder::new();
        assert_eq!(
            r.on_own(0, ev(0, RegInput::Read, RegOutput::Val(0), 1, 0)),
            None
        );
        r.start(3, 2, vec![0, 0], true);
        assert!(r.active());
        assert_eq!(
            r.on_own(0, ev(0, RegInput::Read, RegOutput::Val(0), 1, 0)),
            Some(0)
        );
        r.on_remote(1, Some(0));
        assert_eq!(
            r.on_own(0, ev(0, RegInput::Read, RegOutput::Val(0), 2, 0)),
            Some(1)
        );
        assert_eq!(r.remaining(), 0);
        assert_eq!(
            r.on_own(0, ev(0, RegInput::Read, RegOutput::Val(0), 3, 0)),
            None
        );
        let rec = r.finish(0);
        assert_eq!(rec.own.len(), 2);
        assert_eq!(rec.applies, vec![(0, 0), (1, 0), (0, 1)]);
        assert_eq!(rec.window, 3);
        assert!(rec.spans_recovery && !rec.crashed);
        assert!(!r.active());
    }
}
