//! The live engine: replica worker threads over [`ThreadNet`], with
//! fault injection and crash recovery.
//!
//! ## Execution model
//!
//! Each of `workers` threads is a **full replica** of the sharded
//! object space. A worker's loop is wait-free: it generates its next
//! operation, answers queries from its local object table, applies and
//! queues updates for the batched causal broadcast, and integrates
//! whatever peers' batches have arrived — never blocking on another
//! replica (§6.1's process model under a real scheduler).
//!
//! ## Epochs and deterministic rendezvous
//!
//! The run is organised in **epochs** of `verify.every_ops` operations
//! per worker. At every epoch boundary all workers rendezvous for a
//! drain: flush pending batches (and any fault-delayed envelopes),
//! publish cumulative batch counts, and receive until every published
//! batch is delivered. Because the pause points are counted in
//! operations — not wall time — the set of flushed batches (and
//! therefore `msgs_sent`) is a pure function of the configuration and
//! seed, independent of thread interleaving; only wall-clock numbers
//! vary between runs. After each boundary the workers record a bounded
//! window of subsequent events, and a verifier thread rebuilds each
//! frozen window and checks it against the mode's criterion (see
//! [`crate::record`]).
//!
//! ## Chaos (see `docs/CHAOS.md` for the full contract)
//!
//! A non-empty [`StoreConfig::chaos`] plan routes every fast-path send
//! through a deterministic sender-side fault layer
//! ([`cbm_net::chaos::ChaosEndpoint`]): probabilistic drop/dup,
//! partition park-and-release, and op-counted latency degradation.
//! Because drops are true losses, the drain adds a **nack/repair**
//! round: after the boundary barrier every missing batch is known to
//! be lost, the receiver nacks each stalled sender once, and the
//! sender retransmits from its epoch retention log over the reliable
//! path — so every drain is still a consistent cut, with a
//! deterministic number of repair messages.
//!
//! `Crash`/`Recover` faults are epoch-aligned. A crashing worker
//! completes the boundary drain (the *cut*), then stops operating:
//! peers suppress sends to it (counted as in-flight drops) and a
//! designated live **helper** snapshots its post-drain state and
//! retains every envelope it integrates. At the recovery boundary the
//! helper ships snapshot + delivery frontier + retained envelopes
//! ([`crate::wire::SyncPayload`]); the recovering worker installs the
//! snapshot at the cut, resyncs its causal broadcast to the frontier,
//! replays the missed envelopes, and resumes its op script where it
//! paused — so a chaos run issues exactly the op multiset of its
//! fault-free twin, which is what makes final-state comparison against
//! the twin meaningful.

use crate::chaos::{ChaosSchedule, CrashSpan};
use crate::config::{Mode, StoreConfig};
use crate::objects::ObjectTable;
use crate::record::{verify_window, OwnEvent, WindowRecord, WindowRecorder};
use crate::stats::{
    summarize_latencies, ChaosReport, RecoveryStats, StoreReport, WindowVerdict, WorkerStats,
};
use crate::wire::{
    batch_bytes, nack_bytes, repair_bytes, sync_bytes, BatchMsg, StoreMsg, SyncPayload, WireOp,
};
use cbm_adt::space::{ObjectSpace, SpaceInput};
use cbm_adt::Adt;
use cbm_net::broadcast::BatchCausalBroadcast;
use cbm_net::chaos::ChaosEndpoint;
use cbm_net::clock::{LamportClock, Timestamp};
use cbm_net::fault::FaultSchedule;
use cbm_net::thread_net::ThreadNet;
use cbm_net::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Barrier;
use std::time::Instant;

/// Shared rendezvous state.
struct Coordinator {
    barrier: Barrier,
    /// Cumulative flushed-batch count per worker, published at drains.
    sent: Vec<AtomicU64>,
    /// Per-worker state hash at the latest drain point.
    hashes: Vec<AtomicU64>,
    /// Drain points at which live replicas diverged (convergent mode).
    divergences: AtomicU64,
    /// Drain-completion counters, parity-indexed by drain number so
    /// one can be reset while the other is in use. A worker that has
    /// delivered everything keeps serving repair requests until *all*
    /// workers are complete — a plain barrier here could strand a
    /// peer waiting for a retransmission from a worker already parked
    /// at the barrier.
    done: [AtomicU64; 2],
}

impl Coordinator {
    fn new(n: usize) -> Self {
        Coordinator {
            barrier: Barrier::new(n),
            sent: (0..n).map(|_| AtomicU64::new(0)).collect(),
            hashes: (0..n).map(|_| AtomicU64::new(0)).collect(),
            divergences: AtomicU64::new(0),
            done: [AtomicU64::new(0), AtomicU64::new(0)],
        }
    }
}

/// Run the engine: `gen(worker, op_index, rng)` supplies each
/// operation. Returns the full report; panics if a worker thread
/// panics (a consistency monitor tripping is a test failure, not data)
/// or if the chaos plan is invalid (see [`ChaosSchedule::build`]).
pub fn run<T, G>(adt: &T, cfg: &StoreConfig, gen: G) -> StoreReport
where
    T: Adt + Clone + Send + Sync,
    T::Input: Send + Sync,
    T::Output: Send,
    T::State: Send + Sync,
    G: Fn(NodeId, u64, &mut StdRng) -> SpaceInput<T::Input> + Sync,
{
    let n = cfg.workers.max(1);
    let sched = ChaosSchedule::build(cfg);
    let net: ThreadNet<StoreMsg<T::Input, T::State>> = ThreadNet::new(n);
    let stats = net.stats();
    let endpoints = net.into_endpoints();
    let coord = Coordinator::new(n);
    let (tx, rx) = mpsc::channel::<WindowRecord<T>>();

    let t0 = Instant::now();
    let (mut worker_results, verdicts) = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n);
        for ep in endpoints {
            let tx = tx.clone();
            let coord = &coord;
            let gen = &gen;
            let sched = &sched;
            handles.push(s.spawn(move || Worker::new(adt, cfg, sched, ep, coord, tx).run(gen)));
        }
        drop(tx); // verifier's channel closes once every worker exits

        // the verifier thread: assemble frozen windows, verify, report
        let space = ObjectSpace::new(adt.clone(), cfg.objects.max(1));
        let mode = cfg.mode;
        let sample_every = cfg.verify.sample_every.max(1);
        let verifier = s.spawn(move || {
            let mut pending: Vec<(u64, Vec<WindowRecord<T>>)> = Vec::new();
            let mut verdicts: Vec<WindowVerdict> = Vec::new();
            while let Ok(rec) = rx.recv() {
                let wid = rec.window;
                let slot = match pending.iter().position(|(w, _)| *w == wid) {
                    Some(i) => i,
                    None => {
                        pending.push((wid, Vec::new()));
                        pending.len() - 1
                    }
                };
                pending[slot].1.push(rec);
                if pending[slot].1.len() == n {
                    let (_, mut parts) = pending.swap_remove(slot);
                    parts.sort_by_key(|p| p.worker);
                    let crashed_workers = parts.iter().filter(|p| p.crashed).count();
                    let spans_recovery = parts.iter().any(|p| p.spans_recovery);
                    let result = verify_window(&space, mode, sample_every, &parts);
                    verdicts.push(WindowVerdict {
                        window: wid,
                        criterion: mode.criterion(),
                        events: *result.as_ref().unwrap_or(&0),
                        crashed_workers,
                        spans_recovery,
                        result: result.map(|_| ()),
                    });
                }
            }
            for (wid, parts) in pending {
                verdicts.push(WindowVerdict {
                    window: wid,
                    criterion: mode.criterion(),
                    events: 0,
                    crashed_workers: parts.iter().filter(|p| p.crashed).count(),
                    spans_recovery: parts.iter().any(|p| p.spans_recovery),
                    result: Err(format!(
                        "window never completed: {}/{} worker records",
                        parts.len(),
                        n
                    )),
                });
            }
            verdicts.sort_by_key(|v| v.window);
            verdicts
        });

        let results: Vec<WorkerResult> = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        let verdicts = verifier.join().expect("verifier thread panicked");
        (results, verdicts)
    });
    let wall_ns = t0.elapsed().as_nanos();

    worker_results.sort_by_key(|r| r.stats.worker);
    let mut all_lat: Vec<u64> = Vec::new();
    for r in &mut worker_results {
        all_lat.append(&mut r.latencies);
    }
    let latency = summarize_latencies(&mut all_lat);

    let snap = stats.snapshot();
    let mut chaos = ChaosReport {
        active: sched.is_active(),
        dropped_per_node: snap.dropped_per_node.clone(),
        dup_per_node: snap.dup_per_node.clone(),
        ..ChaosReport::default()
    };
    let mut recoveries: Vec<RecoveryStats> = Vec::new();
    for r in &worker_results {
        let c = r.chaos;
        chaos.drops += c.drops;
        chaos.dups += c.dups;
        chaos.parked += c.parked;
        chaos.released += c.released;
        chaos.delayed += c.delayed;
        chaos.pruned += c.pruned;
        chaos.crash_discarded += c.crash_discarded;
        chaos.nacks += r.nacks_sent;
        chaos.repairs += r.repairs_sent;
        chaos.repaired_batches += r.repaired_batches;
        recoveries.extend(r.recoveries.iter().cloned());
    }
    recoveries.sort_by_key(|r| (r.crash_epoch, r.worker));
    chaos.recoveries = recoveries;

    let per_worker: Vec<WorkerStats> = worker_results.iter().map(|r| r.stats.clone()).collect();
    let batches_sent: u64 = per_worker.iter().map(|w| w.batches_sent).sum();
    let payloads_sent: u64 = per_worker.iter().map(|w| w.payloads_sent).sum();
    let total_ops: u64 = per_worker.iter().map(|w| w.ops).sum();
    let windows_failed = verdicts.iter().filter(|v| v.result.is_err()).count();
    let final_state_hashes: Vec<u64> = coord
        .hashes
        .iter()
        .map(|h| h.load(Ordering::SeqCst))
        .collect();

    StoreReport {
        config: cfg.clone(),
        wall_ns,
        total_ops,
        ops_per_sec: if wall_ns == 0 {
            0.0
        } else {
            total_ops as f64 / (wall_ns as f64 / 1e9)
        },
        latency,
        msgs_sent: snap.msgs_sent,
        bytes_sent: snap.bytes_sent,
        batches_sent,
        payloads_sent,
        mean_batch: if batches_sent == 0 {
            0.0
        } else {
            payloads_sent as f64 / batches_sent as f64
        },
        windows: verdicts,
        windows_failed,
        drains_converged: coord.divergences.load(Ordering::Relaxed) == 0,
        final_state_hashes,
        chaos,
        per_worker,
    }
}

/// What a worker thread returns.
struct WorkerResult {
    stats: WorkerStats,
    latencies: Vec<u64>,
    chaos: cbm_net::chaos::ChaosCounters,
    nacks_sent: u64,
    repairs_sent: u64,
    repaired_batches: u64,
    recoveries: Vec<RecoveryStats>,
}

/// State the helper froze at a crash cut, awaiting the recovery drain.
struct SyncPrep<T: Adt> {
    worker: NodeId,
    snapshot: Vec<T::State>,
    frontier: Vec<u64>,
    lamport: u64,
    retained_from: usize,
}

struct Worker<'a, T: Adt> {
    adt: &'a T,
    cfg: &'a StoreConfig,
    sched: &'a ChaosSchedule,
    ep: ChaosEndpoint<StoreMsg<T::Input, T::State>>,
    coord: &'a Coordinator,
    tx: mpsc::Sender<WindowRecord<T>>,
    me: NodeId,
    proto: BatchCausalBroadcast<WireOp<T::Input>>,
    table: ObjectTable<T>,
    clock: LamportClock,
    recorder: WindowRecorder<T>,
    fault_sched: FaultSchedule,
    vtime: u64,
    issued: u64,
    crashed: bool,
    quiesce_idx: u64,
    /// Precomputed `sched.can_lose()` (checked on every flush).
    loss_capable: bool,
    /// Every batch flushed since the last completed drain (repair log).
    epoch_sent: Vec<BatchMsg<T::Input>>,
    /// Envelopes integrated while any crash span is assigned to this
    /// helper, in integration order (recovery replay log).
    retained: Vec<BatchMsg<T::Input>>,
    sync_prep: Vec<SyncPrep<T>>,
    batches_delivered: u64,
    reads: u64,
    updates: u64,
    latencies: Vec<u64>,
    nacks_sent: u64,
    repairs_sent: u64,
    repaired_batches: u64,
    discarded: u64,
    recoveries: Vec<RecoveryStats>,
}

impl<'a, T> Worker<'a, T>
where
    T: Adt + Sync,
    T::Input: Send + Sync,
    T::Output: Send,
    T::State: Send + Sync,
{
    fn new(
        adt: &'a T,
        cfg: &'a StoreConfig,
        sched: &'a ChaosSchedule,
        ep: cbm_net::thread_net::Endpoint<StoreMsg<T::Input, T::State>>,
        coord: &'a Coordinator,
        tx: mpsc::Sender<WindowRecord<T>>,
    ) -> Self {
        let me = ep.me;
        let n = ep.cluster_size();
        // the chaos RNG stream is decorrelated from the workload RNGs
        let chaos_seed = cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(me as u64)
            ^ 0xC4A0_5C4A_05C4_A05C;
        Worker {
            adt,
            cfg,
            sched,
            ep: ChaosEndpoint::new(ep, chaos_seed),
            coord,
            tx,
            me,
            proto: BatchCausalBroadcast::new(me, n),
            table: ObjectTable::new(adt, cfg.objects.max(1), cfg.mode),
            clock: LamportClock::new(),
            recorder: WindowRecorder::new(),
            fault_sched: sched.link_plan.clone().into_schedule(),
            vtime: 0,
            issued: 0,
            crashed: false,
            quiesce_idx: 0,
            loss_capable: sched.can_lose(),
            epoch_sent: Vec::new(),
            retained: Vec::new(),
            sync_prep: Vec::new(),
            batches_delivered: 0,
            reads: 0,
            updates: 0,
            latencies: Vec::with_capacity(cfg.ops_per_worker),
            nacks_sent: 0,
            repairs_sent: 0,
            repaired_batches: 0,
            discarded: 0,
            recoveries: Vec::new(),
        }
    }

    fn run<G>(mut self, gen: &G) -> WorkerResult
    where
        G: Fn(NodeId, u64, &mut StdRng) -> SpaceInput<T::Input> + Sync,
    {
        let mut rng = StdRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_add((self.me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        for e in 0..self.sched.n_epochs {
            self.epoch_boundary(e);
            let my_ops = self.sched.ops_of(self.me, e);
            let quota = self.window_quota(e, my_ops);
            for _ in 0..quota {
                self.step(gen, &mut rng);
            }
            if e > 0 {
                self.close_window();
            }
            for _ in quota..my_ops {
                self.step(gen, &mut rng);
            }
        }
        self.final_drain();
        assert_eq!(
            self.issued as usize, self.cfg.ops_per_worker,
            "worker {} finished with an incomplete script",
            self.me
        );

        let mut latencies = std::mem::take(&mut self.latencies);
        let stats = WorkerStats {
            worker: self.me,
            ops: self.issued,
            reads: self.reads,
            updates: self.updates,
            batches_sent: self.proto.batches_sent(),
            payloads_sent: self.proto.payloads_sent(),
            batches_delivered: self.batches_delivered,
            latency: summarize_latencies(&mut latencies),
        };
        WorkerResult {
            stats,
            latencies,
            chaos: self.ep.counters(),
            nacks_sent: self.nacks_sent,
            repairs_sent: self.repairs_sent,
            repaired_batches: self.repaired_batches,
            recoveries: std::mem::take(&mut self.recoveries),
        }
    }

    /// Own events this worker records in epoch `e`'s window.
    fn window_quota(&self, e: u64, my_ops: usize) -> usize {
        if e == 0 || self.crashed {
            0
        } else {
            self.cfg.verify.window_ops.min(my_ops)
        }
    }

    /// One operation of the hot loop.
    fn step<G>(&mut self, gen: &G, rng: &mut StdRng)
    where
        G: Fn(NodeId, u64, &mut StdRng) -> SpaceInput<T::Input> + Sync,
    {
        self.vtime += 1;
        self.advance_faults();
        self.pump();
        let op = gen(self.me, self.issued, rng);
        self.execute(op);
        self.issued += 1;
    }

    /// Apply due fault events and release due held-back sends.
    fn advance_faults(&mut self) {
        self.fault_sched.apply_due(&mut self.ep, self.vtime);
        self.ep.advance_to(self.vtime);
    }

    /// The rendezvous opening epoch `e`: drain, recover, compact,
    /// check convergence, open the next verification window.
    fn epoch_boundary(&mut self, e: u64) {
        self.vtime = e * self.sched.every_ops as u64;
        self.advance_faults();
        if e == 0 {
            return; // the run starts mid-epoch-0; first drain is at e=1
        }
        let was_crashed = self.crashed;
        self.crashed = self.sched.crashed_at(self.me, e);

        // the boundary drain: a worker crashing *at* this boundary
        // still participates normally — the drain is its cut
        self.quiesce(was_crashed);

        // liveness flags for the coming epoch (deterministic: every
        // worker derives them from the shared schedule)
        for q in 0..self.ep.cluster_size() {
            self.ep.set_peer_crashed(q, self.sched.crashed_at(q, e));
        }

        // recovery state transfers at this boundary
        let recoveries: Vec<CrashSpan> = self.sched.recoveries_at(e).copied().collect();
        if !recoveries.is_empty() {
            for span in &recoveries {
                if span.helper == self.me {
                    self.serve_sync(span);
                }
                if span.worker == self.me {
                    self.receive_sync(span);
                }
            }
            self.coord.barrier.wait(); // transfers complete
        }

        self.compact_and_check_convergence(e);

        // crash cuts at this boundary: the helper freezes its
        // post-compaction state and starts retaining envelopes
        let crashes: Vec<CrashSpan> = self.sched.crashes_at(e).copied().collect();
        for span in &crashes {
            if span.helper == self.me {
                self.sync_prep.push(SyncPrep {
                    worker: span.worker,
                    snapshot: self.table.snapshot(),
                    frontier: self.proto.delivered_clock().components().to_vec(),
                    lamport: self.clock.now(),
                    retained_from: self.retained.len(),
                });
            }
        }

        // open window e-1
        let wid = e - 1;
        if self.crashed {
            let _ = self
                .tx
                .send(WindowRecord::crashed(self.me, wid, self.table.snapshot()));
        } else {
            let quota = self.window_quota(e, self.sched.ops_of(self.me, e));
            let spans_recovery = !recoveries.is_empty();
            self.recorder
                .start(wid, quota, self.table.snapshot(), spans_recovery);
        }
    }

    /// Execute one operation against the local replica (wait-free).
    fn execute(&mut self, op: SpaceInput<T::Input>) {
        let t = Instant::now();
        let ts = Timestamp::new(self.clock.tick(), self.me);
        let output = self.table.output(self.adt, op.obj, &op.input);
        let is_update = self.adt.is_update(&op.input);
        if is_update {
            self.updates += 1;
            self.table.apply_update(self.adt, op.obj, ts, &op.input);
        } else {
            self.reads += 1;
        }
        let wseq = self.recorder.on_own(
            self.me,
            OwnEvent {
                obj: op.obj,
                input: op.input.clone(),
                output,
                ts,
            },
        );
        if is_update {
            self.proto.push(WireOp {
                obj: op.obj,
                input: op.input,
                ts,
                wseq,
            });
            if self.proto.pending() >= self.cfg.batch.threshold() {
                self.flush();
            }
        }
        self.latencies.push(t.elapsed().as_nanos() as u64);
    }

    /// Ship the pending batch, if any, through the fault layer.
    fn flush(&mut self) {
        if let Some(batch) = self.proto.flush() {
            let bytes = batch_bytes(self.ep.cluster_size(), &batch.payload);
            if self.loss_capable {
                // the repair log only matters when faults can lose
                // envelopes (and hence nacks can arrive); fault-free,
                // duplication-only, and latency-only runs skip the
                // clone and the retained memory on their hot path
                self.epoch_sent.push(batch.clone());
            }
            if !self.sync_prep.is_empty() {
                self.retained.push(batch.clone());
            }
            self.ep.broadcast(StoreMsg::Batch(batch), bytes);
        }
    }

    /// Integrate everything that has arrived (non-blocking): batches
    /// and repairs feed the causal protocol, nacks are answered from
    /// the epoch retention log over the reliable path.
    fn pump(&mut self) -> bool {
        let mut got_any = false;
        while let Some((from, msg)) = self.ep.try_recv() {
            got_any = true;
            match msg {
                StoreMsg::Batch(env) => self.deliver(env),
                StoreMsg::Repair(envs) => {
                    for env in envs {
                        self.deliver(env);
                    }
                }
                StoreMsg::Nack => {
                    // retransmit the whole epoch log: which prefix the
                    // nacker already delivered depends on interleaving,
                    // and its duplicate suppression discards the rest —
                    // so the repair size stays deterministic
                    let tail: Vec<BatchMsg<T::Input>> = self.epoch_sent.clone();
                    self.repairs_sent += 1;
                    self.repaired_batches += tail.len() as u64;
                    let bytes = repair_bytes(self.ep.cluster_size(), &tail);
                    self.ep.send_reliable(from, StoreMsg::Repair(tail), bytes);
                }
                StoreMsg::Sync(_) => {
                    // a state transfer outside the recovery phase is a
                    // protocol bug; tolerate and count rather than
                    // corrupt the replica
                    debug_assert!(false, "unexpected Sync outside recovery");
                    self.discarded += 1;
                }
            }
        }
        got_any
    }

    /// Deliver one batch envelope through the causal protocol.
    fn deliver(&mut self, env: BatchMsg<T::Input>) {
        for batch in self.proto.on_receive(env) {
            if !self.sync_prep.is_empty() {
                self.retained.push(batch.clone());
            }
            self.batches_delivered += 1;
            let sender = batch.sender;
            for op in batch.payload {
                self.clock.observe(op.ts.time);
                self.table.apply_update(self.adt, op.obj, op.ts, &op.input);
                self.recorder.on_remote(sender, op.wseq);
            }
        }
    }

    /// The drain: flush, publish, then receive until every published
    /// batch of every peer has been delivered — nacking senders whose
    /// batches were lost to faults, and serving peers' nacks until
    /// *everyone* is complete. A worker that spent the last epoch
    /// crashed (`discard`) drains and discards instead: its state is
    /// re-established by the recovery transfer, not by late delivery.
    fn quiesce(&mut self, discard: bool) {
        let n = self.ep.cluster_size();
        let parity = (self.quiesce_idx % 2) as usize;
        self.quiesce_idx += 1;
        if !discard {
            self.flush();
            self.ep.flush_delayed(); // held-back sends belong to this cut
        }
        self.coord.sent[self.me].store(self.proto.batches_sent(), Ordering::SeqCst);
        self.coord.barrier.wait(); // all cut sends enqueued, counts final

        if discard {
            while self.ep.try_recv().is_some() {
                self.discarded += 1;
            }
            self.coord.done[parity].fetch_add(1, Ordering::SeqCst);
            while self.coord.done[parity].load(Ordering::SeqCst) < n as u64 {
                while self.ep.try_recv().is_some() {
                    self.discarded += 1;
                }
                std::thread::yield_now();
            }
        } else {
            // everything sent for this cut is already in our queue;
            // whatever was not *received* after this pump was dropped
            // or parked by the fault layer — nack each such sender
            // once. The received count (delivered + buffered) is used
            // rather than the delivered clock: a batch stuck behind a
            // lost dependency counts as received, so the nack set is a
            // pure function of the loss pattern, not of interleaving.
            self.pump();
            for q in 0..n {
                if q != self.me
                    && self.proto.received_from(q) < self.coord.sent[q].load(Ordering::SeqCst)
                {
                    self.nacks_sent += 1;
                    self.ep.send_reliable(q, StoreMsg::Nack, nack_bytes());
                }
            }
            let mut done_marked = false;
            loop {
                let got_any = self.pump();
                if !done_marked && (0..n).all(|q| q == self.me || !self.missing_from(q)) {
                    done_marked = true;
                    self.coord.done[parity].fetch_add(1, Ordering::SeqCst);
                }
                if done_marked && self.coord.done[parity].load(Ordering::SeqCst) >= n as u64 {
                    break;
                }
                if !got_any {
                    std::thread::yield_now();
                }
            }
        }
        // reset the other parity slot for the next drain while every
        // worker is still on this side of the closing barrier
        if self.me == 0 {
            self.coord.done[1 - parity].store(0, Ordering::SeqCst);
        }
        self.coord.barrier.wait(); // globally drained
                                   // the cut is complete everywhere: the repair log is dead
                                   // weight, and parked sends' payloads have been repaired (the
                                   // partition itself stays in force for post-drain traffic)
        self.epoch_sent.clear();
        self.ep.prune_parked();
    }

    /// Has `q` published batches we have not delivered?
    fn missing_from(&self, q: NodeId) -> bool {
        self.proto.delivered_clock().get(q) < self.coord.sent[q].load(Ordering::SeqCst)
    }

    /// Helper side of a recovery: ship cut snapshot + frontier +
    /// retained envelopes to the recovering worker (reliable path).
    fn serve_sync(&mut self, span: &CrashSpan) {
        let idx = self
            .sync_prep
            .iter()
            .position(|p| p.worker == span.worker)
            .expect("helper has no prepared cut for this recovery");
        let prep = self.sync_prep.remove(idx);
        let payload = SyncPayload {
            snapshot: prep.snapshot,
            frontier: prep.frontier,
            lamport: prep.lamport,
            retained: self.retained[prep.retained_from..].to_vec(),
        };
        let bytes = sync_bytes(self.ep.cluster_size(), &payload);
        self.ep
            .send_reliable(span.worker, StoreMsg::Sync(Box::new(payload)), bytes);
        if self.sync_prep.is_empty() {
            self.retained.clear();
        }
    }

    /// Recovering side: install the cut snapshot, resync the causal
    /// broadcast to the cut frontier, replay the missed envelopes.
    fn receive_sync(&mut self, span: &CrashSpan) {
        let t = Instant::now();
        let (mut batches, mut ops) = (0u64, 0u64);
        loop {
            match self.ep.recv() {
                Some((_, StoreMsg::Sync(payload))) => {
                    let p = *payload;
                    self.table.install(&p.snapshot);
                    self.proto.resync(&p.frontier);
                    self.clock.observe(p.lamport);
                    let expected = p.retained.len() as u64;
                    for env in p.retained {
                        for batch in self.proto.on_receive(env) {
                            batches += 1;
                            ops += batch.payload.len() as u64;
                            for op in batch.payload {
                                self.clock.observe(op.ts.time);
                                self.table.apply_update(self.adt, op.obj, op.ts, &op.input);
                            }
                        }
                    }
                    debug_assert_eq!(
                        batches, expected,
                        "retained replay must deliver exactly once in order"
                    );
                    break;
                }
                Some(_) => self.discarded += 1, // pre-recovery straggler
                None => unreachable!("mesh closed during recovery"),
            }
        }
        self.epoch_sent.clear(); // pre-crash sends are all below the cut
        self.recoveries.push(RecoveryStats {
            worker: self.me,
            crash_epoch: span.crash_epoch,
            recover_epoch: span.recover_epoch,
            helper: span.helper,
            replayed_batches: batches,
            replayed_ops: ops,
            sync_wall_ns: t.elapsed().as_nanos() as u64,
        });
    }

    /// A worker met its window quota: drain so the window is closed
    /// everywhere, then hand the record to the verifier. Crashed
    /// workers already sent their placeholder at the open.
    fn close_window(&mut self) {
        self.quiesce(self.crashed);
        if self.recorder.active() {
            let record = self.recorder.finish(self.me);
            // a failed channel send only means the verifier died;
            // surface that at join time, not here
            let _ = self.tx.send(record);
        }
    }

    /// Teardown: one last drain and convergence check. Every crash
    /// span has recovered by now (the schedule guarantees it), so all
    /// replicas participate and publish their final state hashes.
    fn final_drain(&mut self) {
        self.vtime = self.sched.n_epochs * self.sched.every_ops as u64;
        self.advance_faults();
        debug_assert!(!self.crashed, "schedule must recover everyone");
        self.quiesce(false);
        self.compact_and_check_convergence(self.sched.n_epochs);
    }

    /// At a global drain: compact arbitration logs, publish this
    /// replica's state hash, and (first live worker, convergent mode)
    /// record a divergence if live replicas' hashes disagree.
    fn compact_and_check_convergence(&mut self, e: u64) {
        if !self.crashed {
            self.table.compact();
        }
        self.coord.hashes[self.me].store(self.table.state_hash(), Ordering::SeqCst);
        self.coord.barrier.wait(); // hashes published
        if self.cfg.mode == Mode::Convergent {
            let n = self.ep.cluster_size();
            let live: Vec<NodeId> = (0..n).filter(|&q| !self.sched.crashed_at(q, e)).collect();
            if live.first() == Some(&self.me) {
                let h0 = self.coord.hashes[self.me].load(Ordering::SeqCst);
                if live
                    .iter()
                    .any(|&q| self.coord.hashes[q].load(Ordering::SeqCst) != h0)
                {
                    self.coord.divergences.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
    }
}
