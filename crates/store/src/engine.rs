//! The live engine: replica worker threads over [`ThreadNet`], with
//! partial replication, fault injection and crash recovery.
//!
//! ## Execution model
//!
//! Each of `workers` threads is a replica of the shards assigned to it
//! by the [`ShardMap`] (every shard under the default full-replication
//! placement). A worker's loop is wait-free for **replica-local**
//! operations: it generates its next operation, answers queries on
//! hosted objects from its local object table, applies and queues
//! updates for the interest-filtered batched causal multicast, and
//! integrates whatever peers' batches have arrived — never blocking on
//! another replica (§6.1's process model under a real scheduler).
//! Under partial replication two routed paths appear: updates always
//! execute at a replica of their object (non-hosted updates are
//! deterministically re-addressed, [`ShardMap::localize`]), and a read
//! of a non-hosted object travels to a live replica of its shard over
//! a reliable request/reply exchange (the one place a worker waits —
//! the price §1's wait-freedom result puts on reading state you do not
//! replicate). See `docs/SHARDING.md`.
//!
//! ## Interest edges
//!
//! Replication runs over [`InterestBatchCausalBroadcast`]: updates
//! queue per shard (one batch is only ever addressed to the replicas
//! interested in all of its contents) and every flushed envelope is
//! stamped per recipient with per-edge sequence numbers, so gap
//! detection, duplicate suppression, and the nack/repair round below
//! all work per **interest edge** — no part of the protocol assumes a
//! receiver sees every envelope a sender emits.
//!
//! ## Epochs and deterministic rendezvous
//!
//! The run is organised in **epochs** of `verify.every_ops` operations
//! per worker. At every epoch boundary all workers rendezvous for a
//! drain: flush pending batches (and any fault-delayed envelopes),
//! publish the cumulative per-edge envelope counts, and receive until
//! every published envelope on every inbound edge is delivered —
//! answering routed reads the whole time, so a worker blocked on a
//! reply can always make progress into the rendezvous. Because the
//! pause points are counted in operations — not wall time — the set of
//! flushed envelopes (and therefore `msgs_sent`) is a pure function of
//! the configuration and seed, independent of thread interleaving;
//! only wall-clock numbers vary between runs. After each boundary the
//! workers record a bounded window of subsequent events, and a
//! verifier thread rebuilds each frozen window **per shard** and
//! checks it against the mode's criterion (see [`crate::record`]).
//!
//! ## Chaos (see `docs/CHAOS.md` for the full contract)
//!
//! A non-empty [`StoreConfig::chaos`] plan routes every fast-path send
//! through a deterministic sender-side fault layer
//! ([`cbm_net::chaos::ChaosEndpoint`]). Because drops are true losses,
//! the drain adds a **nack/repair** round: after every worker has
//! arrived at the boundary, every missing envelope is known to be
//! lost; the receiver nacks each stalled edge once and the sender
//! retransmits that edge's epoch log over the reliable path — so every
//! drain is still a consistent cut, with a deterministic number of
//! repair messages per edge.
//!
//! `Crash`/`Recover` faults are epoch-aligned. A crashing worker
//! completes the boundary drain (the *cut*), then stops operating:
//! peers suppress sends to it (counted as in-flight drops) while the
//! protocol keeps stamping its edges, so the published edge matrix
//! stays the single source of truth. At the recovery boundary each
//! shard the crashed worker hosts is served by a deterministically
//! elected live co-replica ([`ChaosSchedule::shard_helper`]): the
//! helpers ship their post-drain shard states
//! ([`crate::wire::ShardSyncPayload`]), and the recovering worker
//! installs them, resyncs its causal layer straight from the published
//! edge matrix (the drain *is* the frontier — no retained-envelope
//! replay needed), and resumes its op script where it paused — so a
//! chaos run issues exactly the op multiset of its fault-free twin,
//! which is what makes final-state comparison against the twin
//! meaningful.

use crate::chaos::{ChaosSchedule, CrashSpan};
use crate::codec::PayloadCodec;
use crate::config::{Mode, StoreConfig};
use crate::durable::{self, EpochLog, SealInfo};
use crate::objects::ObjectTable;
use crate::record::{verify_shard_windows, OwnEvent, WindowRecord, WindowRecorder};
use crate::shard::ShardMap;
use crate::stats::{
    ChaosReport, EpochMetrics, LatencySummary, MonitorEscalation, MonitorReport, RecoveryStats,
    StoreReport, WindowVerdict, WorkerStats,
};
use crate::wire::{
    batch_bytes, delta_bytes, nack_bytes, read_reply_bytes, read_req_bytes, repair_bytes,
    sync_bytes, sync_req_bytes, BatchMsg, ShardDeltaPayload, ShardSyncPayload, StoreMsg, WireOp,
};
use cbm_adt::space::{ObjectSpace, SpaceInput};
use cbm_adt::Adt;
use cbm_check::monitor::{CcMonitor, CcvMonitor, Escalation, MonitorStats, Stamp};
use cbm_check::Verdict;
use cbm_net::broadcast::{InterestBatchCausalBroadcast, InterestMask};
use cbm_net::chaos::ChaosEndpoint;
use cbm_net::clock::{LamportClock, Timestamp};
use cbm_net::endpoint::Endpoint as EndpointApi;
use cbm_net::fault::FaultSchedule;
use cbm_net::tcp::TcpNet;
use cbm_net::thread_net::{ThreadNet, ThreadNetStats};
use cbm_net::NodeId;
use cbm_obs::trace::TraceConfig;
use cbm_obs::{
    AtomicHistogram, Counter, EpochTracer, FlightRecord, Gauge, LatencyHistogram, Registry, Span,
    SpanKind,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Shared rendezvous state.
struct Coordinator {
    barrier: Barrier,
    /// Cumulative per-edge envelope counts, `sent_edges[s * n + r]` =
    /// envelopes `s` has addressed to `r`, published at drains. This
    /// matrix is both the per-edge gap detector of the nack/repair
    /// round and the causal frontier a recovering worker resyncs to.
    sent_edges: Vec<AtomicU64>,
    /// Per-worker full-space state hash at the latest drain point.
    hashes: Vec<AtomicU64>,
    /// Per-(worker, shard) state hash at the latest drain point
    /// (`shard_hashes[w * shards + s]`; only hosted entries are live).
    shard_hashes: Vec<AtomicU64>,
    /// Drain points at which live replicas of a shard diverged
    /// (convergent mode).
    divergences: AtomicU64,
    /// Boundary arrival counters, parity-indexed by drain number. The
    /// arrival rendezvous spins (instead of a barrier) because workers
    /// must keep serving routed reads until *everyone* has arrived — a
    /// worker whose last epoch operation awaits a read reply can only
    /// arrive after some peer serves it.
    arrive: [AtomicU64; 2],
    /// Drain-completion counters, parity-indexed like `arrive`: a
    /// worker that has delivered everything keeps serving repair (and
    /// read) requests until all workers are complete — a plain barrier
    /// here could strand a peer waiting for a retransmission from a
    /// worker already parked at the barrier.
    done: [AtomicU64; 2],
    /// Cold-start agreement: each worker publishes the boundary epoch
    /// its own disk can serve (0 = none). The fleet resumes only from
    /// a boundary *every* disk sealed — a cut is a fleet-wide property,
    /// so any disagreement falls back to a fresh run.
    resume_epoch: Vec<AtomicU64>,
}

impl Coordinator {
    fn new(n: usize, shards: usize) -> Self {
        Coordinator {
            barrier: Barrier::new(n),
            sent_edges: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
            hashes: (0..n).map(|_| AtomicU64::new(0)).collect(),
            shard_hashes: (0..n * shards).map(|_| AtomicU64::new(0)).collect(),
            divergences: AtomicU64::new(0),
            arrive: [AtomicU64::new(0), AtomicU64::new(0)],
            done: [AtomicU64::new(0), AtomicU64::new(0)],
            resume_epoch: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Handles into the run's lock-free metrics [`Registry`]: every
/// series is registered once before the workers spawn, then shared
/// immutably. Workers accumulate in plain locals and feed **deltas**
/// into these atomics at drain rendezvous (plus one final flush), so
/// steady-state op execution performs no shared-memory traffic for
/// metrics.
struct EngineMetrics {
    ops: Arc<Counter>,
    updates: Arc<Counter>,
    reads: Arc<Counter>,
    remote_reads: Arc<Counter>,
    reads_served: Arc<Counter>,
    batches_flushed: Arc<Counter>,
    payloads_flushed: Arc<Counter>,
    batches_delivered: Arc<Counter>,
    matrix_bytes: Arc<Counter>,
    payload_copy_ops: Arc<Counter>,
    nacks: Arc<Counter>,
    repairs: Arc<Counter>,
    repaired_batches: Arc<Counter>,
    drains: Arc<Counter>,
    faults: Arc<Counter>,
    spans_dropped: Arc<Counter>,
    monitor_ops_checked: Arc<Counter>,
    monitor_escalations: Arc<Counter>,
    monitor_ns: Arc<Counter>,
    peak_buffered: Arc<Gauge>,
    peak_suppression: Arc<Gauge>,
    peak_pending: Arc<Gauge>,
    op_latency: Arc<AtomicHistogram>,
}

impl EngineMetrics {
    fn register(reg: &mut Registry) -> Self {
        EngineMetrics {
            ops: reg.counter("ops_total"),
            updates: reg.counter("updates_total"),
            reads: reg.counter("reads_total"),
            remote_reads: reg.counter("remote_reads_total"),
            reads_served: reg.counter("reads_served_total"),
            batches_flushed: reg.counter("batches_flushed_total"),
            payloads_flushed: reg.counter("payloads_flushed_total"),
            batches_delivered: reg.counter("batches_delivered_total"),
            matrix_bytes: reg.counter("matrix_header_bytes_total"),
            payload_copy_ops: reg.counter("payload_copy_ops_total"),
            nacks: reg.counter("nacks_total"),
            repairs: reg.counter("repairs_total"),
            repaired_batches: reg.counter("repaired_batches_total"),
            drains: reg.counter("drains_total"),
            faults: reg.counter("faults_injected_total"),
            spans_dropped: reg.counter("trace_spans_dropped_total"),
            monitor_ops_checked: reg.counter("monitor_ops_checked"),
            monitor_escalations: reg.counter("monitor_escalations"),
            monitor_ns: reg.counter("monitor_ns"),
            peak_buffered: reg.gauge("causal_buffer_peak"),
            peak_suppression: reg.gauge("suppression_set_peak"),
            peak_pending: reg.gauge("batch_queue_peak"),
            op_latency: reg.histogram("op_latency_ns"),
        }
    }
}

/// A worker's cumulative counter snapshot at a drain; consecutive
/// snapshots difference into one deterministic [`EpochMetrics`] row.
#[derive(Clone, Copy, Default)]
struct EpochSnap {
    ops: u64,
    updates: u64,
    remote_reads: u64,
    batches: u64,
    payloads: u64,
    delivered: u64,
    nacks: u64,
    repairs: u64,
    repaired_batches: u64,
    faults: u64,
}

/// Run the engine: `gen(worker, op_index, rng)` supplies each
/// operation. Returns the full report; panics if a worker thread
/// panics (a consistency monitor tripping is a test failure, not data)
/// or if the chaos plan is invalid (see [`ChaosSchedule::build`]).
pub fn run<T, G>(adt: &T, cfg: &StoreConfig, gen: G) -> StoreReport
where
    T: Adt + Clone + Send + Sync,
    T::Input: PayloadCodec + Send + Sync,
    T::Output: Send,
    T::State: PayloadCodec + Send + Sync,
    G: Fn(NodeId, u64, &mut StdRng) -> SpaceInput<T::Input> + Sync,
{
    let n = cfg.workers.max(1);
    let net: ThreadNet<StoreMsg<T::Input, T::Output, T::State>> = ThreadNet::new(n);
    let stats = net.stats();
    run_on(adt, cfg, gen, stats, net.into_endpoints())
}

/// [`run`], but over the real-socket transport: the replica set talks
/// through a loopback TCP mesh ([`cbm_net::tcp::TcpNet`]) instead of
/// in-process channels. The engine logic, the chaos layer, and the
/// shared-memory drain rendezvous are identical — only the message
/// path changes — so every deterministic column (msgs/batches/payloads
/// and the monitor counters) reproduces the [`run`] baselines exactly;
/// `docs/DEPLOYMENT.md` states the contract. Panics if the loopback
/// mesh cannot be built (bind/connect failure is an environment
/// problem, not a run outcome).
pub fn run_tcp<T, G>(adt: &T, cfg: &StoreConfig, gen: G) -> StoreReport
where
    T: Adt + Clone + Send + Sync,
    T::Input: PayloadCodec + Send + Sync + 'static,
    T::Output: PayloadCodec + Send + 'static,
    T::State: PayloadCodec + Send + Sync + 'static,
    G: Fn(NodeId, u64, &mut StdRng) -> SpaceInput<T::Input> + Sync,
{
    let n = cfg.workers.max(1);
    let net: TcpNet<StoreMsg<T::Input, T::Output, T::State>> =
        TcpNet::new(n).expect("bind + handshake the loopback TCP mesh");
    let stats = net.stats();
    run_on(adt, cfg, gen, stats, net.into_endpoints())
}

/// Transport-generic engine core: everything [`run`] and [`run_tcp`]
/// share, from worker spawn to report assembly.
fn run_on<T, G, E>(
    adt: &T,
    cfg: &StoreConfig,
    gen: G,
    stats: Arc<ThreadNetStats>,
    endpoints: Vec<E>,
) -> StoreReport
where
    T: Adt + Clone + Send + Sync,
    T::Input: PayloadCodec + Send + Sync,
    T::Output: Send,
    T::State: PayloadCodec + Send + Sync,
    G: Fn(NodeId, u64, &mut StdRng) -> SpaceInput<T::Input> + Sync,
    E: EndpointApi<StoreMsg<T::Input, T::Output, T::State>>,
{
    let n = cfg.workers.max(1);
    let map = ShardMap::build(cfg);
    let sched = ChaosSchedule::build(cfg);
    if cfg.durable.resume || cfg.durable.halt_at_boundary != 0 {
        // the resume/halt pair models a cold fleet restart; combining
        // it with a chaos plan would make the replayed script prefix
        // ambiguous (crashed epochs issue no ops)
        assert!(
            !sched.is_active(),
            "durable resume/halt cannot be combined with a chaos plan"
        );
    }
    // tracing is opt-in, but chaos runs always fly the recorder — their
    // failures are what it exists to explain
    let tracing = cfg.obs.trace || sched.is_active();
    let mut registry = Registry::new();
    let metrics = EngineMetrics::register(&mut registry);
    let coord = Coordinator::new(n, map.shards());
    let (tx, rx) = mpsc::channel::<WindowRecord<T>>();

    let t0 = Instant::now();
    let (mut worker_results, verdicts, verifier_spans) = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n);
        for ep in endpoints {
            let tx = tx.clone();
            let coord = &coord;
            let gen = &gen;
            let sched = &sched;
            let map = &map;
            let metrics = &metrics;
            handles.push(s.spawn(move || {
                Worker::new(adt, cfg, sched, map, ep, coord, tx, metrics, t0).run(gen)
            }));
        }
        drop(tx); // verifier's channel closes once every worker exits

        // the verifier thread: assemble frozen windows, split per
        // shard, verify, report
        let space = ObjectSpace::new(adt.clone(), cfg.objects.max(1));
        let mode = cfg.mode;
        let sample_every = cfg.verify.sample_every.max(1);
        let vmap = &map;
        let verifier = s.spawn(move || {
            let mut pending: Vec<(u64, Vec<WindowRecord<T>>)> = Vec::new();
            let mut verdicts: Vec<WindowVerdict> = Vec::new();
            // window verdicts double as trace spans on the verifier's
            // lane (tid = n); span creation mirrors verdict creation
            let mut vspans: Vec<Span> = Vec::new();
            let span_of = |v: &WindowVerdict| {
                // window w covers the start of epoch w+1
                let mut sp = Span::new(SpanKind::VerifyWindow, n as u32, v.window + 1, v.window);
                sp.shard = v.shard.map(|s| s as i64).unwrap_or(-1);
                sp.a = v.events as u64;
                sp.b = v.crashed_workers as u64;
                sp.flag = v.result.is_ok();
                sp.wall_ns = t0.elapsed().as_nanos() as u64;
                sp
            };
            while let Ok(rec) = rx.recv() {
                let wid = rec.window;
                let slot = match pending.iter().position(|(w, _)| *w == wid) {
                    Some(i) => i,
                    None => {
                        pending.push((wid, Vec::new()));
                        pending.len() - 1
                    }
                };
                pending[slot].1.push(rec);
                if pending[slot].1.len() == n {
                    let (_, mut parts) = pending.swap_remove(slot);
                    parts.sort_by_key(|p| p.worker);
                    let spans_recovery = parts.iter().any(|p| p.spans_recovery);
                    for v in verify_shard_windows(&space, mode, sample_every, &parts, vmap) {
                        let verdict = WindowVerdict {
                            window: wid,
                            shard: v.shard,
                            criterion: mode.criterion(),
                            events: *v.result.as_ref().unwrap_or(&0),
                            crashed_workers: v.crashed_workers,
                            spans_recovery,
                            result: v.result.map(|_| ()),
                        };
                        if tracing {
                            vspans.push(span_of(&verdict));
                        }
                        verdicts.push(verdict);
                    }
                }
            }
            for (wid, parts) in pending {
                let verdict = WindowVerdict {
                    window: wid,
                    shard: None,
                    criterion: mode.criterion(),
                    events: 0,
                    crashed_workers: parts.iter().filter(|p| p.crashed).count(),
                    spans_recovery: parts.iter().any(|p| p.spans_recovery),
                    result: Err(format!(
                        "window never completed: {}/{} worker records",
                        parts.len(),
                        n
                    )),
                };
                if tracing {
                    vspans.push(span_of(&verdict));
                }
                verdicts.push(verdict);
            }
            verdicts.sort_by_key(|v| (v.window, v.shard));
            (verdicts, vspans)
        });

        let results: Vec<WorkerResult> = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        let (verdicts, vspans) = verifier.join().expect("verifier thread panicked");
        (results, verdicts, vspans)
    });
    let wall_ns = t0.elapsed().as_nanos();

    worker_results.sort_by_key(|r| r.stats.worker);
    let latency = LatencySummary::from_histogram(&metrics.op_latency.snapshot());

    let mut monitor = MonitorReport {
        enabled: cfg.verify.monitor,
        ..MonitorReport::default()
    };
    if monitor.enabled {
        for r in &mut worker_results {
            let s = r.monitor_stats;
            monitor.ops_checked += s.ops_checked;
            monitor.folds += s.folds;
            monitor.escalations += s.escalations;
            monitor.cleared += s.cleared;
            monitor.violations += s.violations;
            monitor.kernel_unknown += s.kernel_unknown;
            monitor.records.extend(std::mem::take(&mut r.escalations));
            metrics.monitor_ns.add(r.mon_ns);
        }
        monitor.records.sort_by_key(|e| (e.worker, e.at_op));
        metrics.monitor_ops_checked.add(monitor.ops_checked);
        metrics.monitor_escalations.add(monitor.escalations);
    }

    let snap = stats.snapshot();
    let mut chaos = ChaosReport {
        active: sched.is_active(),
        dropped_per_node: snap.dropped_per_node.clone(),
        dup_per_node: snap.dup_per_node.clone(),
        ..ChaosReport::default()
    };
    let mut recoveries: Vec<RecoveryStats> = Vec::new();
    for r in &worker_results {
        let c = r.chaos;
        chaos.drops += c.drops;
        chaos.dups += c.dups;
        chaos.parked += c.parked;
        chaos.released += c.released;
        chaos.delayed += c.delayed;
        chaos.pruned += c.pruned;
        chaos.crash_discarded += c.crash_discarded;
        chaos.nacks += r.nacks_sent;
        chaos.repairs += r.repairs_sent;
        chaos.repaired_batches += r.repaired_batches;
        recoveries.extend(r.recoveries.iter().cloned());
    }
    recoveries.sort_by_key(|r| (r.crash_epoch, r.worker));
    chaos.recoveries = recoveries;

    let per_worker: Vec<WorkerStats> = worker_results.iter().map(|r| r.stats.clone()).collect();
    let batches_sent: u64 = per_worker.iter().map(|w| w.batches_sent).sum();
    let payloads_sent: u64 = per_worker.iter().map(|w| w.payloads_sent).sum();
    let total_ops: u64 = per_worker.iter().map(|w| w.ops).sum();
    let remote_reads: u64 = per_worker.iter().map(|w| w.remote_reads).sum();
    let windows_failed = verdicts.iter().filter(|v| v.result.is_err()).count();
    let final_state_hashes: Vec<u64> = coord
        .hashes
        .iter()
        .map(|h| h.load(Ordering::SeqCst))
        .collect();

    // per-epoch rows: same-epoch rows of different workers merge into
    // one deterministic dashboard row
    let mut epochs: Vec<EpochMetrics> = Vec::new();
    for r in &worker_results {
        for row in &r.rows {
            match epochs.iter_mut().find(|x| x.epoch == row.epoch) {
                Some(x) => x.absorb(row),
                None => epochs.push(*row),
            }
        }
    }
    epochs.sort_by_key(|x| x.epoch);

    let trace = tracing.then(|| {
        let mut parts: Vec<(Vec<Span>, u64)> = worker_results
            .iter_mut()
            .map(|r| std::mem::take(&mut r.trace))
            .collect();
        parts.push((verifier_spans, 0));
        FlightRecord::assemble(n as u32, cfg.seed, parts)
    });

    StoreReport {
        config: cfg.clone(),
        wall_ns,
        total_ops,
        ops_per_sec: if wall_ns == 0 {
            0.0
        } else {
            total_ops as f64 / (wall_ns as f64 / 1e9)
        },
        latency,
        msgs_sent: snap.msgs_sent,
        bytes_sent: snap.bytes_sent,
        batches_sent,
        payloads_sent,
        mean_batch: if batches_sent == 0 {
            0.0
        } else {
            payloads_sent as f64 / batches_sent as f64
        },
        remote_reads,
        windows: verdicts,
        windows_failed,
        drains_converged: coord.divergences.load(Ordering::Relaxed) == 0,
        final_state_hashes,
        monitor,
        chaos,
        per_worker,
        epochs,
        metrics: registry.snapshot(),
        trace,
    }
}

/// What a worker thread returns.
struct WorkerResult {
    stats: WorkerStats,
    chaos: cbm_net::chaos::ChaosCounters,
    nacks_sent: u64,
    repairs_sent: u64,
    repaired_batches: u64,
    recoveries: Vec<RecoveryStats>,
    /// Deterministic per-epoch counter rows, epoch order.
    rows: Vec<EpochMetrics>,
    /// Sealed trace spans plus the count truncated away by the caps.
    trace: (Vec<Span>, u64),
    /// Streaming-monitor counters (zero when the monitor is off).
    monitor_stats: MonitorStats,
    /// Every monitor escalation this worker recorded, in op order.
    escalations: Vec<MonitorEscalation>,
    /// Estimated wall time in monitor hot-path calls (strided sample).
    mon_ns: u64,
}

/// The per-mode streaming monitor a worker runs inline when
/// [`crate::config::VerifyConfig::monitor`] is set. The two arms
/// mirror [`Mode`]: `Causal` certifies against a delivery-order
/// shadow fold (CC), `Convergent` against an independent Lamport-
/// arbitrated fold (CCv). `Off` keeps the hot path untouched — every
/// hook is behind an `enabled()` check the branch predictor eats.
enum EngineMonitor<T: Adt> {
    Off,
    Cc(CcMonitor<T>),
    Ccv(CcvMonitor<T>),
}

impl<T: Adt + Clone> EngineMonitor<T> {
    fn new(adt: &T, cfg: &StoreConfig, me: usize) -> Self {
        if !cfg.verify.monitor {
            return EngineMonitor::Off;
        }
        let objects = cfg.objects.max(1);
        let n = cfg.workers.max(1);
        match cfg.mode {
            Mode::Causal => EngineMonitor::Cc(CcMonitor::new(adt.clone(), objects, n, me)),
            Mode::Convergent => EngineMonitor::Ccv(CcvMonitor::new(adt.clone(), objects, n, me)),
        }
    }

    #[inline]
    fn enabled(&self) -> bool {
        !matches!(self, EngineMonitor::Off)
    }

    #[inline]
    fn on_own(
        &mut self,
        slot: u32,
        input: &T::Input,
        output: &T::Output,
        time: u64,
    ) -> Option<Escalation> {
        match self {
            EngineMonitor::Off => None,
            EngineMonitor::Cc(m) => m.on_own(slot, input, output, time),
            EngineMonitor::Ccv(m) => m.on_own(slot, input, output, time),
        }
    }

    #[inline]
    fn on_delivered(&mut self, slot: u32, input: &T::Input, stamp: Stamp) -> Option<Escalation> {
        match self {
            EngineMonitor::Off => None,
            EngineMonitor::Cc(m) => m.on_delivered(slot, input, stamp),
            EngineMonitor::Ccv(m) => m.on_delivered(slot, input, stamp),
        }
    }

    #[inline]
    fn on_served_read(
        &mut self,
        slot: u32,
        input: &T::Input,
        output: &T::Output,
    ) -> Option<Escalation> {
        match self {
            EngineMonitor::Off => None,
            EngineMonitor::Cc(m) => m.on_served_read(slot, input, output),
            EngineMonitor::Ccv(m) => m.on_served_read(slot, input, output),
        }
    }

    fn on_drain(&mut self) {
        match self {
            EngineMonitor::Off => {}
            EngineMonitor::Cc(m) => m.on_drain(),
            EngineMonitor::Ccv(m) => m.on_drain(),
        }
    }

    fn install_slot(&mut self, slot: usize, state: &T::State) {
        match self {
            EngineMonitor::Off => {}
            EngineMonitor::Cc(m) => m.install_slot(slot, state),
            EngineMonitor::Ccv(m) => m.install_slot(slot, state),
        }
    }

    fn resync(&mut self) {
        match self {
            EngineMonitor::Off => {}
            EngineMonitor::Cc(m) => m.resync(),
            EngineMonitor::Ccv(m) => m.resync(),
        }
    }

    /// Seed the counters from a persisted snapshot (durable restart).
    fn seed_stats(&mut self, s: MonitorStats) {
        match self {
            EngineMonitor::Off => {}
            EngineMonitor::Cc(m) => m.seed_stats(s),
            EngineMonitor::Ccv(m) => m.seed_stats(s),
        }
    }

    fn stats(&self) -> MonitorStats {
        match self {
            EngineMonitor::Off => MonitorStats::default(),
            EngineMonitor::Cc(m) => m.stats(),
            EngineMonitor::Ccv(m) => m.stats(),
        }
    }
}

/// The chaos layer wrapped around a worker's transport endpoint,
/// generic over the underlying transport `E` (thread channels or TCP).
type WorkerEndpoint<T, E> =
    ChaosEndpoint<StoreMsg<<T as Adt>::Input, <T as Adt>::Output, <T as Adt>::State>, E>;

/// Ops retained for one crashed worker's disk-based tail fetch: from
/// its crash cut (where its own log replay lands) to its recovery
/// boundary, this helper records every op it applies to the shards it
/// was elected to serve, so the recoverer can fetch just the delta
/// instead of a full state transfer (`docs/DURABILITY.md`).
struct RetainBuf<I> {
    /// The crashed worker this buffer serves.
    for_worker: NodeId,
    /// `(shard, ops applied to it since the crash cut, apply order)`.
    ops: Vec<(u32, Vec<WireOp<I>>)>,
}

struct Worker<'a, T: Adt, E> {
    adt: &'a T,
    cfg: &'a StoreConfig,
    sched: &'a ChaosSchedule,
    map: &'a ShardMap,
    ep: WorkerEndpoint<T, E>,
    coord: &'a Coordinator,
    tx: mpsc::Sender<WindowRecord<T>>,
    me: NodeId,
    proto: InterestBatchCausalBroadcast<WireOp<T::Input>>,
    table: ObjectTable<T>,
    clock: LamportClock,
    recorder: WindowRecorder<T>,
    fault_sched: FaultSchedule,
    vtime: u64,
    issued: u64,
    crashed: bool,
    quiesce_idx: u64,
    /// Precomputed `sched.can_lose()` (checked on every flush).
    loss_capable: bool,
    /// Per-recipient envelopes flushed since the last completed drain
    /// (the per-edge repair logs).
    epoch_sent: Vec<Vec<BatchMsg<T::Input>>>,
    /// Read-routing table for the current epoch: a live replica per
    /// shard, recomputed at every boundary from the shared schedule.
    read_route: Vec<NodeId>,
    batches_delivered: u64,
    reads: u64,
    updates: u64,
    remote_reads: u64,
    reads_served: u64,
    nacks_sent: u64,
    repairs_sent: u64,
    repaired_batches: u64,
    discarded: u64,
    recoveries: Vec<RecoveryStats>,
    /// Durable epoch log appender (`Some` when `durable.log_dir` is
    /// set): own-op and delivered-batch records stream in, each drain
    /// cut seals with an fsync, boundary seals snapshot-compact on the
    /// configured cadence. See `docs/DURABILITY.md`.
    dlog: Option<EpochLog>,
    /// The per-run log directory (recovery replays from it).
    dlog_dir: Option<PathBuf>,
    /// In-run crash recovery goes through the disk ladder (own log
    /// replay + co-replica delta fetch) instead of full state transfer.
    disk_recovery: bool,
    /// Active retention buffers: one per crash span this worker is an
    /// elected delta helper for.
    retain: Vec<RetainBuf<T::Input>>,
    /// Recovery-phase handshakes that arrived while this worker was
    /// blocked on a different span's handshake (simultaneous spans).
    #[allow(clippy::type_complexity)]
    stash: Vec<(NodeId, StoreMsg<T::Input, T::Output, T::State>)>,
    /// Inline streaming monitor (`Off` unless `verify.monitor`).
    monitor: EngineMonitor<T>,
    /// Escalations the monitor raised, in op order.
    escalations: Vec<MonitorEscalation>,
    /// Does the current epoch follow a crash-recovery state transfer?
    /// Recorded on escalations: their windows are then anchored on the
    /// installed recovery states, the streaming analogue of the
    /// `spans_recovery` anchoring sampled windows get in `record.rs`.
    epoch_spans_recovery: bool,
    /// Monitor hot-path call counter (timing stride).
    mon_tick: u64,
    /// `objects - 1` when the object count is a power of two: lets the
    /// monitor hooks slot an object with a mask instead of a second
    /// integer division on the hot path.
    mon_slot_mask: Option<u32>,
    /// Estimated nanoseconds in monitor calls: every 64th call is
    /// timed and scaled, so steady state pays two `Instant::now()`s
    /// per 64 folds instead of per fold. An estimate, like every other
    /// wall-clock series.
    mon_ns: u64,
    metrics: &'a EngineMetrics,
    /// The run's shared start instant; span wall stamps are offsets
    /// from it so all lanes share one timeline.
    t0: Instant,
    tracer: EpochTracer,
    /// The epoch whose spans the worker is currently recording; spans
    /// created during a boundary drain still belong to the epoch the
    /// drain closes.
    trace_epoch: u64,
    /// Cumulative operation latency profile (feeds this worker's
    /// [`WorkerStats`]).
    hist: LatencyHistogram,
    /// Latencies since the last drain; merged into `hist` and the
    /// shared registry histogram at each drain rendezvous.
    hist_epoch: LatencyHistogram,
    /// Counter snapshot at the previous drain (per-epoch row deltas).
    prev: EpochSnap,
    rows: Vec<EpochMetrics>,
    /// Bytes of `knows` matrix headers shipped with batch envelopes.
    matrix_bytes: u64,
    /// Payload ops shipped, summed per **copy** (a batch multicast to
    /// `k` recipients adds `k * ops`; contrast `payloads_sent`, which
    /// counts per flush). With `matrix_bytes` this makes the byte
    /// accounting auditable: on a lossless run, `bytes_sent` of
    /// batch traffic is exactly `matrix_bytes + per_op_bytes *
    /// payload_copy_ops` (see `wire_accounting.rs`).
    payload_copy_ops: u64,
    peak_buffered: usize,
    peak_suppression: usize,
    peak_pending: usize,
}

impl<'a, T, E> Worker<'a, T, E>
where
    T: Adt + Clone + Sync,
    T::Input: PayloadCodec + Send + Sync,
    T::Output: Send,
    T::State: PayloadCodec + Send + Sync,
    E: EndpointApi<StoreMsg<T::Input, T::Output, T::State>>,
{
    #[allow(clippy::too_many_arguments)]
    fn new(
        adt: &'a T,
        cfg: &'a StoreConfig,
        sched: &'a ChaosSchedule,
        map: &'a ShardMap,
        ep: E,
        coord: &'a Coordinator,
        tx: mpsc::Sender<WindowRecord<T>>,
        metrics: &'a EngineMetrics,
        t0: Instant,
    ) -> Self {
        let me = ep.me();
        let n = ep.cluster_size();
        // the chaos RNG stream is decorrelated from the workload RNGs
        let chaos_seed = cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(me as u64)
            ^ 0xC4A0_5C4A_05C4_A05C;
        let tracing = cfg.obs.trace || sched.is_active();
        let dlog_dir = cfg.durable.log_dir.as_ref().map(PathBuf::from);
        // resume keeps the on-disk log/snapshot (the restart replays
        // them); every other run starts from truncated files
        let dlog = dlog_dir.as_ref().map(|d| {
            EpochLog::open(d, me, !cfg.durable.resume).expect("open the durable epoch log")
        });
        let mut ep = ChaosEndpoint::new(ep, chaos_seed);
        if tracing {
            // faults become trace events; the buffer drains at every
            // epoch seal, so the cap is effectively per epoch
            ep.record_events(if cfg.obs.epoch_cap == 0 {
                usize::MAX
            } else {
                cfg.obs.epoch_cap.saturating_mul(4)
            });
        }
        Worker {
            adt,
            cfg,
            sched,
            map,
            ep,
            coord,
            tx,
            me,
            proto: InterestBatchCausalBroadcast::new(me, n),
            table: ObjectTable::new(adt, cfg.objects.max(1), cfg.mode),
            clock: LamportClock::new(),
            recorder: WindowRecorder::new(),
            fault_sched: sched.link_plan.clone().into_schedule(),
            vtime: 0,
            issued: 0,
            crashed: false,
            quiesce_idx: 0,
            loss_capable: sched.can_lose(),
            epoch_sent: vec![Vec::new(); n],
            read_route: vec![0; map.shards()],
            batches_delivered: 0,
            reads: 0,
            updates: 0,
            remote_reads: 0,
            reads_served: 0,
            nacks_sent: 0,
            repairs_sent: 0,
            repaired_batches: 0,
            discarded: 0,
            recoveries: Vec::new(),
            disk_recovery: dlog.is_some() && cfg.durable.recover_from_disk,
            dlog,
            dlog_dir,
            retain: Vec::new(),
            stash: Vec::new(),
            monitor: EngineMonitor::new(adt, cfg, me),
            escalations: Vec::new(),
            epoch_spans_recovery: false,
            mon_tick: 0,
            mon_slot_mask: {
                let n = cfg.objects.max(1);
                n.is_power_of_two().then(|| (n - 1) as u32)
            },
            mon_ns: 0,
            metrics,
            t0,
            tracer: EpochTracer::new(
                tracing,
                TraceConfig {
                    cap_per_kind: cfg.obs.epoch_cap,
                    keep_epochs: cfg.obs.keep_epochs,
                },
            ),
            trace_epoch: 0,
            hist: LatencyHistogram::new(),
            hist_epoch: LatencyHistogram::new(),
            prev: EpochSnap::default(),
            rows: Vec::new(),
            matrix_bytes: 0,
            payload_copy_ops: 0,
            peak_buffered: 0,
            peak_suppression: 0,
            peak_pending: 0,
        }
    }

    /// Wall offset from the run's shared start instant.
    fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Cumulative counters feeding the per-epoch delta rows.
    fn counters_snap(&self) -> EpochSnap {
        let c = self.ep.counters();
        EpochSnap {
            ops: self.issued,
            updates: self.updates,
            remote_reads: self.remote_reads,
            batches: self.proto.batches_sent(),
            payloads: self.proto.payloads_sent(),
            delivered: self.batches_delivered,
            nacks: self.nacks_sent,
            repairs: self.repairs_sent,
            repaired_batches: self.repaired_batches,
            faults: c.drops + c.dups + c.parked + c.delayed + c.pruned + c.crash_discarded,
        }
    }

    /// At a drain that closes epoch `epoch`: difference the counter
    /// snapshots into the epoch's deterministic row, and feed the
    /// deltas (plus the epoch's latency buckets) into the shared
    /// registry — the "merge at drain rendezvous" half of the metrics
    /// contract.
    fn flush_epoch_metrics(&mut self, epoch: u64) {
        let cur = self.counters_snap();
        let p = self.prev;
        let row = EpochMetrics {
            epoch,
            ops: cur.ops - p.ops,
            updates: cur.updates - p.updates,
            remote_reads: cur.remote_reads - p.remote_reads,
            batches: cur.batches - p.batches,
            payloads: cur.payloads - p.payloads,
            delivered: cur.delivered - p.delivered,
            nacks: cur.nacks - p.nacks,
            repairs: cur.repairs - p.repairs,
            faults: cur.faults - p.faults,
            crashed: u64::from(self.sched.crashed_at(self.me, epoch)),
        };
        self.rows.push(row);
        self.prev = cur;
        let m = self.metrics;
        m.ops.add(row.ops);
        m.updates.add(row.updates);
        m.remote_reads.add(row.remote_reads);
        m.batches_flushed.add(row.batches);
        m.payloads_flushed.add(row.payloads);
        m.batches_delivered.add(row.delivered);
        m.nacks.add(row.nacks);
        m.repairs.add(row.repairs);
        m.repaired_batches
            .add(cur.repaired_batches - p.repaired_batches);
        m.faults.add(row.faults);
        let eh = std::mem::replace(&mut self.hist_epoch, LatencyHistogram::new());
        m.op_latency.merge_from(&eh);
        self.hist.merge(&eh);
    }

    /// Convert buffered fault events into `fault` spans and seal every
    /// epoch up to and including `epoch` — arrival order no longer
    /// matters after this, which is what makes the retained span set
    /// deterministic.
    fn seal_epoch(&mut self, epoch: u64) {
        if !self.tracer.enabled() {
            return;
        }
        let wall = self.now_ns();
        let every = self.sched.every_ops as u64;
        for ev in self.ep.take_events() {
            let mut sp = Span::new(SpanKind::Fault, self.me as u32, ev.vtime / every, ev.vtime);
            sp.peer = ev.to as i64;
            sp.a = ev.kind.code();
            sp.wall_ns = wall;
            self.tracer.push(sp);
        }
        self.tracer.seal(epoch);
    }

    /// The monitor's slot for `obj` — `ObjectTable::slot` semantics,
    /// with the modulo strength-reduced to a mask when possible.
    #[inline]
    fn mon_slot(&self, obj: u32) -> u32 {
        match self.mon_slot_mask {
            Some(m) => obj & m,
            None => self.table.slot(obj) as u32,
        }
    }

    /// Start the strided monitor timer: every 64th call is measured
    /// (and scaled back up in [`Worker::mon_elapsed`]).
    #[inline]
    fn mon_timer(&mut self) -> Option<Instant> {
        self.mon_tick = self.mon_tick.wrapping_add(1);
        (self.mon_tick & 63 == 0).then(Instant::now)
    }

    #[inline]
    fn mon_elapsed(&mut self, t: Option<Instant>) {
        if let Some(t) = t {
            self.mon_ns += (t.elapsed().as_nanos() as u64) << 6;
        }
    }

    /// Record one monitor escalation: report row + `monitor_escalate`
    /// trace span. `at_op` is this worker's op counter, the span's
    /// deterministic logical stamp.
    fn note_escalation(&mut self, at_op: u64, obj: Option<u32>, esc: Escalation) {
        let confirmed = esc.confirmed();
        if self.tracer.enabled() {
            let mut sp = Span::new(
                SpanKind::MonitorEscalate,
                self.me as u32,
                self.trace_epoch,
                at_op,
            );
            sp.shard = obj.map(|o| self.map.shard_of(o) as i64).unwrap_or(-1);
            sp.a = esc.pattern.code();
            sp.b = esc.events as u64;
            sp.flag = confirmed;
            sp.wall_ns = self.now_ns();
            self.tracer.push(sp);
        }
        self.escalations.push(MonitorEscalation {
            worker: self.me,
            epoch: self.trace_epoch,
            at_op,
            obj,
            pattern: esc.pattern.name(),
            events: esc.events,
            confirmed,
            verdict: match esc.verdict {
                Verdict::Sat => "sat",
                Verdict::Unsat => "unsat",
                Verdict::Unknown => "unknown",
            },
            spans_recovery: self.epoch_spans_recovery,
            detail: esc.witness.err().unwrap_or_default(),
        });
    }

    fn run<G>(mut self, gen: &G) -> WorkerResult
    where
        G: Fn(NodeId, u64, &mut StdRng) -> SpaceInput<T::Input> + Sync,
    {
        let mut rng = StdRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_add((self.me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let start = if self.cfg.durable.resume && self.dlog.is_some() {
            let r = self.resume_from_disk();
            // the op script is positional: burn the replayed prefix so
            // the RNG stream continues exactly where the halted run's
            // generator stood
            for i in 0..self.issued {
                let _ = gen(self.me, i, &mut rng);
            }
            r
        } else {
            0
        };
        let halt = self.cfg.durable.halt_at_boundary;
        let mut halted = false;
        for e in start..self.sched.n_epochs {
            if halt != 0 && e == halt && e > start {
                // deterministic power loss: perform the boundary cut
                // (drain + fsync'd seal) and stop without opening
                // epoch e's window — the sealed disks are what a
                // `resume` run restarts from
                self.halt_boundary(e);
                halted = true;
                break;
            }
            if e == start && e > 0 {
                // re-entry lands mid-run: the resumed cut already *is*
                // the boundary drain, so only the per-epoch setup runs
                self.vtime = e * self.sched.every_ops as u64;
                self.advance_faults();
                self.read_route = self.compute_read_route(e);
            } else {
                self.epoch_boundary(e);
            }
            let my_ops = self.sched.ops_of(self.me, e);
            let quota = self.window_quota(e, my_ops);
            for _ in 0..quota {
                self.step(gen, &mut rng);
            }
            if e > start {
                self.close_window(e);
            }
            for _ in quota..my_ops {
                self.step(gen, &mut rng);
            }
        }
        if !halted {
            self.final_drain();
            assert_eq!(
                self.issued as usize, self.cfg.ops_per_worker,
                "worker {} finished with an incomplete script",
                self.me
            );
        }

        let stats = WorkerStats {
            worker: self.me,
            ops: self.issued,
            reads: self.reads,
            updates: self.updates,
            remote_reads: self.remote_reads,
            reads_served: self.reads_served,
            batches_sent: self.proto.batches_sent(),
            payloads_sent: self.proto.payloads_sent(),
            batches_delivered: self.batches_delivered,
            latency: LatencySummary::from_histogram(&self.hist),
        };
        // counters not covered by the per-epoch rows flush once here
        let m = self.metrics;
        m.reads.add(self.reads);
        m.reads_served.add(self.reads_served);
        m.matrix_bytes.add(self.matrix_bytes);
        m.payload_copy_ops.add(self.payload_copy_ops);
        m.peak_buffered.raise(self.peak_buffered as u64);
        m.peak_suppression.raise(self.peak_suppression as u64);
        m.peak_pending.raise(self.peak_pending as u64);
        let tracer = std::mem::replace(
            &mut self.tracer,
            EpochTracer::new(false, TraceConfig::default()),
        );
        let (spans, mut dropped) = tracer.finish();
        dropped += self.ep.events_overflow();
        m.spans_dropped.add(dropped);
        WorkerResult {
            stats,
            chaos: self.ep.counters(),
            nacks_sent: self.nacks_sent,
            repairs_sent: self.repairs_sent,
            repaired_batches: self.repaired_batches,
            recoveries: std::mem::take(&mut self.recoveries),
            rows: std::mem::take(&mut self.rows),
            trace: (spans, dropped),
            monitor_stats: self.monitor.stats(),
            escalations: std::mem::take(&mut self.escalations),
            mon_ns: self.mon_ns,
        }
    }

    /// Cold fleet restart ([`crate::config::DurableConfig::resume`]):
    /// replay this worker's snapshot + log tail, agree fleet-wide on
    /// the boundary every disk sealed, install that cut, and return
    /// the epoch to resume from. Returns 0 (a fresh full run, disks
    /// wiped) when any disk is torn, stale, or disagreeing — the cut
    /// is a fleet-wide property, so resuming from mismatched epochs
    /// would replay mismatched script prefixes.
    fn resume_from_disk(&mut self) -> u64 {
        let dir = self.dlog_dir.clone().expect("resume implies a log dir");
        let rec = durable::recover::<T>(
            self.adt,
            &dir,
            self.me,
            self.cfg.objects.max(1),
            self.cfg.mode,
        )
        .ok()
        // only epoch-boundary cuts strictly inside the run are
        // resumable: mid-window cuts would land inside a recorded
        // window, and a final-drain seal means there is nothing left
        .filter(|r| r.seal.boundary && r.seal.epoch > 0 && r.seal.epoch < self.sched.n_epochs);
        let claim = rec.as_ref().map(|r| r.seal.epoch).unwrap_or(0);
        self.coord.resume_epoch[self.me].store(claim, Ordering::SeqCst);
        self.coord.barrier.wait(); // claims published
        let n = self.ep.cluster_size();
        let agreed =
            (0..n).all(|q| self.coord.resume_epoch[q].load(Ordering::SeqCst) == claim) && claim > 0;
        if !agreed {
            // fall back to a fresh run: wipe this worker's files so the
            // new run's log does not append onto a stale prefix
            self.dlog =
                Some(EpochLog::open(&dir, self.me, true).expect("reopen the epoch log fresh"));
            return 0;
        }
        let t = Instant::now();
        let rec = rec.expect("agreed implies a local replay");
        self.table.install(&rec.states);
        self.issued = rec.seal.issued;
        debug_assert_eq!(
            self.issued,
            claim * self.sched.every_ops as u64,
            "a fault-free boundary cut pins the script position"
        );
        self.clock = LamportClock::new();
        self.clock.observe(rec.seal.lamport);
        if self.monitor.enabled() {
            // shadows restart from the installed cut states; counters
            // continue from the persisted totals
            for &s in self.map.hosted(self.me) {
                let states = self.table.shard_snapshot(self.map.slots_of(s));
                for (slot, st) in self.map.slots_of(s).zip(states.iter()) {
                    self.monitor.install_slot(slot, st);
                }
            }
            self.monitor.seed_stats(rec.seal.monitor);
            self.monitor.resync();
        }
        // compact the resumed cut into a fresh snapshot: the log prefix
        // it replaced is gone and a second restart replays only this.
        // The delivered frontier restarts at zero with the fresh
        // causal layer — frontiers are per-run, the cut state is not.
        let seal = SealInfo {
            epoch: claim,
            boundary: true,
            issued: self.issued,
            lamport: self.clock.now(),
            delivered: vec![0; n],
            state_hash: self.table.state_hash(),
            monitor: self.monitor.stats(),
        };
        let snap = self.table.snapshot();
        let log = self.dlog.as_mut().expect("resume implies a log");
        log.snapshot(&seal, &snap)
            .expect("snapshot the resumed cut");
        // per-epoch delta rows and traces restart at the resumed cut
        self.prev = self.counters_snap();
        self.trace_epoch = claim;
        // the replay is a recovery row (helper = self: no co-replica
        // involved), which is what feeds the report's replayed-records
        // and log-bytes columns
        self.recoveries.push(RecoveryStats {
            worker: self.me,
            crash_epoch: claim,
            recover_epoch: claim,
            helper: self.me,
            synced_shards: 0,
            synced_objects: 0,
            sync_wall_ns: t.elapsed().as_nanos() as u64,
            replayed_records: rec.replayed_records,
            log_bytes: rec.log_bytes,
        });
        claim
    }

    /// Deterministic power loss at boundary `e`
    /// ([`crate::config::DurableConfig::halt_at_boundary`]): run the
    /// boundary cut — drain, fsync'd seal, compaction, convergence
    /// check, metrics row — then stop without opening epoch `e`'s
    /// window. Publishes the cut's state hash so the halted report
    /// still carries final-state evidence.
    fn halt_boundary(&mut self, e: u64) {
        self.vtime = e * self.sched.every_ops as u64;
        self.advance_faults();
        self.quiesce(false, (e, true));
        self.compact_and_check_convergence(e);
        self.seal_epoch(e - 1);
        self.flush_epoch_metrics(e - 1);
        self.coord.hashes[self.me].store(self.table.state_hash(), Ordering::SeqCst);
    }

    /// Own events this worker records in epoch `e`'s window.
    fn window_quota(&self, e: u64, my_ops: usize) -> usize {
        if e == 0 || self.crashed {
            0
        } else {
            self.cfg.verify.window_ops.min(my_ops)
        }
    }

    /// One operation of the hot loop.
    fn step<G>(&mut self, gen: &G, rng: &mut StdRng)
    where
        G: Fn(NodeId, u64, &mut StdRng) -> SpaceInput<T::Input> + Sync,
    {
        self.vtime += 1;
        self.advance_faults();
        self.pump();
        let op = gen(self.me, self.issued, rng);
        self.execute(op);
        self.issued += 1;
    }

    /// Apply due fault events and release due held-back sends.
    fn advance_faults(&mut self) {
        self.fault_sched.apply_due(&mut self.ep, self.vtime);
        self.ep.advance_to(self.vtime);
    }

    /// The live replica serving routed reads of `shard` during epoch
    /// `e` — deterministic: every worker derives the same table from
    /// the shared schedule.
    fn compute_read_route(&self, e: u64) -> Vec<NodeId> {
        (0..self.map.shards())
            .map(|s| {
                *self
                    .map
                    .replicas(s)
                    .iter()
                    .find(|&&q| !self.sched.crashed_at(q, e))
                    .expect("validated: every shard keeps a live replica")
            })
            .collect()
    }

    /// The rendezvous opening epoch `e`: drain, recover, compact,
    /// check convergence, open the next verification window.
    fn epoch_boundary(&mut self, e: u64) {
        self.vtime = e * self.sched.every_ops as u64;
        self.advance_faults();
        self.read_route = self.compute_read_route(e);
        if e == 0 {
            return; // the run starts mid-epoch-0; first drain is at e=1
        }
        let was_crashed = self.crashed;
        self.crashed = self.sched.crashed_at(self.me, e);
        if self.tracer.enabled() && !was_crashed && self.crashed {
            // the cut this drain establishes is the crash point
            let mut sp = Span::new(SpanKind::Crash, self.me as u32, self.trace_epoch, e);
            sp.wall_ns = self.now_ns();
            self.tracer.push(sp);
        }

        // the boundary drain: a worker crashing *at* this boundary
        // still participates normally — the drain is its cut
        self.quiesce(was_crashed, (e, true));

        // liveness flags for the coming epoch (deterministic: every
        // worker derives them from the shared schedule)
        for q in 0..self.ep.cluster_size() {
            self.ep.set_peer_crashed(q, self.sched.crashed_at(q, e));
        }

        // recovery state transfers at this boundary: per-shard, from
        // live co-replica helpers, anchored on the drain just completed
        let recoveries: Vec<CrashSpan> = self.sched.recoveries_at(e).copied().collect();
        self.epoch_spans_recovery = !recoveries.is_empty();
        if !recoveries.is_empty() {
            for span in &recoveries {
                if span.worker != self.me {
                    if self.disk_recovery {
                        self.serve_shard_sync_disk(span);
                    } else {
                        self.serve_shard_sync(span);
                    }
                    // envelopes stamped for the worker while it was
                    // down consumed delta state but were dropped, and
                    // its decode baselines restart from zero at resync:
                    // the next envelope on our edge to it must be a
                    // full knowledge refresh
                    self.proto.mark_refresh(span.worker);
                }
                if span.worker == self.me {
                    self.receive_shard_sync(span);
                }
            }
            self.coord.barrier.wait(); // transfers complete
            debug_assert!(self.stash.is_empty(), "unconsumed recovery handshakes");
        }

        // disk recovery: start retaining ops for each worker crashing
        // at this cut. Its own log replays exactly to this boundary,
        // so what this helper applies from here to the recovery
        // boundary is precisely the delta it will fetch. Activation
        // runs *after* the recovery block: delta ops installed above
        // are all pre-cut and must not leak into a new buffer.
        if self.disk_recovery && !self.crashed {
            let (sched, map) = (self.sched, self.map);
            for span in sched.crashes_at(e) {
                if span.worker == self.me {
                    continue;
                }
                let shards: Vec<(u32, Vec<WireOp<T::Input>>)> = map
                    .hosted(span.worker)
                    .iter()
                    .filter(|&&s| sched.shard_helper(span, map.replicas(s)) == Some(self.me))
                    .map(|&s| (s as u32, Vec::new()))
                    .collect();
                if !shards.is_empty() {
                    self.retain.push(RetainBuf {
                        for_worker: span.worker,
                        ops: shards,
                    });
                }
            }
        }

        self.compact_and_check_convergence(e);

        // epoch e-1 is over everywhere (its repair round included):
        // seal its spans and difference its metrics row
        self.seal_epoch(e - 1);
        self.flush_epoch_metrics(e - 1);
        self.trace_epoch = e;

        // open window e-1
        let wid = e - 1;
        if self.crashed {
            let _ = self
                .tx
                .send(WindowRecord::crashed(self.me, wid, self.table.snapshot()));
        } else {
            let quota = self.window_quota(e, self.sched.ops_of(self.me, e));
            let spans_recovery = !recoveries.is_empty();
            self.recorder
                .start(wid, quota, self.table.snapshot(), spans_recovery);
        }
    }

    /// Execute one operation against the local replica. Updates and
    /// hosted reads are wait-free; a read of a non-hosted object blocks
    /// on a routed request/reply (serving peers' traffic meanwhile).
    fn execute(&mut self, op: SpaceInput<T::Input>) {
        let t = Instant::now();
        let is_update = self.adt.is_update(&op.input);
        if !is_update && !self.map.hosts(self.me, self.map.shard_of(op.obj)) {
            let shard = self.map.shard_of(op.obj);
            let server = self.read_route[shard];
            let obj = op.obj;
            self.remote_read(op.obj, op.input);
            let lat = t.elapsed().as_nanos() as u64;
            self.hist_epoch.record(lat);
            if self.tracer.enabled() {
                let mut sp = Span::new(
                    SpanKind::ReadRoute,
                    self.me as u32,
                    self.trace_epoch,
                    self.issued,
                );
                sp.peer = server as i64;
                sp.shard = shard as i64;
                sp.a = obj as u64;
                sp.wall_ns = t.duration_since(self.t0).as_nanos() as u64;
                sp.dur_ns = lat;
                self.tracer.push(sp);
            }
            return;
        }
        // updates always execute at a replica of their object
        let obj = if is_update {
            self.map.localize(self.me, op.obj)
        } else {
            op.obj
        };
        let ts = Timestamp::new(self.clock.tick(), self.me);
        let output = self.table.output(self.adt, obj, &op.input);
        if is_update {
            self.updates += 1;
            self.table.apply_update(self.adt, obj, ts, &op.input);
            if let Some(log) = self.dlog.as_mut() {
                // reads are pure and replay from state; only the
                // applied update needs a log record
                log.log_own(obj, ts, &op.input)
                    .expect("append an own-update record");
            }
            if !self.retain.is_empty() {
                self.retain_op(obj, ts, &op.input);
            }
        } else {
            self.reads += 1;
        }
        if self.monitor.enabled() {
            // certify the output against the shadow state (queries)
            // and fold the update in; any mismatch escalates to the
            // exact checkers right here, on the implicated window
            let slot = self.mon_slot(obj);
            let mt = self.mon_timer();
            let esc = self.monitor.on_own(slot, &op.input, &output, ts.time);
            self.mon_elapsed(mt);
            if let Some(esc) = esc {
                self.note_escalation(self.issued, Some(obj), esc);
            }
        }
        let wseq = self.recorder.on_own(
            self.me,
            OwnEvent {
                obj,
                input: op.input.clone(),
                output,
                ts,
            },
        );
        if is_update {
            let mask = self.map.mask(self.map.shard_of(obj));
            if mask != InterestMask::solo(self.me) {
                // at least one other replica is interested
                let pending = self.proto.push(
                    WireOp {
                        obj,
                        input: op.input,
                        ts,
                        wseq,
                    },
                    mask,
                );
                self.peak_pending = self.peak_pending.max(pending);
                if pending >= self.cfg.batch.threshold() {
                    self.flush_mask(mask);
                }
            }
        }
        let lat = t.elapsed().as_nanos() as u64;
        self.hist_epoch.record(lat);
        if self.tracer.enabled() {
            let stride = self.cfg.obs.op_sample_every;
            // deterministic stride on the worker's own op counter
            if stride > 0 && self.issued.is_multiple_of(stride as u64) {
                let mut sp = Span::new(SpanKind::Op, self.me as u32, self.trace_epoch, self.issued);
                sp.shard = self.map.shard_of(obj) as i64;
                sp.a = obj as u64;
                sp.flag = is_update;
                sp.wall_ns = t.duration_since(self.t0).as_nanos() as u64;
                sp.dur_ns = lat;
                self.tracer.push(sp);
            }
        }
    }

    /// Route a read of a non-hosted object to a live replica of its
    /// shard and wait for the reply — serving every other message kind
    /// while waiting, so two workers reading across each other can
    /// never deadlock.
    fn remote_read(&mut self, obj: u32, input: T::Input) {
        let server = self.read_route[self.map.shard_of(obj)];
        self.remote_reads += 1;
        self.reads += 1;
        self.ep.send_reliable(
            server,
            StoreMsg::ReadReq { obj, input },
            read_req_bytes::<T::Input>(),
        );
        loop {
            match self.ep.recv() {
                Some((from, msg)) => {
                    if self.handle(from, msg).is_some() {
                        return;
                    }
                }
                None => unreachable!("mesh closed while a routed read was in flight"),
            }
        }
    }

    /// Seal and ship one mask's pending batch through the fault layer.
    fn flush_mask(&mut self, mask: InterestMask) {
        let envs = self.proto.flush_mask(mask);
        self.ship(envs);
    }

    /// Ship every pending batch, in first-push mask order (drains).
    fn flush_all(&mut self) {
        let envs = self.proto.flush_all();
        self.ship(envs);
    }

    /// The sender's knowledge as it stood *before* the flush that
    /// produced `envs` — the clock a `batch_flush` span carries, chosen
    /// so every matching `deliver` span's (post-stamp) clock dominates
    /// it. Reconstructed from the post-flush matrix by undoing the
    /// per-edge send increments, so unsampled flushes never pay for
    /// the matrix clone.
    fn preflush_clock(&self, envs: &[(NodeId, BatchMsg<T::Input>)]) -> Vec<u64> {
        let n = self.ep.cluster_size();
        let mut k = self.proto.knowledge();
        for (to, _) in envs {
            k[self.me * n + *to] -= 1;
        }
        k
    }

    /// Are `batch_flush`/`deliver` spans being recorded at all?
    fn trace_batches(&self) -> bool {
        self.tracer.enabled() && self.cfg.obs.batch_sample_every > 0
    }

    /// Deterministic envelope-span sampling: strided on the per-edge
    /// seq, so the flush and deliver halves of an envelope always
    /// sample together and the sampled set reproduces across runs.
    fn sample_batch(&self, seq: u64) -> bool {
        let stride = self.cfg.obs.batch_sample_every as u64;
        stride > 0 && seq.is_multiple_of(stride)
    }

    /// Send stamped envelopes through the fault layer, retaining each
    /// in its recipient's epoch repair log when faults can lose it —
    /// the one place the retention rule and byte accounting live, so
    /// the threshold-flush and drain-flush paths can never diverge.
    fn ship(&mut self, envs: Vec<(NodeId, BatchMsg<T::Input>)>) {
        // exact per-envelope delta header sizes (the dense era charged
        // a flat 8·n² here); sizes depend on flush-time knowledge, so
        // this counter — unlike message/batch/payload counts — is not
        // interleaving-deterministic
        self.matrix_bytes += envs
            .iter()
            .map(|(_, e)| e.knows.wire_len(e.sender, e.seq) as u64)
            .sum::<u64>();
        self.payload_copy_ops += envs
            .iter()
            .map(|(_, e)| e.payload.len() as u64)
            .sum::<u64>();
        let vc = (self.trace_batches() && envs.iter().any(|(_, e)| self.sample_batch(e.seq)))
            .then(|| (self.preflush_clock(&envs), self.now_ns()));
        for (to, env) in envs {
            let bytes = batch_bytes(&env);
            if let Some((vc, wall)) = &vc {
                if self.sample_batch(env.seq) {
                    let mut sp = Span::new(
                        SpanKind::BatchFlush,
                        self.me as u32,
                        self.trace_epoch,
                        env.seq,
                    );
                    sp.peer = to as i64;
                    sp.a = env.payload.len() as u64;
                    sp.vc = vc.clone();
                    sp.wall_ns = *wall;
                    self.tracer.push(sp);
                }
            }
            if self.loss_capable {
                // the repair log only matters when faults can lose
                // envelopes (and hence nacks can arrive); fault-free,
                // duplication-only, and latency-only runs skip the
                // clone and the retained memory on their hot path
                self.epoch_sent[to].push(env.clone());
            }
            self.ep.send(to, StoreMsg::Batch(env), bytes);
        }
    }

    /// Handle one inbound message; returns the output when it answers
    /// this worker's outstanding routed read.
    fn handle(
        &mut self,
        from: NodeId,
        msg: StoreMsg<T::Input, T::Output, T::State>,
    ) -> Option<T::Output> {
        match msg {
            StoreMsg::Batch(env) => self.deliver(env),
            StoreMsg::Repair(envs) => {
                for env in envs {
                    self.deliver(env);
                }
            }
            StoreMsg::Nack => {
                // retransmit the whole per-edge epoch log: which prefix
                // the nacker already delivered depends on interleaving,
                // and its duplicate suppression discards the rest — so
                // the repair size stays deterministic
                let tail: Vec<BatchMsg<T::Input>> = self.epoch_sent[from].clone();
                self.repairs_sent += 1;
                self.repaired_batches += tail.len() as u64;
                if self.tracer.enabled() {
                    // same logical key the nacker used for this edge:
                    // nacks are served within the drain that sent them
                    let n = self.ep.cluster_size() as u64;
                    let mut sp = Span::new(
                        SpanKind::NackRepair,
                        self.me as u32,
                        self.trace_epoch,
                        self.quiesce_idx * n + from as u64,
                    );
                    sp.peer = from as i64;
                    sp.a = tail.len() as u64;
                    sp.flag = true; // the repair half
                    sp.wall_ns = self.now_ns();
                    self.tracer.push(sp);
                }
                let bytes = repair_bytes(&tail);
                self.ep.send_reliable(from, StoreMsg::Repair(tail), bytes);
            }
            StoreMsg::ReadReq { obj, input } => {
                let output = self.table.output(self.adt, obj, &input);
                self.reads_served += 1;
                if self.monitor.enabled() {
                    // routed reads are certified where they are
                    // answered: the issuer has no replica (and no
                    // shadow) of this shard, the server has both —
                    // summed across workers this is what closes the
                    // 100%-of-ops accounting under partial replication
                    let slot = self.mon_slot(obj);
                    let mt = self.mon_timer();
                    let esc = self.monitor.on_served_read(slot, &input, &output);
                    self.mon_elapsed(mt);
                    if let Some(esc) = esc {
                        self.note_escalation(self.issued, Some(obj), esc);
                    }
                }
                self.ep.send_reliable(
                    from,
                    StoreMsg::ReadReply { output },
                    read_reply_bytes::<T::Output>(),
                );
            }
            StoreMsg::ReadReply { output } => return Some(output),
            StoreMsg::ShardSync(_) => {
                // a state transfer outside the recovery phase is a
                // protocol bug; tolerate and count rather than corrupt
                // the replica
                debug_assert!(false, "unexpected ShardSync outside recovery");
                self.discarded += 1;
            }
            StoreMsg::SyncReq { .. } | StoreMsg::ShardDelta(_) => {
                // the disk-recovery handshake lives entirely inside the
                // boundary's recovery phase; anywhere else is a bug
                debug_assert!(false, "recovery handshake outside the recovery phase");
                self.discarded += 1;
            }
        }
        None
    }

    /// Integrate everything that has arrived (non-blocking).
    fn pump(&mut self) -> bool {
        let mut got_any = false;
        while let Some((from, msg)) = self.ep.try_recv() {
            got_any = true;
            let reply = self.handle(from, msg);
            debug_assert!(reply.is_none(), "read reply with no outstanding request");
        }
        got_any
    }

    /// Record one applied update into every active retention buffer
    /// whose served shards include the op's shard — the material of a
    /// crashed worker's disk-recovery delta fetch.
    fn retain_op(&mut self, obj: u32, ts: Timestamp, input: &T::Input) {
        let shard = self.map.shard_of(obj) as u32;
        for buf in self.retain.iter_mut() {
            if let Some((_, ops)) = buf.ops.iter_mut().find(|(s, _)| *s == shard) {
                ops.push(WireOp {
                    obj,
                    input: input.clone(),
                    ts,
                    wseq: None,
                });
            }
        }
    }

    /// Deliver one batch envelope through the interest causal layer.
    fn deliver(&mut self, env: BatchMsg<T::Input>) {
        for batch in self.proto.on_receive(env) {
            self.batches_delivered += 1;
            let sender = batch.sender;
            if let Some(log) = self.dlog.as_mut() {
                // one record per causally-delivered batch: replay
                // re-applies it in the same delivery order
                log.log_batch(sender, batch.seq, &batch.payload)
                    .expect("append a delivered-batch record");
            }
            if self.trace_batches() && self.sample_batch(batch.seq) {
                let mut sp = Span::new(
                    SpanKind::Deliver,
                    self.me as u32,
                    self.trace_epoch,
                    batch.seq,
                );
                sp.peer = sender as i64;
                sp.a = batch.payload.len() as u64;
                // envelopes carry only knowledge *deltas* now, so the
                // span stamps the receiver's post-fold knowledge
                // snapshot instead: it dominates the envelope's full
                // matrix (the fold just merged it in), so it still
                // dominates the matching flush span's pre-flush clock
                // — the pairing invariant the trace checker verifies
                sp.vc = self.proto.knowledge();
                sp.wall_ns = self.now_ns();
                self.tracer.push(sp);
            }
            for op in batch.payload {
                self.clock.observe(op.ts.time);
                self.table.apply_update(self.adt, op.obj, op.ts, &op.input);
                if self.monitor.enabled() {
                    let slot = self.mon_slot(op.obj);
                    let mt = self.mon_timer();
                    let esc = self.monitor.on_delivered(
                        slot,
                        &op.input,
                        Stamp::new(op.ts.time, op.ts.pid),
                    );
                    self.mon_elapsed(mt);
                    if let Some(esc) = esc {
                        self.note_escalation(self.issued, Some(op.obj), esc);
                    }
                }
                self.recorder.on_remote(sender, op.wseq);
                if !self.retain.is_empty() {
                    self.retain_op(op.obj, op.ts, &op.input);
                }
            }
        }
        self.peak_buffered = self.peak_buffered.max(self.proto.buffered());
        self.peak_suppression = self.peak_suppression.max(self.proto.suppression_len());
    }

    /// This worker's cut descriptor for a durable seal: everything a
    /// restart needs to continue from the cut (script position,
    /// Lamport clock, delivered frontier, state hash, monitor
    /// counters).
    fn seal_info(&self, epoch: u64, boundary: bool) -> SealInfo {
        SealInfo {
            epoch,
            boundary,
            issued: self.issued,
            lamport: self.clock.now(),
            delivered: self.proto.delivered_edges().to_vec(),
            state_hash: self.table.state_hash(),
            monitor: self.monitor.stats(),
        }
    }

    /// Seal the just-completed cut in the durable epoch log (one
    /// fsync), and compact into a snapshot when the boundary cadence
    /// says so. No-op without a log.
    fn durable_seal(&mut self, epoch: u64, boundary: bool) {
        if self.dlog.is_none() {
            return;
        }
        let seal = self.seal_info(epoch, boundary);
        let every = self.cfg.durable.snapshot_every;
        let log = self.dlog.as_mut().expect("checked above");
        let compact = log.seal(&seal, every).expect("seal the epoch log");
        if compact {
            let snap = self.table.snapshot();
            self.dlog
                .as_mut()
                .expect("checked above")
                .snapshot(&seal, &snap)
                .expect("write the epoch-log snapshot");
        }
    }

    /// The drain: flush, publish the per-edge counts, then receive
    /// until every published envelope on every inbound edge has been
    /// delivered — nacking edges whose envelopes were lost to faults,
    /// and serving peers' nacks and routed reads until *everyone* is
    /// complete. A worker that spent the last epoch crashed
    /// (`discard`) drains and discards instead: its state is
    /// re-established by the recovery transfer, not by late delivery.
    ///
    /// `cut` is the drain's identity for the durable epoch log:
    /// `(epoch, is_epoch_boundary)`. Live drains seal it with an fsync
    /// once the closing barrier confirms the cut is complete
    /// everywhere — the cut, not the record append, is the durability
    /// unit (`docs/DURABILITY.md`).
    fn quiesce(&mut self, discard: bool, cut: (u64, bool)) {
        let t = Instant::now();
        let n = self.ep.cluster_size();
        let parity = (self.quiesce_idx % 2) as usize;
        self.quiesce_idx += 1;
        if !discard {
            self.flush_all();
            self.ep.flush_delayed(); // held-back sends belong to this cut
        }
        // cut token behind everything this worker actually transmitted:
        // receivers wait for it before judging per-edge gaps, so an
        // asynchronous transport's in-flight frames are never mistaken
        // for faulted ones (no-op on the synchronous thread transport)
        self.ep.send_marker();
        for r in 0..n {
            if r != self.me {
                self.coord.sent_edges[self.me * n + r]
                    .store(self.proto.edge_sent(r), Ordering::SeqCst);
            }
        }
        // arrival: spin (serving traffic) until every worker has
        // published its cut counts — only then are gaps meaningful
        self.coord.arrive[parity].fetch_add(1, Ordering::SeqCst);
        if discard {
            while self.coord.arrive[parity].load(Ordering::SeqCst) < n as u64 {
                while self.ep.try_recv().is_some() {
                    self.discarded += 1;
                }
                std::thread::yield_now();
            }
            while self.ep.try_recv().is_some() {
                self.discarded += 1;
            }
            self.coord.done[parity].fetch_add(1, Ordering::SeqCst);
            while self.coord.done[parity].load(Ordering::SeqCst) < n as u64 {
                while self.ep.try_recv().is_some() {
                    self.discarded += 1;
                }
                std::thread::yield_now();
            }
        } else {
            while self.coord.arrive[parity].load(Ordering::SeqCst) < n as u64 {
                if !self.pump() {
                    std::thread::yield_now();
                }
            }
            // settle the transport: every peer has published its cut
            // and sent its marker behind its final transmissions, so
            // once all markers are in, what has not arrived never will
            while !(0..n).all(|q| q == self.me || self.ep.marker_count(q) >= self.quiesce_idx) {
                if !self.pump() {
                    std::thread::yield_now();
                }
            }
            // everything sent for this cut is on the wire; whatever was
            // not *received* after this pump was dropped or parked by
            // the fault layer — nack each such edge once. The received
            // count (delivered + buffered) is used rather than the
            // delivered count: an envelope stuck behind a lost
            // dependency counts as received, so the nack set is a pure
            // function of the loss pattern, not of interleaving.
            self.pump();
            for q in 0..n {
                if q != self.me
                    && self.proto.received_from(q)
                        < self.coord.sent_edges[q * n + self.me].load(Ordering::SeqCst)
                {
                    self.nacks_sent += 1;
                    if self.tracer.enabled() {
                        // logical key shared with the serving side:
                        // drain number × cluster + the stalled edge
                        let mut sp = Span::new(
                            SpanKind::NackRepair,
                            self.me as u32,
                            self.trace_epoch,
                            self.quiesce_idx * n as u64 + q as u64,
                        );
                        sp.peer = q as i64;
                        sp.flag = false; // the nack half
                        sp.wall_ns = self.now_ns();
                        self.tracer.push(sp);
                    }
                    self.ep.send_reliable(q, StoreMsg::Nack, nack_bytes());
                }
            }
            let mut done_marked = false;
            loop {
                let got_any = self.pump();
                if !done_marked && (0..n).all(|q| q == self.me || !self.missing_from(q)) {
                    done_marked = true;
                    self.coord.done[parity].fetch_add(1, Ordering::SeqCst);
                }
                if done_marked && self.coord.done[parity].load(Ordering::SeqCst) >= n as u64 {
                    break;
                }
                if !got_any {
                    std::thread::yield_now();
                }
            }
        }
        // reset the other parity slots for the next drain while every
        // worker is still on this side of the closing barrier
        if self.me == 0 {
            self.coord.arrive[1 - parity].store(0, Ordering::SeqCst);
            self.coord.done[1 - parity].store(0, Ordering::SeqCst);
        }
        self.coord.barrier.wait(); // globally drained
        if !discard {
            // seal the cut on disk: every worker's drain is complete,
            // so a restart replaying to this seal lands on a
            // fleet-wide consistent cut. Crashed-discard drains write
            // nothing — their log stays frozen at the crash cut.
            self.durable_seal(cut.0, cut.1);
        }
        // the cut is complete everywhere: the repair logs are dead
        // weight, and parked sends' payloads have been repaired (the
        // partition itself stays in force for post-drain traffic)
        for log in self.epoch_sent.iter_mut() {
            log.clear();
        }
        self.ep.prune_parked();
        self.metrics.drains.add(1);
        if self.tracer.enabled() {
            let mut sp = Span::new(
                SpanKind::Drain,
                self.me as u32,
                self.trace_epoch,
                self.quiesce_idx,
            );
            sp.a = self.batches_delivered; // cumulative at the cut
            sp.b = self.nacks_sent;
            sp.flag = !discard;
            sp.wall_ns = t.duration_since(self.t0).as_nanos() as u64;
            sp.dur_ns = t.elapsed().as_nanos() as u64;
            self.tracer.push(sp);
        }
    }

    /// Has `q` published envelopes on its edge to us that we have not
    /// delivered?
    fn missing_from(&self, q: NodeId) -> bool {
        self.proto.delivered_edges()[q]
            < self.coord.sent_edges[q * self.ep.cluster_size() + self.me].load(Ordering::SeqCst)
    }

    /// Helper side of a recovery: ship this worker's post-drain states
    /// of every shard it was elected to serve for `span` (reliable).
    fn serve_shard_sync(&mut self, span: &CrashSpan) {
        let shards: Vec<(u32, Vec<T::State>)> = self
            .map
            .hosted(span.worker)
            .iter()
            .filter(|&&s| self.sched.shard_helper(span, self.map.replicas(s)) == Some(self.me))
            .map(|&s| (s as u32, self.table.shard_snapshot(self.map.slots_of(s))))
            .collect();
        if shards.is_empty() {
            return;
        }
        let payload = ShardSyncPayload {
            shards,
            lamport: self.clock.now(),
        };
        let bytes = sync_bytes(&payload);
        self.ep
            .send_reliable(span.worker, StoreMsg::ShardSync(Box::new(payload)), bytes);
    }

    /// Disk-mode helper side: wait for the recoverer's handshake, then
    /// ship either the retained op delta past its replayed crash cut
    /// (`full = false`) or — when its disk was torn or stale — the
    /// full post-drain shard states, exactly as the memory path does.
    fn serve_shard_sync_disk(&mut self, span: &CrashSpan) {
        let elected = self
            .map
            .hosted(span.worker)
            .iter()
            .any(|&s| self.sched.shard_helper(span, self.map.replicas(s)) == Some(self.me));
        let buf = self
            .retain
            .iter()
            .position(|b| b.for_worker == span.worker)
            .map(|i| self.retain.swap_remove(i));
        if !elected {
            debug_assert!(buf.is_none(), "a retention buffer with no election");
            return;
        }
        if self.wait_sync_req(span.worker) {
            self.serve_shard_sync(span);
        } else {
            let buf = buf.expect("every elected helper activated a retention buffer");
            let payload = ShardDeltaPayload {
                shards: buf.ops,
                lamport: self.clock.now(),
            };
            let bytes = delta_bytes(&payload);
            self.ep
                .send_reliable(span.worker, StoreMsg::ShardDelta(Box::new(payload)), bytes);
        }
    }

    /// Block until `worker`'s recovery handshake arrives and return its
    /// `full` flag. Handshakes from *other* simultaneous recoverers are
    /// stashed for the spans served later in the boundary's span list;
    /// nothing else can arrive — every worker is inside the recovery
    /// phase, past the drain's closing barrier.
    fn wait_sync_req(&mut self, worker: NodeId) -> bool {
        if let Some(i) = self
            .stash
            .iter()
            .position(|(from, m)| *from == worker && matches!(m, StoreMsg::SyncReq { .. }))
        {
            match self.stash.swap_remove(i).1 {
                StoreMsg::SyncReq { full } => return full,
                _ => unreachable!("position matched a SyncReq"),
            }
        }
        loop {
            match self.ep.recv() {
                Some((from, StoreMsg::SyncReq { full })) if from == worker => return full,
                Some(other) => self.stash.push(other),
                None => unreachable!("mesh closed during the recovery handshake"),
            }
        }
    }

    /// Recovering side: the recovery ladder of `docs/DURABILITY.md`.
    /// Without a disk, install every hosted shard's state from its
    /// helper (full transfer). With one, replay the own snapshot + log
    /// tail first — a clean replay to the crash cut downgrades the
    /// fetch to per-shard op deltas; a torn or stale disk falls back to
    /// the full transfer. Either way the causal layer then resyncs
    /// straight off the drain's published edge matrix — the drain *is*
    /// the cut, so no envelope replay is needed.
    fn receive_shard_sync(&mut self, span: &CrashSpan) {
        let t = Instant::now();
        let expected: std::collections::HashSet<NodeId> = self
            .map
            .hosted(self.me)
            .iter()
            .map(|&s| {
                self.sched
                    .shard_helper(span, self.map.replicas(s))
                    .expect("validated: every hosted shard has a live helper")
            })
            .collect();
        let mut full = true;
        let (mut replayed_records, mut log_bytes) = (0u64, 0u64);
        if self.disk_recovery {
            // rung 1: replay this worker's own disk, exactly as a real
            // process restart would (the in-memory replica is
            // discarded, not reused)
            let dir = self.dlog_dir.as_ref().expect("disk recovery has a dir");
            match durable::recover::<T>(
                self.adt,
                dir,
                self.me,
                self.cfg.objects.max(1),
                self.cfg.mode,
            ) {
                Ok(rec) if rec.seal.boundary && rec.seal.epoch == span.crash_epoch => {
                    debug_assert_eq!(
                        rec.seal.issued, self.issued,
                        "the sealed script position matches the paused script"
                    );
                    let mut table =
                        ObjectTable::new(self.adt, self.cfg.objects.max(1), self.cfg.mode);
                    table.install(&rec.states);
                    self.table = table;
                    self.clock = LamportClock::new();
                    self.clock.observe(rec.seal.lamport);
                    replayed_records = rec.replayed_records;
                    log_bytes = rec.log_bytes;
                    full = false;
                }
                // torn, corrupt, or sealed at the wrong cut: rung 3,
                // the full co-replica state transfer
                _ => {}
            }
            // handshake each helper (deterministic order) *before*
            // blocking on their responses
            let mut helpers: Vec<NodeId> = expected.iter().copied().collect();
            helpers.sort_unstable();
            for h in helpers {
                self.ep
                    .send_reliable(h, StoreMsg::SyncReq { full }, sync_req_bytes());
            }
        }
        let (mut synced_shards, mut synced_objects) = (0u64, 0u64);
        let mut served = 0usize;
        while served < expected.len() {
            match self.ep.recv() {
                Some((from, StoreMsg::ShardSync(payload))) => {
                    debug_assert!(expected.contains(&from), "sync from a non-helper");
                    debug_assert!(full, "a full transfer was not requested");
                    let p = *payload;
                    for (s, states) in &p.shards {
                        synced_shards += 1;
                        synced_objects += states.len() as u64;
                        self.table
                            .install_slots(self.map.slots_of(*s as usize), states);
                        if self.monitor.enabled() {
                            // the monitor rebuilds from the same
                            // per-shard transfer: each shadow restarts
                            // at the installed state with an empty
                            // ring, so no post-recovery escalation can
                            // rebuild a window containing pre-crash
                            // placeholder events
                            for (slot, st) in self.map.slots_of(*s as usize).zip(states.iter()) {
                                self.monitor.install_slot(slot, st);
                            }
                        }
                    }
                    self.clock.observe(p.lamport);
                    served += 1;
                }
                Some((from, StoreMsg::ShardDelta(payload))) => {
                    // rung 2: the outage-window op delta, applied onto
                    // the cut state the disk replay just installed
                    debug_assert!(expected.contains(&from), "delta from a non-helper");
                    debug_assert!(!full, "a delta was not requested");
                    let p = *payload;
                    for (_, ops) in &p.shards {
                        synced_shards += 1;
                        synced_objects += ops.len() as u64;
                        for op in ops {
                            self.clock.observe(op.ts.time);
                            self.table.apply_update(self.adt, op.obj, op.ts, &op.input);
                        }
                    }
                    self.clock.observe(p.lamport);
                    served += 1;
                }
                Some((from, msg @ StoreMsg::SyncReq { .. })) => {
                    // another simultaneous recoverer's handshake, for a
                    // span this worker serves later in the span list
                    self.stash.push((from, msg));
                }
                Some(_) => self.discarded += 1, // pre-recovery straggler
                None => unreachable!("mesh closed during recovery"),
            }
        }
        if self.disk_recovery && !full && self.monitor.enabled() {
            // the delta path rebuilt the table, not the shadows: seed
            // every hosted slot from the final recovered states (same
            // contract as the install_slot calls on the full path)
            for &s in self.map.hosted(self.me) {
                let states = self.table.shard_snapshot(self.map.slots_of(s));
                for (slot, st) in self.map.slots_of(s).zip(states.iter()) {
                    self.monitor.install_slot(slot, st);
                }
            }
        }
        let n = self.ep.cluster_size();
        let delivered: Vec<u64> = (0..n)
            .map(|j| self.coord.sent_edges[j * n + self.me].load(Ordering::SeqCst))
            .collect();
        let matrix: Vec<u64> = (0..n * n)
            .map(|i| self.coord.sent_edges[i].load(Ordering::SeqCst))
            .collect();
        self.proto.resync(&delivered, &matrix);
        self.monitor.resync();
        for log in self.epoch_sent.iter_mut() {
            log.clear(); // pre-crash sends are all below the cut
        }
        if self.dlog.is_some() {
            // the log froze at the crash cut and the outage left a gap
            // it can never describe; compact the recovered cut into a
            // fresh snapshot so appending resumes from a sound base
            let seal = self.seal_info(span.recover_epoch, true);
            let snap = self.table.snapshot();
            if let Some(dlog) = self.dlog.as_mut() {
                dlog.snapshot(&seal, &snap)
                    .expect("snapshot the recovered cut");
            }
        }
        if self.tracer.enabled() {
            let mut sp = Span::new(
                SpanKind::Recover,
                self.me as u32,
                self.trace_epoch,
                span.recover_epoch,
            );
            sp.peer = span.helper as i64;
            sp.a = synced_shards;
            sp.b = synced_objects;
            sp.wall_ns = t.duration_since(self.t0).as_nanos() as u64;
            sp.dur_ns = t.elapsed().as_nanos() as u64;
            self.tracer.push(sp);
        }
        self.recoveries.push(RecoveryStats {
            worker: self.me,
            crash_epoch: span.crash_epoch,
            recover_epoch: span.recover_epoch,
            helper: span.helper,
            synced_shards,
            synced_objects,
            sync_wall_ns: t.elapsed().as_nanos() as u64,
            replayed_records,
            log_bytes,
        });
    }

    /// A worker met its window quota: drain so the window is closed
    /// everywhere, then hand the record to the verifier. Crashed
    /// workers already sent their placeholder at the open. `e` is the
    /// epoch whose window closes (the mid-epoch cut's log identity).
    fn close_window(&mut self, e: u64) {
        self.quiesce(self.crashed, (e, false));
        if self.recorder.active() {
            let record = self.recorder.finish(self.me);
            // a failed channel send only means the verifier died;
            // surface that at join time, not here
            let _ = self.tx.send(record);
        }
    }

    /// Teardown: one last drain and convergence check. Every crash
    /// span has recovered by now (the schedule guarantees it), so all
    /// replicas participate and publish their final state hashes.
    fn final_drain(&mut self) {
        self.vtime = self.sched.n_epochs * self.sched.every_ops as u64;
        self.advance_faults();
        debug_assert!(!self.crashed, "schedule must recover everyone");
        self.quiesce(false, (self.sched.n_epochs, true));
        self.compact_and_check_convergence(self.sched.n_epochs);
        // seal past n_epochs-1 so fault events stamped at the final
        // boundary tick (epoch index n_epochs) are retained too
        self.seal_epoch(self.sched.n_epochs);
        self.flush_epoch_metrics(self.sched.n_epochs - 1);
        // the full-space hash feeds only the report's final_state_hashes
        // (read after the threads join), so it is computed once here
        // rather than at every drain; intermediate convergence checks
        // run on the per-shard hashes
        self.coord.hashes[self.me].store(self.table.state_hash(), Ordering::SeqCst);
    }

    /// At a global drain: compact arbitration logs, publish this
    /// replica's per-hosted-shard state hashes, and (first live
    /// replica of each shard, convergent mode) record a divergence if
    /// the shard's live replicas disagree.
    fn compact_and_check_convergence(&mut self, e: u64) {
        if !self.crashed {
            self.table.compact();
            // same cut, same argument: every future stamp exceeds
            // every folded one, so the monitor's shadow rings compact
            // into their seeds here too
            self.monitor.on_drain();
        }
        let shards = self.map.shards();
        for &s in self.map.hosted(self.me) {
            self.coord.shard_hashes[self.me * shards + s].store(
                self.table.shard_hash(self.map.slots_of(s)),
                Ordering::SeqCst,
            );
        }
        self.coord.barrier.wait(); // hashes published
        if self.cfg.mode == Mode::Convergent {
            for s in 0..shards {
                let live: Vec<NodeId> = self
                    .map
                    .replicas(s)
                    .iter()
                    .copied()
                    .filter(|&q| !self.sched.crashed_at(q, e))
                    .collect();
                if live.first() == Some(&self.me) {
                    let h0 = self.coord.shard_hashes[self.me * shards + s].load(Ordering::SeqCst);
                    if live.iter().any(|&q| {
                        self.coord.shard_hashes[q * shards + s].load(Ordering::SeqCst) != h0
                    }) {
                        self.coord.divergences.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        }
    }
}
