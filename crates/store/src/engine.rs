//! The live engine: replica worker threads over [`ThreadNet`].
//!
//! ## Execution model
//!
//! Each of `workers` threads is a **full replica** of the sharded
//! object space. A worker's loop is wait-free: it generates its next
//! operation, answers queries from its local object table, applies and
//! queues updates for the batched causal broadcast, and integrates
//! whatever peers' batches have arrived — never blocking on another
//! replica (§6.1's process model under a real scheduler).
//!
//! ## Deterministic rendezvous
//!
//! All workers issue the same number of operations and pause at the
//! same *operation indexes* (`verify.every_ops`) for a drain: flush
//! pending batches, publish cumulative batch counts, and receive until
//! every published batch is delivered. Because the pause points are
//! counted in operations — not wall time — the set of flushed batches
//! (and therefore `msgs_sent`) is a pure function of the configuration
//! and seed, independent of thread interleaving; only wall-clock
//! numbers vary between runs.
//!
//! After each drain the workers record a bounded window of subsequent
//! events; the verifier thread rebuilds each frozen window and checks
//! it against the mode's criterion (see [`crate::record`]). Teardown
//! reuses the same drain and the transport's graceful
//! [`Endpoint::shutdown`].

use crate::config::{Mode, StoreConfig};
use crate::objects::ObjectTable;
use crate::record::{verify_window, OwnEvent, WindowRecord, WindowRecorder};
use crate::stats::{summarize_latencies, StoreReport, WindowVerdict, WorkerStats};
use crate::wire::{batch_bytes, BatchMsg, WireOp};
use cbm_adt::space::{ObjectSpace, SpaceInput};
use cbm_adt::Adt;
use cbm_net::broadcast::BatchCausalBroadcast;
use cbm_net::clock::{LamportClock, Timestamp};
use cbm_net::thread_net::{Endpoint, ThreadNet};
use cbm_net::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Barrier;
use std::time::Instant;

/// Shared rendezvous state.
struct Coordinator {
    barrier: Barrier,
    /// Cumulative flushed-batch count per worker, published at drains.
    sent: Vec<AtomicU64>,
    /// Per-worker state hash at the latest drain point.
    hashes: Vec<AtomicU64>,
    /// Drain points at which replicas diverged (convergent mode).
    divergences: AtomicU64,
}

impl Coordinator {
    fn new(n: usize) -> Self {
        Coordinator {
            barrier: Barrier::new(n),
            sent: (0..n).map(|_| AtomicU64::new(0)).collect(),
            hashes: (0..n).map(|_| AtomicU64::new(0)).collect(),
            divergences: AtomicU64::new(0),
        }
    }
}

/// Run the engine: `gen(worker, op_index, rng)` supplies each
/// operation. Returns the full report; panics if a worker thread
/// panics (a consistency monitor tripping is a test failure, not data).
pub fn run<T, G>(adt: &T, cfg: &StoreConfig, gen: G) -> StoreReport
where
    T: Adt + Clone + Send + Sync,
    T::Input: Send + Sync,
    T::Output: Send,
    T::State: Send + Sync,
    G: Fn(NodeId, u64, &mut StdRng) -> SpaceInput<T::Input> + Sync,
{
    let n = cfg.workers.max(1);
    let net: ThreadNet<BatchMsg<T::Input>> = ThreadNet::new(n);
    let stats = net.stats();
    let endpoints = net.into_endpoints();
    let coord = Coordinator::new(n);
    let (tx, rx) = mpsc::channel::<WindowRecord<T>>();

    let t0 = Instant::now();
    let (mut worker_results, verdicts) = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n);
        for ep in endpoints {
            let tx = tx.clone();
            let coord = &coord;
            let gen = &gen;
            handles.push(s.spawn(move || Worker::new(adt, cfg, ep, coord, tx).run(gen)));
        }
        drop(tx); // verifier's channel closes once every worker exits

        // the verifier thread: assemble frozen windows, verify, report
        let space = ObjectSpace::new(adt.clone(), cfg.objects.max(1));
        let mode = cfg.mode;
        let sample_every = cfg.verify.sample_every.max(1);
        let verifier = s.spawn(move || {
            let mut pending: Vec<(u64, Vec<WindowRecord<T>>)> = Vec::new();
            let mut verdicts: Vec<WindowVerdict> = Vec::new();
            while let Ok(rec) = rx.recv() {
                let wid = rec.window;
                let slot = match pending.iter().position(|(w, _)| *w == wid) {
                    Some(i) => i,
                    None => {
                        pending.push((wid, Vec::new()));
                        pending.len() - 1
                    }
                };
                pending[slot].1.push(rec);
                if pending[slot].1.len() == n {
                    let (_, mut parts) = pending.swap_remove(slot);
                    parts.sort_by_key(|p| p.worker);
                    let result = verify_window(&space, mode, sample_every, &parts);
                    verdicts.push(WindowVerdict {
                        window: wid,
                        criterion: mode.criterion(),
                        events: *result.as_ref().unwrap_or(&0),
                        result: result.map(|_| ()),
                    });
                }
            }
            for (wid, parts) in pending {
                verdicts.push(WindowVerdict {
                    window: wid,
                    criterion: mode.criterion(),
                    events: 0,
                    result: Err(format!(
                        "window never completed: {}/{} worker records",
                        parts.len(),
                        n
                    )),
                });
            }
            verdicts.sort_by_key(|v| v.window);
            verdicts
        });

        let results: Vec<WorkerResult> = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        let verdicts = verifier.join().expect("verifier thread panicked");
        (results, verdicts)
    });
    let wall_ns = t0.elapsed().as_nanos();

    worker_results.sort_by_key(|r| r.stats.worker);
    let mut all_lat: Vec<u64> = Vec::new();
    for r in &mut worker_results {
        all_lat.append(&mut r.latencies);
    }
    let latency = summarize_latencies(&mut all_lat);
    let per_worker: Vec<WorkerStats> = worker_results.into_iter().map(|r| r.stats).collect();

    let batches_sent: u64 = per_worker.iter().map(|w| w.batches_sent).sum();
    let payloads_sent: u64 = per_worker.iter().map(|w| w.payloads_sent).sum();
    let total_ops: u64 = per_worker.iter().map(|w| w.ops).sum();
    let windows_failed = verdicts.iter().filter(|v| v.result.is_err()).count();
    let snap = stats.snapshot();

    StoreReport {
        config: cfg.clone(),
        wall_ns,
        total_ops,
        ops_per_sec: if wall_ns == 0 {
            0.0
        } else {
            total_ops as f64 / (wall_ns as f64 / 1e9)
        },
        latency,
        msgs_sent: snap.msgs_sent,
        bytes_sent: snap.bytes_sent,
        batches_sent,
        payloads_sent,
        mean_batch: if batches_sent == 0 {
            0.0
        } else {
            payloads_sent as f64 / batches_sent as f64
        },
        windows: verdicts,
        windows_failed,
        drains_converged: coord.divergences.load(Ordering::Relaxed) == 0,
        per_worker,
    }
}

/// What a worker thread returns.
struct WorkerResult {
    stats: WorkerStats,
    latencies: Vec<u64>,
}

struct Worker<'a, T: Adt> {
    adt: &'a T,
    cfg: &'a StoreConfig,
    ep: Endpoint<BatchMsg<T::Input>>,
    coord: &'a Coordinator,
    tx: mpsc::Sender<WindowRecord<T>>,
    me: NodeId,
    proto: BatchCausalBroadcast<WireOp<T::Input>>,
    table: ObjectTable<T>,
    clock: LamportClock,
    recorder: WindowRecorder<T>,
    batches_delivered: u64,
    reads: u64,
    updates: u64,
    latencies: Vec<u64>,
    windows_opened: u64,
}

impl<'a, T> Worker<'a, T>
where
    T: Adt + Sync,
    T::Input: Send + Sync,
    T::Output: Send,
    T::State: Send + Sync,
{
    fn new(
        adt: &'a T,
        cfg: &'a StoreConfig,
        ep: Endpoint<BatchMsg<T::Input>>,
        coord: &'a Coordinator,
        tx: mpsc::Sender<WindowRecord<T>>,
    ) -> Self {
        let me = ep.me;
        let n = ep.cluster_size();
        Worker {
            adt,
            cfg,
            ep,
            coord,
            tx,
            me,
            proto: BatchCausalBroadcast::new(me, n),
            table: ObjectTable::new(adt, cfg.objects.max(1), cfg.mode),
            clock: LamportClock::new(),
            recorder: WindowRecorder::new(),
            batches_delivered: 0,
            reads: 0,
            updates: 0,
            latencies: Vec::with_capacity(cfg.ops_per_worker),
            windows_opened: 0,
        }
    }

    fn run<G>(mut self, gen: &G) -> WorkerResult
    where
        G: Fn(NodeId, u64, &mut StdRng) -> SpaceInput<T::Input> + Sync,
    {
        let mut rng = StdRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_add((self.me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let ops = self.cfg.ops_per_worker;
        for k in 0..ops {
            if self.cfg.rendezvous_at(k) {
                self.open_window(k);
            }
            self.pump();
            let op = gen(self.me, k as u64, &mut rng);
            self.execute(op);
            if self.recorder.active() && self.recorder.remaining() == 0 {
                self.close_window();
            }
        }
        self.final_drain();

        let mut latencies = std::mem::take(&mut self.latencies);
        let stats = WorkerStats {
            worker: self.me,
            ops: ops as u64,
            reads: self.reads,
            updates: self.updates,
            batches_sent: self.proto.batches_sent(),
            payloads_sent: self.proto.payloads_sent(),
            batches_delivered: self.batches_delivered,
            latency: summarize_latencies(&mut latencies),
        };
        WorkerResult { stats, latencies }
    }

    /// Execute one operation against the local replica (wait-free).
    fn execute(&mut self, op: SpaceInput<T::Input>) {
        let t = Instant::now();
        let ts = Timestamp::new(self.clock.tick(), self.me);
        let output = self.table.output(self.adt, op.obj, &op.input);
        let is_update = self.adt.is_update(&op.input);
        if is_update {
            self.updates += 1;
            self.table.apply_update(self.adt, op.obj, ts, &op.input);
        } else {
            self.reads += 1;
        }
        let wseq = self.recorder.on_own(
            self.me,
            OwnEvent {
                obj: op.obj,
                input: op.input.clone(),
                output,
                ts,
            },
        );
        if is_update {
            self.proto.push(WireOp {
                obj: op.obj,
                input: op.input,
                ts,
                wseq,
            });
            if self.proto.pending() >= self.cfg.batch.threshold() {
                self.flush();
            }
        }
        self.latencies.push(t.elapsed().as_nanos() as u64);
    }

    /// Ship the pending batch, if any.
    fn flush(&mut self) {
        if let Some(batch) = self.proto.flush() {
            let bytes = batch_bytes(self.ep.cluster_size(), &batch.payload);
            self.ep.broadcast_sized(batch, bytes);
        }
    }

    /// Integrate every batch that has arrived (non-blocking).
    fn pump(&mut self) -> bool {
        let mut got_any = false;
        while let Some((_, msg)) = self.ep.try_recv() {
            got_any = true;
            for batch in self.proto.on_receive(msg) {
                self.batches_delivered += 1;
                for op in batch.payload {
                    self.clock.observe(op.ts.time);
                    self.table.apply_update(self.adt, op.obj, op.ts, &op.input);
                    self.recorder.on_remote(batch.sender, op.wseq);
                }
            }
        }
        got_any
    }

    /// Flush, publish, and receive until every published batch of every
    /// peer has been delivered — one half of a drain point.
    fn quiesce(&mut self) {
        self.flush();
        self.coord.sent[self.me].store(self.proto.batches_sent(), Ordering::SeqCst);
        self.coord.barrier.wait(); // all counts final
        loop {
            let got_any = self.pump();
            let all = (0..self.ep.cluster_size()).all(|q| {
                q == self.me
                    || self.proto.delivered_clock().get(q)
                        >= self.coord.sent[q].load(Ordering::SeqCst)
            });
            if all {
                break;
            }
            if !got_any {
                std::thread::yield_now();
            }
        }
        self.coord.barrier.wait(); // global quiesce
    }

    /// Drained rendezvous at op index `k`: compact, publish state
    /// hashes, snapshot, and start recording the next window.
    fn open_window(&mut self, k: usize) {
        self.quiesce();
        self.compact_and_check_convergence();
        let quota = self.cfg.window_quota(k);
        self.recorder
            .start(self.windows_opened, quota, self.table.snapshot());
        self.windows_opened += 1;
    }

    /// A worker met its window quota: drain so the window is closed
    /// everywhere, then hand the record to the verifier.
    fn close_window(&mut self) {
        self.quiesce();
        let record = self.recorder.finish(self.me);
        // a full channel send only fails if the verifier died; surface
        // that at join time, not here
        let _ = self.tx.send(record);
    }

    /// Teardown: drain everything and release the endpoint.
    fn final_drain(&mut self) {
        if self.recorder.active() {
            // ops_per_worker not a multiple of every_ops: the last
            // window closes at the end of the run
            self.close_window();
        }
        self.quiesce();
        self.compact_and_check_convergence();
    }

    /// At a global quiesce: compact arbitration logs, publish this
    /// replica's state hash, and (worker 0, convergent mode) record a
    /// divergence if the replicas' hashes disagree.
    fn compact_and_check_convergence(&mut self) {
        self.table.compact();
        self.coord.hashes[self.me].store(self.table.state_hash(), Ordering::SeqCst);
        self.coord.barrier.wait(); // hashes published
        if self.me == 0 && self.cfg.mode == Mode::Convergent {
            let h0 = self.coord.hashes[0].load(Ordering::SeqCst);
            if (1..self.ep.cluster_size())
                .any(|q| self.coord.hashes[q].load(Ordering::SeqCst) != h0)
            {
                self.coord.divergences.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}
