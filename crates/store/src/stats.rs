//! Per-worker accounting and the run report.

use crate::config::StoreConfig;
use cbm_obs::LatencyHistogram;

/// Latency percentiles over recorded per-operation wall times,
/// extracted from a log-bucketed [`LatencyHistogram`].
///
/// Each percentile is the histogram's nearest-rank bucket upper
/// bound: within **3.125 % (2⁻⁵) relative error** of the exact order
/// statistic, never below it, and never above the exact maximum (see
/// `cbm_obs::hist` for the bucket layout). `count`, `max_ns`, and
/// `mean_ns` are exact. This replaces the old sample-and-sort
/// summary, whose `pick(q)` indexed `⌊(len−1)·q⌋` — a floor that
/// systematically understated tail percentiles (for 100 samples its
/// "p99" was the 99th of 100 order statistics, never the 100th) and
/// forced every raw sample to be kept until the end of the run;
/// per-worker histograms merge bucket-wise at the drain rendezvous
/// instead.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: u64,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999_ns: u64,
    /// Maximum, nanoseconds (exact).
    pub max_ns: u64,
    /// Mean, nanoseconds (exact).
    pub mean_ns: u64,
}

impl LatencySummary {
    /// Extract the summary from a histogram.
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        LatencySummary {
            count: h.count(),
            p50_ns: h.quantile(0.50),
            p90_ns: h.quantile(0.90),
            p99_ns: h.quantile(0.99),
            p999_ns: h.quantile(0.999),
            max_ns: h.max(),
            mean_ns: h.mean(),
        }
    }
}

/// One worker's accounting.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker id.
    pub worker: usize,
    /// Operations issued.
    pub ops: u64,
    /// Pure queries among them.
    pub reads: u64,
    /// Updates among them.
    pub updates: u64,
    /// Queries routed to a replica of a non-hosted shard (0 under full
    /// replication).
    pub remote_reads: u64,
    /// Routed queries this worker answered for peers.
    pub reads_served: u64,
    /// Batch envelopes this worker flushed.
    pub batches_sent: u64,
    /// Update payloads across those batches.
    pub payloads_sent: u64,
    /// Batch envelopes delivered from peers.
    pub batches_delivered: u64,
    /// This worker's operation latency profile.
    pub latency: LatencySummary,
}

/// Verdict of one sampled verification window.
#[derive(Debug, Clone)]
pub struct WindowVerdict {
    /// Window number (0-based, in freeze order).
    pub window: u64,
    /// The shard this verdict covers (`None` for a whole-space window
    /// under full replication, or for a window-level failure).
    pub shard: Option<u32>,
    /// Criterion verified ("CC" or "CCv").
    pub criterion: &'static str,
    /// Events in the rebuilt window history.
    pub events: usize,
    /// Workers that were crashed for this window.
    pub crashed_workers: usize,
    /// The window opened at a drain that performed a crash-recovery
    /// state transfer.
    pub spans_recovery: bool,
    /// `Ok(())` or a description of the violation.
    pub result: Result<(), String>,
}

/// One crash/recovery cycle as observed by the engine.
#[derive(Debug, Clone)]
pub struct RecoveryStats {
    /// The worker that crashed and recovered.
    pub worker: usize,
    /// Epoch whose opening drain was the consistent cut.
    pub crash_epoch: u64,
    /// Epoch whose opening drain ran the state transfer.
    pub recover_epoch: u64,
    /// The schedule's anchor helper for the span (statistics; under
    /// partial replication each shard elects its own co-replica
    /// helper, see `ChaosSchedule::shard_helper`).
    pub helper: usize,
    /// Shards whose state was installed from co-replica helpers.
    pub synced_shards: u64,
    /// Object states installed across those shards.
    pub synced_objects: u64,
    /// Wall-clock duration of the state transfer at the recovering
    /// worker (receive + install + replay); nondeterministic.
    pub sync_wall_ns: u64,
    /// Records replayed from the worker's own durable epoch log
    /// (snapshot counts as one; 0 on the memory-only path).
    /// Deterministic: one record per own update, delivered batch, and
    /// seal up to the crash cut.
    pub replayed_records: u64,
    /// Bytes read back from disk for that replay (snapshot + log
    /// prefix; 0 on the memory-only path). Deterministic — the epoch
    /// log's framing is a pure function of the ops it records.
    pub log_bytes: u64,
}

/// One streaming-monitor suspicion escalated to the exact checkers
/// (see `cbm_check::monitor` and `docs/VERIFICATION.md`). On a
/// correct run this list is empty; its *presence* is the violation
/// evidence, mirrored as `monitor_escalate` trace spans.
#[derive(Debug, Clone)]
pub struct MonitorEscalation {
    /// Worker whose monitor escalated.
    pub worker: usize,
    /// Engine epoch the suspicion fired in.
    pub epoch: u64,
    /// The worker's op count at escalation.
    pub at_op: u64,
    /// Implicated object slot (`None` for origin-granular patterns
    /// like `cyclic_co`).
    pub obj: Option<u32>,
    /// Bad-pattern classification (snake_case name).
    pub pattern: &'static str,
    /// Events in the rebuilt minimal window.
    pub events: usize,
    /// Did the exact witness re-verification confirm the violation?
    pub confirmed: bool,
    /// Criterion-level kernel verdict on the same window ("sat" =
    /// still causally explainable, "unsat" = criterion violation,
    /// "unknown" = window too large or out of budget).
    pub verdict: &'static str,
    /// The escalation fired in an epoch whose opening drain performed
    /// a crash-recovery state transfer (its window is anchored on the
    /// installed recovery states, like `spans_recovery` windows).
    pub spans_recovery: bool,
    /// Witness-checker violation description (empty when cleared).
    pub detail: String,
}

/// Streaming-monitor accounting for one run. `ops_checked`,
/// `escalations`, and `violations` are deterministic per
/// `(config, seed)` — the `--gate` contract covers them.
#[derive(Debug, Clone, Default)]
pub struct MonitorReport {
    /// Did the run monitor its traffic ([`crate::config::VerifyConfig::monitor`])?
    pub enabled: bool,
    /// Operations certified across all workers: own invocations at
    /// their issuer plus routed reads at their server. Equals
    /// `total_ops` on a complete run.
    pub ops_checked: u64,
    /// Delivered remote updates folded into shadow state.
    pub folds: u64,
    /// Suspicions escalated to the exact checkers.
    pub escalations: u64,
    /// Escalations the witness re-verification cleared.
    pub cleared: u64,
    /// Escalations the witness re-verification confirmed.
    pub violations: u64,
    /// Escalations whose kernel search was skipped or out of budget.
    pub kernel_unknown: u64,
    /// Every escalation, in (worker, op) order.
    pub records: Vec<MonitorEscalation>,
}

impl MonitorReport {
    /// Did the monitor certify every operation of the run? (Vacuously
    /// false when the monitor was off.)
    pub fn certified(&self, total_ops: u64) -> bool {
        self.enabled && self.ops_checked == total_ops && self.violations == 0
    }
}

/// Aggregated fault-layer accounting for one run. All counts except
/// wall times are deterministic per `(config, seed)` — the chaos CI
/// job replays runs and diffs them exactly (`docs/CHAOS.md`).
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Did the run inject any faults?
    pub active: bool,
    /// Sends lost to probabilistic drops or crashed recipients.
    pub drops: u64,
    /// Extra copies injected by duplication faults.
    pub dups: u64,
    /// Sends parked on blocked (partitioned) links.
    pub parked: u64,
    /// Parked sends released by mid-epoch heals.
    pub released: u64,
    /// Sends held back by latency faults.
    pub delayed: u64,
    /// Parked sends pruned at drains (payloads re-delivered by the
    /// repair round).
    pub pruned: u64,
    /// Outbound messages discarded by crashing endpoints.
    pub crash_discarded: u64,
    /// Gap reports sent during drains.
    pub nacks: u64,
    /// Repair retransmissions answering them.
    pub repairs: u64,
    /// Batch envelopes carried by those repairs.
    pub repaired_batches: u64,
    /// Fault-layer losses per recipient node (from the transport's
    /// lock-free counters).
    pub dropped_per_node: Vec<u64>,
    /// Fault-layer duplicate copies per recipient node.
    pub dup_per_node: Vec<u64>,
    /// Every crash/recovery cycle, in crash order.
    pub recoveries: Vec<RecoveryStats>,
}

/// Deterministic per-epoch activity, summed across workers: the rows
/// of the per-epoch dashboard table the bench binaries render into CI
/// step summaries. Every column is a pure function of
/// `(config, seed)` — each worker snapshots its counters at the epoch
/// boundary drain, after the epoch's repair round settled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochMetrics {
    /// Epoch number (0-based).
    pub epoch: u64,
    /// Operations issued during the epoch.
    pub ops: u64,
    /// Updates among them.
    pub updates: u64,
    /// Reads routed to remote replicas.
    pub remote_reads: u64,
    /// Batch envelopes flushed (pre-fan-out).
    pub batches: u64,
    /// Update payloads across those batches.
    pub payloads: u64,
    /// Batch envelopes delivered.
    pub delivered: u64,
    /// Gap nacks sent at the epoch's drains.
    pub nacks: u64,
    /// Repair retransmissions answering them.
    pub repairs: u64,
    /// Fault injections (drops + dups + parks + delays + prunes +
    /// crash discards) during the epoch.
    pub faults: u64,
    /// Workers crashed during the epoch.
    pub crashed: u64,
}

impl EpochMetrics {
    /// Add another worker's row for the same epoch into this one.
    pub fn absorb(&mut self, other: &EpochMetrics) {
        self.ops += other.ops;
        self.updates += other.updates;
        self.remote_reads += other.remote_reads;
        self.batches += other.batches;
        self.payloads += other.payloads;
        self.delivered += other.delivered;
        self.nacks += other.nacks;
        self.repairs += other.repairs;
        self.faults += other.faults;
        self.crashed += other.crashed;
    }
}

/// Everything one engine run produces.
#[derive(Debug, Clone)]
pub struct StoreReport {
    /// The configuration that ran.
    pub config: StoreConfig,
    /// Wall-clock duration of the run, nanoseconds.
    pub wall_ns: u128,
    /// Total operations completed.
    pub total_ops: u64,
    /// Throughput over the whole run.
    pub ops_per_sec: f64,
    /// Merged latency profile across workers.
    pub latency: LatencySummary,
    /// Transport envelopes sent (per-copy: each batch counts once per
    /// receiving peer).
    pub msgs_sent: u64,
    /// Estimated payload bytes sent.
    pub bytes_sent: u64,
    /// Batch envelopes flushed across workers (pre-fan-out).
    pub batches_sent: u64,
    /// Update payloads shipped across all batches.
    pub payloads_sent: u64,
    /// Mean payloads per batch (`payloads_sent / batches_sent`).
    pub mean_batch: f64,
    /// Reads routed to a replica of a non-hosted shard (request/reply
    /// pairs on the reliable path; 0 under full replication).
    pub remote_reads: u64,
    /// Sampled-window verdicts, in freeze order.
    pub windows: Vec<WindowVerdict>,
    /// Windows whose verification failed.
    pub windows_failed: usize,
    /// Convergent mode: did every drain point find all replicas in
    /// identical states? (Always `true` in causal mode, which does not
    /// promise convergence.)
    pub drains_converged: bool,
    /// Per-worker order-sensitive hash of the full object space at the
    /// final drain. In convergent mode (and for commutative base types
    /// in causal mode) all entries are equal, and — because a crashed
    /// worker resumes its script after recovery — equal to the
    /// fault-free twin run's hashes, which is how the chaos harness
    /// proves recovery lost and duplicated nothing.
    pub final_state_hashes: Vec<u64>,
    /// Streaming-monitor accounting (zeroed when the monitor is off).
    pub monitor: MonitorReport,
    /// Fault-injection accounting (zeroed for fault-free runs).
    pub chaos: ChaosReport,
    /// Per-worker accounting.
    pub per_worker: Vec<WorkerStats>,
    /// Deterministic per-epoch activity rows (epoch order), summed
    /// across workers.
    pub epochs: Vec<EpochMetrics>,
    /// Snapshot of the engine's lock-free metrics registry
    /// (name → value; histogram series expand to `.count`/`.p50`/…
    /// rows). Latency-derived rows are nondeterministic.
    pub metrics: Vec<(String, u64)>,
    /// The merged trace, when tracing ran ([`StoreConfig::obs`], or
    /// automatically for chaos runs). Export with
    /// `cbm_obs::export::{jsonl, chrome_json}`.
    pub trace: Option<cbm_obs::FlightRecord>,
}

impl StoreReport {
    /// Zero failed windows, (in convergent mode) convergence at every
    /// drain, and — when the streaming monitor ran — zero confirmed
    /// monitor violations.
    pub fn verified(&self) -> bool {
        self.windows_failed == 0
            && self.drains_converged
            && (!self.monitor.enabled || self.monitor.violations == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_zero() {
        assert_eq!(
            LatencySummary::from_histogram(&LatencyHistogram::new()),
            LatencySummary::default()
        );
    }

    #[test]
    fn percentiles_come_from_bucket_upper_bounds() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = LatencySummary::from_histogram(&h);
        assert_eq!(s.count, 100);
        // Nearest-rank on bucket upper bounds: at most 3.125% above
        // the exact order statistic, never below it — the old
        // floor-indexed pick() reported p99 = 99 here, understating
        // the tail.
        assert!(s.p50_ns >= 50 && s.p50_ns <= 52, "{}", s.p50_ns);
        assert!(s.p90_ns >= 90 && s.p90_ns <= 93, "{}", s.p90_ns);
        assert!(s.p99_ns >= 99 && s.p99_ns <= 100, "{}", s.p99_ns);
        assert_eq!(s.p999_ns, 100);
        assert_eq!(s.max_ns, 100, "max is exact");
        assert_eq!(s.mean_ns, 50, "mean is exact"); // 5050 / 100
    }

    #[test]
    fn epoch_metrics_absorb_sums_fields() {
        let mut a = EpochMetrics {
            epoch: 2,
            ops: 10,
            nacks: 1,
            ..Default::default()
        };
        let b = EpochMetrics {
            epoch: 2,
            ops: 5,
            faults: 3,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.ops, 15);
        assert_eq!(a.nacks, 1);
        assert_eq!(a.faults, 3);
        assert_eq!(a.epoch, 2);
    }
}
