//! # cbm-store — a live multi-threaded causally-consistent object store
//!
//! The rest of the workspace studies the paper's constructions in
//! single-threaded simulated time; this crate runs them **live**: `N`
//! replica worker threads serve a sharded multi-object space (object
//! id → instance of any [`cbm_adt::Adt`]) over real channels
//! ([`cbm_net::thread_net::ThreadNet`]), with
//!
//! * **wait-free local operations** — queries answer from the local
//!   object table, updates apply locally and replicate asynchronously
//!   (the paper's core claim: causal objects need no waiting);
//! * **batched causal broadcast** — pending updates coalesce into one
//!   vector-clock-stamped envelope per flush
//!   ([`cbm_net::broadcast::BatchCausalBroadcast`]), cutting message
//!   counts by the mean batch size;
//! * two replication modes ([`Mode`]): delivery-order application
//!   (Fig. 4 ⇒ causal consistency) and Lamport-timestamp arbitration
//!   with epoch-compacted per-object logs (Fig. 5 ⇒ causal
//!   convergence);
//! * **sampled online verification** — the discipline of "On Verifying
//!   Causal Consistency" (Bouajjani et al.) applied online: at
//!   deterministic drain points the workers record a bounded window of
//!   events plus its delivered-before witness, and a verifier thread
//!   replays each frozen window through `cbm-check::verify` (CC or
//!   CCv), so throughput numbers ship with live consistency evidence.
//!
//! The engine is **chaos-hardened**: a [`StoreConfig::chaos`] fault
//! plan injects deterministic transport misbehaviour (loss,
//! duplication, partitions, latency, epoch-aligned worker crashes)
//! through [`cbm_net::chaos::ChaosEndpoint`], drains repair losses
//! with a nack/retransmit round, and recovering workers rejoin via an
//! anti-entropy state transfer (cut snapshot + vector-clock frontier +
//! missed-envelope replay) — with sampled verification still running
//! while the network misbehaves. The named fault profiles and the
//! schedule derivation live in [`chaos`]; the protocol and its
//! determinism contract are documented in `docs/CHAOS.md`.
//!
//! The engine supports **partial replication**: a [`ShardConfig`]
//! partitions the object space into shards, a deterministic
//! [`shard::ShardMap`] assigns each shard a replica set (home worker +
//! seeded placement at a configurable replication factor), and
//! replication runs over an interest-filtered causal multicast
//! ([`cbm_net::broadcast::InterestBatchCausalBroadcast`]) that
//! delivers a batch only to replicas interested in at least one of its
//! objects, with per-edge sequence numbers so gap repair and crash
//! recovery work per interest edge. Reads of non-hosted objects route
//! to a live replica over a reliable request/reply path; verification
//! windows are built and checked **per shard**. The placement, the
//! routed-read contract, and the determinism guarantees are documented
//! in `docs/SHARDING.md`.
//!
//! The `loadgen` and `chaos_loadgen` binaries in `cbm-bench` drive
//! this engine across workload and fault matrices (including a
//! replication-factor axis) and emit the committed
//! `BENCH_throughput.json` / `BENCH_chaos.json`; see
//! `docs/THROUGHPUT.md` and `docs/CHAOS.md`.
//!
//! ```
//! use cbm_adt::register::{RegInput, Register};
//! use cbm_adt::space::SpaceInput;
//! use cbm_store::{
//!     run, BatchPolicy, DurableConfig, Mode, ObsConfig, ShardConfig, StoreConfig, VerifyConfig,
//! };
//! use cbm_net::fault::FaultPlan;
//! use rand::Rng;
//!
//! let cfg = StoreConfig {
//!     workers: 2,
//!     objects: 8,
//!     ops_per_worker: 400,
//!     mode: Mode::Causal,
//!     batch: BatchPolicy::Every(4),
//!     verify: VerifyConfig { every_ops: 200, window_ops: 16, sample_every: 1, monitor: false },
//!     seed: 7,
//!     sharding: ShardConfig::full(),
//!     chaos: FaultPlan::new(),
//!     obs: ObsConfig::default(),
//!     durable: DurableConfig::default(),
//! };
//! let report = run(&Register, &cfg, |_, _, rng| {
//!     let obj = rng.gen_range(0u32..8);
//!     if rng.gen_bool(0.5) {
//!         SpaceInput::new(obj, RegInput::Read)
//!     } else {
//!         SpaceInput::new(obj, RegInput::Write(rng.gen_range(0u64..100)))
//!     }
//! });
//! assert_eq!(report.total_ops, 800);
//! assert!(report.verified(), "{:?}", report.windows);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod codec;
pub mod config;
pub mod durable;
pub mod engine;
pub mod objects;
pub mod record;
pub mod shard;
pub mod stats;
pub mod wire;

pub use chaos::{profile, ChaosSchedule, CrashSpan, PROFILE_NAMES};
pub use config::{
    BatchPolicy, DurableConfig, Mode, ObsConfig, ShardConfig, StoreConfig, VerifyConfig,
};
pub use engine::{run, run_tcp};
pub use shard::ShardMap;
pub use stats::{
    ChaosReport, EpochMetrics, LatencySummary, RecoveryStats, StoreReport, WindowVerdict,
    WorkerStats,
};
