//! Engine configuration.

use cbm_net::fault::FaultPlan;

/// How a replica integrates remote updates, which decides the
/// consistency criterion its sampled windows are verified against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Apply updates in causal delivery order (the Fig. 4 discipline
    /// generalized to an object space). Windows verify **CC** (Def. 9).
    Causal,
    /// Arbitrate updates by Lamport timestamp into a per-object log
    /// (the Fig. 5 discipline); replicas converge at every drain.
    /// Windows verify **CCv** (Def. 12).
    Convergent,
}

impl Mode {
    /// Criterion name of the mode's window verification.
    pub fn criterion(self) -> &'static str {
        match self {
            Mode::Causal => "CC",
            Mode::Convergent => "CCv",
        }
    }
}

/// When pending update payloads are sealed into one causal batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// One envelope per update (the unbatched baseline).
    Off,
    /// Flush once `k` payloads are pending (plus at every drain point),
    /// cutting envelope counts by roughly `k`.
    Every(usize),
}

impl BatchPolicy {
    /// The pending-payload count that triggers a flush.
    pub fn threshold(self) -> usize {
        match self {
            BatchPolicy::Off => 1,
            BatchPolicy::Every(k) => k.max(1),
        }
    }
}

/// Partial-replication placement (see [`crate::shard::ShardMap`] and
/// `docs/SHARDING.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Shards the object space is partitioned into (0 = one per
    /// worker; clamped to the object count).
    pub shards: usize,
    /// Replicas hosting each shard (0 = every worker: full
    /// replication, the exact pre-sharding engine behaviour).
    pub replication: usize,
    /// Seed of the placement hash choosing the non-home replicas —
    /// a sweep axis independent of the workload seed.
    pub placement_seed: u64,
    /// Locality window for the non-home replicas: when non-zero, a
    /// shard's extra replicas are drawn from the `max(locality,
    /// replication)` workers starting at its home (wrapping), so most
    /// interest edges stay within a seeded neighborhood — the knob
    /// that keeps per-worker edge fan-in (and therefore dirty-row
    /// counts in the delta-encoded metadata) bounded as the cluster
    /// grows. `0` = the legacy global draw over all workers,
    /// byte-identical to pre-locality placements.
    pub locality: usize,
}

impl ShardConfig {
    /// Full replication (the default): every worker hosts every shard.
    pub fn full() -> Self {
        ShardConfig {
            shards: 0,
            replication: 0,
            placement_seed: 0,
            locality: 0,
        }
    }

    /// Partial replication at factor `rf` with one shard per worker.
    pub fn rf(rf: usize) -> Self {
        ShardConfig {
            shards: 0,
            replication: rf,
            placement_seed: 0,
            locality: 0,
        }
    }

    /// Partial replication at factor `rf` with replicas confined to a
    /// `locality`-worker neighborhood of each shard's home.
    pub fn rf_local(rf: usize, locality: usize) -> Self {
        ShardConfig {
            shards: 0,
            replication: rf,
            placement_seed: 0,
            locality,
        }
    }

    /// The shard count this config denotes for a given worker count.
    pub fn shards_or(&self, workers: usize) -> usize {
        if self.shards == 0 {
            workers
        } else {
            self.shards
        }
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::full()
    }
}

/// Sampled online verification: how often to freeze a window and how
/// much of the run it captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Freeze a window every `every_ops` operations of each worker
    /// (0 disables sampling; the workers then never rendezvous until
    /// the final drain).
    pub every_ops: usize,
    /// Own operations each worker records per window (clamped to
    /// `every_ops` so windows never overlap the next rendezvous).
    pub window_ops: usize,
    /// Replay sampling stride handed to the CCv checker (1 = check
    /// every recorded output).
    pub sample_every: usize,
    /// Run the streaming bad-pattern monitor inline on every worker
    /// (`cbm_check::monitor`): every local op and every served routed
    /// read is certified against an independently-derived shadow
    /// state in O(1) amortized, and any mismatch escalates the
    /// minimal implicated window to the exact checkers. Orthogonal to
    /// the sampled windows above — the monitor certifies 100% of
    /// traffic, the windows cross-check bounded slices end to end.
    /// See `docs/VERIFICATION.md`.
    pub monitor: bool,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            every_ops: 50_000,
            window_ops: 48,
            sample_every: 1,
            monitor: false,
        }
    }
}

/// Observability knobs (see `docs/OBSERVABILITY.md`). Metrics are
/// always collected (local accumulation, merged at drains — no hot
/// path cost); span tracing is opt-in here and switched on
/// automatically for chaos runs, whose failures are what the flight
/// recorder exists to explain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record trace spans (`false` = chaos runs only). Tracing never
    /// sends messages or changes protocol decisions, so the
    /// deterministic columns of a run are identical with it on or
    /// off.
    pub trace: bool,
    /// Record every `op_sample_every`-th operation as an `op` span
    /// (deterministic stride on the worker's own op counter; `0`
    /// disables op spans). Drain/repair/fault/crash/recover/verify
    /// spans are always recorded when tracing is on.
    pub op_sample_every: usize,
    /// Record every `batch_sample_every`-th `batch_flush` / `deliver`
    /// span, strided on the envelope's per-edge sequence number (`0`
    /// disables them). Seqs are deterministic logical keys, so the
    /// sampled set is identical across runs **and** the flush and
    /// deliver halves of an envelope sample together — the
    /// clock-domination pairing survives any stride. These two kinds
    /// dominate span volume (one per envelope per direction); the
    /// stride is what keeps full-matrix tracing overhead within the
    /// ~10% budget. Set to `1` for exhaustive envelope tracing when
    /// debugging a specific run.
    pub batch_sample_every: usize,
    /// Retained spans per kind per epoch per worker; deterministic
    /// truncation past this (see `cbm_obs::trace::TraceConfig`).
    pub epoch_cap: usize,
    /// Most recent sealed epochs each worker retains (flight-recorder
    /// window; `0` keeps all epochs).
    pub keep_epochs: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            trace: false,
            op_sample_every: 64,
            batch_sample_every: 32,
            epoch_cap: 4096,
            keep_epochs: 0,
        }
    }
}

/// Durability knobs: the per-worker epoch log, snapshot compaction,
/// and the restart paths built on them (see `docs/DURABILITY.md`).
///
/// Everything is off by default — `log_dir: None` keeps the engine
/// byte-identical to the pre-durability baselines (no files, no
/// fsyncs, no extra branches on the hot path beyond one `Option`
/// check).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableConfig {
    /// Directory of the per-worker epoch logs (`worker-{id}.log` /
    /// `worker-{id}.snap`). `None` disables durability entirely.
    pub log_dir: Option<String>,
    /// Write a compacted snapshot (and truncate the log prefix) every
    /// `snapshot_every` boundary seals (`0` = never snapshot; the log
    /// then grows for the whole run).
    pub snapshot_every: u64,
    /// Crash recovery restarts from **disk**: a recovering worker
    /// discards its in-memory replica, replays its own snapshot + log
    /// tail to the crash cut, and fetches only the per-shard op delta
    /// past that cut from its co-replica helpers (falling back to the
    /// full state transfer when its disk is torn or stale). Off, the
    /// pre-durability full-transfer path runs unchanged.
    pub recover_from_disk: bool,
    /// Cold-start: recover the whole fleet from disk at startup and
    /// resume each worker's op script where its last sealed boundary
    /// left it. Requires a fault-free plan; invalid or disagreeing
    /// disks fall back to a fresh full run.
    pub resume: bool,
    /// Stop the run at this epoch boundary after sealing its cut
    /// (`0` = run to completion). The halted fleet's disks are exactly
    /// what [`DurableConfig::resume`] restarts from — the two knobs
    /// together simulate a whole-fleet power loss.
    pub halt_at_boundary: u64,
}

impl DurableConfig {
    /// Is the epoch log active at all?
    pub fn enabled(&self) -> bool {
        self.log_dir.is_some()
    }
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            log_dir: None,
            snapshot_every: 4,
            recover_from_disk: false,
            resume: false,
            halt_at_boundary: 0,
        }
    }
}

/// Full engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreConfig {
    /// Replica worker threads (each a full replica of the space).
    pub workers: usize,
    /// Objects in the space (ids are taken modulo this).
    pub objects: usize,
    /// Operations each worker issues.
    pub ops_per_worker: usize,
    /// Replication mode (decides the verified criterion).
    pub mode: Mode,
    /// Batching policy of the causal broadcast.
    pub batch: BatchPolicy,
    /// Sampled verification windows.
    pub verify: VerifyConfig,
    /// Seed for every worker's workload generator.
    pub seed: u64,
    /// Partial-replication placement (default: full replication).
    /// With `replication < workers`, updates execute at replicas of
    /// their object (non-hosted updates are deterministically
    /// re-addressed, see [`crate::shard::ShardMap::localize`]) and
    /// non-replica reads route to a live replica over a request/reply
    /// path; batches multicast only to interested replicas.
    pub sharding: ShardConfig,
    /// Fault plan injected into the live transport (empty = fault-free
    /// run, the exact pre-chaos engine behaviour).
    ///
    /// Event times are **virtual ticks** on each worker's operation
    /// counter (`epoch * verify.every_ops + ops_into_epoch`), so every
    /// endpoint applies the same event at the same deterministic point
    /// of its own timeline. `Crash`/`Recover` must fall on epoch
    /// boundaries (multiples of `verify.every_ops`); link faults may
    /// fire anywhere. See `docs/CHAOS.md`.
    pub chaos: FaultPlan,
    /// Observability: tracing opt-in and bounds (metrics are always
    /// on). See `docs/OBSERVABILITY.md`.
    pub obs: ObsConfig,
    /// Durability: the per-worker epoch log, snapshots, and the
    /// disk-based restart paths (default: all off). See
    /// `docs/DURABILITY.md`.
    pub durable: DurableConfig,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            workers: 4,
            objects: 1024,
            ops_per_worker: 250_000,
            mode: Mode::Causal,
            batch: BatchPolicy::Every(32),
            verify: VerifyConfig::default(),
            seed: 1,
            sharding: ShardConfig::full(),
            chaos: FaultPlan::new(),
            obs: ObsConfig::default(),
            durable: DurableConfig::default(),
        }
    }
}

impl StoreConfig {
    /// Total operations across all workers.
    pub fn total_ops(&self) -> u64 {
        self.workers as u64 * self.ops_per_worker as u64
    }
}
