//! The engine's wire payloads.
//!
//! The replication fast path moves [`StoreMsg::Batch`] envelopes; the
//! three control variants exist for the chaos-hardened paths
//! (`docs/CHAOS.md`): gap repair at drains ([`StoreMsg::Nack`] /
//! [`StoreMsg::Repair`]) and crash-recovery state transfer
//! ([`StoreMsg::Sync`]). Control traffic bypasses the fault layer
//! (it models a freshly established reliable stream), but is still
//! counted in the transport statistics with the deterministic size
//! estimates below.

use cbm_net::broadcast::CausalMsg;
use cbm_net::clock::Timestamp;

/// One replicated update as carried inside a batch.
#[derive(Debug, Clone)]
pub struct WireOp<I> {
    /// Target object id (pre-modulo).
    pub obj: u32,
    /// The update input.
    pub input: I,
    /// Arbitration timestamp (meaningful in convergent mode; causal
    /// mode ships `Timestamp::ZERO`-like values it never reads).
    pub ts: Timestamp,
    /// Window tag: `Some(k)` when this is the origin worker's `k`-th
    /// recorded own event of the currently recorded window.
    pub wseq: Option<u32>,
}

/// A batch envelope as moved by the transport.
pub type BatchMsg<I> = CausalMsg<Vec<WireOp<I>>>;

/// Crash-recovery state transfer: everything a recovering replica
/// needs to rejoin (see `docs/CHAOS.md` for the protocol).
#[derive(Debug, Clone)]
pub struct SyncPayload<I, S> {
    /// Snapshot of every object's state at the consistent cut (the
    /// drain at which the recipient crashed).
    pub snapshot: Vec<S>,
    /// The cut's delivery frontier: batches delivered per sender,
    /// installed into the causal broadcast via `resync`.
    pub frontier: Vec<u64>,
    /// The helper's Lamport time (arbitration safety margin).
    pub lamport: u64,
    /// Every batch envelope the helper integrated after the cut, in
    /// its delivery order — the missed-envelope replay.
    pub retained: Vec<BatchMsg<I>>,
}

/// Everything the engine moves over the transport.
#[derive(Debug, Clone)]
pub enum StoreMsg<I, S> {
    /// A causal batch of updates (the fast path; subject to chaos).
    Batch(BatchMsg<I>),
    /// Drain-time gap report: "some of this epoch's batches from you
    /// never reached me; retransmit" (reliable). Carries no frontier:
    /// mid-epoch delivery clocks depend on thread interleaving, so a
    /// deterministic protocol retransmits the sender's whole epoch log
    /// and lets the causal layer's duplicate suppression discard the
    /// copies already held.
    Nack,
    /// Retransmission answering a [`StoreMsg::Nack`]: every batch the
    /// sender flushed since the last drain, oldest first (reliable).
    Repair(Vec<BatchMsg<I>>),
    /// Crash-recovery state transfer from the designated helper
    /// (reliable).
    Sync(Box<SyncPayload<I, S>>),
}

/// Estimated wire size of a batch: causal header (sender + clock) plus
/// per-op object id, timestamp, tag byte, and the in-memory payload
/// size as a stand-in for a real codec (see `cbm_net::msg` for exact
/// encodings of the paper's message shapes).
pub fn batch_bytes<I>(n_procs: usize, ops: &[WireOp<I>]) -> usize {
    let header = 2 + 2 + 8 * n_procs;
    let per_op = 4 + 10 + 1 + std::mem::size_of::<I>();
    header + ops.len() * per_op
}

/// Estimated wire size of a nack (sender id + tag).
pub fn nack_bytes() -> usize {
    2 + 1
}

/// Estimated wire size of a repair: the batches it retransmits.
pub fn repair_bytes<I>(n_procs: usize, batches: &[BatchMsg<I>]) -> usize {
    batches
        .iter()
        .map(|b| batch_bytes(n_procs, &b.payload))
        .sum()
}

/// Estimated wire size of a state transfer: per-object state size,
/// frontier, and the retained replay.
pub fn sync_bytes<I, S>(n_procs: usize, p: &SyncPayload<I, S>) -> usize {
    p.snapshot.len() * std::mem::size_of::<S>()
        + 8 * p.frontier.len()
        + 8
        + repair_bytes(n_procs, &p.retained)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_bytes_scale_with_ops_and_cluster() {
        let op = WireOp {
            obj: 0,
            input: 7u64,
            ts: Timestamp::ZERO,
            wseq: None,
        };
        let one = batch_bytes(4, std::slice::from_ref(&op));
        let two = batch_bytes(4, &[op.clone(), op.clone()]);
        assert_eq!(two - one, 4 + 10 + 1 + 8);
        assert!(batch_bytes(8, &[op]) > one);
    }

    #[test]
    fn control_sizes_are_deterministic() {
        let op = WireOp {
            obj: 1,
            input: 3u32,
            ts: Timestamp::ZERO,
            wseq: Some(0),
        };
        let env = BatchMsg {
            sender: 0,
            vc: cbm_net::clock::VectorClock::new(2),
            payload: vec![op],
        };
        assert_eq!(nack_bytes(), 3);
        assert_eq!(
            repair_bytes(2, std::slice::from_ref(&env)),
            batch_bytes(2, &env.payload)
        );
        let sync = SyncPayload::<u32, u64> {
            snapshot: vec![0u64; 4],
            frontier: vec![0, 0],
            lamport: 0,
            retained: vec![env],
        };
        let sz = sync_bytes(2, &sync);
        assert_eq!(sz, 4 * 8 + 16 + 8 + repair_bytes(2, &sync.retained));
    }
}
