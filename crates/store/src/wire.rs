//! The engine's wire payloads.

use cbm_net::broadcast::CausalMsg;
use cbm_net::clock::Timestamp;

/// One replicated update as carried inside a batch.
#[derive(Debug, Clone)]
pub struct WireOp<I> {
    /// Target object id (pre-modulo).
    pub obj: u32,
    /// The update input.
    pub input: I,
    /// Arbitration timestamp (meaningful in convergent mode; causal
    /// mode ships `Timestamp::ZERO`-like values it never reads).
    pub ts: Timestamp,
    /// Window tag: `Some(k)` when this is the origin worker's `k`-th
    /// recorded own event of the currently recorded window.
    pub wseq: Option<u32>,
}

/// A batch envelope as moved by the transport.
pub type BatchMsg<I> = CausalMsg<Vec<WireOp<I>>>;

/// Estimated wire size of a batch: causal header (sender + clock) plus
/// per-op object id, timestamp, tag byte, and the in-memory payload
/// size as a stand-in for a real codec (see `cbm_net::msg` for exact
/// encodings of the paper's message shapes).
pub fn batch_bytes<I>(n_procs: usize, ops: &[WireOp<I>]) -> usize {
    let header = 2 + 2 + 8 * n_procs;
    let per_op = 4 + 10 + 1 + std::mem::size_of::<I>();
    header + ops.len() * per_op
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_bytes_scale_with_ops_and_cluster() {
        let op = WireOp {
            obj: 0,
            input: 7u64,
            ts: Timestamp::ZERO,
            wseq: None,
        };
        let one = batch_bytes(4, std::slice::from_ref(&op));
        let two = batch_bytes(4, &[op.clone(), op.clone()]);
        assert_eq!(two - one, 4 + 10 + 1 + 8);
        assert!(batch_bytes(8, &[op]) > one);
    }
}
