//! The engine's wire payloads.
//!
//! The replication fast path moves [`StoreMsg::Batch`] envelopes —
//! interest-stamped per recipient ([`cbm_net::broadcast::InterestMsg`])
//! so partial replication keeps per-edge gap detection and causal
//! order (see `docs/SHARDING.md`). The control variants exist for the
//! chaos-hardened and sharded paths: gap repair at drains
//! ([`StoreMsg::Nack`] / [`StoreMsg::Repair`]), crash-recovery state
//! transfer ([`StoreMsg::ShardSync`]), and the read request/reply pair
//! that routes a non-replica's read to a live replica of the object's
//! shard ([`StoreMsg::ReadReq`] / [`StoreMsg::ReadReply`]). Control
//! traffic bypasses the fault layer (it models a freshly established
//! reliable stream), but is still counted in the transport statistics
//! with the deterministic size estimates below.

use cbm_net::broadcast::InterestMsg;
use cbm_net::clock::Timestamp;

/// One replicated update as carried inside a batch.
#[derive(Debug, Clone)]
pub struct WireOp<I> {
    /// Target object id (pre-modulo).
    pub obj: u32,
    /// The update input.
    pub input: I,
    /// Arbitration timestamp (meaningful in convergent mode; causal
    /// mode ships `Timestamp::ZERO`-like values it never reads).
    pub ts: Timestamp,
    /// Window tag: `Some(k)` when this is the origin worker's `k`-th
    /// recorded own event of the currently recorded window.
    pub wseq: Option<u32>,
}

/// A batch envelope as moved by the transport.
pub type BatchMsg<I> = InterestMsg<Vec<WireOp<I>>>;

/// Crash-recovery state transfer: the per-shard states a recovering
/// replica installs at the recovery drain. Each live co-replica helper
/// ships the shards it was elected for; the edge frontier and the
/// `seen` matrix need no message — they are read off the drain's
/// published edge-count matrix (see `docs/SHARDING.md`).
#[derive(Debug, Clone)]
pub struct ShardSyncPayload<S> {
    /// `(shard, its slots' states in ascending slot order)`.
    pub shards: Vec<(u32, Vec<S>)>,
    /// The helper's Lamport time (arbitration safety margin).
    pub lamport: u64,
}

/// Disk-based crash-recovery tail fetch: the per-shard op delta past a
/// recovering replica's persisted frontier. When the recoverer replayed
/// its own epoch log cleanly to the crash cut
/// (`docs/DURABILITY.md`), each helper ships only the ops it applied to
/// the served shards during the outage window instead of the full
/// [`ShardSyncPayload`] state transfer.
#[derive(Debug, Clone)]
pub struct ShardDeltaPayload<I> {
    /// `(shard, the ops applied to it since the crash cut, in the
    /// helper's apply order)`.
    pub shards: Vec<(u32, Vec<WireOp<I>>)>,
    /// The helper's Lamport time (arbitration safety margin).
    pub lamport: u64,
}

/// Everything the engine moves over the transport.
#[derive(Debug, Clone)]
pub enum StoreMsg<I, O, S> {
    /// A causal batch of updates (the fast path; subject to chaos).
    Batch(BatchMsg<I>),
    /// Drain-time gap report: "some of this epoch's envelopes on your
    /// edge to me never arrived; retransmit" (reliable). Carries no
    /// frontier: mid-epoch delivery clocks depend on thread
    /// interleaving, so a deterministic protocol retransmits the
    /// sender's whole per-edge epoch log and lets the causal layer's
    /// duplicate suppression discard the copies already held.
    Nack,
    /// Retransmission answering a [`StoreMsg::Nack`]: every envelope
    /// the sender addressed to the nacker since the last drain, oldest
    /// first (reliable).
    Repair(Vec<BatchMsg<I>>),
    /// Crash-recovery state transfer from a live co-replica helper
    /// (reliable).
    ShardSync(Box<ShardSyncPayload<S>>),
    /// A non-replica's read routed to a live replica of the object's
    /// shard (reliable): evaluate `input` against `obj` and reply.
    ReadReq {
        /// Target object id (pre-modulo).
        obj: u32,
        /// The query input.
        input: I,
    },
    /// The routed read's answer (reliable).
    ReadReply {
        /// The serving replica's output.
        output: O,
    },
    /// A disk-recovering replica's opening handshake to each elected
    /// helper (reliable): `full = false` requests the op delta past its
    /// replayed crash cut ([`StoreMsg::ShardDelta`]); `full = true`
    /// means its disk was torn or stale and it needs the full
    /// [`StoreMsg::ShardSync`] state transfer.
    SyncReq {
        /// Fall back to a full state transfer?
        full: bool,
    },
    /// The delta answer to `SyncReq { full: false }` (reliable).
    ShardDelta(Box<ShardDeltaPayload<I>>),
}

/// Wire size of a batch envelope: the **exact** varint-encoded causal
/// header (sender, edge sequence number, and the delta-encoded
/// dirty-row knowledge matrix that carries transitive causal
/// dependencies under partial replication — see `cbm_net::delta` for
/// the codec and its byte-exact `wire_len`), plus per-op object id,
/// timestamp, tag byte, and the in-memory payload size as a stand-in
/// for a real payload codec (see `cbm_net::msg` for exact encodings of
/// the paper's message shapes). The dense-matrix era charged a flat
/// `8·n²`-byte header here; the delta header's size depends on how
/// much knowledge actually changed on the edge since its previous
/// envelope, which is what makes bytes/op flat in cluster size under
/// locality-bounded placement (`docs/SCALING.md`) — and also why byte
/// totals, unlike message/batch/payload counts, are not
/// interleaving-deterministic.
pub fn batch_bytes<I>(env: &BatchMsg<I>) -> usize {
    let header = env.knows.wire_len(env.sender, env.seq);
    let per_op = 4 + 10 + 1 + std::mem::size_of::<I>();
    header + env.payload.len() * per_op
}

/// Estimated wire size of a nack (sender id + tag).
pub fn nack_bytes() -> usize {
    2 + 1
}

/// Wire size of a repair: the envelopes it retransmits, at their
/// original (delta-encoded) stamp sizes.
pub fn repair_bytes<I>(batches: &[BatchMsg<I>]) -> usize {
    batches.iter().map(batch_bytes).sum()
}

/// Estimated wire size of a state transfer: shard ids, per-object
/// states, and the Lamport stamp.
pub fn sync_bytes<S>(p: &ShardSyncPayload<S>) -> usize {
    p.shards
        .iter()
        .map(|(_, states)| 4 + states.len() * std::mem::size_of::<S>())
        .sum::<usize>()
        + 8
}

/// Estimated wire size of a recovery handshake (sender + tag + flag).
pub fn sync_req_bytes() -> usize {
    2 + 1 + 1
}

/// Estimated wire size of a recovery op delta: shard ids plus each op
/// at the same per-op charge as a batch envelope, and the Lamport
/// stamp.
pub fn delta_bytes<I>(p: &ShardDeltaPayload<I>) -> usize {
    let per_op = 4 + 10 + 1 + std::mem::size_of::<I>();
    p.shards
        .iter()
        .map(|(_, ops)| 4 + ops.len() * per_op)
        .sum::<usize>()
        + 8
}

/// Estimated wire size of a routed read request (sender + object +
/// input).
pub fn read_req_bytes<I>() -> usize {
    2 + 4 + std::mem::size_of::<I>()
}

/// Estimated wire size of a routed read reply (sender + output).
pub fn read_reply_bytes<O>() -> usize {
    2 + std::mem::size_of::<O>()
}

#[cfg(test)]
mod tests {
    use super::*;

    use cbm_net::broadcast::KnowledgeDelta;

    fn env_with(ops: Vec<WireOp<u64>>, knows: KnowledgeDelta) -> BatchMsg<u64> {
        BatchMsg {
            sender: 3,
            seq: 17,
            knows,
            payload: ops,
        }
    }

    #[test]
    fn batch_bytes_scale_with_ops_and_delta_size() {
        let op = WireOp {
            obj: 0,
            input: 7u64,
            ts: Timestamp::ZERO,
            wseq: None,
        };
        let one = env_with(vec![op.clone()], KnowledgeDelta::default());
        let two = env_with(vec![op.clone(), op.clone()], KnowledgeDelta::default());
        assert_eq!(batch_bytes(&two) - batch_bytes(&one), 4 + 10 + 1 + 8);
        // a dirtier delta costs more, and the header charge is the
        // codec's exact encoded length
        let dirty = env_with(
            vec![op],
            KnowledgeDelta {
                rows: vec![(0, vec![(1, 5), (3, 9)]), (2, vec![(0, 1)])],
            },
        );
        assert!(batch_bytes(&dirty) > batch_bytes(&one));
        assert_eq!(
            batch_bytes(&dirty) - dirty.payload.len() * (4 + 10 + 1 + 8),
            dirty.knows.encode(dirty.sender, dirty.seq).len(),
            "header charge == exact encoded bytes"
        );
    }

    #[test]
    fn control_sizes_are_deterministic() {
        let op = WireOp {
            obj: 1,
            input: 3u64,
            ts: Timestamp::ZERO,
            wseq: Some(0),
        };
        let env = env_with(
            vec![op],
            KnowledgeDelta {
                rows: vec![(3, vec![(0, 17)])],
            },
        );
        assert_eq!(nack_bytes(), 3);
        assert_eq!(
            repair_bytes(std::slice::from_ref(&env)),
            batch_bytes(&env),
            "repairs recharge the original stamps"
        );
        let sync = ShardSyncPayload::<u64> {
            shards: vec![(0, vec![0u64; 4]), (2, vec![0u64; 4])],
            lamport: 9,
        };
        assert_eq!(sync_bytes(&sync), 2 * (4 + 4 * 8) + 8);
        assert_eq!(read_req_bytes::<u32>(), 2 + 4 + 4);
        assert_eq!(read_reply_bytes::<u64>(), 2 + 8);
        assert_eq!(sync_req_bytes(), 4);
        let delta = ShardDeltaPayload::<u64> {
            shards: vec![(
                0,
                vec![WireOp {
                    obj: 0,
                    input: 1u64,
                    ts: Timestamp::ZERO,
                    wseq: None,
                }],
            )],
            lamport: 9,
        };
        assert_eq!(delta_bytes(&delta), 4 + (4 + 10 + 1 + 8) + 8);
    }
}
