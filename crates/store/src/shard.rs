//! [`ShardMap`]: deterministic placement of the object space onto
//! replica sets.
//!
//! Objects group into `shards` contiguous residue classes
//! (`shard(obj) = (obj % objects) % shards`); each shard is hosted by a
//! **replica set** of `replication` workers. The set always contains
//! the shard's **home** worker `shard % workers` (so every worker hosts
//! at least one shard and shard ids round-robin over homes), plus
//! `replication - 1` further workers drawn from a seeded hash of the
//! shard id — the `placement_seed` axis lets sweeps vary placements
//! without touching workloads.
//!
//! Everything here is a pure function of
//! `(workers, objects, shards, replication, placement_seed, locality)`:
//! every worker, the verifier, and a re-run of the same config derive
//! the same placement, which is what keeps message counts and repair
//! traffic reproducible under partial replication (see
//! `docs/SHARDING.md`).
//!
//! **Locality.** With `locality > 0` the extra replicas are drawn from
//! the shard home's **aligned block**: the cluster tiles into
//! `max(locality, replication)`-worker blocks and a shard's replicas
//! all sit in its home's block (the tail block snaps back to stay a
//! full window wide). Aligned blocks, unlike windows that slide with
//! the home, never overlap — the interest graph decomposes into
//! disjoint islands, so a worker's knowledge matrix only ever has
//! non-zero rows for its own block and the delta-encoded causal
//! metadata (see `cbm_net::delta`) stays O(block²) per envelope,
//! independent of cluster size, as the cluster scales to 256 workers
//! (`docs/SCALING.md`). Remote reads still cross blocks (routed
//! request/reply, no knowledge transfer), so the object space remains
//! one store. `locality = 0` reproduces the legacy global draw
//! exactly.

use crate::config::StoreConfig;
use cbm_net::broadcast::{full_interest, InterestMask};
use cbm_net::NodeId;

/// SplitMix64 finalizer: the placement hash (local copy so placement
/// stays stable even if shared hash utilities evolve).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic object-space placement: shard → replica set.
#[derive(Debug, Clone)]
pub struct ShardMap {
    workers: usize,
    objects: usize,
    shards: usize,
    replication: usize,
    /// Replica sets per shard, ascending node order.
    replicas: Vec<Vec<NodeId>>,
    /// Replica sets per shard as interest bitmasks.
    masks: Vec<InterestMask>,
    /// Shards hosted per worker, ascending.
    hosted: Vec<Vec<usize>>,
    /// `hosts[w * shards + s]`.
    hosts: Vec<bool>,
    placement_seed: u64,
}

impl ShardMap {
    /// Build the placement for a cluster of `workers` serving
    /// `objects` objects in `shards` shards at replication factor
    /// `replication`, drawing non-home replicas globally
    /// (`locality = 0`; see [`ShardMap::with_locality`]).
    pub fn new(
        workers: usize,
        objects: usize,
        shards: usize,
        replication: usize,
        placement_seed: u64,
    ) -> Self {
        Self::with_locality(workers, objects, shards, replication, placement_seed, 0)
    }

    /// Build the placement with a locality window. Arguments are
    /// clamped to their meaningful ranges: `shards` to `[1, objects]`,
    /// `replication` to `[1, workers]` (0 means "full replication"),
    /// `locality` to `[replication, workers]` when non-zero (0 means
    /// the legacy global draw), and
    /// `workers ≤ InterestMask::MAX_NODES` is asserted.
    ///
    /// A standalone map tolerates workers that host nothing (only the
    /// interest masks and replica sets are consulted); the engine
    /// path ([`ShardMap::build`]) additionally requires every worker
    /// to host at least one shard, because updates execute locally
    /// after [`ShardMap::localize`].
    pub fn with_locality(
        workers: usize,
        objects: usize,
        shards: usize,
        replication: usize,
        placement_seed: u64,
        locality: usize,
    ) -> Self {
        let workers = workers.max(1);
        assert!(
            workers <= InterestMask::MAX_NODES,
            "interest masks are {}-bit bitsets: {workers} workers",
            InterestMask::MAX_NODES
        );
        let objects = objects.max(1);
        let shards = shards.clamp(1, objects);
        let replication = if replication == 0 {
            workers
        } else {
            replication.min(workers)
        };
        // the candidate window the seeded draw runs over: the whole
        // cluster (legacy), or the home's aligned `window`-wide block
        let window = if locality == 0 {
            workers
        } else {
            locality.max(replication).min(workers)
        };

        let mut replicas = Vec::with_capacity(shards);
        let mut masks = Vec::with_capacity(shards);
        let mut hosted = vec![Vec::new(); workers];
        let mut hosts = vec![false; workers * shards];
        for s in 0..shards {
            let mut set = Vec::with_capacity(replication);
            let mut mask = InterestMask::EMPTY;
            let home = s % workers;
            set.push(home);
            mask.set(home);
            // the window base: the legacy draw hashes into absolute
            // worker space (base 0, window = workers — bit-identical
            // to pre-locality placements), the local draw into the
            // home's **aligned block** `[base, base + window)`. Blocks
            // tile the cluster instead of sliding with the home, so
            // neighborhoods of different homes never overlap: the
            // interest graph decomposes into disjoint islands and a
            // worker's knowledge matrix only ever touches its own
            // block's rows (the tail block snaps back so every block
            // is a full window wide).
            let base = if locality == 0 {
                0
            } else {
                (home - home % window).min(workers - window)
            };
            // the remaining replicas: seeded hash sequence over the
            // window, linear probing (within the window) past workers
            // already in the set
            let mut i = 0u64;
            while set.len() < replication {
                let off = (mix(placement_seed ^ ((s as u64) << 20) ^ i) % window as u64) as usize;
                i += 1;
                let mut off = off;
                while mask.contains((base + off) % workers) {
                    off = (off + 1) % window;
                }
                let cand = (base + off) % workers;
                set.push(cand);
                mask.set(cand);
            }
            set.sort_unstable();
            for &w in &set {
                hosted[w].push(s);
                hosts[w * shards + s] = true;
            }
            replicas.push(set);
            masks.push(mask);
        }
        ShardMap {
            workers,
            objects,
            shards,
            replication,
            replicas,
            masks,
            hosted,
            hosts,
            placement_seed,
        }
    }

    /// The placement a [`StoreConfig`] describes.
    ///
    /// Panics if any worker would host no shard: the engine's updates
    /// execute locally after [`ShardMap::localize`] (there is no
    /// remote-write path), and `shards = min(objects, workers)`, so a
    /// partially replicated config needs `objects ≥ workers`. Failing
    /// here turns a mid-run divide-by-zero on a worker thread into an
    /// immediate, explainable build error.
    pub fn build(cfg: &StoreConfig) -> Self {
        let map = ShardMap::with_locality(
            cfg.workers,
            cfg.objects,
            cfg.sharding.shards_or(cfg.workers),
            cfg.sharding.replication,
            cfg.sharding.placement_seed,
            cfg.sharding.locality,
        );
        if let Some(w) = (0..map.workers).find(|&w| map.hosted[w].is_empty()) {
            panic!(
                "worker {w} hosts no shard: {} shard(s) over {} workers \
                 ({} objects) — raise `objects` to at least `workers`, \
                 or replicate fully",
                map.shards, map.workers, map.objects
            );
        }
        map
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Effective replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Is every shard hosted by every worker (the degenerate full-
    /// replication placement, where the engine skips read routing and
    /// per-shard window splitting)?
    pub fn is_full(&self) -> bool {
        self.replication == self.workers
    }

    /// The shard an object id maps to (total for any id).
    #[inline]
    pub fn shard_of(&self, obj: u32) -> usize {
        (obj as usize % self.objects) % self.shards
    }

    /// The replica set of a shard, ascending node order.
    pub fn replicas(&self, shard: usize) -> &[NodeId] {
        &self.replicas[shard]
    }

    /// The replica set of a shard as an interest bitmask.
    pub fn mask(&self, shard: usize) -> InterestMask {
        self.masks[shard]
    }

    /// Does `w` host `shard`?
    #[inline]
    pub fn hosts(&self, w: NodeId, shard: usize) -> bool {
        self.hosts[w * self.shards + shard]
    }

    /// Shards hosted by `w`, ascending.
    pub fn hosted(&self, w: NodeId) -> &[usize] {
        &self.hosted[w]
    }

    /// The shard's home worker (owner of first resort for read
    /// routing).
    pub fn home(&self, shard: usize) -> NodeId {
        shard % self.workers
    }

    /// Object slots (table indices) belonging to `shard`, ascending.
    pub fn slots_of(&self, shard: usize) -> impl Iterator<Item = usize> + '_ {
        (shard..self.objects).step_by(self.shards)
    }

    /// Route an object id to a deterministic object this worker hosts
    /// (identity when the worker already hosts it). This is the
    /// client-side write routing stand-in of `docs/SHARDING.md`:
    /// updates always execute at a replica of their object, so an
    /// update addressed elsewhere is re-addressed — preserving the
    /// workload's volume, seed-determinism, and rough uniformity over
    /// the worker's hosted objects.
    pub fn localize(&self, w: NodeId, obj: u32) -> u32 {
        let slot = obj as usize % self.objects;
        if self.hosts[w * self.shards + slot % self.shards] {
            return obj;
        }
        let hosted = &self.hosted[w];
        let target =
            hosted[(mix(self.placement_seed ^ 0xA5A5 ^ obj as u64) % hosted.len() as u64) as usize];
        let cand = (slot / self.shards) * self.shards + target;
        let cand = if cand < self.objects { cand } else { target };
        cand as u32
    }

    /// The full-cluster interest mask.
    pub fn full_mask(&self) -> InterestMask {
        full_interest(self.workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_replication_hosts_everything_everywhere() {
        let m = ShardMap::new(4, 32, 4, 0, 7);
        assert!(m.is_full());
        assert_eq!(m.replication(), 4);
        for s in 0..4 {
            assert_eq!(m.replicas(s), &[0, 1, 2, 3]);
            assert_eq!(m.mask(s), full_interest(4));
        }
        for w in 0..4 {
            assert_eq!(m.hosted(w).len(), 4);
            for obj in 0..64u32 {
                assert_eq!(m.localize(w, obj), obj, "identity at rf = n");
            }
        }
    }

    #[test]
    fn every_shard_contains_its_home_and_rf_distinct_replicas() {
        let m = ShardMap::new(8, 1024, 8, 2, 42);
        assert!(!m.is_full());
        for s in 0..8 {
            let r = m.replicas(s);
            assert_eq!(r.len(), 2);
            assert!(r.contains(&m.home(s)), "home {} ∉ {:?}", m.home(s), r);
            assert!(r.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
            assert_eq!(m.mask(s).count(), 2);
        }
        // every worker hosts its home shard, so no worker is empty
        for w in 0..8 {
            assert!(m.hosted(w).contains(&w));
        }
    }

    #[test]
    fn placement_is_deterministic_and_seed_sensitive() {
        let a = ShardMap::new(8, 256, 8, 3, 1);
        let b = ShardMap::new(8, 256, 8, 3, 1);
        let c = ShardMap::new(8, 256, 8, 3, 2);
        for s in 0..8 {
            assert_eq!(a.replicas(s), b.replicas(s));
        }
        assert!(
            (0..8).any(|s| a.replicas(s) != c.replicas(s)),
            "different seeds should move at least one replica set"
        );
    }

    #[test]
    fn shard_of_and_slots_partition_the_space() {
        let m = ShardMap::new(4, 10, 4, 2, 0);
        let mut seen = [false; 10];
        for s in 0..4 {
            for slot in m.slots_of(s) {
                assert!(!seen[slot], "slot {slot} in two shards");
                seen[slot] = true;
                assert_eq!(m.shard_of(slot as u32), s);
            }
        }
        assert!(seen.iter().all(|&x| x), "slots must cover the space");
        // ids wrap like the object table
        assert_eq!(m.shard_of(13), m.shard_of(3));
    }

    #[test]
    fn localize_lands_on_hosted_objects() {
        let m = ShardMap::new(8, 100, 8, 2, 9);
        for w in 0..8 {
            for obj in 0..200u32 {
                let l = m.localize(w, obj);
                assert!(
                    m.hosts(w, m.shard_of(l)),
                    "worker {w} does not host localized {l} (from {obj})"
                );
                if m.hosts(w, m.shard_of(obj)) {
                    assert_eq!(l, obj, "hosted ids pass through unchanged");
                } else {
                    assert!((l as usize) < 100, "re-addressed ids are in range");
                }
            }
        }
    }

    #[test]
    fn locality_confines_replicas_to_the_home_window() {
        // 32 workers, rf 3, locality 4: every replica sits in its
        // home's aligned 4-worker block — blocks tile, they don't
        // slide, so neighborhoods of different homes never chain
        let m = ShardMap::with_locality(32, 1024, 32, 3, 7, 4);
        for s in 0..32 {
            let home = m.home(s);
            for &r in m.replicas(s) {
                assert_eq!(
                    r / 4,
                    home / 4,
                    "shard {s}: replica {r} outside block of {home}"
                );
            }
            assert_eq!(m.replicas(s).len(), 3);
        }
        // locality 0 reproduces the legacy global draw bit-for-bit
        let legacy = ShardMap::new(32, 1024, 32, 3, 7);
        let zero = ShardMap::with_locality(32, 1024, 32, 3, 7, 0);
        for s in 0..32 {
            assert_eq!(legacy.replicas(s), zero.replicas(s));
        }
        // and some shard of the global draw escapes the window (the
        // two placements genuinely differ)
        assert!(
            (0..32).any(|s| legacy.replicas(s) != m.replicas(s)),
            "global and local draws should differ somewhere"
        );
        // locality clamps up to rf so sets stay full-size
        let tight = ShardMap::with_locality(16, 256, 16, 4, 3, 2);
        for s in 0..16 {
            assert_eq!(tight.replicas(s).len(), 4);
            let home = tight.home(s);
            for &r in tight.replicas(s) {
                assert_eq!(r / 4, home / 4, "window clamps to rf");
            }
        }
        // a tail block narrower than the window snaps back to full
        // width (10 workers, window 4: homes 8..10 draw from [6, 10))
        let tail = ShardMap::with_locality(10, 256, 10, 2, 5, 4);
        for s in 8..10 {
            for &r in tail.replicas(s) {
                assert!((6..10).contains(&r), "tail replica {r} outside [6, 10)");
            }
        }
    }

    #[test]
    fn large_clusters_build_and_stay_in_window() {
        // past the old 64-worker mask cap: 256 workers must build
        let m = ShardMap::with_locality(256, 4096, 256, 2, 11, 8);
        for s in 0..256 {
            assert_eq!(m.replicas(s).len(), 2);
            assert_eq!(m.mask(s).count(), 2);
            let home = m.home(s);
            for &r in m.replicas(s) {
                assert_eq!(r / 8, home / 8, "replicas stay in the aligned block");
            }
        }
        assert_eq!(m.full_mask().count(), 256);
    }

    #[test]
    fn clamps_degenerate_arguments() {
        let m = ShardMap::new(3, 4, 99, 7, 0);
        assert_eq!(m.shards(), 4, "shards clamp to objects");
        assert_eq!(m.replication(), 3, "rf clamps to workers");
        let m = ShardMap::new(1, 1, 0, 1, 0);
        assert_eq!(m.shards(), 1);
        assert!(m.is_full());
    }

    #[test]
    #[should_panic(expected = "hosts no shard")]
    fn build_rejects_stranded_workers() {
        // 64 objects cap the map at 64 shards; under rf 2 the other
        // 64 workers would host nothing and divide by zero in
        // `localize` mid-run — `build` must refuse up front
        let cfg = crate::StoreConfig {
            workers: 128,
            objects: 64,
            sharding: crate::ShardConfig::rf_local(2, 8),
            ..Default::default()
        };
        ShardMap::build(&cfg);
    }

    #[test]
    fn build_accepts_large_chaos_shapes() {
        // the nightly 128-worker chaos cell's placement: objects
        // scaled up to the worker count, every worker hosts its home
        let cfg = crate::StoreConfig {
            workers: 128,
            objects: 128,
            sharding: crate::ShardConfig::rf_local(2, 8),
            ..Default::default()
        };
        let m = ShardMap::build(&cfg);
        for w in 0..128 {
            assert!(!m.hosted(w).is_empty(), "worker {w} hosts a shard");
        }
        // a standalone map may still strand workers (mask-only uses)
        let loose = ShardMap::with_locality(128, 64, 128, 2, 1, 8);
        assert!((0..128).any(|w| loose.hosted(w).is_empty()));
    }
}
