//! [`ShardMap`]: deterministic placement of the object space onto
//! replica sets.
//!
//! Objects group into `shards` contiguous residue classes
//! (`shard(obj) = (obj % objects) % shards`); each shard is hosted by a
//! **replica set** of `replication` workers. The set always contains
//! the shard's **home** worker `shard % workers` (so every worker hosts
//! at least one shard and shard ids round-robin over homes), plus
//! `replication - 1` further workers drawn from a seeded hash of the
//! shard id — the `placement_seed` axis lets sweeps vary placements
//! without touching workloads.
//!
//! Everything here is a pure function of
//! `(workers, objects, shards, replication, placement_seed)`: every
//! worker, the verifier, and a re-run of the same config derive the
//! same placement, which is what keeps message counts and repair
//! traffic reproducible under partial replication (see
//! `docs/SHARDING.md`).

use crate::config::StoreConfig;
use cbm_net::broadcast::{full_interest, InterestMask};
use cbm_net::NodeId;

/// SplitMix64 finalizer: the placement hash (local copy so placement
/// stays stable even if shared hash utilities evolve).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic object-space placement: shard → replica set.
#[derive(Debug, Clone)]
pub struct ShardMap {
    workers: usize,
    objects: usize,
    shards: usize,
    replication: usize,
    /// Replica sets per shard, ascending node order.
    replicas: Vec<Vec<NodeId>>,
    /// Replica sets per shard as interest bitmasks.
    masks: Vec<InterestMask>,
    /// Shards hosted per worker, ascending.
    hosted: Vec<Vec<usize>>,
    /// `hosts[w * shards + s]`.
    hosts: Vec<bool>,
    placement_seed: u64,
}

impl ShardMap {
    /// Build the placement for a cluster of `workers` serving
    /// `objects` objects in `shards` shards at replication factor
    /// `replication`. Arguments are clamped to their meaningful
    /// ranges: `shards` to `[1, objects]`, `replication` to
    /// `[1, workers]` (0 means "full replication"), and `workers ≤ 64`
    /// is asserted (interest masks are `u64` bitmasks).
    pub fn new(
        workers: usize,
        objects: usize,
        shards: usize,
        replication: usize,
        placement_seed: u64,
    ) -> Self {
        let workers = workers.max(1);
        assert!(
            workers <= 64,
            "interest masks are u64 bitmasks: {workers} workers > 64"
        );
        let objects = objects.max(1);
        let shards = shards.clamp(1, objects);
        let replication = if replication == 0 {
            workers
        } else {
            replication.min(workers)
        };

        let mut replicas = Vec::with_capacity(shards);
        let mut masks = Vec::with_capacity(shards);
        let mut hosted = vec![Vec::new(); workers];
        let mut hosts = vec![false; workers * shards];
        for s in 0..shards {
            let mut set = Vec::with_capacity(replication);
            let mut mask: InterestMask = 0;
            let home = s % workers;
            set.push(home);
            mask |= 1 << home;
            // the remaining replicas: seeded hash sequence, linear
            // probing past workers already in the set
            let mut i = 0u64;
            while set.len() < replication {
                let cand = (mix(placement_seed ^ ((s as u64) << 20) ^ i) % workers as u64) as usize;
                i += 1;
                let mut cand = cand;
                while mask & (1 << cand) != 0 {
                    cand = (cand + 1) % workers;
                }
                set.push(cand);
                mask |= 1 << cand;
            }
            set.sort_unstable();
            for &w in &set {
                hosted[w].push(s);
                hosts[w * shards + s] = true;
            }
            replicas.push(set);
            masks.push(mask);
        }
        ShardMap {
            workers,
            objects,
            shards,
            replication,
            replicas,
            masks,
            hosted,
            hosts,
            placement_seed,
        }
    }

    /// The placement a [`StoreConfig`] describes.
    pub fn build(cfg: &StoreConfig) -> Self {
        ShardMap::new(
            cfg.workers,
            cfg.objects,
            cfg.sharding.shards_or(cfg.workers),
            cfg.sharding.replication,
            cfg.sharding.placement_seed,
        )
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Effective replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Is every shard hosted by every worker (the degenerate full-
    /// replication placement, where the engine skips read routing and
    /// per-shard window splitting)?
    pub fn is_full(&self) -> bool {
        self.replication == self.workers
    }

    /// The shard an object id maps to (total for any id).
    #[inline]
    pub fn shard_of(&self, obj: u32) -> usize {
        (obj as usize % self.objects) % self.shards
    }

    /// The replica set of a shard, ascending node order.
    pub fn replicas(&self, shard: usize) -> &[NodeId] {
        &self.replicas[shard]
    }

    /// The replica set of a shard as an interest bitmask.
    pub fn mask(&self, shard: usize) -> InterestMask {
        self.masks[shard]
    }

    /// Does `w` host `shard`?
    #[inline]
    pub fn hosts(&self, w: NodeId, shard: usize) -> bool {
        self.hosts[w * self.shards + shard]
    }

    /// Shards hosted by `w`, ascending.
    pub fn hosted(&self, w: NodeId) -> &[usize] {
        &self.hosted[w]
    }

    /// The shard's home worker (owner of first resort for read
    /// routing).
    pub fn home(&self, shard: usize) -> NodeId {
        shard % self.workers
    }

    /// Object slots (table indices) belonging to `shard`, ascending.
    pub fn slots_of(&self, shard: usize) -> impl Iterator<Item = usize> + '_ {
        (shard..self.objects).step_by(self.shards)
    }

    /// Route an object id to a deterministic object this worker hosts
    /// (identity when the worker already hosts it). This is the
    /// client-side write routing stand-in of `docs/SHARDING.md`:
    /// updates always execute at a replica of their object, so an
    /// update addressed elsewhere is re-addressed — preserving the
    /// workload's volume, seed-determinism, and rough uniformity over
    /// the worker's hosted objects.
    pub fn localize(&self, w: NodeId, obj: u32) -> u32 {
        let slot = obj as usize % self.objects;
        if self.hosts[w * self.shards + slot % self.shards] {
            return obj;
        }
        let hosted = &self.hosted[w];
        let target =
            hosted[(mix(self.placement_seed ^ 0xA5A5 ^ obj as u64) % hosted.len() as u64) as usize];
        let cand = (slot / self.shards) * self.shards + target;
        let cand = if cand < self.objects { cand } else { target };
        cand as u32
    }

    /// The full-cluster interest mask.
    pub fn full_mask(&self) -> InterestMask {
        full_interest(self.workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_replication_hosts_everything_everywhere() {
        let m = ShardMap::new(4, 32, 4, 0, 7);
        assert!(m.is_full());
        assert_eq!(m.replication(), 4);
        for s in 0..4 {
            assert_eq!(m.replicas(s), &[0, 1, 2, 3]);
            assert_eq!(m.mask(s), 0b1111);
        }
        for w in 0..4 {
            assert_eq!(m.hosted(w).len(), 4);
            for obj in 0..64u32 {
                assert_eq!(m.localize(w, obj), obj, "identity at rf = n");
            }
        }
    }

    #[test]
    fn every_shard_contains_its_home_and_rf_distinct_replicas() {
        let m = ShardMap::new(8, 1024, 8, 2, 42);
        assert!(!m.is_full());
        for s in 0..8 {
            let r = m.replicas(s);
            assert_eq!(r.len(), 2);
            assert!(r.contains(&m.home(s)), "home {} ∉ {:?}", m.home(s), r);
            assert!(r.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
            assert_eq!(m.mask(s).count_ones(), 2);
        }
        // every worker hosts its home shard, so no worker is empty
        for w in 0..8 {
            assert!(m.hosted(w).contains(&w));
        }
    }

    #[test]
    fn placement_is_deterministic_and_seed_sensitive() {
        let a = ShardMap::new(8, 256, 8, 3, 1);
        let b = ShardMap::new(8, 256, 8, 3, 1);
        let c = ShardMap::new(8, 256, 8, 3, 2);
        for s in 0..8 {
            assert_eq!(a.replicas(s), b.replicas(s));
        }
        assert!(
            (0..8).any(|s| a.replicas(s) != c.replicas(s)),
            "different seeds should move at least one replica set"
        );
    }

    #[test]
    fn shard_of_and_slots_partition_the_space() {
        let m = ShardMap::new(4, 10, 4, 2, 0);
        let mut seen = [false; 10];
        for s in 0..4 {
            for slot in m.slots_of(s) {
                assert!(!seen[slot], "slot {slot} in two shards");
                seen[slot] = true;
                assert_eq!(m.shard_of(slot as u32), s);
            }
        }
        assert!(seen.iter().all(|&x| x), "slots must cover the space");
        // ids wrap like the object table
        assert_eq!(m.shard_of(13), m.shard_of(3));
    }

    #[test]
    fn localize_lands_on_hosted_objects() {
        let m = ShardMap::new(8, 100, 8, 2, 9);
        for w in 0..8 {
            for obj in 0..200u32 {
                let l = m.localize(w, obj);
                assert!(
                    m.hosts(w, m.shard_of(l)),
                    "worker {w} does not host localized {l} (from {obj})"
                );
                if m.hosts(w, m.shard_of(obj)) {
                    assert_eq!(l, obj, "hosted ids pass through unchanged");
                } else {
                    assert!((l as usize) < 100, "re-addressed ids are in range");
                }
            }
        }
    }

    #[test]
    fn clamps_degenerate_arguments() {
        let m = ShardMap::new(3, 4, 99, 7, 0);
        assert_eq!(m.shards(), 4, "shards clamp to objects");
        assert_eq!(m.replication(), 3, "rf clamps to workers");
        let m = ShardMap::new(1, 1, 0, 1, 0);
        assert_eq!(m.shards(), 1);
        assert!(m.is_full());
    }
}
