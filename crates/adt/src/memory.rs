//! Integer memory `M_X` (Definition 10): a pool of integer registers.
//!
//! Because consistency criteria are **not composable**, causal memory
//! must be defined as a *causally consistent pool of registers* rather
//! than a pool of causally consistent registers (§4.2) — hence memory is
//! one single ADT whose state maps register names to values.
//!
//! Register names are `usize` indices into a fixed name set `X`
//! (the paper's `M[a−z]` examples use letters; our figure builders map
//! `a, b, c, … ↦ 0, 1, 2, …`).

use crate::adt::{Adt, OpKind};
use crate::{Value, DEFAULT_VALUE};
use serde::{Deserialize, Serialize};

/// Input alphabet of `M_X`: `Σi = {r_x, w_x(v) : v ∈ ℕ, x ∈ X}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemInput {
    /// `w_x(v)` — write `v` into register `x` (pure update).
    Write(usize, Value),
    /// `r_x` — read register `x` (pure query).
    Read(usize),
}

impl MemInput {
    /// The register this operation addresses.
    pub fn register(&self) -> usize {
        match self {
            MemInput::Write(x, _) | MemInput::Read(x) => *x,
        }
    }
}

/// Output alphabet of `M_X`: `Σo = ℕ ∪ {⊥}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOutput {
    /// `⊥`, returned by writes.
    Ack,
    /// The value read.
    Val(Value),
}

/// The integer memory ADT over `|X| = registers` names (Definition 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Memory {
    registers: usize,
}

impl Memory {
    /// Memory over the name set `{0, …, registers-1}`.
    pub fn new(registers: usize) -> Self {
        Memory { registers }
    }

    /// Number of register names `|X|`.
    pub fn registers(&self) -> usize {
        self.registers
    }

    fn addr(&self, x: usize) -> usize {
        x % self.registers.max(1)
    }
}

impl Adt for Memory {
    type Input = MemInput;
    type Output = MemOutput;
    type State = Vec<Value>;

    fn initial(&self) -> Self::State {
        vec![DEFAULT_VALUE; self.registers]
    }

    fn transition(&self, q: &Self::State, i: &Self::Input) -> Self::State {
        match i {
            MemInput::Write(x, v) => {
                let mut next = q.clone();
                next[self.addr(*x)] = *v;
                next
            }
            MemInput::Read(_) => q.clone(),
        }
    }

    fn output(&self, q: &Self::State, i: &Self::Input) -> Self::Output {
        match i {
            MemInput::Write(..) => MemOutput::Ack,
            MemInput::Read(x) => MemOutput::Val(q[self.addr(*x)]),
        }
    }

    fn kind(&self, i: &Self::Input) -> OpKind {
        match i {
            MemInput::Write(..) => OpKind::PureUpdate,
            MemInput::Read(_) => OpKind::PureQuery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdtExt;

    #[test]
    fn registers_are_independent() {
        let m = Memory::new(3);
        let q = m.fold_inputs([MemInput::Write(0, 5), MemInput::Write(2, 7)].iter());
        assert_eq!(m.output(&q, &MemInput::Read(0)), MemOutput::Val(5));
        assert_eq!(m.output(&q, &MemInput::Read(1)), MemOutput::Val(0));
        assert_eq!(m.output(&q, &MemInput::Read(2)), MemOutput::Val(7));
    }

    #[test]
    fn write_overwrites_whole_past() {
        let m = Memory::new(1);
        let q = m.fold_inputs(
            [
                MemInput::Write(0, 1),
                MemInput::Write(0, 2),
                MemInput::Write(0, 3),
            ]
            .iter(),
        );
        assert_eq!(m.output(&q, &MemInput::Read(0)), MemOutput::Val(3));
    }

    #[test]
    fn unwritten_register_reads_default() {
        let m = Memory::new(4);
        assert_eq!(
            m.output(&m.initial(), &MemInput::Read(3)),
            MemOutput::Val(0)
        );
    }

    #[test]
    fn classification() {
        let m = Memory::new(2);
        assert_eq!(m.kind(&MemInput::Write(0, 1)), OpKind::PureUpdate);
        assert_eq!(m.kind(&MemInput::Read(0)), OpKind::PureQuery);
    }

    #[test]
    fn address_wrapping_keeps_totality() {
        let m = Memory::new(2);
        let q = m.transition(&m.initial(), &MemInput::Write(7, 9)); // 7 mod 2 = 1
        assert_eq!(m.output(&q, &MemInput::Read(1)), MemOutput::Val(9));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::AdtExt;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn arb_ops(regs: usize, n: usize) -> impl Strategy<Value = Vec<MemInput>> {
        prop::collection::vec(
            prop_oneof![
                (0..regs, 1u64..100).prop_map(|(x, v)| MemInput::Write(x, v)),
                (0..regs).prop_map(MemInput::Read),
            ],
            0..n,
        )
    }

    proptest! {
        /// Memory state equals a map from register to last written value.
        #[test]
        #[allow(clippy::needless_range_loop)]
        fn state_is_last_write_per_register(ops in arb_ops(4, 40)) {
            let m = Memory::new(4);
            let q = m.fold_inputs(ops.iter());
            let mut model: HashMap<usize, u64> = HashMap::new();
            for op in &ops {
                if let MemInput::Write(x, v) = op {
                    model.insert(*x, *v);
                }
            }
            for x in 0..4 {
                prop_assert_eq!(q[x], model.get(&x).copied().unwrap_or(0));
            }
        }

        /// Reads commute with everything that does not write their register.
        #[test]
        fn reads_have_no_side_effect(ops in arb_ops(3, 20), x in 0usize..3) {
            let m = Memory::new(3);
            let q = m.fold_inputs(ops.iter());
            prop_assert_eq!(m.transition(&q, &MemInput::Read(x)), q);
        }
    }
}
