//! Shared counter (§1 mentions counters among the types whose queries
//! "depend on all or part of the updates that happened before").
//!
//! Counter updates commute, which makes the counter the easy case for
//! weak consistency: under causal convergence every replica converges to
//! the same total regardless of the arbitration order. It serves as a
//! contrast to the window stream (order-sensitive) in tests and benches.

use crate::adt::{Adt, OpKind};
use serde::{Deserialize, Serialize};

/// Input alphabet of the counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CtInput {
    /// Add `n` (signed; pure update).
    Add(i64),
    /// Read the current total (pure query).
    Read,
}

/// Output alphabet of the counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CtOutput {
    /// `⊥`, returned by `Add`.
    Ack,
    /// The total.
    Val(i64),
}

/// The counter ADT (initially 0, wrapping arithmetic keeps δ total).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter;

impl Adt for Counter {
    type Input = CtInput;
    type Output = CtOutput;
    type State = i64;

    fn initial(&self) -> Self::State {
        0
    }

    fn transition(&self, q: &Self::State, i: &Self::Input) -> Self::State {
        match i {
            CtInput::Add(n) => q.wrapping_add(*n),
            CtInput::Read => *q,
        }
    }

    fn output(&self, q: &Self::State, i: &Self::Input) -> Self::Output {
        match i {
            CtInput::Add(_) => CtOutput::Ack,
            CtInput::Read => CtOutput::Val(*q),
        }
    }

    fn kind(&self, i: &Self::Input) -> OpKind {
        match i {
            CtInput::Add(0) => OpKind::Noop, // δ(q, Add(0)) = q everywhere
            CtInput::Add(_) => OpKind::PureUpdate,
            CtInput::Read => OpKind::PureQuery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdtExt;

    #[test]
    fn add_accumulates() {
        let c = Counter;
        let q = c.fold_inputs([CtInput::Add(3), CtInput::Add(-1), CtInput::Add(5)].iter());
        assert_eq!(c.output(&q, &CtInput::Read), CtOutput::Val(7));
    }

    #[test]
    fn add_zero_is_noop_kind() {
        let c = Counter;
        assert_eq!(c.kind(&CtInput::Add(0)), OpKind::Noop);
        assert_eq!(c.kind(&CtInput::Add(1)), OpKind::PureUpdate);
    }

    #[test]
    fn wrapping_keeps_transition_total() {
        let c = Counter;
        let q = c.transition(&i64::MAX, &CtInput::Add(1));
        assert_eq!(q, i64::MIN);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::AdtExt;
    use proptest::prelude::*;

    proptest! {
        /// Counter updates commute: any permutation of the same multiset of
        /// adds reaches the same state (the convergence-friendly property).
        #[test]
        fn updates_commute(mut adds in prop::collection::vec(-100i64..100, 0..20), seed in 0u64..1000) {
            let c = Counter;
            let forward = c.fold_inputs(adds.iter().map(|n| CtInput::Add(*n)).collect::<Vec<_>>().iter());
            // deterministic shuffle
            let mut rng = seed;
            for i in (1..adds.len()).rev() {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (rng >> 33) as usize % (i + 1);
                adds.swap(i, j);
            }
            let shuffled = c.fold_inputs(adds.iter().map(|n| CtInput::Add(*n)).collect::<Vec<_>>().iter());
            prop_assert_eq!(forward, shuffled);
        }
    }
}
