//! The [`Adt`] trait: Definition 1 of the paper.

use std::fmt::Debug;
use std::hash::Hash;

/// Classification of an input symbol per Definition 1.
///
/// An input is an *update* if its transition part is not always a loop,
/// a *query* if its output depends on the state; it can be both (e.g. a
/// queue `pop`), and it is a *pure* update (resp. query) when it is not a
/// query (resp. update).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `δ(q, σ) = q` for all `q` and `λ(q, σ)` does not depend on `q`.
    /// (Degenerate; no library type uses it, but workloads may.)
    Noop,
    /// Pure update: side effect only, constant output (the paper's `⊥`).
    PureUpdate,
    /// Pure query: no side effect, state-dependent output.
    PureQuery,
    /// Both update and query (e.g. `pop`).
    UpdateQuery,
}

impl OpKind {
    /// Whether this kind has a side effect.
    #[inline]
    pub fn is_update(self) -> bool {
        matches!(self, OpKind::PureUpdate | OpKind::UpdateQuery)
    }
    /// Whether this kind has a state-dependent output.
    #[inline]
    pub fn is_query(self) -> bool {
        matches!(self, OpKind::PureQuery | OpKind::UpdateQuery)
    }
}

/// An abstract data type `T = (Σi, Σo, Q, q0, δ, λ)` (Definition 1).
///
/// `Σi`/`Σo` are the `Input`/`Output` associated types, `Q` is `State`,
/// `q0` is [`Adt::initial`], `δ` is [`Adt::transition`] and `λ` is
/// [`Adt::output`]. Both functions are **total**: implementations must
/// not panic for any reachable state and any input.
///
/// States must be cheap-ish to clone, hash and compare: the consistency
/// checkers in `cbm-check` memoise on `(event-set, State)` pairs, and the
/// replicated objects in `cbm-core` snapshot states for checkpointing.
pub trait Adt {
    /// The input alphabet `Σi` (methods of the type).
    type Input: Clone + Eq + Hash + Debug;
    /// The output alphabet `Σo` (return values, including the paper's `⊥`).
    type Output: Clone + Eq + Hash + Debug;
    /// The state space `Q`.
    type State: Clone + Eq + Hash + Debug;

    /// The initial state `q0`.
    fn initial(&self) -> Self::State;

    /// The transition function `δ(q, σi)` — the side effect.
    fn transition(&self, q: &Self::State, i: &Self::Input) -> Self::State;

    /// The output function `λ(q, σi)` — the return value, computed in the
    /// state *before* the transition (as in a Mealy machine).
    fn output(&self, q: &Self::State, i: &Self::Input) -> Self::Output;

    /// Declared classification of the input (see [`OpKind`] and the
    /// module docs on why this is declared rather than computed).
    fn kind(&self, i: &Self::Input) -> OpKind;

    /// Does `λ(q, i)` equal `expected`?
    ///
    /// Semantically identical to `self.output(q, i) == *expected`, but
    /// overridable: types whose outputs carry owned data (window
    /// vectors, popped values) can compare against the state directly
    /// instead of materializing an output per comparison. The search
    /// kernels call this once per (node, candidate), so the override
    /// is worth it on hot ADTs.
    #[inline]
    fn output_matches(&self, q: &Self::State, i: &Self::Input, expected: &Self::Output) -> bool {
        self.output(q, i) == *expected
    }

    /// Whether `i` is an update (has a side effect somewhere).
    #[inline]
    fn is_update(&self, i: &Self::Input) -> bool {
        self.kind(i).is_update()
    }

    /// Whether `i` is a query (output depends on the state somewhere).
    #[inline]
    fn is_query(&self, i: &Self::Input) -> bool {
        self.kind(i).is_query()
    }
}

/// Extension helpers on any [`Adt`].
pub trait AdtExt: Adt {
    /// Apply one input: returns `(δ(q, i), λ(q, i))`.
    #[inline]
    fn apply(&self, q: &Self::State, i: &Self::Input) -> (Self::State, Self::Output) {
        (self.transition(q, i), self.output(q, i))
    }

    /// Fold a sequence of inputs from the initial state, discarding
    /// outputs; returns the final state.
    fn fold_inputs<'a, I>(&self, inputs: I) -> Self::State
    where
        Self::Input: 'a,
        I: IntoIterator<Item = &'a Self::Input>,
    {
        let mut q = self.initial();
        for i in inputs {
            q = self.transition(&q, i);
        }
        q
    }

    /// Fold a sequence of inputs from a given state (in place).
    fn fold_inputs_from<'a, I>(&self, mut q: Self::State, inputs: I) -> Self::State
    where
        Self::Input: 'a,
        I: IntoIterator<Item = &'a Self::Input>,
    {
        for i in inputs {
            q = self.transition(&q, i);
        }
        q
    }
}

impl<T: Adt + ?Sized> AdtExt for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opkind_classification() {
        assert!(OpKind::PureUpdate.is_update());
        assert!(!OpKind::PureUpdate.is_query());
        assert!(!OpKind::PureQuery.is_update());
        assert!(OpKind::PureQuery.is_query());
        assert!(OpKind::UpdateQuery.is_update());
        assert!(OpKind::UpdateQuery.is_query());
        assert!(!OpKind::Noop.is_update());
        assert!(!OpKind::Noop.is_query());
    }
}
