//! Key-value store with delete and range scan.
//!
//! Where the paper's memory (Def. 10) has a fixed register set and
//! per-register reads, a KV store adds two behaviours that stress the
//! "beyond memory" machinery: `Del` makes state *shrink* (so
//! arbitration order between `Put` and `Del` of the same key is
//! observable, like the set), and `Scan` returns a view over *many*
//! keys at once (so a single query can witness the relative order of
//! updates to different keys — something no per-register read can).

use crate::adt::{Adt, OpKind};
use crate::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Input alphabet of the KV store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KvInput {
    /// Map `key ↦ value` (pure update).
    Put(Value, Value),
    /// Remove `key` if present (pure update).
    Del(Value),
    /// Look up `key` (pure query).
    Get(Value),
    /// Snapshot of all pairs in key order (pure query).
    Scan,
    /// Number of keys (pure query).
    Len,
}

/// Output alphabet of the KV store.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KvOutput {
    /// `⊥`, returned by updates.
    Ack,
    /// Lookup result.
    Found(Option<Value>),
    /// Snapshot, sorted by key.
    Pairs(Vec<(Value, Value)>),
    /// Key count.
    Count(usize),
}

/// The KV-store ADT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStore;

impl Adt for KvStore {
    type Input = KvInput;
    type Output = KvOutput;
    type State = BTreeMap<Value, Value>;

    fn initial(&self) -> Self::State {
        BTreeMap::new()
    }

    fn transition(&self, q: &Self::State, i: &Self::Input) -> Self::State {
        match i {
            KvInput::Put(k, v) => {
                let mut next = q.clone();
                next.insert(*k, *v);
                next
            }
            KvInput::Del(k) => {
                let mut next = q.clone();
                next.remove(k);
                next
            }
            KvInput::Get(_) | KvInput::Scan | KvInput::Len => q.clone(),
        }
    }

    fn output(&self, q: &Self::State, i: &Self::Input) -> Self::Output {
        match i {
            KvInput::Put(..) | KvInput::Del(_) => KvOutput::Ack,
            KvInput::Get(k) => KvOutput::Found(q.get(k).copied()),
            KvInput::Scan => KvOutput::Pairs(q.iter().map(|(k, v)| (*k, *v)).collect()),
            KvInput::Len => KvOutput::Count(q.len()),
        }
    }

    fn kind(&self, i: &Self::Input) -> OpKind {
        match i {
            KvInput::Put(..) | KvInput::Del(_) => OpKind::PureUpdate,
            KvInput::Get(_) | KvInput::Scan | KvInput::Len => OpKind::PureQuery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdtExt;

    #[test]
    fn put_get_roundtrip() {
        let kv = KvStore;
        let q = kv.fold_inputs([KvInput::Put(1, 10), KvInput::Put(2, 20)].iter());
        assert_eq!(kv.output(&q, &KvInput::Get(1)), KvOutput::Found(Some(10)));
        assert_eq!(kv.output(&q, &KvInput::Get(3)), KvOutput::Found(None));
        assert_eq!(kv.output(&q, &KvInput::Len), KvOutput::Count(2));
    }

    #[test]
    fn del_removes() {
        let kv = KvStore;
        let q = kv.fold_inputs([KvInput::Put(1, 10), KvInput::Del(1)].iter());
        assert_eq!(kv.output(&q, &KvInput::Get(1)), KvOutput::Found(None));
        // deleting a missing key is a no-op (δ total)
        let q2 = kv.transition(&q, &KvInput::Del(9));
        assert_eq!(q, q2);
    }

    #[test]
    fn put_del_order_matters() {
        let kv = KvStore;
        let a = kv.fold_inputs([KvInput::Put(1, 10), KvInput::Del(1)].iter());
        let b = kv.fold_inputs([KvInput::Del(1), KvInput::Put(1, 10)].iter());
        assert_ne!(a, b);
    }

    #[test]
    fn scan_is_sorted_and_pure() {
        let kv = KvStore;
        let q = kv.fold_inputs(
            [
                KvInput::Put(3, 30),
                KvInput::Put(1, 10),
                KvInput::Put(2, 20),
            ]
            .iter(),
        );
        assert_eq!(
            kv.output(&q, &KvInput::Scan),
            KvOutput::Pairs(vec![(1, 10), (2, 20), (3, 30)])
        );
        assert_eq!(kv.transition(&q, &KvInput::Scan), q);
    }

    #[test]
    fn overwrite_keeps_latest() {
        let kv = KvStore;
        let q = kv.fold_inputs([KvInput::Put(1, 10), KvInput::Put(1, 11)].iter());
        assert_eq!(kv.output(&q, &KvInput::Get(1)), KvOutput::Found(Some(11)));
        assert_eq!(kv.output(&q, &KvInput::Len), KvOutput::Count(1));
    }

    #[test]
    fn classification() {
        let kv = KvStore;
        assert_eq!(kv.kind(&KvInput::Put(0, 0)), OpKind::PureUpdate);
        assert_eq!(kv.kind(&KvInput::Del(0)), OpKind::PureUpdate);
        assert_eq!(kv.kind(&KvInput::Get(0)), OpKind::PureQuery);
        assert_eq!(kv.kind(&KvInput::Scan), OpKind::PureQuery);
        assert_eq!(kv.kind(&KvInput::Len), OpKind::PureQuery);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::AdtExt;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn arb_ops(n: usize) -> impl Strategy<Value = Vec<KvInput>> {
        prop::collection::vec(
            prop_oneof![
                (0u64..6, 0u64..50).prop_map(|(k, v)| KvInput::Put(k, v)),
                (0u64..6).prop_map(KvInput::Del),
                (0u64..6).prop_map(KvInput::Get),
                Just(KvInput::Scan),
            ],
            0..n,
        )
    }

    proptest! {
        #[test]
        fn matches_btreemap_model(ops in arb_ops(40)) {
            let kv = KvStore;
            let mut q = kv.initial();
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            for op in &ops {
                let (q2, o) = kv.apply(&q, op);
                match op {
                    KvInput::Put(k, v) => { model.insert(*k, *v); }
                    KvInput::Del(k) => { model.remove(k); }
                    KvInput::Get(k) => prop_assert_eq!(o, KvOutput::Found(model.get(k).copied())),
                    KvInput::Scan => prop_assert_eq!(
                        o,
                        KvOutput::Pairs(model.iter().map(|(k, v)| (*k, *v)).collect())
                    ),
                    KvInput::Len => prop_assert_eq!(o, KvOutput::Count(model.len())),
                }
                q = q2;
            }
            prop_assert_eq!(q, model);
        }
    }
}
