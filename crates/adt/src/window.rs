//! The window stream `Wk` (Definition 3) and arrays of window streams
//! `W_k^K` (the object implemented by the algorithms of Figs. 4–5).
//!
//! A window stream of size `k` generalizes a register: `write(v)` shifts
//! `v` into a sliding window and `read` returns the sequence of the last
//! `k` written values, oldest first, with missing values replaced by the
//! default value `0`. The paper uses `Wk` as its guideline example
//! because the value returned by a query depends on *several* updates
//! *and on their order* — exactly what plain memory cannot exhibit.
//!
//! `Wk` has consensus number `k` (§2.1): `k` processes may each write
//! their proposal into a sequentially consistent `Wk` and then return the
//! oldest non-default written value; see `cbm-core::consensus`.

use crate::adt::{Adt, OpKind};
use crate::{Value, DEFAULT_VALUE};
use serde::{Deserialize, Serialize};

/// Input alphabet of `Wk`: `Σi = {r} ∪ {w(v) : v ∈ ℕ}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WInput {
    /// `w(v)` — shift `v` into the window (pure update).
    Write(Value),
    /// `r` — read the window (pure query).
    Read,
}

/// Output alphabet of `Wk`: `Σo = ℕ^k ∪ {⊥}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WOutput {
    /// `⊥`, returned by writes.
    Ack,
    /// The window contents, oldest value first.
    Window(Vec<Value>),
}

/// The window stream ADT `Wk` (Definition 3).
///
/// State `Q = ℕ^k`, initial state `(0, …, 0)`,
/// `δ(q, w(v)) = (q2, …, qk, v)`, `δ(q, r) = q`,
/// `λ(q, w(v)) = ⊥`, `λ(q, r) = q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowStream {
    k: usize,
}

impl WindowStream {
    /// A window stream of size `k`. `k = 0` is degenerate but legal
    /// (reads always return the empty window); `k = 1` is a register.
    pub fn new(k: usize) -> Self {
        WindowStream { k }
    }

    /// The window size `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Adt for WindowStream {
    type Input = WInput;
    type Output = WOutput;
    type State = Vec<Value>;

    fn initial(&self) -> Self::State {
        vec![DEFAULT_VALUE; self.k]
    }

    fn transition(&self, q: &Self::State, i: &Self::Input) -> Self::State {
        match i {
            WInput::Write(v) => shift_in(q, *v),
            WInput::Read => q.clone(),
        }
    }

    fn output(&self, q: &Self::State, i: &Self::Input) -> Self::Output {
        match i {
            WInput::Write(_) => WOutput::Ack,
            WInput::Read => WOutput::Window(q.clone()),
        }
    }

    fn kind(&self, i: &Self::Input) -> OpKind {
        match i {
            // For k = 0, writes are loops (δ(q, w) = q on the unique
            // state) — degenerate but classified faithfully.
            WInput::Write(_) if self.k == 0 => OpKind::Noop,
            WInput::Write(_) => OpKind::PureUpdate,
            WInput::Read if self.k == 0 => OpKind::Noop,
            WInput::Read => OpKind::PureQuery,
        }
    }

    fn output_matches(&self, q: &Self::State, i: &Self::Input, expected: &Self::Output) -> bool {
        match (i, expected) {
            (WInput::Write(_), WOutput::Ack) => true,
            (WInput::Read, WOutput::Window(w)) => w == q,
            _ => false,
        }
    }
}

/// `(q1, …, qk) ↦ (q2, …, qk, v)`.
fn shift_in(q: &[Value], v: Value) -> Vec<Value> {
    if q.is_empty() {
        return Vec::new();
    }
    let mut next = Vec::with_capacity(q.len());
    next.extend_from_slice(&q[1..]);
    next.push(v);
    next
}

/// Input alphabet of `W_k^K` (array of `K` window streams of size `k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WaInput {
    /// `write(x, v)` — `w(v)` on stream `x` (pure update).
    Write(usize, Value),
    /// `read(x)` — `r` on stream `x` (pure query).
    Read(usize),
}

/// Output alphabet of `W_k^K`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WaOutput {
    /// `⊥`, returned by writes.
    Ack,
    /// Window contents of the addressed stream, oldest first.
    Window(Vec<Value>),
}

/// An array of `K` window streams of size `k` — the shared object
/// implemented by the algorithms of Figs. 4 and 5.
///
/// Consistency criteria are **not composable** (§4.2), so the paper is
/// careful to define the *array* as a single ADT (a causally consistent
/// array of streams, not an array of causally consistent streams); we do
/// the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowArray {
    streams: usize,
    k: usize,
}

impl WindowArray {
    /// An array of `streams` window streams, each of size `k`.
    pub fn new(streams: usize, k: usize) -> Self {
        WindowArray { streams, k }
    }

    /// Number of streams `K`.
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// Window size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Panic-free address check; out-of-range addresses are mapped onto
    /// `x mod K` so that `δ`/`λ` stay total (workload generators may
    /// produce arbitrary addresses).
    fn addr(&self, x: usize) -> usize {
        debug_assert!(self.streams > 0, "WindowArray with zero streams");
        x % self.streams.max(1)
    }

    /// Stream `x`'s window within a flat state.
    #[inline]
    fn window<'q>(&self, q: &'q [Value], x: usize) -> &'q [Value] {
        &q[x * self.k..(x + 1) * self.k]
    }

    /// Mutable view of stream `x`'s window within a flat state.
    #[inline]
    fn window_mut<'q>(&self, q: &'q mut [Value], x: usize) -> &'q mut [Value] {
        &mut q[x * self.k..(x + 1) * self.k]
    }
}

impl Adt for WindowArray {
    type Input = WaInput;
    type Output = WaOutput;
    /// All `K` windows in one flat vector, stream-major: stream `x`
    /// occupies `q[x·k .. (x+1)·k]`. One allocation per state (the
    /// checkers clone a state per search node, so the layout matters).
    type State = Vec<Value>;

    fn initial(&self) -> Self::State {
        vec![DEFAULT_VALUE; self.k * self.streams]
    }

    fn transition(&self, q: &Self::State, i: &Self::Input) -> Self::State {
        match i {
            WaInput::Write(x, v) => {
                let mut next = q.clone();
                let w = self.window_mut(&mut next, self.addr(*x));
                if !w.is_empty() {
                    w.copy_within(1.., 0);
                    let last = w.len() - 1;
                    w[last] = *v;
                }
                next
            }
            WaInput::Read(_) => q.clone(),
        }
    }

    fn output(&self, q: &Self::State, i: &Self::Input) -> Self::Output {
        match i {
            WaInput::Write(..) => WaOutput::Ack,
            WaInput::Read(x) => WaOutput::Window(self.window(q, self.addr(*x)).to_vec()),
        }
    }

    fn kind(&self, i: &Self::Input) -> OpKind {
        match i {
            WaInput::Write(..) if self.k == 0 => OpKind::Noop,
            WaInput::Write(..) => OpKind::PureUpdate,
            WaInput::Read(_) if self.k == 0 => OpKind::Noop,
            WaInput::Read(_) => OpKind::PureQuery,
        }
    }

    fn output_matches(&self, q: &Self::State, i: &Self::Input, expected: &Self::Output) -> bool {
        match (i, expected) {
            (WaInput::Write(..), WaOutput::Ack) => true,
            (WaInput::Read(x), WaOutput::Window(w)) => w[..] == *self.window(q, self.addr(*x)),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adt::AdtExt;

    #[test]
    fn initial_window_is_all_default() {
        let w = WindowStream::new(3);
        assert_eq!(w.initial(), vec![0, 0, 0]);
    }

    #[test]
    fn write_shifts_window() {
        let w = WindowStream::new(3);
        let q = w.initial();
        let q = w.transition(&q, &WInput::Write(1));
        assert_eq!(q, vec![0, 0, 1]);
        let q = w.transition(&q, &WInput::Write(2));
        assert_eq!(q, vec![0, 1, 2]);
        let q = w.transition(&q, &WInput::Write(3));
        assert_eq!(q, vec![1, 2, 3]);
        let q = w.transition(&q, &WInput::Write(4));
        assert_eq!(q, vec![2, 3, 4]);
    }

    #[test]
    fn read_is_pure_query() {
        let w = WindowStream::new(2);
        let q = w.fold_inputs([WInput::Write(5), WInput::Write(6)].iter());
        let q2 = w.transition(&q, &WInput::Read);
        assert_eq!(q, q2);
        assert_eq!(w.output(&q, &WInput::Read), WOutput::Window(vec![5, 6]));
    }

    #[test]
    fn write_output_is_ack() {
        let w = WindowStream::new(2);
        assert_eq!(w.output(&w.initial(), &WInput::Write(9)), WOutput::Ack);
    }

    #[test]
    fn k1_behaves_like_register() {
        let w = WindowStream::new(1);
        let q = w.transition(&w.initial(), &WInput::Write(4));
        assert_eq!(w.output(&q, &WInput::Read), WOutput::Window(vec![4]));
        let q = w.transition(&q, &WInput::Write(7));
        assert_eq!(w.output(&q, &WInput::Read), WOutput::Window(vec![7]));
    }

    #[test]
    fn k0_is_degenerate_noop() {
        let w = WindowStream::new(0);
        let q = w.transition(&w.initial(), &WInput::Write(4));
        assert_eq!(q, Vec::<Value>::new());
        assert_eq!(w.output(&q, &WInput::Read), WOutput::Window(vec![]));
        assert_eq!(w.kind(&WInput::Write(1)), OpKind::Noop);
    }

    #[test]
    fn classification() {
        let w = WindowStream::new(2);
        assert_eq!(w.kind(&WInput::Write(1)), OpKind::PureUpdate);
        assert_eq!(w.kind(&WInput::Read), OpKind::PureQuery);
        assert!(w.is_update(&WInput::Write(1)));
        assert!(!w.is_query(&WInput::Write(1)));
        assert!(w.is_query(&WInput::Read));
        assert!(!w.is_update(&WInput::Read));
    }

    #[test]
    fn array_streams_are_independent() {
        let a = WindowArray::new(3, 2);
        let q = a.initial();
        let q = a.transition(&q, &WaInput::Write(0, 1));
        let q = a.transition(&q, &WaInput::Write(2, 9));
        assert_eq!(
            a.output(&q, &WaOutput_read(0)),
            WaOutput::Window(vec![0, 1])
        );
        assert_eq!(
            a.output(&q, &WaOutput_read(1)),
            WaOutput::Window(vec![0, 0])
        );
        assert_eq!(
            a.output(&q, &WaOutput_read(2)),
            WaOutput::Window(vec![0, 9])
        );
    }

    #[allow(non_snake_case)]
    fn WaOutput_read(x: usize) -> WaInput {
        WaInput::Read(x)
    }

    #[test]
    fn array_addresses_wrap_to_stay_total() {
        let a = WindowArray::new(2, 1);
        let q = a.transition(&a.initial(), &WaInput::Write(5, 3)); // 5 mod 2 = 1
        assert_eq!(a.output(&q, &WaInput::Read(1)), WaOutput::Window(vec![3]));
    }

    #[test]
    fn array_classification() {
        let a = WindowArray::new(2, 2);
        assert_eq!(a.kind(&WaInput::Write(0, 1)), OpKind::PureUpdate);
        assert_eq!(a.kind(&WaInput::Read(0)), OpKind::PureQuery);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::adt::AdtExt;
    use proptest::prelude::*;

    fn arb_inputs(max_len: usize) -> impl Strategy<Value = Vec<WInput>> {
        prop::collection::vec(
            prop_oneof![(0u64..50).prop_map(WInput::Write), Just(WInput::Read),],
            0..max_len,
        )
    }

    proptest! {
        /// The window always contains the last k written values, oldest
        /// first, padded with the default value.
        #[test]
        fn window_matches_last_k_writes(k in 0usize..6, inputs in arb_inputs(40)) {
            let w = WindowStream::new(k);
            let q = w.fold_inputs(inputs.iter());
            let writes: Vec<u64> = inputs.iter().filter_map(|i| match i {
                WInput::Write(v) => Some(*v),
                WInput::Read => None,
            }).collect();
            let mut expect = vec![crate::DEFAULT_VALUE; k];
            for (slot, v) in expect.iter_mut().rev().zip(writes.iter().rev()) {
                *slot = *v;
            }
            prop_assert_eq!(q, expect);
        }

        /// Declared classification agrees with semantics on sampled states:
        /// reads never change the state, writes never depend on it for output.
        #[test]
        fn declared_kinds_are_semantically_sound(k in 1usize..5, inputs in arb_inputs(20), v in 0u64..50) {
            let w = WindowStream::new(k);
            let q = w.fold_inputs(inputs.iter());
            // pure query: δ loops
            prop_assert_eq!(w.transition(&q, &WInput::Read), q.clone());
            // pure update: λ constant
            prop_assert_eq!(w.output(&q, &WInput::Write(v)), WOutput::Ack);
        }

        /// Determinism: same input word ⇒ same state (replay stability,
        /// required by the checker memoisation).
        #[test]
        fn deterministic_replay(k in 0usize..5, inputs in arb_inputs(30)) {
            let w = WindowStream::new(k);
            let a = w.fold_inputs(inputs.iter());
            let b = w.fold_inputs(inputs.iter());
            prop_assert_eq!(a, b);
        }
    }
}
