//! LIFO stack (§2.1: `pop` "deletes the head of the stack (the side
//! effect) and returns its value (the output)"; consensus number 2).

use crate::adt::{Adt, OpKind};
use crate::Value;
use serde::{Deserialize, Serialize};

/// Input alphabet of the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkInput {
    /// `push(v)` — push on top (pure update).
    Push(Value),
    /// `pop` — remove and return the top (update **and** query).
    Pop,
    /// `top` — return the top without removing it (pure query).
    Top,
}

/// Output alphabet of the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkOutput {
    /// `⊥`, returned by pushes.
    Ack,
    /// Popped/peeked value, or `None` on the empty stack.
    Val(Option<Value>),
}

/// The stack ADT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stack;

impl Adt for Stack {
    type Input = SkInput;
    type Output = SkOutput;
    /// Stack contents, bottom first (top is `last()`).
    type State = Vec<Value>;

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn transition(&self, q: &Self::State, i: &Self::Input) -> Self::State {
        match i {
            SkInput::Push(v) => {
                let mut next = q.clone();
                next.push(*v);
                next
            }
            SkInput::Pop => {
                let mut next = q.clone();
                next.pop();
                next
            }
            SkInput::Top => q.clone(),
        }
    }

    fn output(&self, q: &Self::State, i: &Self::Input) -> Self::Output {
        match i {
            SkInput::Push(_) => SkOutput::Ack,
            SkInput::Pop | SkInput::Top => SkOutput::Val(q.last().copied()),
        }
    }

    fn kind(&self, i: &Self::Input) -> OpKind {
        match i {
            SkInput::Push(_) => OpKind::PureUpdate,
            SkInput::Pop => OpKind::UpdateQuery,
            SkInput::Top => OpKind::PureQuery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdtExt;

    #[test]
    fn lifo_order() {
        let s = Stack;
        let q = s.fold_inputs([SkInput::Push(1), SkInput::Push(2)].iter());
        let (q, o) = s.apply(&q, &SkInput::Pop);
        assert_eq!(o, SkOutput::Val(Some(2)));
        let (_, o) = s.apply(&q, &SkInput::Pop);
        assert_eq!(o, SkOutput::Val(Some(1)));
    }

    #[test]
    fn pop_empty() {
        let s = Stack;
        let (q, o) = s.apply(&s.initial(), &SkInput::Pop);
        assert_eq!(o, SkOutput::Val(None));
        assert_eq!(q, s.initial());
    }

    #[test]
    fn top_is_pure_query() {
        let s = Stack;
        let q = s.fold_inputs([SkInput::Push(9)].iter());
        assert_eq!(s.transition(&q, &SkInput::Top), q);
        assert_eq!(s.output(&q, &SkInput::Top), SkOutput::Val(Some(9)));
    }

    #[test]
    fn classification() {
        let s = Stack;
        assert_eq!(s.kind(&SkInput::Push(0)), OpKind::PureUpdate);
        assert_eq!(s.kind(&SkInput::Pop), OpKind::UpdateQuery);
        assert_eq!(s.kind(&SkInput::Top), OpKind::PureQuery);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::AdtExt;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn stack_matches_vec_model(
            ops in prop::collection::vec(
                prop_oneof![
                    (1u64..50).prop_map(SkInput::Push),
                    Just(SkInput::Pop),
                    Just(SkInput::Top),
                ],
                0..40,
            )
        ) {
            let s = Stack;
            let mut q = s.initial();
            let mut model: Vec<u64> = Vec::new();
            for op in &ops {
                let (q2, o) = s.apply(&q, op);
                match op {
                    SkInput::Push(v) => { model.push(*v); prop_assert_eq!(o, SkOutput::Ack); }
                    SkInput::Pop => prop_assert_eq!(o, SkOutput::Val(model.pop())),
                    SkInput::Top => prop_assert_eq!(o, SkOutput::Val(model.last().copied())),
                }
                q = q2;
            }
            prop_assert_eq!(q, model);
        }
    }
}
