//! Integer register: a window stream of size 1 up to output renaming
//! (§4.2: "An integer register x is isomorphic to a window stream of
//! size 1").
//!
//! We keep it as a separate ADT because its output type (`Value`, not
//! `Vec<Value>`) matches the memory ADT of Definition 10, which the
//! causal-memory comparison (§4.2) is stated against.

use crate::adt::{Adt, OpKind};
use crate::{Value, DEFAULT_VALUE};
use serde::{Deserialize, Serialize};

/// Input alphabet of a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegInput {
    /// `w(v)` — write `v` (pure update).
    Write(Value),
    /// `r` — read the last written value (pure query).
    Read,
}

/// Output alphabet of a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegOutput {
    /// `⊥`, returned by writes.
    Ack,
    /// The register content.
    Val(Value),
}

/// An integer register initialized to the default value `0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Register;

impl Adt for Register {
    type Input = RegInput;
    type Output = RegOutput;
    type State = Value;

    fn initial(&self) -> Self::State {
        DEFAULT_VALUE
    }

    fn transition(&self, q: &Self::State, i: &Self::Input) -> Self::State {
        match i {
            RegInput::Write(v) => *v,
            RegInput::Read => *q,
        }
    }

    fn output(&self, q: &Self::State, i: &Self::Input) -> Self::Output {
        match i {
            RegInput::Write(_) => RegOutput::Ack,
            RegInput::Read => RegOutput::Val(*q),
        }
    }

    fn kind(&self, i: &Self::Input) -> OpKind {
        match i {
            RegInput::Write(_) => OpKind::PureUpdate,
            RegInput::Read => OpKind::PureQuery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{WInput, WOutput, WindowStream};
    use crate::AdtExt;

    #[test]
    fn read_returns_last_write() {
        let r = Register;
        let q = r.transition(&r.initial(), &RegInput::Write(3));
        assert_eq!(r.output(&q, &RegInput::Read), RegOutput::Val(3));
        let q = r.transition(&q, &RegInput::Write(8));
        assert_eq!(r.output(&q, &RegInput::Read), RegOutput::Val(8));
    }

    #[test]
    fn initial_read_is_default() {
        let r = Register;
        assert_eq!(r.output(&r.initial(), &RegInput::Read), RegOutput::Val(0));
    }

    #[test]
    fn isomorphic_to_w1() {
        // The bijections (Write ↔ Write, Read ↔ Read, Val(v) ↔ Window([v]))
        // commute with δ and λ on arbitrary input words.
        let r = Register;
        let w1 = WindowStream::new(1);
        let ops = [5u64, 2, 9, 9, 0];
        let mut qr = r.initial();
        let mut qw = w1.initial();
        for v in ops {
            assert_eq!(vec![qr], qw);
            match (
                r.output(&qr, &RegInput::Read),
                w1.output(&qw, &WInput::Read),
            ) {
                (RegOutput::Val(a), WOutput::Window(b)) => assert_eq!(vec![a], b),
                _ => panic!("unexpected outputs"),
            }
            qr = r.transition(&qr, &RegInput::Write(v));
            qw = w1.transition(&qw, &WInput::Write(v));
        }
    }

    #[test]
    fn classification() {
        let r = Register;
        assert_eq!(r.kind(&RegInput::Write(0)), OpKind::PureUpdate);
        assert_eq!(r.kind(&RegInput::Read), OpKind::PureQuery);
    }

    #[test]
    fn fold_helper() {
        let r = Register;
        let q = r.fold_inputs([RegInput::Write(1), RegInput::Read, RegInput::Write(2)].iter());
        assert_eq!(q, 2);
    }
}
