//! FIFO queues: the paper's `Q` (push/pop, Figs. 3e–3f) and `Q'`
//! (push/hd/rh, Fig. 3g).
//!
//! `pop` is the canonical *update-and-query* operation: it removes the
//! head (side effect) and returns it (output). §4.1 shows that under
//! weak criteria the transition and output parts of such operations are
//! loosely coupled: a causally consistent queue guarantees neither that
//! every pushed value is popped (Fig. 3f: 2 is never popped) nor that a
//! value is popped at most once (1 is popped twice).
//!
//! `Q'` splits `pop` into a pure query `hd` (peek head) and a pure
//! update `rh(v)` (remove head iff it equals `v`): with this interface
//! every inserted value is read at least once (Fig. 3g).

use crate::adt::{Adt, OpKind};
use crate::Value;
use serde::{Deserialize, Serialize};

/// Input alphabet of the queue `Q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QInput {
    /// `push(v)` — append `v` at the tail (pure update).
    Push(Value),
    /// `pop` — remove and return the head (update **and** query).
    Pop,
}

/// Output alphabet of the queue `Q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QOutput {
    /// `⊥`, returned by pushes.
    Ack,
    /// The popped value, or `None` (the paper's `pop/⊥` on the empty queue).
    Popped(Option<Value>),
}

/// The FIFO queue ADT `Q`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoQueue;

impl Adt for FifoQueue {
    type Input = QInput;
    type Output = QOutput;
    /// Queue contents, head first.
    type State = Vec<Value>;

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn transition(&self, q: &Self::State, i: &Self::Input) -> Self::State {
        match i {
            QInput::Push(v) => {
                let mut next = q.clone();
                next.push(*v);
                next
            }
            QInput::Pop => {
                if q.is_empty() {
                    q.clone()
                } else {
                    q[1..].to_vec()
                }
            }
        }
    }

    fn output(&self, q: &Self::State, i: &Self::Input) -> Self::Output {
        match i {
            QInput::Push(_) => QOutput::Ack,
            QInput::Pop => QOutput::Popped(q.first().copied()),
        }
    }

    fn kind(&self, i: &Self::Input) -> OpKind {
        match i {
            QInput::Push(_) => OpKind::PureUpdate,
            QInput::Pop => OpKind::UpdateQuery,
        }
    }
}

/// Input alphabet of the queue `Q'` (Fig. 3g).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QpInput {
    /// `push(v)` — append `v` at the tail (pure update).
    Push(Value),
    /// `hd` — return the head without removing it (pure query).
    Hd,
    /// `rh(v)` — remove the head iff it equals `v` (pure update).
    RemoveHead(Value),
}

/// Output alphabet of the queue `Q'`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QpOutput {
    /// `⊥`, returned by `push` and `rh`.
    Ack,
    /// The head value, or `None` on the empty queue.
    Head(Option<Value>),
}

/// The split-pop FIFO queue ADT `Q'`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HdRhQueue;

impl Adt for HdRhQueue {
    type Input = QpInput;
    type Output = QpOutput;
    /// Queue contents, head first.
    type State = Vec<Value>;

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn transition(&self, q: &Self::State, i: &Self::Input) -> Self::State {
        match i {
            QpInput::Push(v) => {
                let mut next = q.clone();
                next.push(*v);
                next
            }
            QpInput::Hd => q.clone(),
            QpInput::RemoveHead(v) => match q.first() {
                Some(head) if head == v => q[1..].to_vec(),
                _ => q.clone(),
            },
        }
    }

    fn output(&self, q: &Self::State, i: &Self::Input) -> Self::Output {
        match i {
            QpInput::Push(_) | QpInput::RemoveHead(_) => QpOutput::Ack,
            QpInput::Hd => QpOutput::Head(q.first().copied()),
        }
    }

    fn kind(&self, i: &Self::Input) -> OpKind {
        match i {
            QpInput::Push(_) => OpKind::PureUpdate,
            QpInput::Hd => OpKind::PureQuery,
            QpInput::RemoveHead(_) => OpKind::PureUpdate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::{accepts, Sym};
    use crate::AdtExt;

    #[test]
    fn fifo_order() {
        let q = FifoQueue;
        let s = q.fold_inputs([QInput::Push(1), QInput::Push(2), QInput::Push(3)].iter());
        let (s, o) = q.apply(&s, &QInput::Pop);
        assert_eq!(o, QOutput::Popped(Some(1)));
        let (s, o) = q.apply(&s, &QInput::Pop);
        assert_eq!(o, QOutput::Popped(Some(2)));
        let (_, o) = q.apply(&s, &QInput::Pop);
        assert_eq!(o, QOutput::Popped(Some(3)));
    }

    #[test]
    fn pop_on_empty_returns_bottom_and_loops() {
        let q = FifoQueue;
        let s = q.initial();
        let (s2, o) = q.apply(&s, &QInput::Pop);
        assert_eq!(o, QOutput::Popped(None));
        assert_eq!(s, s2);
    }

    #[test]
    fn pop_is_update_and_query() {
        let q = FifoQueue;
        assert_eq!(q.kind(&QInput::Pop), OpKind::UpdateQuery);
        assert_eq!(q.kind(&QInput::Push(0)), OpKind::PureUpdate);
    }

    #[test]
    fn fig3e_wcc_linearization_is_sequential() {
        // §4.1: push(2).push(1).pop/2.pop/1 is a correct sequential
        // behaviour (the WCC explanation of Fig. 3e after convergence).
        let q = FifoQueue;
        let word = vec![
            Sym::Hidden(QInput::Push(2)),
            Sym::Hidden(QInput::Push(1)),
            Sym::Op(QInput::Pop, QOutput::Popped(Some(2))),
            Sym::Op(QInput::Pop, QOutput::Popped(Some(1))),
        ];
        assert!(accepts(&q, &word));
    }

    #[test]
    fn sequential_queue_never_duplicates() {
        // push(1).push(2).pop/1.pop/1 must be rejected: the duplication of
        // Fig. 3f is only possible in *distributed* histories.
        let q = FifoQueue;
        let word = vec![
            Sym::Hidden(QInput::Push(1)),
            Sym::Hidden(QInput::Push(2)),
            Sym::Op(QInput::Pop, QOutput::Popped(Some(1))),
            Sym::Op(QInput::Pop, QOutput::Popped(Some(1))),
        ];
        assert!(!accepts(&q, &word));
    }

    #[test]
    fn hd_peeks_without_removing() {
        let q = HdRhQueue;
        let s = q.fold_inputs([QpInput::Push(4), QpInput::Push(5)].iter());
        assert_eq!(q.output(&s, &QpInput::Hd), QpOutput::Head(Some(4)));
        assert_eq!(q.transition(&s, &QpInput::Hd), s);
    }

    #[test]
    fn rh_removes_only_matching_head() {
        let q = HdRhQueue;
        let s = q.fold_inputs([QpInput::Push(4), QpInput::Push(5)].iter());
        // mismatching value: no-op
        let s2 = q.transition(&s, &QpInput::RemoveHead(9));
        assert_eq!(s2, s);
        // matching value: head removed
        let s3 = q.transition(&s, &QpInput::RemoveHead(4));
        assert_eq!(q.output(&s3, &QpInput::Hd), QpOutput::Head(Some(5)));
    }

    #[test]
    fn rh_on_empty_is_noop() {
        let q = HdRhQueue;
        let s = q.initial();
        assert_eq!(q.transition(&s, &QpInput::RemoveHead(1)), s);
    }

    #[test]
    fn qp_classification() {
        let q = HdRhQueue;
        assert_eq!(q.kind(&QpInput::Push(1)), OpKind::PureUpdate);
        assert_eq!(q.kind(&QpInput::Hd), OpKind::PureQuery);
        assert_eq!(q.kind(&QpInput::RemoveHead(1)), OpKind::PureUpdate);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::AdtExt;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    fn arb_q_ops(n: usize) -> impl Strategy<Value = Vec<QInput>> {
        prop::collection::vec(
            prop_oneof![(1u64..20).prop_map(QInput::Push), Just(QInput::Pop)],
            0..n,
        )
    }

    proptest! {
        /// The ADT agrees with the obvious VecDeque model.
        #[test]
        fn queue_matches_vecdeque_model(ops in arb_q_ops(40)) {
            let q = FifoQueue;
            let mut s = q.initial();
            let mut model: VecDeque<u64> = VecDeque::new();
            for op in &ops {
                let (s2, o) = q.apply(&s, op);
                match op {
                    QInput::Push(v) => {
                        model.push_back(*v);
                        prop_assert_eq!(o, QOutput::Ack);
                    }
                    QInput::Pop => {
                        prop_assert_eq!(o, QOutput::Popped(model.pop_front()));
                    }
                }
                s = s2;
            }
            prop_assert_eq!(s, model.into_iter().collect::<Vec<_>>());
        }

        /// In every *sequential* execution, each pushed value is popped at
        /// most once — the invariant that Fig. 3f shows breaking under CC.
        #[test]
        fn sequential_pop_unicity(pushes in prop::collection::vec(1u64..1000, 1..15)) {
            // distinct values
            let mut vals = pushes.clone();
            vals.sort_unstable();
            vals.dedup();
            let q = FifoQueue;
            let mut s = q.initial();
            for v in &vals {
                s = q.transition(&s, &QInput::Push(*v));
            }
            let mut seen = std::collections::HashSet::new();
            loop {
                let (s2, o) = q.apply(&s, &QInput::Pop);
                match o {
                    QOutput::Popped(Some(v)) => prop_assert!(seen.insert(v)),
                    QOutput::Popped(None) => break,
                    QOutput::Ack => unreachable!(),
                }
                s = s2;
            }
            prop_assert_eq!(seen.len(), vals.len());
        }
    }
}
