//! Sequential add/remove set.
//!
//! Adds and removes of the *same* element do not commute, so the set is
//! a mid-point between the counter (fully commutative) and the window
//! stream (fully order-sensitive): concurrent `add(v)`/`rem(v)` make the
//! arbitration order observable under causal convergence (the classic
//! "add-wins vs remove-wins" choice materialises as the timestamp order).

use crate::adt::{Adt, OpKind};
use crate::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Input alphabet of the set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SetInput {
    /// Insert `v` (pure update).
    Add(Value),
    /// Remove `v` (pure update).
    Remove(Value),
    /// Membership test (pure query).
    Contains(Value),
    /// Cardinality (pure query).
    Len,
}

/// Output alphabet of the set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SetOutput {
    /// `⊥`, returned by updates.
    Ack,
    /// Membership result.
    Bool(bool),
    /// Cardinality result.
    Count(usize),
}

/// The add/remove set ADT (state is an ordered set for determinism).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AddRemSet;

impl Adt for AddRemSet {
    type Input = SetInput;
    type Output = SetOutput;
    type State = BTreeSet<Value>;

    fn initial(&self) -> Self::State {
        BTreeSet::new()
    }

    fn transition(&self, q: &Self::State, i: &Self::Input) -> Self::State {
        match i {
            SetInput::Add(v) => {
                let mut next = q.clone();
                next.insert(*v);
                next
            }
            SetInput::Remove(v) => {
                let mut next = q.clone();
                next.remove(v);
                next
            }
            SetInput::Contains(_) | SetInput::Len => q.clone(),
        }
    }

    fn output(&self, q: &Self::State, i: &Self::Input) -> Self::Output {
        match i {
            SetInput::Add(_) | SetInput::Remove(_) => SetOutput::Ack,
            SetInput::Contains(v) => SetOutput::Bool(q.contains(v)),
            SetInput::Len => SetOutput::Count(q.len()),
        }
    }

    fn kind(&self, i: &Self::Input) -> OpKind {
        match i {
            SetInput::Add(_) | SetInput::Remove(_) => OpKind::PureUpdate,
            SetInput::Contains(_) | SetInput::Len => OpKind::PureQuery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdtExt;

    #[test]
    fn add_then_contains() {
        let s = AddRemSet;
        let q = s.fold_inputs([SetInput::Add(3)].iter());
        assert_eq!(s.output(&q, &SetInput::Contains(3)), SetOutput::Bool(true));
        assert_eq!(s.output(&q, &SetInput::Contains(4)), SetOutput::Bool(false));
    }

    #[test]
    fn add_remove_order_matters() {
        let s = AddRemSet;
        let add_then_rem = s.fold_inputs([SetInput::Add(1), SetInput::Remove(1)].iter());
        let rem_then_add = s.fold_inputs([SetInput::Remove(1), SetInput::Add(1)].iter());
        assert_ne!(add_then_rem, rem_then_add);
    }

    #[test]
    fn idempotent_add() {
        let s = AddRemSet;
        let once = s.fold_inputs([SetInput::Add(2)].iter());
        let twice = s.fold_inputs([SetInput::Add(2), SetInput::Add(2)].iter());
        assert_eq!(once, twice);
    }

    #[test]
    fn len_counts_distinct() {
        let s = AddRemSet;
        let q = s.fold_inputs([SetInput::Add(1), SetInput::Add(2), SetInput::Add(1)].iter());
        assert_eq!(s.output(&q, &SetInput::Len), SetOutput::Count(2));
    }

    #[test]
    fn classification() {
        let s = AddRemSet;
        assert_eq!(s.kind(&SetInput::Add(0)), OpKind::PureUpdate);
        assert_eq!(s.kind(&SetInput::Remove(0)), OpKind::PureUpdate);
        assert_eq!(s.kind(&SetInput::Contains(0)), OpKind::PureQuery);
        assert_eq!(s.kind(&SetInput::Len), OpKind::PureQuery);
    }
}
