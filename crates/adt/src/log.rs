//! Append-only log: the substrate of the collaborative-editing example
//! (the CCI model of §1 and §3.2 — convergence, causality and intention
//! preservation in cooperative editing, Sun et al.).
//!
//! `append(v)` adds an entry at the end; `read` returns the whole
//! sequence; `len` its length. The order of appends is observable, so
//! weak causal consistency is the interesting guarantee: an answer
//! (appended after reading a question) must never be visible to anyone
//! who has not seen the question.

use crate::adt::{Adt, OpKind};
use crate::Value;
use serde::{Deserialize, Serialize};

/// Input alphabet of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogInput {
    /// Append an entry (pure update).
    Append(Value),
    /// Read the full sequence (pure query).
    Read,
    /// Read the length (pure query).
    Len,
}

/// Output alphabet of the log.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogOutput {
    /// `⊥`, returned by appends.
    Ack,
    /// The full sequence, oldest first.
    Entries(Vec<Value>),
    /// The length.
    Count(usize),
}

/// The append-only log ADT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendLog;

impl Adt for AppendLog {
    type Input = LogInput;
    type Output = LogOutput;
    type State = Vec<Value>;

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn transition(&self, q: &Self::State, i: &Self::Input) -> Self::State {
        match i {
            LogInput::Append(v) => {
                let mut next = q.clone();
                next.push(*v);
                next
            }
            LogInput::Read | LogInput::Len => q.clone(),
        }
    }

    fn output(&self, q: &Self::State, i: &Self::Input) -> Self::Output {
        match i {
            LogInput::Append(_) => LogOutput::Ack,
            LogInput::Read => LogOutput::Entries(q.clone()),
            LogInput::Len => LogOutput::Count(q.len()),
        }
    }

    fn kind(&self, i: &Self::Input) -> OpKind {
        match i {
            LogInput::Append(_) => OpKind::PureUpdate,
            LogInput::Read | LogInput::Len => OpKind::PureQuery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdtExt;

    #[test]
    fn appends_preserve_order() {
        let l = AppendLog;
        let q = l.fold_inputs([LogInput::Append(1), LogInput::Append(2)].iter());
        assert_eq!(
            l.output(&q, &LogInput::Read),
            LogOutput::Entries(vec![1, 2])
        );
        assert_eq!(l.output(&q, &LogInput::Len), LogOutput::Count(2));
    }

    #[test]
    fn reads_are_pure() {
        let l = AppendLog;
        let q = l.fold_inputs([LogInput::Append(1)].iter());
        assert_eq!(l.transition(&q, &LogInput::Read), q);
        assert_eq!(l.transition(&q, &LogInput::Len), q);
    }

    #[test]
    fn classification() {
        let l = AppendLog;
        assert_eq!(l.kind(&LogInput::Append(0)), OpKind::PureUpdate);
        assert_eq!(l.kind(&LogInput::Read), OpKind::PureQuery);
        assert_eq!(l.kind(&LogInput::Len), OpKind::PureQuery);
    }
}
