//! [`ObjectSpace`]: a multi-object space as one composite ADT.
//!
//! "Extending Causal Consistency to any Object" (Mostéfaoui, Perrin,
//! Raynal) observes that the paper's constructions generalize from a
//! single shared object to a whole space of them: a store serving
//! objects `0..n`, each an instance of the same base type `T`, is
//! itself an ADT whose inputs are `(object id, T input)` pairs and
//! whose state is the product of the per-object states. The live store
//! engine (`cbm-store`) shards exactly this space across replica
//! worker threads, and its sampled verification windows replay it
//! through the consistency checkers as a single composite machine.
//!
//! Updates on distinct objects commute and queries only read their own
//! object's component — the structure the engine exploits for
//! contention-free sharding — but nothing here depends on it: the
//! composite is a plain [`Adt`] and works with every checker.

use crate::adt::{Adt, OpKind};
use serde::{Deserialize, Serialize};

/// Identifier of an object inside an [`ObjectSpace`].
pub type ObjId = u32;

/// An input addressed to one object of the space.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpaceInput<I> {
    /// Target object.
    pub obj: ObjId,
    /// The base-type input applied to it.
    pub input: I,
}

impl<I> SpaceInput<I> {
    /// Address `input` to object `obj`.
    pub fn new(obj: ObjId, input: I) -> Self {
        SpaceInput { obj, input }
    }
}

/// A space of `objects` instances of the base type `T`, as one ADT.
///
/// State is the vector of per-object states; `δ` rewrites the addressed
/// component, `λ` reads it. Inputs addressed to an out-of-range object
/// are total like everything else: they act on object `obj % objects`
/// (the sharding function of the store engine).
#[derive(Debug, Clone)]
pub struct ObjectSpace<T> {
    base: T,
    objects: usize,
}

impl<T: Adt> ObjectSpace<T> {
    /// A space of `objects` copies of `base` (at least 1).
    pub fn new(base: T, objects: usize) -> Self {
        ObjectSpace {
            base,
            objects: objects.max(1),
        }
    }

    /// Number of objects.
    pub fn objects(&self) -> usize {
        self.objects
    }

    /// The shared base-type instance.
    pub fn base(&self) -> &T {
        &self.base
    }

    /// The slot an object id maps to (total for any id).
    #[inline]
    pub fn slot(&self, obj: ObjId) -> usize {
        obj as usize % self.objects
    }
}

impl<T: Adt> Adt for ObjectSpace<T> {
    type Input = SpaceInput<T::Input>;
    type Output = T::Output;
    type State = Vec<T::State>;

    fn initial(&self) -> Self::State {
        (0..self.objects).map(|_| self.base.initial()).collect()
    }

    fn transition(&self, q: &Self::State, i: &Self::Input) -> Self::State {
        let slot = self.slot(i.obj);
        let mut next = q.clone();
        next[slot] = self.base.transition(&q[slot], &i.input);
        next
    }

    fn output(&self, q: &Self::State, i: &Self::Input) -> Self::Output {
        self.base.output(&q[self.slot(i.obj)], &i.input)
    }

    fn kind(&self, i: &Self::Input) -> OpKind {
        self.base.kind(&i.input)
    }

    fn output_matches(&self, q: &Self::State, i: &Self::Input, expected: &Self::Output) -> bool {
        self.base
            .output_matches(&q[self.slot(i.obj)], &i.input, expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register::{RegInput, RegOutput, Register};
    use crate::AdtExt;

    #[test]
    fn objects_are_independent() {
        let space = ObjectSpace::new(Register, 3);
        let q = space.initial();
        let q = space.transition(&q, &SpaceInput::new(0, RegInput::Write(5)));
        let q = space.transition(&q, &SpaceInput::new(2, RegInput::Write(9)));
        assert_eq!(
            space.output(&q, &SpaceInput::new(0, RegInput::Read)),
            RegOutput::Val(5)
        );
        assert_eq!(
            space.output(&q, &SpaceInput::new(1, RegInput::Read)),
            RegOutput::Val(0)
        );
        assert_eq!(
            space.output(&q, &SpaceInput::new(2, RegInput::Read)),
            RegOutput::Val(9)
        );
    }

    #[test]
    fn out_of_range_ids_wrap() {
        let space = ObjectSpace::new(Register, 4);
        let q = space.initial();
        let q = space.transition(&q, &SpaceInput::new(6, RegInput::Write(1)));
        assert_eq!(
            space.output(&q, &SpaceInput::new(2, RegInput::Read)),
            RegOutput::Val(1)
        );
        assert_eq!(space.slot(6), 2);
    }

    #[test]
    fn classification_forwards_to_base() {
        let space = ObjectSpace::new(Register, 2);
        assert_eq!(
            space.kind(&SpaceInput::new(0, RegInput::Write(1))),
            OpKind::PureUpdate
        );
        assert_eq!(
            space.kind(&SpaceInput::new(1, RegInput::Read)),
            OpKind::PureQuery
        );
        assert!(space.is_update(&SpaceInput::new(0, RegInput::Write(1))));
        assert!(space.is_query(&SpaceInput::new(0, RegInput::Read)));
    }

    #[test]
    fn output_matches_addresses_the_right_slot() {
        let space = ObjectSpace::new(Register, 2);
        let q = space.fold_inputs(
            [
                SpaceInput::new(0, RegInput::Write(3)),
                SpaceInput::new(1, RegInput::Write(4)),
            ]
            .iter(),
        );
        assert!(space.output_matches(&q, &SpaceInput::new(1, RegInput::Read), &RegOutput::Val(4)));
        assert!(!space.output_matches(&q, &SpaceInput::new(1, RegInput::Read), &RegOutput::Val(3)));
    }

    #[test]
    fn zero_objects_clamps_to_one() {
        let space = ObjectSpace::new(Register, 0);
        assert_eq!(space.objects(), 1);
        assert_eq!(space.initial().len(), 1);
    }
}
