//! Sequential specifications `L(T)` (Definition 2): words over
//! `Σ = (Σi × Σo) ∪ Σi` and their membership test.
//!
//! A finite word `u` is an admissible *sequential history* for `T` when
//! it labels a run of the transducer from `q0`, where each symbol is
//! either a full operation `σi/σo` (the output must match `λ`) or a
//! *hidden operation* `σi` (only the side effect `δ` is taken; the output
//! is unconstrained). `L(T)` is prefix-closed by construction, and every
//! finite admissible word extends to an infinite one because `δ` and `λ`
//! are total — so the finite membership test below is faithful to the
//! paper's definition via infinite sequences.

use crate::adt::{Adt, AdtExt};

/// A symbol of `Σ = (Σi × Σo) ∪ Σi`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Sym<I, O> {
    /// A full operation `σi/σo`.
    Op(I, O),
    /// A hidden operation `σi` (side effect only; output unconstrained).
    Hidden(I),
}

impl<I, O> Sym<I, O> {
    /// The input part of the symbol.
    pub fn input(&self) -> &I {
        match self {
            Sym::Op(i, _) | Sym::Hidden(i) => i,
        }
    }

    /// The output part, if visible.
    pub fn visible_output(&self) -> Option<&O> {
        match self {
            Sym::Op(_, o) => Some(o),
            Sym::Hidden(_) => None,
        }
    }

    /// Hide the output of this symbol (the paper's projection on events
    /// outside `E″`).
    pub fn hide(self) -> Sym<I, O> {
        match self {
            Sym::Op(i, _) => Sym::Hidden(i),
            h => h,
        }
    }
}

/// Does `word ∈ L(T)`? (Definition 2, finite-word membership.)
pub fn accepts<T: Adt>(adt: &T, word: &[Sym<T::Input, T::Output>]) -> bool {
    longest_accepted_prefix(adt, word) == word.len()
}

/// Length of the longest prefix of `word` that belongs to `L(T)`.
///
/// Because `L(T)` is prefix-closed this is well defined; `word` is
/// accepted iff the result equals `word.len()`.
pub fn longest_accepted_prefix<T: Adt>(adt: &T, word: &[Sym<T::Input, T::Output>]) -> usize {
    let mut q = adt.initial();
    for (k, sym) in word.iter().enumerate() {
        match sym {
            Sym::Op(i, o) => {
                if adt.output(&q, i) != *o {
                    return k;
                }
                q = adt.transition(&q, i);
            }
            Sym::Hidden(i) => {
                q = adt.transition(&q, i);
            }
        }
    }
    word.len()
}

/// Run a sequence of raw inputs from `q0`, returning the final state and
/// the outputs `λ` produced along the way (the unique full word of
/// `L(T)` with these inputs, by determinism).
pub fn run_inputs<T: Adt>(adt: &T, inputs: &[T::Input]) -> (T::State, Vec<T::Output>) {
    let mut q = adt.initial();
    let mut outs = Vec::with_capacity(inputs.len());
    for i in inputs {
        let (q2, o) = adt.apply(&q, i);
        outs.push(o);
        q = q2;
    }
    (q, outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{WInput, WOutput, WindowStream};

    fn w(v: u64) -> Sym<WInput, WOutput> {
        Sym::Op(WInput::Write(v), WOutput::Ack)
    }
    fn r(vals: &[u64]) -> Sym<WInput, WOutput> {
        Sym::Op(WInput::Read, WOutput::Window(vals.to_vec()))
    }

    #[test]
    fn accepts_paper_fig3d_word() {
        // w(1)/⊥ . r/(0,1) . w(2)/⊥ . r/(1,2) ∈ L(W2)  (§3.1, Fig. 3d)
        let adt = WindowStream::new(2);
        let word = vec![w(1), r(&[0, 1]), w(2), r(&[1, 2])];
        assert!(accepts(&adt, &word));
    }

    #[test]
    fn rejects_wrong_read() {
        let adt = WindowStream::new(2);
        let word = vec![w(1), r(&[1, 0])];
        assert!(!accepts(&adt, &word));
        assert_eq!(longest_accepted_prefix(&adt, &word), 1);
    }

    #[test]
    fn hidden_operations_skip_output_check() {
        // w(1).r.w(2).r/(2,1) ∉ L(W2): the visible read sees (1,2).
        let adt = WindowStream::new(2);
        let bad = vec![
            Sym::Hidden(WInput::Write(1)),
            Sym::Hidden(WInput::Read),
            Sym::Hidden(WInput::Write(2)),
            r(&[2, 1]),
        ];
        assert!(!accepts(&adt, &bad));
        // ... but with the matching output it is accepted.
        let good = vec![
            Sym::Hidden(WInput::Write(1)),
            Sym::Hidden(WInput::Read),
            Sym::Hidden(WInput::Write(2)),
            r(&[1, 2]),
        ];
        assert!(accepts(&adt, &good));
    }

    #[test]
    fn hidden_read_is_unconstrained_but_keeps_effect() {
        // A hidden read is a pure query: hiding it changes nothing.
        let adt = WindowStream::new(2);
        let word = vec![w(7), Sym::Hidden(WInput::Read), r(&[0, 7])];
        assert!(accepts(&adt, &word));
    }

    #[test]
    fn prefix_closure() {
        let adt = WindowStream::new(3);
        let word = vec![w(1), w(2), r(&[1, 2, 0])];
        // wrong read value
        assert!(!accepts(&adt, &word));
        // the accepted prefix is exactly the two writes
        assert_eq!(longest_accepted_prefix(&adt, &word), 2);
    }

    #[test]
    fn run_inputs_produces_unique_full_word() {
        let adt = WindowStream::new(2);
        let inputs = vec![
            WInput::Write(1),
            WInput::Read,
            WInput::Write(2),
            WInput::Read,
        ];
        let (q, outs) = run_inputs(&adt, &inputs);
        assert_eq!(q, vec![1, 2]);
        assert_eq!(
            outs,
            vec![
                WOutput::Ack,
                WOutput::Window(vec![0, 1]),
                WOutput::Ack,
                WOutput::Window(vec![1, 2]),
            ]
        );
    }

    #[test]
    fn empty_word_always_accepted() {
        let adt = WindowStream::new(2);
        assert!(accepts(&adt, &[]));
    }
}
