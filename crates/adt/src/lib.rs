//! # cbm-adt — Abstract data types as sequential specifications
//!
//! This crate implements Section 2.1 of Perrin, Mostéfaoui & Jard,
//! *Causal Consistency: Beyond Memory* (PPoPP 2016): abstract data types
//! (ADTs) modelled as transducers close to Mealy machines, but over
//! countable (possibly infinite) state spaces.
//!
//! An ADT is a 6-tuple `T = (Σi, Σo, Q, q0, δ, λ)` (Definition 1):
//!
//! * `Σi` — the input alphabet (the *methods* of the type),
//! * `Σo` — the output alphabet (return values),
//! * `Q`, `q0` — states and initial state,
//! * `δ : Q × Σi → Q` — the (total) transition function, the *side effect*,
//! * `λ : Q × Σi → Σo` — the (total) output function, the *return value*.
//!
//! In Rust this becomes the [`Adt`] trait with associated `Input`,
//! `Output` and `State` types. Both `δ` and `λ` must be **total**: shared
//! objects evolve according to external calls and must respond in all
//! circumstances (no panics on any reachable state/input pair).
//!
//! The **sequential specification** `L(T)` (Definition 2) is the
//! prefix-closed set of words over `Σ = (Σi × Σo) ∪ Σi` that label runs of
//! the transducer, where a bare `σi` is a *hidden operation*: its side
//! effect is taken into account but its return value is unconstrained.
//! Membership is decided by [`word::accepts`]:
//!
//! ```
//! use cbm_adt::window::{WindowStream, WInput, WOutput};
//! use cbm_adt::{accepts, Sym};
//!
//! // w(1)/⊥ . r/(0,1) . w(2) . r/(1,2) ∈ L(W2)   (w(2) hidden)
//! let w2 = WindowStream::new(2);
//! let word = vec![
//!     Sym::Op(WInput::Write(1), WOutput::Ack),
//!     Sym::Op(WInput::Read, WOutput::Window(vec![0, 1])),
//!     Sym::Hidden(WInput::Write(2)),
//!     Sym::Op(WInput::Read, WOutput::Window(vec![1, 2])),
//! ];
//! assert!(accepts(&w2, &word));
//! ```
//!
//! ## Data-type library
//!
//! | type | module | role in the paper |
//! |------|--------|-------------------|
//! | [`WindowStream`](window::WindowStream) | [`window`] | Def. 3, the guiding example `Wk` |
//! | [`WindowArray`](window::WindowArray) | [`window`] | `W_k^K`, the object implemented by Figs. 4–5 |
//! | [`Register`](register::Register) | [`register`] | integer register (`W1` up to output renaming) |
//! | [`Memory`](memory::Memory) | [`memory`] | Def. 10, pool of registers `M_X` |
//! | [`FifoQueue`](queue::FifoQueue) | [`queue`] | queue `Q` of Figs. 3e/3f (`pop` is update+query) |
//! | [`HdRhQueue`](queue::HdRhQueue) | [`queue`] | queue `Q'` of Fig. 3g (`hd`/`rh` split) |
//! | [`Stack`](stack::Stack) | [`stack`] | §2.1 (consensus number 2 example) |
//! | [`Counter`](counter::Counter) | [`counter`] | commutative-update type mentioned in §1 |
//! | [`AddRemSet`](set::AddRemSet) | [`set`] | non-commutative set (add/remove/contains) |
//! | [`AppendLog`](log::AppendLog) | [`log`] | append-only sequence (collaborative-editing substrate) |
//! | [`KvStore`](kv::KvStore) | [`kv`] | put/get/del/scan map (multi-key queries beyond Def. 10's memory) |
//! | [`ObjectSpace`](space::ObjectSpace) | [`space`] | a whole multi-object space of any base type as one composite ADT (the `cbm-store` object model) |
//!
//! ## Update / query classification
//!
//! Definition 1 classifies an input `σi` as an **update** when `δ` is not
//! always a loop and a **query** when `λ` depends on the state. Both
//! properties are semantic (and undecidable for infinite-state machines),
//! so implementations *declare* them via [`Adt::is_update`] /
//! [`Adt::is_query`]; the test-suite cross-validates the declarations by
//! sampling reachable states (see `classification` tests in each module).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adt;
pub mod counter;
pub mod kv;
pub mod log;
pub mod memory;
pub mod queue;
pub mod register;
pub mod set;
pub mod space;
pub mod stack;
pub mod window;
pub mod word;

pub use adt::{Adt, AdtExt, OpKind};
pub use word::{accepts, longest_accepted_prefix, run_inputs, Sym};

/// Convenience prelude: `use cbm_adt::prelude::*;`.
pub mod prelude {
    pub use crate::adt::{Adt, AdtExt, OpKind};
    pub use crate::counter::{Counter, CtInput, CtOutput};
    pub use crate::kv::{KvInput, KvOutput, KvStore};
    pub use crate::log::{AppendLog, LogInput, LogOutput};
    pub use crate::memory::{MemInput, MemOutput, Memory};
    pub use crate::queue::{FifoQueue, HdRhQueue, QInput, QOutput, QpInput, QpOutput};
    pub use crate::register::{RegInput, RegOutput, Register};
    pub use crate::set::{AddRemSet, SetInput, SetOutput};
    pub use crate::space::{ObjId, ObjectSpace, SpaceInput};
    pub use crate::stack::{SkInput, SkOutput, Stack};
    pub use crate::window::{WInput, WOutput, WaInput, WaOutput, WindowArray, WindowStream};
    pub use crate::word::{accepts, run_inputs, Sym};
}

/// The value domain used throughout the library.
///
/// The paper uses ℕ with a default value `0`; we use `u64` and keep the
/// same convention ([`DEFAULT_VALUE`] is what reads return for
/// never-written cells / shorter-than-`k` windows).
pub type Value = u64;

/// The default value returned in place of missing writes (the paper's `0`).
pub const DEFAULT_VALUE: Value = 0;
