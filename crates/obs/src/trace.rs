//! Causally-stamped structured tracing with a deterministic logical
//! timeline.
//!
//! Each worker owns an [`EpochTracer`]: a bounded recorder that
//! accumulates [`Span`]s and **seals** them per engine epoch at the
//! drain rendezvous that closes the epoch. Sealing sorts the epoch's
//! spans by their *logical key* — `(epoch, kind, worker, peer,
//! logical, …)`, every component a pure function of `(config, seed)`
//! — and truncates deterministically to a per-kind cap, so the
//! retained span set is identical across runs even though arrival
//! order (and therefore any naive ring-buffer eviction) is not. Old
//! sealed epochs are evicted oldest-first past a keep budget: the
//! recorder behaves like a flight recorder, always holding the most
//! recent window of history at bounded memory.
//!
//! Spans carry two timelines:
//!
//! * the **logical timeline** — epoch, per-edge sequence numbers,
//!   op counts, drain indices — which is deterministic and is the
//!   only thing the JSONL export renders ([`crate::export::jsonl`]);
//! * **wall time** (`wall_ns`, `dur_ns`) and the envelope's
//!   edge-knowledge **vector clock** (`vc`), which depend on real
//!   scheduling and are rendered only by the Chrome trace export.
//!
//! A [`FlightRecord`] is the merged, globally sorted timeline of every
//! worker (plus the verifier), ready for export.

/// What a [`Span`] describes. The discriminant order is the canonical
/// sort rank within an epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One sampled client operation at a replica worker.
    Op,
    /// A read of a non-hosted object routed to a remote replica.
    ReadRoute,
    /// One interest-multicast envelope leaving a sender
    /// (`logical` = per-edge sequence number, `peer` = recipient).
    BatchFlush,
    /// One envelope causally delivered at a receiver
    /// (`logical` = per-edge sequence number, `peer` = sender).
    Deliver,
    /// A drain rendezvous (window close, epoch boundary, or final
    /// drain) at one worker (`logical` = drain index).
    Drain,
    /// Gap repair traffic during a drain: a nack sent
    /// (`flag = false`) or a repair served (`flag = true`).
    NackRepair,
    /// A fault injected by the chaos endpoint
    /// (`a` = fault code, `logical` = virtual time of injection).
    Fault,
    /// A worker crashing at an epoch boundary (`logical` = crash
    /// epoch).
    Crash,
    /// A crashed worker rejoining via shard-state sync
    /// (`logical` = recovery epoch, `peer` = helper).
    Recover,
    /// A verification window verdict from the verifier thread
    /// (`logical` = window id, `flag` = passed).
    VerifyWindow,
    /// A streaming-monitor suspicion escalated to the exact checkers
    /// (`logical` = the worker's op count at escalation, `a` = bad-
    /// pattern code, `b` = events in the rebuilt window, `flag` =
    /// confirmed by the witness re-verification).
    MonitorEscalate,
}

impl SpanKind {
    /// Every kind, in canonical rank order.
    pub const ALL: [SpanKind; 11] = [
        SpanKind::Op,
        SpanKind::ReadRoute,
        SpanKind::BatchFlush,
        SpanKind::Deliver,
        SpanKind::Drain,
        SpanKind::NackRepair,
        SpanKind::Fault,
        SpanKind::Crash,
        SpanKind::Recover,
        SpanKind::VerifyWindow,
        SpanKind::MonitorEscalate,
    ];

    /// Stable snake_case name used by both exports and the JSON
    /// schema.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Op => "op",
            SpanKind::ReadRoute => "read_route",
            SpanKind::BatchFlush => "batch_flush",
            SpanKind::Deliver => "deliver",
            SpanKind::Drain => "drain",
            SpanKind::NackRepair => "nack_repair",
            SpanKind::Fault => "fault",
            SpanKind::Crash => "crash",
            SpanKind::Recover => "recover",
            SpanKind::VerifyWindow => "verify_window",
            SpanKind::MonitorEscalate => "monitor_escalate",
        }
    }

    /// Canonical sort rank (position in [`SpanKind::ALL`]).
    pub fn rank(self) -> usize {
        self as usize
    }
}

/// One trace event. Field meaning varies by [`SpanKind`] (see the
/// variant docs and `docs/OBSERVABILITY.md` for the full schema);
/// unused fields hold `0` / `-1` / `false` / empty.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Kind of event.
    pub kind: SpanKind,
    /// Worker id (`workers` = the verifier thread).
    pub worker: u32,
    /// Engine epoch the event belongs to.
    pub epoch: u64,
    /// Kind-specific logical stamp (op count, edge sequence number,
    /// drain index, window id, …). Deterministic.
    pub logical: u64,
    /// Kind-specific peer worker (-1 when not applicable).
    pub peer: i64,
    /// Shard id (-1 when not applicable).
    pub shard: i64,
    /// Kind-specific payload value (object id, batch size, …).
    pub a: u64,
    /// Second kind-specific payload value.
    pub b: u64,
    /// Kind-specific boolean (update vs read, nack vs repair,
    /// verdict, …).
    pub flag: bool,
    /// Edge-knowledge vector-clock stamp: the sender row of the
    /// envelope matrix for flush/deliver spans. **Not** deterministic
    /// across runs (delivery interleaving); Chrome export only.
    pub vc: Vec<u64>,
    /// Wall-clock start, nanoseconds since the engine's shared start
    /// instant. Chrome export only.
    pub wall_ns: u64,
    /// Wall-clock duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
}

impl Span {
    /// A span with every optional field zeroed; callers fill in what
    /// the kind uses.
    pub fn new(kind: SpanKind, worker: u32, epoch: u64, logical: u64) -> Self {
        Self {
            kind,
            worker,
            epoch,
            logical,
            peer: -1,
            shard: -1,
            a: 0,
            b: 0,
            flag: false,
            vc: Vec::new(),
            wall_ns: 0,
            dur_ns: 0,
        }
    }

    /// The deterministic sort key: everything except `vc`, `wall_ns`,
    /// `dur_ns`.
    pub fn key(&self) -> (u64, usize, u32, i64, u64, i64, u64, u64, bool) {
        (
            self.epoch,
            self.kind.rank(),
            self.worker,
            self.peer,
            self.logical,
            self.shard,
            self.a,
            self.b,
            self.flag,
        )
    }
}

/// Bounds for an [`EpochTracer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum retained spans **per kind per epoch per worker**;
    /// sealing truncates (in logical-key order) past this and counts
    /// the overflow in `dropped`.
    pub cap_per_kind: usize,
    /// Number of most recent sealed epochs retained (flight-recorder
    /// window). `0` keeps every epoch.
    pub keep_epochs: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            cap_per_kind: 4096,
            keep_epochs: 0,
        }
    }
}

/// Per-worker bounded span recorder with deterministic per-epoch
/// sealing. See the [module docs](self).
#[derive(Debug)]
pub struct EpochTracer {
    enabled: bool,
    cfg: TraceConfig,
    cur: Vec<Span>,
    sealed: Vec<(u64, Vec<Span>)>,
    dropped: u64,
}

impl EpochTracer {
    /// A recorder; when `enabled` is false every call is a no-op and
    /// [`EpochTracer::finish`] returns nothing.
    pub fn new(enabled: bool, cfg: TraceConfig) -> Self {
        Self {
            enabled,
            cfg,
            cur: Vec::new(),
            sealed: Vec::new(),
            dropped: 0,
        }
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record a span (no-op when disabled).
    pub fn push(&mut self, span: Span) {
        if self.enabled {
            self.cur.push(span);
        }
    }

    /// Seal every accumulated span with `span.epoch <= epoch`: sort by
    /// the deterministic key, truncate per kind to the cap, retain as
    /// the chunk for `epoch`, and evict the oldest sealed chunks past
    /// the keep budget. Call at the drain rendezvous that closes
    /// `epoch` — the only point where the epoch's span *set* (not
    /// order) is guaranteed identical across runs.
    pub fn seal(&mut self, epoch: u64) {
        if !self.enabled {
            return;
        }
        let mut chunk: Vec<Span> = Vec::new();
        let mut rest: Vec<Span> = Vec::new();
        for s in self.cur.drain(..) {
            if s.epoch <= epoch {
                chunk.push(s)
            } else {
                rest.push(s)
            }
        }
        self.cur = rest;
        chunk.sort_by_key(|x| x.key());
        if self.cfg.cap_per_kind > 0 {
            let mut kept: Vec<Span> = Vec::with_capacity(chunk.len());
            let mut run_kind: Option<(u64, SpanKind)> = None;
            let mut run_len = 0usize;
            for s in chunk {
                if run_kind != Some((s.epoch, s.kind)) {
                    run_kind = Some((s.epoch, s.kind));
                    run_len = 0;
                }
                if run_len < self.cfg.cap_per_kind {
                    run_len += 1;
                    kept.push(s);
                } else {
                    self.dropped += 1;
                }
            }
            chunk = kept;
        }
        self.sealed.push((epoch, chunk));
        if self.cfg.keep_epochs > 0 {
            while self.sealed.len() > self.cfg.keep_epochs {
                let (_, old) = self.sealed.remove(0);
                self.dropped += old.len() as u64;
            }
        }
    }

    /// Consume the recorder: all sealed spans in epoch order (plus any
    /// unsealed leftovers, sorted), and the count of spans dropped by
    /// the bounds.
    pub fn finish(mut self) -> (Vec<Span>, u64) {
        if !self.enabled {
            return (Vec::new(), 0);
        }
        let mut out: Vec<Span> = Vec::new();
        for (_, chunk) in std::mem::take(&mut self.sealed) {
            out.extend(chunk);
        }
        self.cur.sort_by_key(|x| x.key());
        out.append(&mut self.cur);
        (out, self.dropped)
    }
}

/// The merged timeline of one engine run: every worker's sealed spans
/// plus the verifier's, globally sorted by the deterministic key.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlightRecord {
    /// Number of replica workers (`worker == workers` is the
    /// verifier).
    pub workers: u32,
    /// Workload seed the run used.
    pub seed: u64,
    /// All retained spans, sorted by [`Span::key`].
    pub spans: Vec<Span>,
    /// Total spans dropped across all recorders by the trace bounds.
    pub dropped: u64,
}

impl FlightRecord {
    /// Merge per-worker span lists (as returned by
    /// [`EpochTracer::finish`]) into one globally sorted record.
    pub fn assemble(workers: u32, seed: u64, parts: Vec<(Vec<Span>, u64)>) -> Self {
        let mut spans = Vec::new();
        let mut dropped = 0;
        for (part, d) in parts {
            spans.extend(part);
            dropped += d;
        }
        spans.sort_by_key(|x| x.key());
        Self {
            workers,
            seed,
            spans,
            dropped,
        }
    }

    /// Spans of one kind, in timeline order.
    pub fn of_kind(&self, kind: SpanKind) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, epoch: u64, logical: u64) -> Span {
        Span::new(kind, 0, epoch, logical)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = EpochTracer::new(false, TraceConfig::default());
        t.push(span(SpanKind::Op, 0, 1));
        t.seal(0);
        let (spans, dropped) = t.finish();
        assert!(spans.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn sealing_sorts_regardless_of_arrival_order() {
        let mk = |order: &[u64]| {
            let mut t = EpochTracer::new(true, TraceConfig::default());
            for &l in order {
                t.push(span(SpanKind::Deliver, 0, l));
            }
            t.seal(0);
            t.finish().0
        };
        assert_eq!(mk(&[3, 1, 2]), mk(&[2, 3, 1]));
    }

    #[test]
    fn cap_truncates_deterministically() {
        let mut t = EpochTracer::new(
            true,
            TraceConfig {
                cap_per_kind: 2,
                keep_epochs: 0,
            },
        );
        for l in [5u64, 1, 4, 2, 3] {
            t.push(span(SpanKind::Op, 0, l));
        }
        t.push(span(SpanKind::Drain, 0, 0));
        t.seal(0);
        let (spans, dropped) = t.finish();
        assert_eq!(dropped, 3);
        let ops: Vec<u64> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Op)
            .map(|s| s.logical)
            .collect();
        assert_eq!(ops, vec![1, 2]);
        assert_eq!(
            spans.iter().filter(|s| s.kind == SpanKind::Drain).count(),
            1
        );
    }

    #[test]
    fn keep_epochs_evicts_oldest() {
        let mut t = EpochTracer::new(
            true,
            TraceConfig {
                cap_per_kind: 0,
                keep_epochs: 2,
            },
        );
        for e in 0..4u64 {
            t.push(span(SpanKind::Op, e, e));
            t.seal(e);
        }
        let (spans, dropped) = t.finish();
        let epochs: Vec<u64> = spans.iter().map(|s| s.epoch).collect();
        assert_eq!(epochs, vec![2, 3]);
        assert_eq!(dropped, 2);
    }

    #[test]
    fn straggler_spans_wait_for_their_epoch() {
        let mut t = EpochTracer::new(true, TraceConfig::default());
        t.push(span(SpanKind::Fault, 1, 9));
        t.push(span(SpanKind::Op, 0, 0));
        t.seal(0);
        t.push(span(SpanKind::Op, 1, 1));
        t.seal(1);
        let (spans, _) = t.finish();
        let key: Vec<(u64, SpanKind)> = spans.iter().map(|s| (s.epoch, s.kind)).collect();
        assert_eq!(
            key,
            vec![(0, SpanKind::Op), (1, SpanKind::Op), (1, SpanKind::Fault)]
        );
    }

    #[test]
    fn assemble_merges_and_sorts() {
        let a = vec![span(SpanKind::Drain, 1, 0)];
        let mut b0 = span(SpanKind::Op, 0, 3);
        b0.worker = 1;
        let rec = FlightRecord::assemble(2, 7, vec![(a, 1), (vec![b0], 2)]);
        assert_eq!(rec.dropped, 3);
        assert_eq!(rec.spans[0].kind, SpanKind::Op);
        assert_eq!(rec.spans[1].kind, SpanKind::Drain);
        assert_eq!(rec.of_kind(SpanKind::Op).count(), 1);
    }
}
