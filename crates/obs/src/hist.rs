//! Log-bucketed latency histograms with a documented error bound.
//!
//! [`LatencyHistogram`] is the single-threaded accumulator each worker
//! owns; [`AtomicHistogram`] is the shared mirror workers merge into at
//! drain rendezvous. Both use the same HDR-style bucket layout:
//!
//! * values below 32 get one exact bucket each;
//! * every power-of-two octave above that is split into
//!   `2^SUB_BITS = 32` equal sub-buckets.
//!
//! A value `v ≥ 32` therefore lands in a bucket of width
//! `2^(⌊log₂ v⌋ - 5) ≤ v/32`, so any quantile reported by
//! [`LatencyHistogram::quantile`] (which returns the bucket's inclusive
//! upper bound at the nearest rank) overestimates the exact order
//! statistic by **at most 3.125 % (2⁻⁵) relative error**, and never
//! exceeds the recorded maximum. `max`, `count`, and the mean are
//! exact. Merging histograms is bucket-wise addition, so merged
//! quantiles carry the same bound — unlike the sample-and-sort summary
//! this replaces, whose nearest-index `pick(q)` biased tails low and
//! could not be merged without concatenating raw samples.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32).
const SUB: usize = 1 << SUB_BITS;
/// Number of octave groups above the exact range (`2^5 .. 2^64`).
const GROUPS: usize = 64 - SUB_BITS as usize;
/// Total bucket count (exact range + grouped octaves).
const NBUCKETS: usize = SUB + GROUPS * SUB;

/// Bucket index of a value. Values `< 32` map to themselves; larger
/// values map to `32·(octave − 5) + sub` past the exact range.
fn index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let group = (exp - SUB_BITS) as usize;
        let sub = ((v >> (exp - SUB_BITS)) as usize) & (SUB - 1);
        SUB + group * SUB + sub
    }
}

/// Inclusive upper bound of a bucket (the value [`quantile`] reports).
///
/// [`quantile`]: LatencyHistogram::quantile
fn upper(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let group = ((idx - SUB) / SUB) as u32;
        let sub = ((idx - SUB) % SUB) as u64;
        // The very top bucket's exclusive bound is 2^64, which wraps
        // to 0; wrapping_sub turns it into the correct u64::MAX.
        ((SUB as u64 + sub + 1) << group).wrapping_sub(1)
    }
}

/// A mergeable log-bucketed histogram of `u64` samples (nanoseconds,
/// by convention). See the [module docs](self) for the bucket layout
/// and the ≤ 3.125 % quantile error bound.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram (~15 KiB of buckets).
    pub fn new() -> Self {
        Self {
            counts: vec![0; NBUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.max = self.max.max(v);
    }

    /// Add every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True iff no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Nearest-rank quantile estimate for `q ∈ [0, 1]`.
    ///
    /// Walks the buckets to the bucket holding rank `⌈q·count⌉` and
    /// returns its inclusive upper bound, clamped to the exact
    /// maximum: at most 3.125 % above the exact order statistic,
    /// exact for values below 32.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Iterate over non-empty buckets as `(inclusive upper bound,
    /// count)` pairs, in increasing value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (upper(i), c))
    }
}

/// Shared-mutation mirror of [`LatencyHistogram`]: every slot is an
/// `AtomicU64`, so concurrent workers can [`merge_from`] their local
/// histograms with plain `fetch_add`s (wait-free, no locks) and a
/// reader can [`snapshot`] the merged result at any time.
///
/// [`merge_from`]: AtomicHistogram::merge_from
/// [`snapshot`]: AtomicHistogram::snapshot
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty atomic histogram.
    pub fn new() -> Self {
        Self {
            counts: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Add every non-empty bucket of a local histogram into the shared
    /// one. Wait-free; intended to run once per worker at a drain
    /// rendezvous rather than per sample.
    pub fn merge_from(&self, local: &LatencyHistogram) {
        for (slot, &c) in self.counts.iter().zip(&local.counts) {
            if c > 0 {
                slot.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        self.sum.fetch_add(local.sum, Ordering::Relaxed);
        self.max.fetch_max(local.max, Ordering::Relaxed);
    }

    /// Record a single sample directly (used off the hot path, e.g.
    /// for recovery sync times).
    pub fn record(&self, v: u64) {
        self.counts[index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copy the current contents into an owned [`LatencyHistogram`].
    pub fn snapshot(&self) -> LatencyHistogram {
        LatencyHistogram {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.max(), 31);
        // Below 32 every bucket is exact, so quantiles are exact
        // order statistics.
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        let samples: Vec<u64> = (0..10_000u64).map(|i| i * i + 17).collect();
        for &v in &samples {
            h.record(v);
        }
        for &(q, idx) in &[(0.5, 4999usize), (0.9, 8999), (0.99, 9899), (0.999, 9989)] {
            let exact = samples[idx];
            let est = h.quantile(q);
            assert!(est >= exact, "q={q}: est {est} < exact {exact}");
            let err = (est - exact) as f64 / exact as f64;
            assert!(err <= 0.03125, "q={q}: err {err} above bound");
        }
        assert_eq!(h.quantile(1.0), *samples.last().unwrap());
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * 37 % 4096;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.mean(), all.mean());
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn atomic_mirror_round_trips() {
        let shared = AtomicHistogram::new();
        let mut local = LatencyHistogram::new();
        for v in [1u64, 100, 10_000, 1 << 40] {
            local.record(v);
        }
        shared.merge_from(&local);
        shared.record(7);
        let snap = shared.snapshot();
        assert_eq!(snap.count(), 5);
        assert_eq!(snap.max(), 1 << 40);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        for v in (0..200u64).chain((1..60).map(|e| (1u64 << e) + e)) {
            let idx = index(v);
            let up = upper(idx);
            assert!(up >= v, "upper({idx}) = {up} < {v}");
            if v >= 32 {
                // Bucket width stays within the 2^-5 relative bound.
                assert!(up - v < v / 32 + 1, "v={v} up={up}");
            } else {
                assert_eq!(up, v);
            }
        }
    }

    #[test]
    fn top_bucket_index_in_range() {
        assert!(index(u64::MAX) < NBUCKETS);
        assert_eq!(upper(index(u64::MAX)), u64::MAX);
    }
}
