//! Flight-recorder exporters: deterministic JSONL and Chrome trace
//! JSON.
//!
//! [`jsonl`] renders **only** the deterministic logical timeline —
//! epoch, kind, worker, logical stamp, peer, shard, payload fields —
//! one fixed-field-order object per line, so the output is
//! byte-identical across runs at the same `(config, seed)` (this is
//! what the trace-determinism tests and the `obs-smoke` CI job diff).
//!
//! [`chrome_json`] renders the same spans in the Chrome trace event
//! format (`chrome://tracing` / <https://ui.perfetto.dev>): wall-clock
//! `ts`/`dur` in microseconds, one `tid` lane per worker plus one for
//! the verifier, with the logical fields and the envelope's
//! edge-knowledge vector clock attached as `args`. Wall times and
//! clock stamps are interleaving-dependent, so this form is **not**
//! byte-comparable — use it for reading, JSONL for diffing.
//!
//! Everything is hand-rolled `core::fmt` emission: every emitted field
//! is numeric, boolean, or a static enum name, so no string escaping
//! is needed and no serializer dependency is taken.

use std::fmt::Write as _;

use crate::trace::{FlightRecord, Span, SpanKind};

/// Schema identifier stamped into both export headers and pinned by
/// `docs/trace.schema.json`.
pub const TRACE_SCHEMA: &str = "cbm-trace-v1";

/// Human names for the chaos fault codes carried in the `a` field of
/// [`SpanKind::Fault`] spans.
pub const FAULT_NAMES: [&str; 7] = [
    "drop",
    "dup",
    "park",
    "release",
    "prune",
    "delay",
    "crash_discard",
];

/// Name of a fault code (`"fault_<code>"`-free: unknown codes render
/// as `"unknown"`).
pub fn fault_name(code: u64) -> &'static str {
    FAULT_NAMES.get(code as usize).copied().unwrap_or("unknown")
}

fn jsonl_line(out: &mut String, s: &Span) {
    let _ = write!(
        out,
        "{{\"epoch\": {}, \"kind\": \"{}\", \"worker\": {}, \"logical\": {}, \
         \"peer\": {}, \"shard\": {}, \"a\": {}, \"b\": {}, \"flag\": {}}}",
        s.epoch,
        s.kind.name(),
        s.worker,
        s.logical,
        s.peer,
        s.shard,
        s.a,
        s.b,
        s.flag
    );
}

/// Render the deterministic logical timeline as JSONL: a header object
/// (`schema`, `workers`, `seed`, `spans`, `dropped`) followed by one
/// object per span in timeline order. Byte-identical across runs at
/// fixed `(config, seed)`.
pub fn jsonl(rec: &FlightRecord) -> String {
    let mut out = String::with_capacity(64 + rec.spans.len() * 128);
    let _ = writeln!(
        out,
        "{{\"schema\": \"{}\", \"workers\": {}, \"seed\": {}, \"spans\": {}, \"dropped\": {}}}",
        TRACE_SCHEMA,
        rec.workers,
        rec.seed,
        rec.spans.len(),
        rec.dropped
    );
    for s in &rec.spans {
        jsonl_line(&mut out, s);
        out.push('\n');
    }
    out
}

fn chrome_args(out: &mut String, s: &Span) {
    let _ = write!(
        out,
        "{{\"epoch\": {}, \"logical\": {}, \"peer\": {}, \"shard\": {}, \"a\": {}, \
         \"b\": {}, \"flag\": {}",
        s.epoch, s.logical, s.peer, s.shard, s.a, s.b, s.flag
    );
    if s.kind == SpanKind::Fault {
        let _ = write!(out, ", \"fault\": \"{}\"", fault_name(s.a));
    }
    if !s.vc.is_empty() {
        out.push_str(", \"vc\": [");
        for (i, v) in s.vc.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{v}");
        }
        out.push(']');
    }
    out.push('}');
}

/// Render the flight record in Chrome trace event format. Spans with a
/// duration become complete (`"ph": "X"`) events; instantaneous spans
/// become thread-scoped instant (`"ph": "i"`) events. Worker ids map
/// to `tid` lanes (named via metadata events); wall times map to
/// microsecond `ts`/`dur`.
pub fn chrome_json(rec: &FlightRecord) -> String {
    let mut out = String::with_capacity(256 + rec.spans.len() * 256);
    out.push_str("{\"traceEvents\": [\n");
    let _ = write!(
        out,
        "  {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
         \"args\": {{\"name\": \"cbm-store\"}}}}"
    );
    for w in 0..=rec.workers {
        let label = if w == rec.workers {
            "verifier".to_string()
        } else {
            format!("worker {w}")
        };
        let _ = write!(
            out,
            ",\n  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {w}, \
             \"args\": {{\"name\": \"{label}\"}}}}"
        );
    }
    for s in &rec.spans {
        let ts_us = s.wall_ns as f64 / 1000.0;
        if s.dur_ns > 0 {
            let dur_us = (s.dur_ns as f64 / 1000.0).max(0.001);
            let _ = write!(
                out,
                ",\n  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \
                 \"ts\": {ts_us:.3}, \"dur\": {dur_us:.3}, \"args\": ",
                s.kind.name(),
                s.worker
            );
        } else {
            let _ = write!(
                out,
                ",\n  {{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \
                 \"tid\": {}, \"ts\": {ts_us:.3}, \"args\": ",
                s.kind.name(),
                s.worker
            );
        }
        chrome_args(&mut out, s);
        out.push('}');
    }
    let _ = write!(
        out,
        "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {{\"schema\": \"{}\", \
         \"workers\": {}, \"seed\": {}, \"dropped\": {}}}}}\n",
        TRACE_SCHEMA, rec.workers, rec.seed, rec.dropped
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FlightRecord, Span, SpanKind};

    fn record() -> FlightRecord {
        let mut flush = Span::new(SpanKind::BatchFlush, 0, 0, 1);
        flush.peer = 1;
        flush.vc = vec![1, 0];
        flush.wall_ns = 1500;
        let mut op = Span::new(SpanKind::Op, 1, 0, 0);
        op.a = 7;
        op.dur_ns = 250;
        FlightRecord::assemble(2, 42, vec![(vec![flush, op], 0)])
    }

    #[test]
    fn jsonl_has_header_and_fixed_fields() {
        let text = jsonl(&record());
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"schema\": \"cbm-trace-v1\""));
        assert!(header.contains("\"workers\": 2"));
        assert!(header.contains("\"spans\": 2"));
        let first = lines.next().unwrap();
        assert!(
            first.starts_with("{\"epoch\": 0, \"kind\": \"op\""),
            "{first}"
        );
        // The nondeterministic fields must not leak into JSONL.
        assert!(!text.contains("vc"));
        assert!(!text.contains("wall"));
    }

    #[test]
    fn jsonl_is_deterministic_for_equal_records() {
        assert_eq!(jsonl(&record()), jsonl(&record()));
    }

    #[test]
    fn chrome_json_carries_vc_and_lanes() {
        let text = chrome_json(&record());
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"vc\": [1, 0]"));
        assert!(text.contains("\"name\": \"verifier\""));
        assert!(text.contains("\"ph\": \"X\""));
        assert!(text.contains("\"ph\": \"i\""));
    }

    #[test]
    fn fault_names_cover_codes() {
        assert_eq!(fault_name(0), "drop");
        assert_eq!(fault_name(6), "crash_discard");
        assert_eq!(fault_name(99), "unknown");
    }
}
