//! Lock-free metrics registry: named atomic counters and gauges.
//!
//! The registry is built single-threaded (the engine registers every
//! metric before spawning workers), then shared immutably; the hot
//! path touches only `AtomicU64`s. The intended discipline — and the
//! one `cbm-store` follows — is coarser still: workers accumulate in
//! plain locals and [`Counter::add`] **deltas** at deterministic drain
//! rendezvous, so steady-state op execution performs no shared-memory
//! traffic at all. Histograms follow the same pattern via
//! [`crate::AtomicHistogram`] (local record, merge at drains).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::hist::AtomicHistogram;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins / running-max atomic gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrite the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (running peak).
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registry of named metrics. Registration happens single-threaded;
/// afterwards the registry is shared behind `&`/`Arc` and every
/// operation on the handles is lock-free.
///
/// Registering a name twice returns the same underlying metric, so
/// independent components can share a series.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Vec<(&'static str, Arc<Counter>)>,
    gauges: Vec<(&'static str, Arc<Gauge>)>,
    histograms: Vec<(&'static str, Arc<AtomicHistogram>)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a counter.
    pub fn counter(&mut self, name: &'static str) -> Arc<Counter> {
        if let Some((_, c)) = self.counters.iter().find(|(n, _)| *n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        self.counters.push((name, Arc::clone(&c)));
        c
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&mut self, name: &'static str) -> Arc<Gauge> {
        if let Some((_, g)) = self.gauges.iter().find(|(n, _)| *n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        self.gauges.push((name, Arc::clone(&g)));
        g
    }

    /// Register (or look up) an atomic histogram.
    pub fn histogram(&mut self, name: &'static str) -> Arc<AtomicHistogram> {
        if let Some((_, h)) = self.histograms.iter().find(|(n, _)| *n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(AtomicHistogram::new());
        self.histograms.push((name, Arc::clone(&h)));
        h
    }

    /// Snapshot every counter and gauge (registration order), then
    /// each histogram expanded into `name.count` / `name.p50` /
    /// `name.p99` / `name.p999` / `name.max` rows.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (name, c) in &self.counters {
            out.push(((*name).to_string(), c.get()));
        }
        for (name, g) in &self.gauges {
            out.push(((*name).to_string(), g.get()));
        }
        for (name, h) in &self.histograms {
            let snap = h.snapshot();
            out.push((format!("{name}.count"), snap.count()));
            out.push((format!("{name}.p50"), snap.quantile(0.50)));
            out.push((format!("{name}.p99"), snap.quantile(0.99)));
            out.push((format!("{name}.p999"), snap.quantile(0.999)));
            out.push((format!("{name}.max"), snap.max()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    #[test]
    fn registration_is_idempotent() {
        let mut r = Registry::new();
        let a = r.counter("ops_total");
        let b = r.counter("ops_total");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert_eq!(r.snapshot(), vec![("ops_total".to_string(), 7)]);
    }

    #[test]
    fn gauge_raise_keeps_peak() {
        let g = Gauge::default();
        g.raise(5);
        g.raise(3);
        assert_eq!(g.get(), 5);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_rows_appear_in_snapshot() {
        let mut r = Registry::new();
        let h = r.histogram("op_latency_ns");
        let mut local = LatencyHistogram::new();
        local.record(10);
        local.record(20);
        h.merge_from(&local);
        let snap = r.snapshot();
        assert!(snap.contains(&("op_latency_ns.count".to_string(), 2)));
        assert!(snap.contains(&("op_latency_ns.max".to_string(), 20)));
    }

    #[test]
    fn concurrent_counter_adds_sum() {
        let mut r = Registry::new();
        let c = r.counter("x");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
