//! # cbm-obs — observability for the live causal store
//!
//! Three layers, each usable on its own:
//!
//! * [`hist`] — **log-bucketed latency histograms**: HDR-style
//!   mergeable buckets with a documented relative error bound
//!   (exact max and mean), plus an atomic mirror
//!   ([`hist::AtomicHistogram`]) that per-worker local histograms
//!   merge into at drain rendezvous — collection stays off the hot
//!   path, merging is wait-free `fetch_add`s.
//! * [`metrics`] — a **lock-free metrics registry**: named atomic
//!   counters and gauges registered once (single-threaded build
//!   phase), then shared immutably; workers accumulate locally and
//!   flush deltas at deterministic drain points.
//! * [`trace`] + [`export`] — **causally-stamped structured tracing**:
//!   per-worker bounded span recorders whose spans carry the
//!   engine's epoch, shard, and the envelope's edge-knowledge matrix
//!   (the vector-clock generalisation the interest multicast already
//!   propagates), sealed per epoch into a deterministic logical
//!   timeline. [`export::jsonl`] renders only the
//!   deterministic fields — byte-identical across runs at fixed
//!   `(config, seed)` — while [`export::chrome_json`] adds wall
//!   times and clock stamps for `chrome://tracing` / Perfetto.
//!
//! The span schema, the metrics catalog, and the determinism contract
//! are documented in `docs/OBSERVABILITY.md`; the exported JSON shapes
//! are pinned by `docs/trace.schema.json` and the `trace_check`
//! validator binary in `cbm-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod metrics;
pub mod trace;

pub use hist::{AtomicHistogram, LatencyHistogram};
pub use metrics::{Counter, Gauge, Registry};
pub use trace::{EpochTracer, FlightRecord, Span, SpanKind, TraceConfig};
