//! [`ConvergentShared`]: the Fig. 5 algorithm generalized from
//! window-stream arrays to any abstract data type.
//!
//! Fig. 5 builds "a total order on the write operations on which all
//! the participants agree, and sorts the corresponding values in the
//! local state of each process with respect to this total order"
//! (§6.3). For a window stream, sorting the last `k` timestamped values
//! *is* the state; for an arbitrary ADT the same idea becomes an
//! **arbitrated operation log**: every update is timestamped with a
//! Lamport pair `(vt, pid)`, replicated through the causal broadcast,
//! and inserted in timestamp order into a log whose fold (from the
//! initial state, through `δ`) is the replica's current state. Queries
//! evaluate `λ` on that fold.
//!
//! Timestamps extend the causal order (`happened-before ⇒ smaller
//! timestamp`, because broadcasts tick the clock and deliveries
//! observe it), so the common total order contains a causal order —
//! Proposition 7's argument carries over: every history is causally
//! convergent, and replicas that have delivered the same updates hold
//! identical states (strong convergence). Both facts are re-verified on
//! recorded executions by `cbm-check`.
//!
//! ## Cost
//!
//! A remote update with a timestamp older than log entries must *undo*
//! their effect; this implementation replays from checkpointed
//! prefixes (every [`CHECKPOINT_EVERY`] entries), trading memory for
//! replay time. Causal delivery keeps insertions near the tail in
//! practice, so the expected extra work per delivery is O(1)
//! checkpoint distance — measured in `cbm-bench`'s `convergence_time`
//! bench.

use crate::replica::{stamped_size, InvokeOutcome, Outgoing, Replica, Stamped};
use cbm_adt::Adt;
use cbm_net::broadcast::{CausalBroadcast, CausalMsg};
use cbm_net::clock::{LamportClock, Timestamp};
use cbm_net::NodeId;

/// Default checkpoint interval of the arbitrated log (see
/// [`ConvergentShared::with_checkpoint_interval`] for the ablation
/// knob; `cbm-bench`'s `convergence_time` bench measures the
/// trade-off).
pub const CHECKPOINT_EVERY: usize = 32;

/// A timestamped update as shipped and logged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArbUpdate<I> {
    /// Arbitration timestamp `(vt, pid)`.
    pub ts: Timestamp,
    /// Stamped input.
    pub op: Stamped<I>,
}

/// A causally convergent replica of any ADT (generalized Fig. 5).
#[derive(Debug, Clone)]
pub struct ConvergentShared<T: Adt> {
    adt: T,
    me: NodeId,
    /// Cluster size (kept for introspection and debug assertions).
    pub n: usize,
    clock: LamportClock,
    bcast: CausalBroadcast<ArbUpdate<T::Input>>,
    /// Update log, sorted ascending by timestamp.
    log: Vec<ArbUpdate<T::Input>>,
    /// `checkpoints[i]` = state after folding `log[0 .. i*ckpt_every]`.
    checkpoints: Vec<T::State>,
    /// Checkpoint interval (ablation knob; default [`CHECKPOINT_EVERY`]).
    ckpt_every: usize,
    /// Cached fold of the whole log (invalidated on out-of-tail insert).
    head: T::State,
    head_len: usize,
    /// Fold of every compacted (garbage-collected) update; the log is
    /// relative to this state. Equals `initial()` until compaction runs.
    base: T::State,
    /// Number of compacted updates (diagnostics).
    compacted: u64,
    /// Highest update timestamp received from each peer (stability
    /// tracking for compaction).
    peer_time: Vec<u64>,
    /// Compact once at least this many stable entries accumulated;
    /// `None` disables compaction (the default — witnesses for
    /// `verify_ccv_execution` need the full log).
    compact_chunk: Option<usize>,
}

impl<T: Adt> ConvergentShared<T> {
    /// Build a replica with a custom checkpoint interval: smaller
    /// intervals make out-of-order inserts cheaper (shorter replays)
    /// at the price of more state snapshots; `usize::MAX` disables
    /// checkpointing (full replay on every out-of-order insert).
    pub fn with_checkpoint_interval(me: NodeId, n: usize, adt: T, ckpt_every: usize) -> Self {
        let init = adt.initial();
        ConvergentShared {
            adt,
            me,
            n,
            clock: LamportClock::new(),
            bcast: CausalBroadcast::new(me, n),
            log: Vec::new(),
            checkpoints: vec![init.clone()],
            head: init.clone(),
            head_len: 0,
            base: init,
            compacted: 0,
            peer_time: vec![0; n],
            compact_chunk: None,
            ckpt_every: ckpt_every.max(1),
        }
    }

    /// Enable stability-based log compaction: once at least `chunk`
    /// log entries are *stable* they are folded into a base state and
    /// dropped, bounding memory like the verbatim Fig. 5 object does
    /// for window streams.
    ///
    /// An entry `(t, p)` is stable when every peer has been observed at
    /// a Lamport time strictly greater than `t`: per-sender timestamps
    /// are strictly increasing and FIFO-delivered, so no future arrival
    /// can sort at or before the entry. A silent (or crashed) peer
    /// therefore blocks compaction — the standard stability trade-off.
    ///
    /// Note: compaction truncates [`ConvergentShared::arbitration`] to
    /// the retained suffix, so enable it only when the run's CCv
    /// witness is not needed.
    pub fn with_compaction(mut self, chunk: usize) -> Self {
        self.compact_chunk = Some(chunk.max(1));
        self
    }

    /// Updates folded away by compaction so far.
    pub fn compacted(&self) -> u64 {
        self.compacted
    }

    /// The stability horizon: every update with `ts.time` strictly
    /// below this is immune to reordering by future arrivals.
    fn stability_horizon(&self) -> u64 {
        (0..self.n)
            .filter(|&p| p != self.me)
            .map(|p| self.peer_time[p])
            .min()
            .unwrap_or(0)
            .min(self.clock.now())
    }

    /// Fold the stable prefix into `base` when large enough.
    fn maybe_compact(&mut self) {
        let Some(chunk) = self.compact_chunk else {
            return;
        };
        let horizon = self.stability_horizon();
        let stable = self.log.partition_point(|e| e.ts.time < horizon);
        if stable < chunk {
            return;
        }
        for entry in self.log.drain(..stable) {
            self.base = self.adt.transition(&self.base, &entry.op.input);
        }
        self.compacted += stable as u64;
        // everything cached was relative to the old prefix: rebuild
        self.checkpoints = vec![self.base.clone()];
        self.head_len = 0;
        self.refresh();
    }

    /// Recompute `head` to cover the full log, using the deepest valid
    /// checkpoint.
    fn refresh(&mut self) {
        if self.head_len == self.log.len() {
            return;
        }
        let ck = (self.head_len.min(self.log.len())) / self.ckpt_every;
        let ck = ck.min(self.checkpoints.len().saturating_sub(1));
        let mut state = self.checkpoints[ck].clone();
        let mut pos = ck * self.ckpt_every;
        // drop checkpoints beyond the replay start; they may be stale
        self.checkpoints.truncate(ck + 1);
        while pos < self.log.len() {
            state = self.adt.transition(&state, &self.log[pos].op.input);
            pos += 1;
            if pos.is_multiple_of(self.ckpt_every) {
                self.checkpoints.push(state.clone());
            }
        }
        self.head = state;
        self.head_len = self.log.len();
    }

    /// Insert an update at its timestamp position; invalidates the head
    /// fold if the insertion is not at the tail.
    fn insert(&mut self, up: ArbUpdate<T::Input>) {
        let pos = self.log.partition_point(|entry| entry.ts < up.ts);
        if pos == self.log.len() && self.head_len == self.log.len() {
            // tail append: extend the fold incrementally
            self.head = self.adt.transition(&self.head, &up.op.input);
            self.log.push(up);
            self.head_len = self.log.len();
            if self.log.len().is_multiple_of(self.ckpt_every) {
                self.checkpoints.push(self.head.clone());
            }
            return;
        }
        self.log.insert(pos, up);
        // replay from the last checkpoint at or before pos
        self.head_len = pos - pos % self.ckpt_every;
        self.refresh();
    }

    /// Number of updates in the arbitrated log.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The arbitration sequence (event ids in timestamp order) — the
    /// `≤` witness for `verify_ccv_execution`.
    pub fn arbitration(&self) -> Vec<u64> {
        self.log.iter().map(|u| u.op.event).collect()
    }

    /// Evaluate a query on the current fold without recording.
    pub fn peek(&mut self, input: &T::Input) -> T::Output {
        self.refresh();
        self.adt.output(&self.head, input)
    }
}

impl<T: Adt> Replica<T> for ConvergentShared<T> {
    type Msg = CausalMsg<ArbUpdate<T::Input>>;

    fn new_replica(me: NodeId, n: usize, adt: T) -> Self {
        Self::with_checkpoint_interval(me, n, adt, CHECKPOINT_EVERY)
    }

    fn invoke(
        &mut self,
        event: u64,
        input: &T::Input,
        out: &mut Vec<Outgoing<Self::Msg>>,
    ) -> InvokeOutcome<T::Output> {
        self.refresh();
        let output = self.adt.output(&self.head, input);
        if self.adt.is_update(input) {
            let ts = Timestamp::new(self.clock.tick(), self.me);
            let up = ArbUpdate {
                ts,
                op: Stamped {
                    event,
                    input: input.clone(),
                },
            };
            // own timestamp is the largest seen locally: tail append
            self.insert(up.clone());
            let msg = self.bcast.broadcast(up);
            out.push(Outgoing::Broadcast(msg));
        }
        InvokeOutcome::Done(output)
    }

    fn on_deliver(
        &mut self,
        _from: NodeId,
        msg: Self::Msg,
        _out: &mut Vec<Outgoing<Self::Msg>>,
        _completed: &mut Vec<(u64, T::Output)>,
        applied: &mut Vec<u64>,
    ) {
        for m in self.bcast.on_receive(msg) {
            self.clock.observe(m.payload.ts.time);
            self.peer_time[m.sender] = self.peer_time[m.sender].max(m.payload.ts.time);
            applied.push(m.payload.op.event);
            self.insert(m.payload);
        }
        self.maybe_compact();
    }

    fn local_state(&self) -> T::State {
        // full fold from the compaction base (cheap relative to the
        // cloning a cache refresh would need through a shared reference)
        let mut s = self.base.clone();
        for up in &self.log {
            s = self.adt.transition(&s, &up.op.input);
        }
        s
    }

    fn msg_size(&self, msg: &Self::Msg) -> usize {
        // envelope + timestamp (10 bytes) + stamped payload
        2 + 2 + 8 * msg.vc.len() + 10 + stamped_size(16)
    }

    fn flavour() -> &'static str {
        "convergent (CCv, Fig. 5 generalized)"
    }

    fn arbitration_hint(&self) -> Option<Vec<u64>> {
        Some(self.arbitration())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbm_adt::window::{WaInput, WaOutput, WindowArray};
    use cbm_adt::Value;

    type Rep = ConvergentShared<WindowArray>;

    fn cluster(n: usize) -> Vec<Rep> {
        (0..n)
            .map(|me| Rep::new_replica(me, n, WindowArray::new(1, 2)))
            .collect()
    }

    #[allow(clippy::needless_range_loop)]
    fn deliver_all(
        reps: &mut [Rep],
        from: NodeId,
        out: Vec<Outgoing<CausalMsg<ArbUpdate<WaInput>>>>,
    ) {
        for m in out {
            let Outgoing::Broadcast(env) = m else {
                panic!()
            };
            for (to, r) in reps.iter_mut().enumerate() {
                if to != from {
                    r.on_deliver(
                        from,
                        env.clone(),
                        &mut Vec::new(),
                        &mut Vec::new(),
                        &mut Vec::new(),
                    );
                }
            }
        }
    }

    fn read0(r: &mut Rep) -> Vec<Value> {
        match r.peek(&WaInput::Read(0)) {
            WaOutput::Window(w) => w,
            _ => unreachable!(),
        }
    }

    #[test]
    fn concurrent_writes_converge_to_the_same_order() {
        // The convergence that CausalShared lacks (cf. Fig. 3c vs 3a).
        let mut reps = cluster(2);
        let mut out0 = Vec::new();
        let mut out1 = Vec::new();
        reps[0].invoke(0, &WaInput::Write(0, 1), &mut out0);
        reps[1].invoke(1, &WaInput::Write(0, 2), &mut out1);
        deliver_all(&mut reps, 0, out0);
        deliver_all(&mut reps, 1, out1);
        let a = read0(&mut reps[0]);
        let b = read0(&mut reps[1]);
        assert_eq!(a, b, "replicas must converge");
        // both timestamps are (1, pid): pid breaks the tie, p0 first
        assert_eq!(a, vec![1, 2]);
    }

    #[test]
    fn late_old_update_is_sorted_into_place() {
        let mut reps = cluster(2);
        // p1 writes 5 values first (clock runs ahead)
        let mut outs1 = Vec::new();
        for v in 10..15 {
            let mut o = Vec::new();
            reps[1].invoke(v, &WaInput::Write(0, v), &mut o);
            outs1.extend(o);
        }
        // p0 concurrently writes one value with clock 1: globally oldest
        let mut out0 = Vec::new();
        reps[0].invoke(0, &WaInput::Write(0, 99), &mut out0);
        // p0 receives p1's writes after its own
        deliver_all(&mut reps, 1, outs1);
        deliver_all(&mut reps, 0, out0);
        let a = read0(&mut reps[0]);
        let b = read0(&mut reps[1]);
        assert_eq!(a, b);
        // 99 has timestamp (1, 0): older than (4,1)/(5,1): it is NOT in
        // the last-2 window
        assert_eq!(a, vec![13, 14]);
    }

    #[test]
    fn happened_before_respected_in_arbitration() {
        let mut reps = cluster(2);
        let mut out0 = Vec::new();
        reps[0].invoke(0, &WaInput::Write(0, 1), &mut out0);
        deliver_all(&mut reps, 0, out0);
        // p1 writes after seeing p0's write: must arbitrate later
        let mut out1 = Vec::new();
        reps[1].invoke(1, &WaInput::Write(0, 2), &mut out1);
        deliver_all(&mut reps, 1, out1);
        for r in reps.iter_mut() {
            assert_eq!(read0(r), vec![1, 2]);
        }
        assert_eq!(reps[0].arbitration(), vec![0, 1]);
        assert_eq!(reps[1].arbitration(), vec![0, 1]);
    }

    #[test]
    fn checkpoints_survive_long_logs() {
        let mut reps = cluster(2);
        let total = 3 * CHECKPOINT_EVERY + 7;
        let mut all_out = Vec::new();
        for i in 0..total {
            let mut o = Vec::new();
            reps[0].invoke(i as u64, &WaInput::Write(0, i as u64), &mut o);
            all_out.extend(o);
        }
        deliver_all(&mut reps, 0, all_out);
        assert_eq!(reps[1].log_len(), total);
        let a = read0(&mut reps[0]);
        let b = read0(&mut reps[1]);
        assert_eq!(a, b);
        assert_eq!(a, vec![(total - 2) as u64, (total - 1) as u64]);
    }

    #[test]
    fn reads_do_not_grow_the_log() {
        let mut reps = cluster(1);
        let mut out = Vec::new();
        reps[0].invoke(0, &WaInput::Read(0), &mut out);
        assert!(out.is_empty());
        assert_eq!(reps[0].log_len(), 0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn three_replicas_pairwise_converge_under_adversarial_delivery() {
        let mut reps = cluster(3);
        let mut envs: Vec<(NodeId, CausalMsg<ArbUpdate<WaInput>>)> = Vec::new();
        for (i, v) in [(0usize, 7u64), (1, 8), (2, 9), (0, 10), (2, 11)] {
            let mut o = Vec::new();
            reps[i].invoke(v, &WaInput::Write(0, v), &mut o);
            for m in o {
                let Outgoing::Broadcast(env) = m else {
                    panic!()
                };
                envs.push((i, env));
            }
        }
        // deliver in reverse creation order to everyone (causal
        // broadcast re-sequences as needed)
        for (from, env) in envs.into_iter().rev() {
            for to in 0..3 {
                if to != from {
                    reps[to].on_deliver(
                        from,
                        env.clone(),
                        &mut Vec::new(),
                        &mut Vec::new(),
                        &mut Vec::new(),
                    );
                }
            }
        }
        let a = read0(&mut reps[0]);
        let b = read0(&mut reps[1]);
        let c = read0(&mut reps[2]);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}

#[cfg(test)]
mod compaction_tests {
    use super::*;
    use cbm_adt::counter::{Counter, CtInput, CtOutput};

    type Rep = ConvergentShared<Counter>;

    /// Drive two replicas through `rounds` of alternating increments
    /// with immediate cross-delivery; return (compacting, plain).
    fn run_pair(rounds: usize, chunk: usize) -> (Rep, Rep) {
        let mut a: Rep = Rep::with_checkpoint_interval(0, 2, Counter, 8).with_compaction(chunk);
        let mut b: Rep = Rep::with_checkpoint_interval(1, 2, Counter, 8);
        for i in 0..rounds as u64 {
            let (src, dst, me) = if i % 2 == 0 {
                (&mut a, &mut b, 0)
            } else {
                (&mut b, &mut a, 1)
            };
            let mut out = Vec::new();
            src.invoke(i, &CtInput::Add(1), &mut out);
            let Outgoing::Broadcast(env) = out.pop().unwrap() else {
                panic!()
            };
            let _ = me;
            dst.on_deliver(
                env.sender,
                env,
                &mut Vec::new(),
                &mut Vec::new(),
                &mut Vec::new(),
            );
        }
        (a, b)
    }

    #[test]
    fn compaction_preserves_state_and_bounds_memory() {
        let (mut a, mut b) = run_pair(400, 16);
        assert_eq!(a.peek(&CtInput::Read), CtOutput::Val(400));
        assert_eq!(b.peek(&CtInput::Read), CtOutput::Val(400));
        assert_eq!(a.local_state(), b.local_state());
        // the compacting replica dropped most of its log...
        assert!(a.compacted() > 300, "compacted {}", a.compacted());
        assert!(
            a.log_len() < 100,
            "log should stay bounded, got {}",
            a.log_len()
        );
        // ... while the plain one kept everything
        assert_eq!(b.log_len(), 400);
        assert_eq!(b.compacted(), 0);
    }

    #[test]
    fn silent_peer_blocks_compaction() {
        // three replicas, one never speaks: stability never advances
        let mut a: ConvergentShared<Counter> =
            ConvergentShared::with_checkpoint_interval(0, 3, Counter, 8).with_compaction(4);
        let mut b: ConvergentShared<Counter> =
            ConvergentShared::with_checkpoint_interval(1, 3, Counter, 8);
        for i in 0..50u64 {
            let mut out = Vec::new();
            b.invoke(i, &CtInput::Add(1), &mut out);
            let Outgoing::Broadcast(env) = out.pop().unwrap() else {
                panic!()
            };
            a.on_deliver(1, env, &mut Vec::new(), &mut Vec::new(), &mut Vec::new());
        }
        // peer 2 was silent: horizon stuck at 0, nothing compacted
        assert_eq!(a.compacted(), 0);
        assert_eq!(a.log_len(), 50);
    }

    #[test]
    fn compaction_disabled_by_default() {
        let (_, b) = run_pair(64, 1);
        assert_eq!(b.compacted(), 0);
        let c: Rep = Rep::new_replica(0, 2, Counter);
        assert!(c.compact_chunk.is_none());
    }

    #[test]
    fn late_straggler_sorts_after_compacted_prefix() {
        // a delivers b's updates; once compacted, a further update from
        // b (necessarily newer per FIFO + strict timestamps) must apply
        // cleanly on top of the base
        let (mut a, mut b) = run_pair(100, 8);
        let before = a.compacted();
        assert!(before > 0);
        let mut out = Vec::new();
        b.invoke(1000, &CtInput::Add(5), &mut out);
        let Outgoing::Broadcast(env) = out.pop().unwrap() else {
            panic!()
        };
        a.on_deliver(1, env, &mut Vec::new(), &mut Vec::new(), &mut Vec::new());
        // 100 increments from the pair run + the straggler's 5
        assert_eq!(a.peek(&CtInput::Read), CtOutput::Val(105));
    }
}
