//! [`SeqShared`]: sequentially consistent baseline through a
//! total-order broadcast.
//!
//! Every operation — update *and* query — is routed through the
//! sequencer and applied by all replicas in slot order; the invoking
//! replica answers when its own slot arrives. The result is a single
//! total order compatible with each process's program order, i.e.
//! sequential consistency (in fact linearizability of the replicated
//! state machine).
//!
//! The point of this baseline is its **cost**: invocations block for at
//! least a round trip to the sequencer, so operation latency grows with
//! network delay — the behaviour that §1 contrasts with the wait-free
//! causal implementations, quantified by `cbm-bench`'s
//! `latency_vs_delay` bench (experiment E9 in DESIGN.md). It is also
//! not fault-tolerant: a sequencer crash blocks the object, the CAP
//! trade-off in miniature.

use crate::replica::{InvokeOutcome, Outgoing, Replica, Stamped};
use cbm_adt::Adt;
use cbm_net::broadcast::{SeqMsg, SequencerBroadcast, SEQUENCER};
use cbm_net::NodeId;

/// A sequentially consistent replica (total-order RSM baseline).
#[derive(Debug, Clone)]
pub struct SeqShared<T: Adt> {
    adt: T,
    me: NodeId,
    state: T::State,
    proto: SequencerBroadcast<Stamped<T::Input>>,
}

impl<T: Adt> Replica<T> for SeqShared<T> {
    type Msg = SeqMsg<Stamped<T::Input>>;

    fn new_replica(me: NodeId, _n: usize, adt: T) -> Self {
        let state = adt.initial();
        SeqShared {
            adt,
            me,
            state,
            proto: SequencerBroadcast::new(me),
        }
    }

    fn invoke(
        &mut self,
        event: u64,
        input: &T::Input,
        out: &mut Vec<Outgoing<Self::Msg>>,
    ) -> InvokeOutcome<T::Output> {
        let stamped = Stamped {
            event,
            input: input.clone(),
        };
        let msg = self.proto.submit(stamped);
        if self.me == SEQUENCER {
            // sequencer ordered it directly: broadcast and loop back
            out.push(Outgoing::Broadcast(msg.clone()));
            let (deliveries, _) = self.proto.on_receive(msg);
            let mut result = None;
            for (_slot, _origin, op) in deliveries {
                let output = self.adt.output(&self.state, &op.input);
                self.state = self.adt.transition(&self.state, &op.input);
                if op.event == event {
                    result = Some(output);
                }
            }
            match result {
                Some(o) => InvokeOutcome::Done(o),
                // own op still buffered behind unseen slots
                None => InvokeOutcome::Pending(event),
            }
        } else {
            out.push(Outgoing::To(SEQUENCER, msg));
            InvokeOutcome::Pending(event)
        }
    }

    fn on_deliver(
        &mut self,
        _from: NodeId,
        msg: Self::Msg,
        out: &mut Vec<Outgoing<Self::Msg>>,
        completed: &mut Vec<(u64, T::Output)>,
        applied: &mut Vec<u64>,
    ) {
        let (deliveries, forward) = self.proto.on_receive(msg);
        if let Some(fwd) = forward {
            // we are the sequencer: fan out, then apply our own copy
            out.push(Outgoing::Broadcast(fwd.clone()));
            let (more, _) = self.proto.on_receive(fwd);
            self.apply_all(more, completed, applied);
        }
        self.apply_all(deliveries, completed, applied);
    }

    fn local_state(&self) -> T::State {
        self.state.clone()
    }

    fn msg_size(&self, msg: &Self::Msg) -> usize {
        match msg {
            SeqMsg::Submit { .. } => 2 + 8 + 16,
            SeqMsg::Ordered { .. } => 8 + 2 + 8 + 16,
        }
    }

    fn wait_free() -> bool {
        false
    }

    fn flavour() -> &'static str {
        "sequencer (SC baseline, blocking)"
    }
}

impl<T: Adt> SeqShared<T> {
    fn apply_all(
        &mut self,
        deliveries: Vec<(u64, NodeId, Stamped<T::Input>)>,
        completed: &mut Vec<(u64, T::Output)>,
        applied: &mut Vec<u64>,
    ) {
        for (_slot, origin, op) in deliveries {
            let output = self.adt.output(&self.state, &op.input);
            self.state = self.adt.transition(&self.state, &op.input);
            applied.push(op.event);
            if origin == self.me {
                completed.push((op.event, output));
            }
        }
    }

    /// Evaluate a query locally without ordering it (debug only; this
    /// would *not* be sequentially consistent as a public operation).
    pub fn peek(&self, input: &T::Input) -> T::Output {
        self.adt.output(&self.state, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbm_adt::window::{WaInput, WaOutput, WindowArray};

    type Rep = SeqShared<WindowArray>;

    #[test]
    fn sequencer_completes_own_ops_immediately() {
        let mut s: Rep = Rep::new_replica(0, 2, WindowArray::new(1, 2));
        let mut out = Vec::new();
        let r = s.invoke(0, &WaInput::Write(0, 5), &mut out);
        assert_eq!(r, InvokeOutcome::Done(WaOutput::Ack));
        assert_eq!(out.len(), 1);
        let r = s.invoke(1, &WaInput::Read(0), &mut out);
        assert_eq!(r, InvokeOutcome::Done(WaOutput::Window(vec![0, 5])));
    }

    #[test]
    fn non_sequencer_ops_block_until_ordered() {
        let mut seq: Rep = Rep::new_replica(0, 2, WindowArray::new(1, 1));
        let mut p1: Rep = Rep::new_replica(1, 2, WindowArray::new(1, 1));

        let mut out1 = Vec::new();
        let r = p1.invoke(7, &WaInput::Write(0, 3), &mut out1);
        assert_eq!(r, InvokeOutcome::Pending(7));
        let Outgoing::To(to, submit) = out1.pop().unwrap() else {
            panic!()
        };
        assert_eq!(to, SEQUENCER);

        // sequencer orders and fans out
        let mut out0 = Vec::new();
        let mut completed0 = Vec::new();
        seq.on_deliver(1, submit, &mut out0, &mut completed0, &mut Vec::new());
        assert!(completed0.is_empty(), "not the origin");
        let Outgoing::Broadcast(ordered) = out0.pop().unwrap() else {
            panic!()
        };

        // p1 receives the ordered slot: its op completes
        let mut completed1 = Vec::new();
        p1.on_deliver(
            0,
            ordered,
            &mut Vec::new(),
            &mut completed1,
            &mut Vec::new(),
        );
        assert_eq!(completed1, vec![(7, WaOutput::Ack)]);
        assert_eq!(p1.peek(&WaInput::Read(0)), WaOutput::Window(vec![3]));
        assert_eq!(seq.peek(&WaInput::Read(0)), WaOutput::Window(vec![3]));
    }

    #[test]
    fn all_replicas_apply_the_same_total_order() {
        let mut seq: Rep = Rep::new_replica(0, 3, WindowArray::new(1, 3));
        let mut p1: Rep = Rep::new_replica(1, 3, WindowArray::new(1, 3));
        let mut p2: Rep = Rep::new_replica(2, 3, WindowArray::new(1, 3));

        // two concurrent submissions
        let mut o1 = Vec::new();
        p1.invoke(1, &WaInput::Write(0, 11), &mut o1);
        let mut o2 = Vec::new();
        p2.invoke(2, &WaInput::Write(0, 22), &mut o2);
        let Outgoing::To(_, s1) = o1.pop().unwrap() else {
            panic!()
        };
        let Outgoing::To(_, s2) = o2.pop().unwrap() else {
            panic!()
        };

        // sequencer handles p2's first
        let mut fan = Vec::new();
        seq.on_deliver(2, s2, &mut fan, &mut Vec::new(), &mut Vec::new());
        seq.on_deliver(1, s1, &mut fan, &mut Vec::new(), &mut Vec::new());
        let envs: Vec<_> = fan
            .into_iter()
            .map(|o| match o {
                Outgoing::Broadcast(e) => e,
                _ => panic!(),
            })
            .collect();
        // deliver to p1 and p2 in opposite orders: slot buffering fixes it
        for e in envs.iter() {
            p1.on_deliver(
                0,
                e.clone(),
                &mut Vec::new(),
                &mut Vec::new(),
                &mut Vec::new(),
            );
        }
        for e in envs.iter().rev() {
            p2.on_deliver(
                0,
                e.clone(),
                &mut Vec::new(),
                &mut Vec::new(),
                &mut Vec::new(),
            );
        }
        assert_eq!(p1.local_state(), p2.local_state());
        assert_eq!(p1.local_state(), seq.local_state());
        assert_eq!(
            p1.peek(&WaInput::Read(0)),
            WaOutput::Window(vec![0, 22, 11])
        );
    }

    #[test]
    fn flavour_is_not_wait_free() {
        assert!(!<Rep as Replica<WindowArray>>::wait_free());
    }
}
