//! [`CausalShared`]: the Fig. 4 algorithm generalized from window-stream
//! arrays to any abstract data type.
//!
//! The paper's algorithm for `W_k^K` broadcasts each write through the
//! reliable causal broadcast and applies it at every replica on
//! delivery, while reads return the local state. The generalization
//! replaces "write" by *the side effect `δ` of any update input* and
//! "read" by *the output `λ` of any input, evaluated on the local
//! state*:
//!
//! * **invoke(σ)**: compute the output `λ(state, σ)` locally; if `σ` is
//!   an update, apply `δ` locally at once (the immediate self-delivery
//!   of §6.1) and causally broadcast `σ`;
//! * **deliver(σ)**: apply `δ(state, σ)`.
//!
//! Operations never wait — wait-freedom and fault-tolerance exactly as
//! in §6.2. Proposition 6's argument survives the generalization
//! verbatim: each replica's apply order is a linearization of a causal
//! order (causal delivery + immediate self-delivery), the local state
//! is the fold of the applied prefix, so every local output is
//! explained by the prefix linearization — Def. 9's condition with
//! `p`'s outputs visible. `cbm-check::verify::verify_cc_execution`
//! re-checks this on every recorded run.
//!
//! What the generalization surrenders (knowingly — §4.1): for
//! update-queries like `pop`, the *output* is computed locally while
//! the *side effect* replicates, so concurrent pops can return the same
//! element and lose another (Fig. 3f) — the behaviour is causally
//! consistent but not sequentially consistent.

use crate::replica::{stamped_size, InvokeOutcome, Outgoing, Replica, Stamped};
use cbm_adt::{Adt, AdtExt};
use cbm_net::broadcast::{CausalBroadcast, CausalMsg};
use cbm_net::NodeId;

/// A causally consistent replica of any ADT (generalized Fig. 4).
#[derive(Debug, Clone)]
pub struct CausalShared<T: Adt> {
    adt: T,
    state: T::State,
    bcast: CausalBroadcast<Stamped<T::Input>>,
    n: usize,
}

impl<T: Adt> Replica<T> for CausalShared<T> {
    type Msg = CausalMsg<Stamped<T::Input>>;

    fn new_replica(me: NodeId, n: usize, adt: T) -> Self {
        let state = adt.initial();
        CausalShared {
            adt,
            state,
            bcast: CausalBroadcast::new(me, n),
            n,
        }
    }

    fn invoke(
        &mut self,
        event: u64,
        input: &T::Input,
        out: &mut Vec<Outgoing<Self::Msg>>,
    ) -> InvokeOutcome<T::Output> {
        let output = self.adt.output(&self.state, input);
        if self.adt.is_update(input) {
            // immediate local delivery, then broadcast the effect
            self.state = self.adt.transition(&self.state, input);
            let msg = self.bcast.broadcast(Stamped {
                event,
                input: input.clone(),
            });
            out.push(Outgoing::Broadcast(msg));
        }
        InvokeOutcome::Done(output)
    }

    fn on_deliver(
        &mut self,
        _from: NodeId,
        msg: Self::Msg,
        _out: &mut Vec<Outgoing<Self::Msg>>,
        _completed: &mut Vec<(u64, T::Output)>,
        applied: &mut Vec<u64>,
    ) {
        for m in self.bcast.on_receive(msg) {
            self.state = self.adt.transition(&self.state, &m.payload.input);
            applied.push(m.payload.event);
        }
    }

    fn local_state(&self) -> T::State {
        self.state.clone()
    }

    fn msg_size(&self, msg: &Self::Msg) -> usize {
        // envelope: sender (2) + vector clock (2 + 8n) + stamped payload
        2 + 2 + 8 * msg.vc.len() + stamped_size(16)
    }

    fn flavour() -> &'static str {
        "causal (CC, Fig. 4 generalized)"
    }
}

impl<T: Adt> CausalShared<T> {
    /// Messages buffered awaiting causal delivery.
    pub fn buffered(&self) -> usize {
        self.bcast.buffered()
    }

    /// Cluster size.
    pub fn cluster_size(&self) -> usize {
        self.n
    }

    /// Evaluate an arbitrary query on the local state without recording
    /// an event (monitoring hooks).
    pub fn peek(&self, input: &T::Input) -> T::Output {
        self.adt.output(&self.state, input)
    }

    /// Fold a sequence of inputs over a fresh state (test helper).
    pub fn replay_inputs(adt: &T, inputs: &[T::Input]) -> T::State {
        adt.fold_inputs(inputs.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbm_adt::window::{WaInput, WaOutput, WindowArray};

    fn cluster(n: usize) -> Vec<CausalShared<WindowArray>> {
        (0..n)
            .map(|me| CausalShared::new_replica(me, n, WindowArray::new(2, 2)))
            .collect()
    }

    /// Deliver every outgoing broadcast to every other replica, in the
    /// given global order.
    fn flood(
        reps: &mut [CausalShared<WindowArray>],
        msgs: Vec<Outgoing<CausalMsg<Stamped<WaInput>>>>,
        from: NodeId,
    ) {
        for m in msgs {
            let Outgoing::Broadcast(env) = m else {
                panic!("cc never sends p2p")
            };
            for (to, r) in reps.iter_mut().enumerate() {
                if to != from {
                    r.on_deliver(
                        from,
                        env.clone(),
                        &mut Vec::new(),
                        &mut Vec::new(),
                        &mut Vec::new(),
                    );
                }
            }
        }
    }

    #[test]
    fn reads_are_local_and_wait_free() {
        let mut reps = cluster(3);
        let mut out = Vec::new();
        let o = reps[0].invoke(0, &WaInput::Read(0), &mut out);
        assert_eq!(o, InvokeOutcome::Done(WaOutput::Window(vec![0, 0])));
        assert!(out.is_empty(), "reads send nothing");
    }

    #[test]
    fn writes_apply_locally_then_replicate() {
        let mut reps = cluster(2);
        let mut out = Vec::new();
        reps[0].invoke(0, &WaInput::Write(1, 9), &mut out);
        assert_eq!(out.len(), 1);
        // local immediate visibility
        assert_eq!(
            reps[0].peek(&WaInput::Read(1)),
            WaOutput::Window(vec![0, 9])
        );
        // not yet at the peer
        assert_eq!(
            reps[1].peek(&WaInput::Read(1)),
            WaOutput::Window(vec![0, 0])
        );
        let (head, tail) = reps.split_at_mut(1);
        let _ = head;
        let Outgoing::Broadcast(env) = out.pop().unwrap() else {
            unreachable!()
        };
        let mut applied = Vec::new();
        tail[0].on_deliver(0, env, &mut Vec::new(), &mut Vec::new(), &mut applied);
        assert_eq!(applied, vec![0]);
        assert_eq!(
            tail[0].peek(&WaInput::Read(1)),
            WaOutput::Window(vec![0, 9])
        );
    }

    #[test]
    fn causal_delivery_preserves_question_answer_order() {
        // p0 writes Q; p1 sees it and writes A; p2 receives A before Q
        // on the wire, but applies Q first.
        let mut reps = cluster(3);
        let mut out0 = Vec::new();
        reps[0].invoke(0, &WaInput::Write(0, 1), &mut out0);
        let Outgoing::Broadcast(q_env) = out0.pop().unwrap() else {
            unreachable!()
        };

        // deliver Q to p1 only
        reps[1].on_deliver(
            0,
            q_env.clone(),
            &mut Vec::new(),
            &mut Vec::new(),
            &mut Vec::new(),
        );
        let mut out1 = Vec::new();
        reps[1].invoke(1, &WaInput::Write(0, 2), &mut out1);
        let Outgoing::Broadcast(a_env) = out1.pop().unwrap() else {
            unreachable!()
        };

        // p2 gets A first: buffered; then Q: both applied in causal order
        let mut applied = Vec::new();
        reps[2].on_deliver(1, a_env, &mut Vec::new(), &mut Vec::new(), &mut applied);
        assert!(applied.is_empty());
        assert_eq!(reps[2].buffered(), 1);
        reps[2].on_deliver(0, q_env, &mut Vec::new(), &mut Vec::new(), &mut applied);
        assert_eq!(applied, vec![0, 1]);
        assert_eq!(
            reps[2].peek(&WaInput::Read(0)),
            WaOutput::Window(vec![1, 2])
        );
    }

    #[test]
    fn concurrent_writes_may_diverge_in_order_but_converge_in_multiset() {
        // CC does not promise convergence: two replicas may apply
        // concurrent writes in different orders (Fig. 3c).
        let mut reps = cluster(2);
        let mut out0 = Vec::new();
        let mut out1 = Vec::new();
        reps[0].invoke(0, &WaInput::Write(0, 1), &mut out0);
        reps[1].invoke(1, &WaInput::Write(0, 2), &mut out1);
        flood(&mut reps, out0, 0);
        flood(&mut reps, out1, 1);
        let s0 = reps[0].local_state();
        let s1 = reps[1].local_state();
        // both saw both writes (stream 0 = first window of the flat
        // state, k = 2)...
        assert_eq!(s0.len(), 2 * 2);
        // ...but in opposite orders
        assert_eq!(s0[0..2], [1, 2]);
        assert_eq!(s1[0..2], [2, 1]);
    }
}
