//! Verbatim implementations of the paper's two algorithms for an array
//! of `K` window streams of size `k`: Fig. 4 ([`WkArrayCc`]) and
//! Fig. 5 ([`WkArrayCcv`]).
//!
//! These are kept separate from the generalized replicas in
//! [`crate::causal`] / [`crate::convergent`] for three reasons:
//!
//! 1. **fidelity** — the code matches the paper's pseudocode line for
//!    line (including Fig. 5's in-place timestamped-window insertion),
//!    so the reproduction can be audited against the original;
//! 2. **cost** — Fig. 5 stores only `k` timestamped values per stream,
//!    not an operation log: O(k) memory and O(k) work per delivery,
//!    which the benches compare against the generalized log replica;
//! 3. **wire realism** — messages use the byte codec of
//!    `cbm-net::msg`, so reported message sizes are exact.
//!
//! Equivalence with the generalized replicas (same outputs under the
//! same delivery schedule) is asserted in the tests below and in the
//! integration suite.

use crate::replica::{InvokeOutcome, Outgoing, Replica};
use cbm_adt::window::{WaInput, WaOutput, WindowArray};
use cbm_adt::Value;
use cbm_net::broadcast::{CausalBroadcast, CausalMsg};
use cbm_net::clock::{LamportClock, Timestamp};
use cbm_net::msg::{CcWire, CcvWire};
use cbm_net::NodeId;

/// Fig. 4: causally consistent array of `K` window streams of size `k`.
#[derive(Debug, Clone)]
pub struct WkArrayCc {
    k: usize,
    /// `str_i` — the local state (line 2).
    streams: Vec<Vec<Value>>,
    bcast: CausalBroadcast<(u64 /*event*/, u32 /*x*/, Value)>,
    n: usize,
}

impl WkArrayCc {
    /// Direct constructor mirroring `object CC(W_k^K)`.
    pub fn new(me: NodeId, n: usize, streams: usize, k: usize) -> Self {
        WkArrayCc {
            k,
            streams: vec![vec![0; k]; streams],
            bcast: CausalBroadcast::new(me, n),
            n,
        }
    }

    /// `read(x)` (lines 3–5): return the local stream state.
    pub fn read(&self, x: usize) -> Vec<Value> {
        self.streams[x].clone()
    }

    /// `write(x, v)` (lines 6–8): causally broadcast `Mess(x, v)`;
    /// immediate local reception applies it at once (§6.1, property 3).
    pub fn write(&mut self, event: u64, x: usize, v: Value) -> CausalMsg<(u64, u32, Value)> {
        self.apply(x, v);
        self.bcast.broadcast((event, x as u32, v))
    }

    /// `on receive Mess(x, v)` (lines 9–14): shift the window.
    fn apply(&mut self, x: usize, v: Value) {
        let s = &mut self.streams[x];
        for y in 0..self.k.saturating_sub(1) {
            s[y] = s[y + 1];
        }
        if self.k > 0 {
            s[self.k - 1] = v;
        }
    }

    /// Receive a remote envelope; returns applied event ids in order.
    pub fn receive(&mut self, msg: CausalMsg<(u64, u32, Value)>) -> Vec<u64> {
        let mut applied = Vec::new();
        for m in self.bcast.on_receive(msg) {
            let (event, x, v) = m.payload;
            self.apply(x as usize, v);
            applied.push(event);
        }
        applied
    }
}

impl Replica<WindowArray> for WkArrayCc {
    type Msg = CausalMsg<(u64, u32, Value)>;

    fn new_replica(me: NodeId, n: usize, adt: WindowArray) -> Self {
        WkArrayCc::new(me, n, adt.streams(), adt.k())
    }

    fn invoke(
        &mut self,
        event: u64,
        input: &WaInput,
        out: &mut Vec<Outgoing<Self::Msg>>,
    ) -> InvokeOutcome<WaOutput> {
        match input {
            WaInput::Read(x) => InvokeOutcome::Done(WaOutput::Window(self.read(*x))),
            WaInput::Write(x, v) => {
                let msg = self.write(event, *x, *v);
                out.push(Outgoing::Broadcast(msg));
                InvokeOutcome::Done(WaOutput::Ack)
            }
        }
    }

    fn on_deliver(
        &mut self,
        _from: NodeId,
        msg: Self::Msg,
        _out: &mut Vec<Outgoing<Self::Msg>>,
        _completed: &mut Vec<(u64, WaOutput)>,
        applied: &mut Vec<u64>,
    ) {
        applied.extend(self.receive(msg));
    }

    fn local_state(&self) -> Vec<Value> {
        self.streams.concat()
    }

    fn msg_size(&self, msg: &Self::Msg) -> usize {
        CcWire {
            sender: msg.sender,
            vc: msg.vc.clone(),
            x: msg.payload.1,
            v: msg.payload.2,
        }
        .wire_size()
    }

    fn flavour() -> &'static str {
        "Wk-array CC (Fig. 4 verbatim)"
    }
}

impl WkArrayCc {
    /// Cluster size.
    pub fn cluster_size(&self) -> usize {
        self.n
    }
}

/// One cell of Fig. 5's state: a value with its timestamp
/// (`str_i ∈ N^{K×k×(1+2)}`, line 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// The value.
    pub v: Value,
    /// The arbitration timestamp `(vt, j)`.
    pub ts: Timestamp,
}

impl Cell {
    /// The initial cell `[0, (0, 0)]`.
    pub const INIT: Cell = Cell {
        v: 0,
        ts: Timestamp::ZERO,
    };
}

/// Fig. 5: causally convergent array of `K` window streams of size `k`.
#[derive(Debug, Clone)]
pub struct WkArrayCcv {
    me: NodeId,
    k: usize,
    /// `str_i` (line 2): per stream, `k` timestamped cells sorted by
    /// ascending timestamp (oldest first).
    streams: Vec<Vec<Cell>>,
    /// `vtime_i` (line 3).
    vtime: LamportClock,
    bcast: CausalBroadcast<(u64, u32, Value, Timestamp)>,
    /// Cluster size.
    pub n: usize,
}

impl WkArrayCcv {
    /// Direct constructor mirroring `object CCv(W_k^K)`.
    pub fn new(me: NodeId, n: usize, streams: usize, k: usize) -> Self {
        WkArrayCcv {
            me,
            k,
            streams: vec![vec![Cell::INIT; k]; streams],
            vtime: LamportClock::new(),
            bcast: CausalBroadcast::new(me, n),
            n,
        }
    }

    /// `read(x)` (lines 4–6): strip the timestamps.
    pub fn read(&self, x: usize) -> Vec<Value> {
        self.streams[x].iter().map(|c| c.v).collect()
    }

    /// `write(x, v)` (lines 7–9): broadcast `Mess(x, v, vtime+1, i)`;
    /// the local copy is applied by the immediate self-reception.
    pub fn write(
        &mut self,
        event: u64,
        x: usize,
        v: Value,
    ) -> CausalMsg<(u64, u32, Value, Timestamp)> {
        let ts = Timestamp::new(self.vtime.now() + 1, self.me);
        // immediate self-delivery (lines 10–20 run locally at once)
        self.apply(x, v, ts);
        self.bcast.broadcast((event, x as u32, v, ts))
    }

    /// `on receive Mess(x, v, vt, j)` (lines 10–20), transcribed
    /// faithfully: shift cells with timestamps ≤ `(vt, j)` to the left
    /// and insert the new cell at the vacated slot; a value older than
    /// all `k` current cells (`y = 0`) is discarded.
    fn apply(&mut self, x: usize, v: Value, ts: Timestamp) {
        // line 11: vtime ← max(vtime, vt)
        self.vtime.observe(ts.time);
        if self.k == 0 {
            return;
        }
        let s = &mut self.streams[x];
        // lines 12–16
        let mut y = 0usize;
        while y < self.k - 1 && s[y].ts <= ts {
            // within the loop the paper shifts as it scans
            y += 1;
        }
        // the scan found the first index whose cell is newer than ts
        // (or k-1); shift everything below it left by one and insert.
        if s[self.k - 1].ts <= ts {
            y = self.k; // newer than everything: goes last
        }
        if y != 0 {
            for z in 0..y - 1 {
                s[z] = s[z + 1];
            }
            s[y - 1] = Cell { v, ts };
        }
        debug_assert!(s.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    /// Receive a remote envelope; returns applied event ids.
    pub fn receive(&mut self, msg: CausalMsg<(u64, u32, Value, Timestamp)>) -> Vec<u64> {
        let mut applied = Vec::new();
        for m in self.bcast.on_receive(msg) {
            let (event, x, v, ts) = m.payload;
            self.apply(x as usize, v, ts);
            applied.push(event);
        }
        applied
    }

    /// The timestamped cells of a stream (tests/debug).
    pub fn cells(&self, x: usize) -> &[Cell] {
        &self.streams[x]
    }
}

impl Replica<WindowArray> for WkArrayCcv {
    type Msg = CausalMsg<(u64, u32, Value, Timestamp)>;

    fn new_replica(me: NodeId, n: usize, adt: WindowArray) -> Self {
        WkArrayCcv::new(me, n, adt.streams(), adt.k())
    }

    fn invoke(
        &mut self,
        event: u64,
        input: &WaInput,
        out: &mut Vec<Outgoing<Self::Msg>>,
    ) -> InvokeOutcome<WaOutput> {
        match input {
            WaInput::Read(x) => InvokeOutcome::Done(WaOutput::Window(self.read(*x))),
            WaInput::Write(x, v) => {
                let msg = self.write(event, *x, *v);
                out.push(Outgoing::Broadcast(msg));
                InvokeOutcome::Done(WaOutput::Ack)
            }
        }
    }

    fn on_deliver(
        &mut self,
        _from: NodeId,
        msg: Self::Msg,
        _out: &mut Vec<Outgoing<Self::Msg>>,
        _completed: &mut Vec<(u64, WaOutput)>,
        applied: &mut Vec<u64>,
    ) {
        applied.extend(self.receive(msg));
    }

    fn local_state(&self) -> Vec<Value> {
        (0..self.streams.len()).flat_map(|x| self.read(x)).collect()
    }

    fn msg_size(&self, msg: &Self::Msg) -> usize {
        CcvWire {
            sender: msg.sender,
            vc: msg.vc.clone(),
            x: msg.payload.1,
            v: msg.payload.2,
            ts: msg.payload.3,
        }
        .wire_size()
    }

    fn flavour() -> &'static str {
        "Wk-array CCv (Fig. 5 verbatim)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_read_returns_last_k_writes() {
        let mut r = WkArrayCc::new(0, 1, 1, 3);
        r.write(0, 0, 1);
        r.write(1, 0, 2);
        r.write(2, 0, 3);
        r.write(3, 0, 4);
        assert_eq!(r.read(0), vec![2, 3, 4]);
    }

    #[test]
    fn fig4_matches_generalized_replica() {
        use crate::causal::CausalShared;
        let adt = WindowArray::new(3, 2);
        let mut spec: CausalShared<WindowArray> = CausalShared::new_replica(0, 2, adt);
        let mut fig4 = WkArrayCc::new(0, 2, 3, 2);
        let script = [(0usize, 5u64), (1, 6), (0, 7), (2, 8), (0, 9)];
        for (i, (x, v)) in script.iter().enumerate() {
            let mut out = Vec::new();
            spec.invoke(i as u64, &WaInput::Write(*x, *v), &mut out);
            fig4.write(i as u64, *x, *v);
        }
        let spec_state = spec.local_state();
        for x in 0..3 {
            assert_eq!(spec_state[x * 2..(x + 1) * 2], fig4.read(x));
        }
    }

    #[test]
    fn fig5_insert_sorts_by_timestamp() {
        let mut r = WkArrayCcv::new(0, 1, 1, 3);
        // apply out of timestamp order directly
        r.apply(0, 30, Timestamp::new(3, 0));
        r.apply(0, 10, Timestamp::new(1, 0));
        r.apply(0, 20, Timestamp::new(2, 0));
        assert_eq!(r.read(0), vec![10, 20, 30]);
    }

    #[test]
    fn fig5_discards_values_older_than_window() {
        let mut r = WkArrayCcv::new(0, 1, 1, 2);
        r.apply(0, 10, Timestamp::new(10, 0));
        r.apply(0, 20, Timestamp::new(20, 0));
        // older than both cells: y stays 0, value discarded
        r.apply(0, 5, Timestamp::new(1, 1));
        assert_eq!(r.read(0), vec![10, 20]);
    }

    #[test]
    fn fig5_two_replicas_converge() {
        let mut a = WkArrayCcv::new(0, 2, 1, 2);
        let mut b = WkArrayCcv::new(1, 2, 1, 2);
        let ma = a.write(0, 0, 1);
        let mb = b.write(1, 0, 2);
        b.receive(ma);
        a.receive(mb);
        assert_eq!(a.read(0), b.read(0));
        // tie on vtime=1 broken by pid: p0's write first
        assert_eq!(a.read(0), vec![1, 2]);
    }

    #[test]
    fn fig5_matches_generalized_convergent_replica() {
        use crate::convergent::ConvergentShared;
        let adt = WindowArray::new(2, 3);
        let mut spec: ConvergentShared<WindowArray> = ConvergentShared::new_replica(0, 2, adt);
        let mut spec1: ConvergentShared<WindowArray> = ConvergentShared::new_replica(1, 2, adt);
        let mut f0 = WkArrayCcv::new(0, 2, 2, 3);
        let mut f1 = WkArrayCcv::new(1, 2, 2, 3);

        // concurrent writes on both replicas, then full exchange
        let mut env_spec = Vec::new();
        let mut env_fig = Vec::new();
        for (ev, (p, x, v)) in [(0usize, 0usize, 1u64), (1, 0, 2), (0, 1, 3), (1, 1, 4)]
            .iter()
            .enumerate()
        {
            let mut o = Vec::new();
            if *p == 0 {
                spec.invoke(ev as u64, &WaInput::Write(*x, *v), &mut o);
                env_spec.push((0usize, o));
                let m = f0.write(ev as u64, *x, *v);
                env_fig.push((0usize, m));
            } else {
                spec1.invoke(ev as u64, &WaInput::Write(*x, *v), &mut o);
                env_spec.push((1usize, o));
                let m = f1.write(ev as u64, *x, *v);
                env_fig.push((1usize, m));
            }
        }
        for (from, outs) in env_spec {
            for m in outs {
                let Outgoing::Broadcast(env) = m else {
                    panic!()
                };
                if from == 0 {
                    spec1.on_deliver(0, env, &mut Vec::new(), &mut Vec::new(), &mut Vec::new());
                } else {
                    spec.on_deliver(1, env, &mut Vec::new(), &mut Vec::new(), &mut Vec::new());
                }
            }
        }
        for (from, env) in env_fig {
            if from == 0 {
                f1.receive(env);
            } else {
                f0.receive(env);
            }
        }
        assert_eq!(spec.local_state(), f0.local_state());
        assert_eq!(spec1.local_state(), f1.local_state());
        assert_eq!(f0.local_state(), f1.local_state());
    }

    #[test]
    fn fig5_k0_is_total_noop() {
        let mut r = WkArrayCcv::new(0, 1, 1, 0);
        r.apply(0, 5, Timestamp::new(1, 0));
        assert_eq!(r.read(0), Vec::<Value>::new());
    }

    #[test]
    fn wire_sizes_are_exact() {
        let mut cc = WkArrayCc::new(0, 3, 1, 2);
        let m = cc.write(0, 0, 7);
        let sz = Replica::<WindowArray>::msg_size(&cc, &m);
        assert_eq!(sz, 2 + 2 + 8 * 3 + 4 + 8);
        let mut ccv = WkArrayCcv::new(0, 3, 1, 2);
        let m = ccv.write(0, 0, 7);
        let sz2 = Replica::<WindowArray>::msg_size(&ccv, &m);
        assert_eq!(sz2, sz + 10);
    }
}
