//! [`PramShared`]: pipelined-consistency baseline over FIFO broadcast.
//!
//! Identical to [`crate::causal::CausalShared`] except that effects are
//! replicated through a FIFO broadcast: each sender's updates apply in
//! send order, but *cross-sender* causality is not enforced. The
//! replica is wait-free and satisfies PC (PRAM generalized, Def. 6),
//! but not WCC: an answer can be applied before its question at a third
//! replica (the anomaly the `message_forum` example demonstrates).

use crate::replica::{stamped_size, InvokeOutcome, Outgoing, Replica, Stamped};
use cbm_adt::Adt;
use cbm_net::broadcast::{FifoBroadcast, FifoMsg};
use cbm_net::NodeId;

/// A pipelined-consistent replica of any ADT.
#[derive(Debug, Clone)]
pub struct PramShared<T: Adt> {
    adt: T,
    state: T::State,
    bcast: FifoBroadcast<Stamped<T::Input>>,
}

impl<T: Adt> Replica<T> for PramShared<T> {
    type Msg = FifoMsg<Stamped<T::Input>>;

    fn new_replica(me: NodeId, n: usize, adt: T) -> Self {
        let state = adt.initial();
        PramShared {
            adt,
            state,
            bcast: FifoBroadcast::new(me, n),
        }
    }

    fn invoke(
        &mut self,
        event: u64,
        input: &T::Input,
        out: &mut Vec<Outgoing<Self::Msg>>,
    ) -> InvokeOutcome<T::Output> {
        let output = self.adt.output(&self.state, input);
        if self.adt.is_update(input) {
            self.state = self.adt.transition(&self.state, input);
            let msg = self.bcast.broadcast(Stamped {
                event,
                input: input.clone(),
            });
            out.push(Outgoing::Broadcast(msg));
        }
        InvokeOutcome::Done(output)
    }

    fn on_deliver(
        &mut self,
        _from: NodeId,
        msg: Self::Msg,
        _out: &mut Vec<Outgoing<Self::Msg>>,
        _completed: &mut Vec<(u64, T::Output)>,
        applied: &mut Vec<u64>,
    ) {
        for m in self.bcast.on_receive(msg) {
            self.state = self.adt.transition(&self.state, &m.payload.input);
            applied.push(m.payload.event);
        }
    }

    fn local_state(&self) -> T::State {
        self.state.clone()
    }

    fn msg_size(&self, _msg: &Self::Msg) -> usize {
        // sender (2) + seq (8) + stamped payload
        2 + 8 + stamped_size(16)
    }

    fn flavour() -> &'static str {
        "FIFO (PC baseline)"
    }
}

impl<T: Adt> PramShared<T> {
    /// Evaluate a query locally without recording.
    pub fn peek(&self, input: &T::Input) -> T::Output {
        self.adt.output(&self.state, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbm_adt::window::{WaInput, WaOutput, WindowArray};

    type Rep = PramShared<WindowArray>;

    #[test]
    fn per_sender_order_is_respected() {
        let mut a: Rep = Rep::new_replica(0, 2, WindowArray::new(1, 2));
        let mut b: Rep = Rep::new_replica(1, 2, WindowArray::new(1, 2));
        let mut out = Vec::new();
        a.invoke(0, &WaInput::Write(0, 1), &mut out);
        a.invoke(1, &WaInput::Write(0, 2), &mut out);
        // deliver in reverse: FIFO layer re-orders
        let envs: Vec<_> = out
            .into_iter()
            .map(|o| match o {
                Outgoing::Broadcast(e) => e,
                _ => panic!(),
            })
            .collect();
        b.on_deliver(
            0,
            envs[1].clone(),
            &mut Vec::new(),
            &mut Vec::new(),
            &mut Vec::new(),
        );
        assert_eq!(b.peek(&WaInput::Read(0)), WaOutput::Window(vec![0, 0]));
        let mut applied = Vec::new();
        b.on_deliver(
            0,
            envs[0].clone(),
            &mut Vec::new(),
            &mut Vec::new(),
            &mut applied,
        );
        assert_eq!(applied, vec![0, 1]);
        assert_eq!(b.peek(&WaInput::Read(0)), WaOutput::Window(vec![1, 2]));
    }

    #[test]
    fn cross_sender_causality_not_enforced() {
        // p0 writes Q; p1 sees it, writes A; p2 can apply A before Q —
        // the WCC anomaly that distinguishes PC from CC.
        let mut p0: Rep = Rep::new_replica(0, 3, WindowArray::new(1, 2));
        let mut p1: Rep = Rep::new_replica(1, 3, WindowArray::new(1, 2));
        let mut p2: Rep = Rep::new_replica(2, 3, WindowArray::new(1, 2));

        let mut out_q = Vec::new();
        p0.invoke(0, &WaInput::Write(0, 1), &mut out_q);
        let Outgoing::Broadcast(q) = out_q.pop().unwrap() else {
            panic!()
        };
        p1.on_deliver(
            0,
            q.clone(),
            &mut Vec::new(),
            &mut Vec::new(),
            &mut Vec::new(),
        );

        let mut out_a = Vec::new();
        p1.invoke(1, &WaInput::Write(0, 2), &mut out_a);
        let Outgoing::Broadcast(a) = out_a.pop().unwrap() else {
            panic!()
        };

        // p2 receives the answer first — and applies it immediately
        let mut applied = Vec::new();
        p2.on_deliver(1, a, &mut Vec::new(), &mut Vec::new(), &mut applied);
        assert_eq!(
            applied,
            vec![1],
            "FIFO applies the answer before the question"
        );
        assert_eq!(p2.peek(&WaInput::Read(0)), WaOutput::Window(vec![0, 2]));
        p2.on_deliver(0, q, &mut Vec::new(), &mut Vec::new(), &mut applied);
        assert_eq!(p2.peek(&WaInput::Read(0)), WaOutput::Window(vec![2, 1]));
    }
}
