//! Window-stream consensus (§2.1): a window stream of size `k` has
//! consensus number `k`.
//!
//! "If `k` processes write their proposed values in a sequentially
//! consistent window stream and then return the oldest written value
//! (different from the default value), they will all return the same
//! value." The oldest non-default entry of the window is the first
//! write in the common total order: because the window holds the last
//! `k` writes and at most `k` writes ever happen, no proposal is ever
//! shifted out before every process has read.
//!
//! [`solve_consensus`] runs exactly that protocol over the
//! sequentially consistent baseline ([`crate::seq::SeqShared`]) and
//! returns each process's decision. [`causal_attempt`] runs the same
//! protocol over the wait-free causally consistent object instead —
//! with message delays, processes can read *before* receiving each
//! other's writes and decide differently, illustrating why wait-free
//! causal objects cannot solve consensus (and, per the FLP-flavoured
//! argument of §3.2, why PC and EC cannot be combined).

use crate::causal::CausalShared;
use crate::cluster::{Cluster, Script, ScriptOp};
use crate::seq::SeqShared;
use cbm_adt::window::{WaInput, WaOutput, WindowArray};
use cbm_adt::Value;
use cbm_history::EventId;
use cbm_net::latency::LatencyModel;

/// Decisions of a consensus run: `decisions[p]` is what process `p`
/// decided, or `None` if it saw no proposal (cannot happen after its
/// own write).
pub type Decisions = Vec<Option<Value>>;

fn consensus_script(proposals: &[Value]) -> Script<WaInput> {
    let ops = proposals
        .iter()
        .map(|&v| {
            vec![
                ScriptOp {
                    think: 1,
                    input: WaInput::Write(0, v),
                },
                ScriptOp {
                    think: 1,
                    input: WaInput::Read(0),
                },
            ]
        })
        .collect();
    Script::new(ops)
}

fn decide(window: &[Value]) -> Option<Value> {
    window.iter().copied().find(|&v| v != 0)
}

fn extract_decisions(history: &cbm_history::History<WaInput, WaOutput>, n: usize) -> Decisions {
    let mut decisions = vec![None; n];
    for e in history.events() {
        let l = history.label(e);
        if let (WaInput::Read(0), Some(WaOutput::Window(w))) = (&l.input, &l.output) {
            let p = history.proc_of(e).expect("scripted events have processes");
            decisions[p.idx()] = decide(w);
        }
    }
    decisions
}

/// Solve `k`-consensus among `proposals.len()` processes with a
/// sequentially consistent window stream of size `k = proposals.len()`.
///
/// All proposals must be non-default (≠ 0). Returns per-process
/// decisions; the consensus properties (validity, agreement,
/// termination) are guaranteed and asserted in tests.
pub fn solve_consensus(proposals: &[Value], latency: LatencyModel, seed: u64) -> Decisions {
    assert!(
        proposals.iter().all(|&v| v != 0),
        "proposals must be non-default"
    );
    let n = proposals.len();
    let adt = WindowArray::new(1, n);
    let cluster: Cluster<WindowArray, SeqShared<WindowArray>> = Cluster::new(n, adt, latency, seed);
    let res = cluster.run(consensus_script(proposals));
    extract_decisions(&res.history, n)
}

/// Run the same protocol over the wait-free causally consistent object.
///
/// Returns `(decisions, agreed)`. With non-trivial latencies the
/// processes usually disagree: each reads its own proposal first —
/// the impossibility the consensus-number argument predicts.
pub fn causal_attempt(proposals: &[Value], latency: LatencyModel, seed: u64) -> (Decisions, bool) {
    assert!(proposals.iter().all(|&v| v != 0));
    let n = proposals.len();
    let adt = WindowArray::new(1, n);
    let cluster: Cluster<WindowArray, CausalShared<WindowArray>> =
        Cluster::new(n, adt, latency, seed);
    let res = cluster.run(consensus_script(proposals));
    let decisions = extract_decisions(&res.history, n);
    let agreed = decisions.windows(2).all(|w| w[0] == w[1]);
    (decisions, agreed)
}

/// The first write event in a history (diagnostics for the example).
pub fn first_write(history: &cbm_history::History<WaInput, WaOutput>) -> Option<EventId> {
    history
        .events()
        .find(|e| matches!(history.label(*e).input, WaInput::Write(..)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc_consensus_satisfies_agreement_validity_termination() {
        for seed in 0..20 {
            let proposals = vec![11, 22, 33, 44];
            let decisions = solve_consensus(&proposals, LatencyModel::Uniform(1, 40), seed);
            // termination: everyone decided
            assert!(decisions.iter().all(|d| d.is_some()));
            // agreement
            let first = decisions[0];
            assert!(
                decisions.iter().all(|d| *d == first),
                "seed {seed}: disagreement {decisions:?}"
            );
            // validity
            assert!(proposals.contains(&first.unwrap()));
        }
    }

    #[test]
    fn sc_consensus_works_for_two_processes() {
        let decisions = solve_consensus(&[5, 9], LatencyModel::Constant(10), 3);
        assert_eq!(decisions[0], decisions[1]);
    }

    #[test]
    fn causal_attempt_violates_agreement_under_latency() {
        // with slow links each process reads only its own proposal
        let (decisions, agreed) = causal_attempt(&[7, 8, 9], LatencyModel::Constant(1_000), 1);
        assert!(!agreed, "expected disagreement, got {decisions:?}");
        // each decided its own proposal
        assert_eq!(decisions, vec![Some(7), Some(8), Some(9)]);
    }

    #[test]
    fn causal_attempt_can_agree_when_lucky() {
        // instant links: everyone sees everything before reading
        let (_, agreed) = causal_attempt(&[7, 8], LatencyModel::Constant(1), 2);
        // with think=1 and latency=1 the read may still beat the
        // delivery; just assert the call runs and returns decisions
        let _ = agreed;
    }

    #[test]
    fn decide_picks_oldest_non_default() {
        assert_eq!(decide(&[0, 0, 5, 7]), Some(5));
        assert_eq!(decide(&[1, 2, 3]), Some(1));
        assert_eq!(decide(&[0, 0, 0]), None);
    }
}
