//! The replica abstraction shared by every implementation flavour.
//!
//! A replica is a deterministic state machine driven by two stimuli:
//! local **invocations** (the shared-object operations of §6.1) and
//! network **deliveries**. It emits outgoing messages and operation
//! completions; it never blocks. Wait-freedom is then a *property* of
//! a flavour — `invoke` returning [`InvokeOutcome::Done`] — rather than
//! an assumption baked into the driver, which lets the same
//! [`crate::cluster::Cluster`] measure wait-free causal objects and the
//! blocking sequentially-consistent baseline side by side.

use cbm_adt::Adt;
use cbm_net::NodeId;

/// An application payload stamped with the history event id assigned at
/// invocation — how recorded executions tie deliveries back to events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamped<I> {
    /// Arena event id (assigned by the recorder).
    pub event: u64,
    /// The operation input.
    pub input: I,
}

/// Where to send an emitted message.
#[derive(Debug, Clone)]
pub enum Outgoing<M> {
    /// Send to every other replica.
    Broadcast(M),
    /// Send point-to-point (the sequencer baseline needs this).
    To(NodeId, M),
}

/// Result of an invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvokeOutcome<O> {
    /// Completed locally (wait-free flavours always return this).
    Done(O),
    /// Will complete when the network cooperates; the token is the
    /// stamped event id, echoed by a later completion.
    Pending(u64),
}

impl<O> InvokeOutcome<O> {
    /// Extract the output of a completed invocation.
    pub fn unwrap_done(self) -> O {
        match self {
            InvokeOutcome::Done(o) => o,
            InvokeOutcome::Pending(id) => {
                panic!("operation {id} is pending; flavour is not wait-free")
            }
        }
    }

    /// Did the invocation complete locally?
    pub fn is_done(&self) -> bool {
        matches!(self, InvokeOutcome::Done(_))
    }
}

/// A replica of a shared object of type `T`.
pub trait Replica<T: Adt> {
    /// Network message type of this flavour.
    type Msg: Clone;

    /// Create the replica for process `me` in a cluster of `n`.
    fn new_replica(me: NodeId, n: usize, adt: T) -> Self;

    /// Invoke an operation. `out` receives messages to transmit.
    ///
    /// The `event` id stamps broadcast effects so recorded executions
    /// can reconstruct the delivery relation.
    fn invoke(
        &mut self,
        event: u64,
        input: &T::Input,
        out: &mut Vec<Outgoing<Self::Msg>>,
    ) -> InvokeOutcome<T::Output>;

    /// Deliver a network message.
    ///
    /// * `out` — messages to transmit (protocol forwards);
    /// * `completed` — operations that just completed: `(event id,
    ///   output)`;
    /// * `applied` — event ids whose side effect was just applied to
    ///   the local state, in application order (recorder input).
    fn on_deliver(
        &mut self,
        from: NodeId,
        msg: Self::Msg,
        out: &mut Vec<Outgoing<Self::Msg>>,
        completed: &mut Vec<(u64, T::Output)>,
        applied: &mut Vec<u64>,
    );

    /// Snapshot of the local abstract state (convergence checks).
    fn local_state(&self) -> T::State;

    /// Approximate wire size of a message in bytes (metrics).
    fn msg_size(&self, msg: &Self::Msg) -> usize;

    /// Is this flavour wait-free (invocations always complete locally)?
    fn wait_free() -> bool {
        true
    }

    /// For arbitrated flavours: the event ids of all known updates in
    /// arbitration (timestamp) order — the `≤` witness of Def. 12.
    fn arbitration_hint(&self) -> Option<Vec<u64>> {
        None
    }

    /// Human-readable flavour name for reports.
    fn flavour() -> &'static str;
}

/// Rough serialized size of a stamped input (metrics only: 8-byte event
/// id + caller-estimated input size).
pub fn stamped_size(input_size: usize) -> usize {
    8 + input_size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_done_returns_output() {
        let o: InvokeOutcome<u32> = InvokeOutcome::Done(7);
        assert!(o.is_done());
        assert_eq!(o.unwrap_done(), 7);
    }

    #[test]
    #[should_panic(expected = "pending")]
    fn unwrap_done_panics_on_pending() {
        let o: InvokeOutcome<u32> = InvokeOutcome::Pending(3);
        assert!(!o.is_done());
        let _ = o.unwrap_done();
    }

    #[test]
    fn stamped_size_adds_event_id() {
        assert_eq!(stamped_size(12), 20);
    }
}
