//! [`EcShared`]: eventual-consistency baseline — timestamp arbitration
//! *without* causal delivery.
//!
//! Structurally the generalized Fig. 5 replica
//! ([`crate::convergent::ConvergentShared`]) minus the causal
//! broadcast: updates carry Lamport timestamps and are merged into an
//! arbitrated log, but arrive unordered. Replicas still converge (same
//! log ⇒ same state: the arbitration order is delivery-independent),
//! so the flavour is eventually consistent — but it is **not** weakly
//! causally consistent: an effect can be applied before its cause, so
//! a replica can observe an answer without its question (the anomaly
//! separating EC from CCv on Fig. 1, demonstrated in the tests below
//! and the `message_forum` example).

use crate::convergent::ArbUpdate;
use crate::replica::{stamped_size, InvokeOutcome, Outgoing, Replica, Stamped};
use cbm_adt::Adt;
use cbm_net::clock::{LamportClock, Timestamp};
use cbm_net::NodeId;

/// An eventually consistent replica of any ADT (arbitrated log over
/// unordered reliable broadcast).
#[derive(Debug, Clone)]
pub struct EcShared<T: Adt> {
    adt: T,
    me: NodeId,
    clock: LamportClock,
    log: Vec<ArbUpdate<T::Input>>,
    state: T::State,
    dirty: bool,
}

impl<T: Adt> EcShared<T> {
    fn rebuild(&mut self) {
        if !self.dirty {
            return;
        }
        let mut s = self.adt.initial();
        for up in &self.log {
            s = self.adt.transition(&s, &up.op.input);
        }
        self.state = s;
        self.dirty = false;
    }

    fn insert(&mut self, up: ArbUpdate<T::Input>) {
        let pos = self.log.partition_point(|e| e.ts < up.ts);
        if pos == self.log.len() && !self.dirty {
            self.state = self.adt.transition(&self.state, &up.op.input);
            self.log.push(up);
        } else {
            self.log.insert(pos, up);
            self.dirty = true;
        }
    }

    /// Number of updates merged.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The arbitration sequence (event ids in timestamp order).
    pub fn arbitration(&self) -> Vec<u64> {
        self.log.iter().map(|u| u.op.event).collect()
    }

    /// Evaluate a query on the current fold without recording.
    pub fn peek(&mut self, input: &T::Input) -> T::Output {
        self.rebuild();
        self.adt.output(&self.state, input)
    }
}

impl<T: Adt> Replica<T> for EcShared<T> {
    type Msg = ArbUpdate<T::Input>;

    fn new_replica(me: NodeId, _n: usize, adt: T) -> Self {
        let state = adt.initial();
        EcShared {
            adt,
            me,
            clock: LamportClock::new(),
            log: Vec::new(),
            state,
            dirty: false,
        }
    }

    fn invoke(
        &mut self,
        event: u64,
        input: &T::Input,
        out: &mut Vec<Outgoing<Self::Msg>>,
    ) -> InvokeOutcome<T::Output> {
        self.rebuild();
        let output = self.adt.output(&self.state, input);
        if self.adt.is_update(input) {
            let ts = Timestamp::new(self.clock.tick(), self.me);
            let up = ArbUpdate {
                ts,
                op: Stamped {
                    event,
                    input: input.clone(),
                },
            };
            self.insert(up.clone());
            out.push(Outgoing::Broadcast(up));
        }
        InvokeOutcome::Done(output)
    }

    fn on_deliver(
        &mut self,
        _from: NodeId,
        msg: Self::Msg,
        _out: &mut Vec<Outgoing<Self::Msg>>,
        _completed: &mut Vec<(u64, T::Output)>,
        applied: &mut Vec<u64>,
    ) {
        // no causal gate: merge immediately
        self.clock.observe(msg.ts.time);
        applied.push(msg.op.event);
        self.insert(msg);
    }

    fn local_state(&self) -> T::State {
        let mut s = self.adt.initial();
        for up in &self.log {
            s = self.adt.transition(&s, &up.op.input);
        }
        s
    }

    fn msg_size(&self, _msg: &Self::Msg) -> usize {
        // timestamp (10) + stamped payload; no vector clock at all
        10 + stamped_size(16)
    }

    fn flavour() -> &'static str {
        "arbitrated log, unordered (EC baseline)"
    }

    fn arbitration_hint(&self) -> Option<Vec<u64>> {
        Some(self.arbitration())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbm_adt::log::{AppendLog, LogInput, LogOutput};
    use cbm_adt::window::{WaInput, WaOutput, WindowArray};

    #[test]
    fn replicas_converge_without_causal_delivery() {
        let mut a: EcShared<WindowArray> = EcShared::new_replica(0, 2, WindowArray::new(1, 2));
        let mut b: EcShared<WindowArray> = EcShared::new_replica(1, 2, WindowArray::new(1, 2));
        let mut oa = Vec::new();
        let mut ob = Vec::new();
        a.invoke(0, &WaInput::Write(0, 1), &mut oa);
        b.invoke(1, &WaInput::Write(0, 2), &mut ob);
        let Outgoing::Broadcast(ma) = oa.pop().unwrap() else {
            panic!()
        };
        let Outgoing::Broadcast(mb) = ob.pop().unwrap() else {
            panic!()
        };
        b.on_deliver(0, ma, &mut Vec::new(), &mut Vec::new(), &mut Vec::new());
        a.on_deliver(1, mb, &mut Vec::new(), &mut Vec::new(), &mut Vec::new());
        assert_eq!(a.local_state(), b.local_state());
        assert_eq!(a.peek(&WaInput::Read(0)), WaOutput::Window(vec![1, 2]));
    }

    #[test]
    fn answer_can_be_observed_without_its_question() {
        // p0 appends Q; p1 reads it and appends A; p2 receives A only.
        // Under EC the log at p2 contains the answer without the
        // question — a WCC violation that CausalShared cannot exhibit.
        let mut p0: EcShared<AppendLog> = EcShared::new_replica(0, 3, AppendLog);
        let mut p1: EcShared<AppendLog> = EcShared::new_replica(1, 3, AppendLog);
        let mut p2: EcShared<AppendLog> = EcShared::new_replica(2, 3, AppendLog);

        let mut oq = Vec::new();
        p0.invoke(0, &LogInput::Append(100), &mut oq); // question
        let Outgoing::Broadcast(q) = oq.pop().unwrap() else {
            panic!()
        };
        p1.on_deliver(
            0,
            q.clone(),
            &mut Vec::new(),
            &mut Vec::new(),
            &mut Vec::new(),
        );
        assert_eq!(p1.peek(&LogInput::Read), LogOutput::Entries(vec![100]));

        let mut oa = Vec::new();
        p1.invoke(1, &LogInput::Append(200), &mut oa); // answer
        let Outgoing::Broadcast(a) = oa.pop().unwrap() else {
            panic!()
        };

        // p2 receives only the answer
        p2.on_deliver(1, a, &mut Vec::new(), &mut Vec::new(), &mut Vec::new());
        assert_eq!(
            p2.peek(&LogInput::Read),
            LogOutput::Entries(vec![200]),
            "answer visible without its question"
        );
        // ... and heals once the question arrives (arbitration sorts it first)
        p2.on_deliver(0, q, &mut Vec::new(), &mut Vec::new(), &mut Vec::new());
        assert_eq!(p2.peek(&LogInput::Read), LogOutput::Entries(vec![100, 200]));
    }

    #[test]
    fn smaller_messages_than_causal_flavours() {
        let ec: EcShared<WindowArray> = EcShared::new_replica(0, 16, WindowArray::new(1, 1));
        let up = ArbUpdate {
            ts: Timestamp::ZERO,
            op: Stamped {
                event: 0,
                input: WaInput::Write(0, 0),
            },
        };
        // EC carries no vector clock: constant size regardless of n
        assert_eq!(ec.msg_size(&up), 10 + 24);
    }
}
