//! Seeded workload generators for the figure harnesses and benches.

use crate::cluster::{Script, ScriptOp};
use cbm_adt::memory::MemInput;
use cbm_adt::queue::QInput;
use cbm_adt::window::WaInput;
use cbm_adt::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a window-array workload.
#[derive(Debug, Clone, Copy)]
pub struct WindowWorkload {
    /// Number of processes.
    pub procs: usize,
    /// Operations per process.
    pub ops_per_proc: usize,
    /// Number of streams `K`.
    pub streams: usize,
    /// Probability that an operation is a write (0.0–1.0).
    pub write_ratio: f64,
    /// Maximum think time between operations.
    pub max_think: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WindowWorkload {
    fn default() -> Self {
        WindowWorkload {
            procs: 3,
            ops_per_proc: 20,
            streams: 2,
            write_ratio: 0.5,
            max_think: 20,
            seed: 42,
        }
    }
}

/// Generate a window-array script. Written values are globally unique
/// (process-tagged counters), which keeps recorded histories usable for
/// reads-from analyses.
pub fn window_script(cfg: &WindowWorkload) -> Script<WaInput> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let ops = (0..cfg.procs)
        .map(|p| {
            let mut counter = 0u64;
            (0..cfg.ops_per_proc)
                .map(|_| {
                    let think = rng.gen_range(1..=cfg.max_think.max(1));
                    let input = if rng.gen_bool(cfg.write_ratio.clamp(0.0, 1.0)) {
                        counter += 1;
                        let v = (p as Value + 1) * 1_000_000 + counter;
                        WaInput::Write(rng.gen_range(0..cfg.streams.max(1)), v)
                    } else {
                        WaInput::Read(rng.gen_range(0..cfg.streams.max(1)))
                    };
                    ScriptOp { think, input }
                })
                .collect()
        })
        .collect();
    Script::new(ops)
}

/// Generate a memory script with globally distinct written values (the
/// hypothesis of Prop. 4 and of the session-guarantee checkers).
pub fn memory_script(
    procs: usize,
    ops_per_proc: usize,
    registers: usize,
    write_ratio: f64,
    max_think: u64,
    seed: u64,
) -> Script<MemInput> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ops = (0..procs)
        .map(|p| {
            let mut counter = 0u64;
            (0..ops_per_proc)
                .map(|_| {
                    let think = rng.gen_range(1..=max_think.max(1));
                    let input = if rng.gen_bool(write_ratio.clamp(0.0, 1.0)) {
                        counter += 1;
                        let v = (p as Value + 1) * 1_000_000 + counter;
                        MemInput::Write(rng.gen_range(0..registers.max(1)), v)
                    } else {
                        MemInput::Read(rng.gen_range(0..registers.max(1)))
                    };
                    ScriptOp { think, input }
                })
                .collect()
        })
        .collect();
    Script::new(ops)
}

/// Generate a producer/consumer queue script: `producers` processes
/// push unique values, the rest pop.
pub fn queue_script(
    procs: usize,
    producers: usize,
    ops_per_proc: usize,
    max_think: u64,
    seed: u64,
) -> Script<QInput> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ops = (0..procs)
        .map(|p| {
            let mut counter = 0u64;
            (0..ops_per_proc)
                .map(|_| {
                    let think = rng.gen_range(1..=max_think.max(1));
                    let input = if p < producers {
                        counter += 1;
                        QInput::Push((p as Value + 1) * 1_000_000 + counter)
                    } else {
                        QInput::Pop
                    };
                    ScriptOp { think, input }
                })
                .collect()
        })
        .collect();
    Script::new(ops)
}

/// A write-everything-then-read-everything script used by convergence
/// experiments: every process writes `writes` values, then issues one
/// trailing read per stream after a long quiescence gap.
pub fn quiescent_script(
    procs: usize,
    writes: usize,
    streams: usize,
    gap: u64,
    seed: u64,
) -> Script<WaInput> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ops = (0..procs)
        .map(|p| {
            let mut v: Vec<ScriptOp<WaInput>> = (0..writes)
                .map(|i| ScriptOp {
                    think: rng.gen_range(1..=5),
                    input: WaInput::Write(
                        rng.gen_range(0..streams.max(1)),
                        (p * writes + i) as Value + 1,
                    ),
                })
                .collect();
            for x in 0..streams {
                v.push(ScriptOp {
                    think: if x == 0 { gap } else { 1 },
                    input: WaInput::Read(x),
                });
            }
            v
        })
        .collect();
    Script::new(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_script_is_deterministic() {
        let cfg = WindowWorkload::default();
        let a = window_script(&cfg);
        let b = window_script(&cfg);
        for (x, y) in a.ops.iter().zip(&b.ops) {
            for (o1, o2) in x.iter().zip(y) {
                assert_eq!(o1.input, o2.input);
                assert_eq!(o1.think, o2.think);
            }
        }
    }

    #[test]
    fn window_script_writes_are_unique() {
        let cfg = WindowWorkload {
            procs: 4,
            ops_per_proc: 50,
            write_ratio: 1.0,
            ..Default::default()
        };
        let s = window_script(&cfg);
        let mut seen = std::collections::HashSet::new();
        for p in &s.ops {
            for op in p {
                if let WaInput::Write(_, v) = op.input {
                    assert!(seen.insert(v), "duplicate value {v}");
                }
            }
        }
        assert_eq!(seen.len(), 200);
    }

    #[test]
    fn memory_script_values_distinct() {
        let s = memory_script(3, 30, 4, 0.7, 10, 9);
        let mut seen = std::collections::HashSet::new();
        for p in &s.ops {
            for op in p {
                if let MemInput::Write(_, v) = op.input {
                    assert!(seen.insert(v));
                }
            }
        }
    }

    #[test]
    fn queue_script_splits_roles() {
        let s = queue_script(4, 2, 10, 5, 3);
        for (p, ops) in s.ops.iter().enumerate() {
            for op in ops {
                match op.input {
                    QInput::Push(_) => assert!(p < 2),
                    QInput::Pop => assert!(p >= 2),
                }
            }
        }
    }

    #[test]
    fn quiescent_script_ends_with_reads() {
        let s = quiescent_script(2, 5, 3, 1000, 1);
        for ops in &s.ops {
            let tail = &ops[ops.len() - 3..];
            assert!(tail.iter().all(|o| matches!(o.input, WaInput::Read(_))));
            assert_eq!(ops.len(), 8);
        }
    }
}
