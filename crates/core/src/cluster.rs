//! The simulation driver: runs any replica flavour over the
//! deterministic network, records the resulting distributed history
//! with its ground-truth causal witness, and measures the costs.
//!
//! A [`Cluster`] owns `n` replicas and a `cbm-net` [`SimNet`]. The
//! driver enforces the paper's process model — each process is
//! *sequential*, invoking its next operation only after the previous
//! one completed (plus a think time) — and interleaves network
//! deliveries by simulated time. Because both the network and the
//! workload are seeded, every run is replayable.
//!
//! The run result carries everything the checkers need:
//!
//! * the [`History`] (Def. 4) of the execution;
//! * the **delivered-before causal order** (the witness for Defs. 8/9);
//! * per-replica apply orders and, for arbitrated flavours, the
//!   timestamp total order (the witness for Def. 12);
//! * cost metrics: per-operation latency (zero for wait-free flavours,
//!   round-trips for the SC baseline), message and byte counts, and
//!   convergence data.

use crate::replica::{InvokeOutcome, Outgoing, Replica};
use cbm_adt::Adt;
use cbm_history::{EventId, History, HistoryBuilder, Relation};
use cbm_net::fault::{Fault, FaultPlan};
use cbm_net::latency::LatencyModel;
use cbm_net::sim::{NetStats, SimNet};
use cbm_net::NodeId;
use std::collections::HashMap;

/// One scripted operation: wait `think` ticks after the previous
/// operation completes, then invoke `input`.
#[derive(Debug, Clone)]
pub struct ScriptOp<I> {
    /// Think time before the invocation.
    pub think: u64,
    /// The operation input.
    pub input: I,
}

/// A per-process operation script, with optional crash times.
#[derive(Debug, Clone)]
pub struct Script<I> {
    /// `ops[p]` = the sequential program of process `p`.
    pub ops: Vec<Vec<ScriptOp<I>>>,
    /// `crash_at[p]` = simulated time at which `p` crashes (stops
    /// invoking and receiving), if any.
    pub crash_at: Vec<Option<u64>>,
}

impl<I> Script<I> {
    /// A script with no crashes.
    pub fn new(ops: Vec<Vec<ScriptOp<I>>>) -> Self {
        let n = ops.len();
        Script {
            ops,
            crash_at: vec![None; n],
        }
    }

    /// Number of processes.
    pub fn n_procs(&self) -> usize {
        self.ops.len()
    }

    /// Total scripted operations.
    pub fn total_ops(&self) -> usize {
        self.ops.iter().map(|v| v.len()).sum()
    }
}

/// Cost metrics of a run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Completion latency per completed operation, in simulated ticks
    /// (0 = completed at invocation: wait-free).
    pub op_latencies: Vec<u64>,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Time of the last operation completion.
    pub makespan: u64,
    /// Time at which the network went quiescent.
    pub quiescent_at: u64,
    /// Did all (non-crashed) replicas hold equal states at quiescence?
    pub converged: bool,
    /// Operations still pending at the end (SC baseline under crashes).
    pub incomplete_ops: usize,
    /// Full transport statistics (drop/duplicate/parked counts,
    /// per-node drops).
    pub net: NetStats,
}

impl RunStats {
    /// Mean completion latency.
    pub fn mean_latency(&self) -> f64 {
        if self.op_latencies.is_empty() {
            0.0
        } else {
            self.op_latencies.iter().sum::<u64>() as f64 / self.op_latencies.len() as f64
        }
    }

    /// Maximum completion latency.
    pub fn max_latency(&self) -> u64 {
        self.op_latencies.iter().copied().max().unwrap_or(0)
    }
}

/// Everything a run produces.
pub struct RunResult<T: Adt> {
    /// The recorded history (events in global invocation order).
    pub history: History<T::Input, T::Output>,
    /// Delivered-before causal order (transitively closed); the
    /// witness for `verify_cc_execution`.
    pub causal: Relation,
    /// Per-replica apply orders.
    pub apply_orders: Vec<Vec<EventId>>,
    /// Per-replica own (invoked) events.
    pub own: Vec<Vec<EventId>>,
    /// Final local states of all replicas.
    pub final_states: Vec<T::State>,
    /// Arbitration order of replica 0 (arbitrated flavours only): the
    /// update part of the `≤` witness for `verify_ccv_execution`.
    pub arbitration: Option<Vec<EventId>>,
    /// The real-time interval order: `e < f` iff `e` completed before
    /// `f` was invoked (the extra constraint of linearizability; see
    /// `cbm-check::sc::check_linearizable`).
    pub realtime: Relation,
    /// Cost metrics.
    pub stats: RunStats,
}

impl<T: Adt> RunResult<T> {
    /// A total order extending `causal` (topological, update-timestamp
    /// aware callers should prefer replica arbitration); the witness
    /// `≤` for `verify_ccv_execution` on arbitrated flavours whose
    /// arbitration agrees with delivery, built from the causal witness
    /// plus the given update sequence.
    pub fn ccv_total(&self, update_arbitration: &[EventId]) -> Option<Vec<EventId>> {
        let n = self.history.len();
        let mut rel = self.causal.clone();
        let mut prev: Option<EventId> = None;
        for &u in update_arbitration {
            if let Some(p) = prev {
                if p != u {
                    rel.add_pair_closed(p.idx(), u.idx());
                }
            }
            prev = Some(u);
        }
        if !rel.is_acyclic() {
            return None;
        }
        let topo = rel.topo_order();
        Some(
            topo.into_iter()
                .map(|i| EventId(i as u32))
                .collect::<Vec<_>>(),
        )
        .filter(|v| v.len() == n)
    }
}

/// The simulation driver (see module docs).
pub struct Cluster<T: Adt, R: Replica<T>> {
    adt: T,
    net: SimNet<R::Msg>,
    replicas: Vec<R>,
}

/// Earliest of two optional times (both timed sources pending → the
/// sooner one; one pending → it; none → none).
fn opt_min(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

struct ProcState<I> {
    remaining: std::vec::IntoIter<ScriptOp<I>>,
    ready_at: u64,
    pending: Option<u64>,
    /// Mirror of the transport's crash state (the fault layer is the
    /// single source of truth; see [`Cluster::run_faulted`]).
    crashed: bool,
}

impl<T: Adt + Clone, R: Replica<T>> Cluster<T, R> {
    /// Build a cluster of `n` replicas of flavour `R` over a simulated
    /// network.
    pub fn new(n: usize, adt: T, latency: LatencyModel, seed: u64) -> Self {
        let replicas = (0..n)
            .map(|me| R::new_replica(me, n, adt.clone()))
            .collect();
        Cluster {
            adt,
            net: SimNet::new(n, latency, seed),
            replicas,
        }
    }

    /// Direct read-only access to a replica.
    pub fn replica(&self, p: NodeId) -> &R {
        &self.replicas[p]
    }

    /// Run a script to completion (all ops done or crashed, network
    /// quiescent) and return the recorded execution.
    ///
    /// Equivalent to [`Cluster::run_faulted`] with an empty
    /// [`FaultPlan`] — `Script::crash_at` entries still apply (they
    /// are routed through the fault layer).
    pub fn run(self, script: Script<T::Input>) -> RunResult<T> {
        self.run_faulted(script, FaultPlan::new())
    }

    /// Run a script under a [`FaultPlan`] (see `cbm-net::fault`).
    ///
    /// `Script::crash_at` entries are merged into the plan as
    /// [`Fault::Crash`] events, so a driver-level crash and a
    /// transport-level crash are the same thing: the transport is the
    /// single source of truth for crash state, and the driver mirrors
    /// it (a crashed process stops invoking; a recovered one resumes
    /// its remaining script). All fault events — including those later
    /// than the last delivery — participate in simulated-time
    /// ordering, so a post-quiescence heal still releases parked
    /// messages.
    pub fn run_faulted(mut self, script: Script<T::Input>, faults: FaultPlan) -> RunResult<T> {
        let n = self.replicas.len();
        assert_eq!(script.n_procs(), n, "script size must match cluster");

        let mut plan = faults;
        for (p, crash) in script.crash_at.iter().enumerate() {
            if let Some(at) = crash {
                plan.push(*at, Fault::Crash(p));
            }
        }
        let mut schedule = plan.into_schedule();

        let mut procs: Vec<ProcState<T::Input>> = script
            .ops
            .into_iter()
            .map(|ops| ProcState {
                remaining: ops.into_iter(),
                ready_at: 0,
                pending: None,
                crashed: false,
            })
            .collect();
        // peek the first think times
        let mut next_op: Vec<Option<ScriptOp<T::Input>>> =
            procs.iter_mut().map(|p| p.remaining.next()).collect();
        for (p, op) in next_op.iter().enumerate() {
            if let Some(op) = op {
                procs[p].ready_at = op.think;
            }
        }

        // recorder state
        let mut inputs: Vec<(NodeId, T::Input)> = Vec::new();
        let mut outputs: Vec<Option<T::Output>> = Vec::new();
        let mut invoke_times: Vec<u64> = Vec::new();
        let mut complete_times: Vec<Option<u64>> = Vec::new();
        let mut apply_orders: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut own: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut pending_invoked: HashMap<u64, (NodeId, u64)> = HashMap::new();
        let mut stats = RunStats::default();

        loop {
            // next invocation candidate
            let mut inv: Option<(u64, NodeId)> = None;
            for (p, st) in procs.iter().enumerate() {
                if st.crashed || st.pending.is_some() || next_op[p].is_none() {
                    continue;
                }
                if inv.is_none_or(|(t, _)| st.ready_at < t) {
                    inv = Some((st.ready_at, p));
                }
            }
            let net_time = self.net.peek_time();

            // faults fire before any action at the same instant
            let next_action_time = opt_min(inv.map(|(ti, _)| ti), net_time);
            match (next_action_time, schedule.peek_time()) {
                (None, None) => break,
                (ta, Some(tf)) if ta.is_none_or(|ta| tf <= ta) => {
                    self.net.advance_time(tf);
                    schedule.apply_due(&mut self.net, tf);
                    // mirror transport crash state into the driver
                    for (p, st) in procs.iter_mut().enumerate() {
                        let down = self.net.is_crashed(p);
                        if st.crashed && !down {
                            // recovered: resume the script from now.
                            // An operation that was pending at crash
                            // time is abandoned (its completion was
                            // dropped with the crash; it stays in
                            // `incomplete_ops`) so the script can
                            // continue.
                            st.ready_at = st.ready_at.max(tf);
                            if st.pending.take().is_some() {
                                next_op[p] = st.remaining.next();
                                if let Some(next) = &next_op[p] {
                                    st.ready_at = tf + next.think.max(1);
                                }
                            }
                        }
                        st.crashed = down;
                    }
                    continue;
                }
                _ => {}
            }

            match (inv, net_time) {
                (Some((ti, p)), tn) if tn.is_none_or(|tn| ti <= tn) => {
                    // invoke next op of p at time ti
                    let op = next_op[p].take().unwrap();
                    self.net.advance_time(ti);
                    let event = inputs.len() as u64;
                    inputs.push((p, op.input.clone()));
                    outputs.push(None);
                    invoke_times.push(ti);
                    complete_times.push(None);
                    own[p].push(event);

                    let mut out = Vec::new();
                    let outcome = self.replicas[p].invoke(event, &op.input, &mut out);
                    self.route(p, out, &mut stats);
                    match outcome {
                        InvokeOutcome::Done(o) => {
                            outputs[event as usize] = Some(o);
                            complete_times[event as usize] = Some(ti);
                            apply_orders[p].push(event);
                            stats.op_latencies.push(0);
                            stats.makespan = stats.makespan.max(ti);
                            // schedule next op
                            next_op[p] = procs[p].remaining.next();
                            if let Some(next) = &next_op[p] {
                                procs[p].ready_at = ti + next.think.max(1);
                            }
                        }
                        InvokeOutcome::Pending(id) => {
                            procs[p].pending = Some(id);
                            pending_invoked.insert(id, (p, ti));
                        }
                    }
                }
                (_, Some(_)) => {
                    // deliver next message, bounded by the next
                    // invocation/fault time: peek_time() is only a
                    // lower bound (the top entry may be dropped or
                    // parked), so an unbounded pop could return a
                    // delivery from beyond an action that must fire
                    // first
                    let limit = opt_min(inv.map(|(ti, _)| ti), schedule.peek_time());
                    let Some(d) = self.net.pop_due(limit) else {
                        continue;
                    };
                    let to = d.to;
                    let mut out = Vec::new();
                    let mut completed = Vec::new();
                    let mut applied = Vec::new();
                    self.replicas[to].on_deliver(
                        d.from,
                        d.msg,
                        &mut out,
                        &mut completed,
                        &mut applied,
                    );
                    self.route(to, out, &mut stats);
                    apply_orders[to].extend(applied);
                    for (ev, o) in completed {
                        outputs[ev as usize] = Some(o);
                        complete_times[ev as usize] = Some(d.time);
                        if let Some((p, t_inv)) = pending_invoked.remove(&ev) {
                            let lat = d.time.saturating_sub(t_inv);
                            stats.op_latencies.push(lat);
                            stats.makespan = stats.makespan.max(d.time);
                            // advance the script only if the process
                            // is still waiting on this operation (a
                            // crash-recovery may have abandoned it and
                            // moved on already)
                            if procs[p].pending == Some(ev) {
                                procs[p].pending = None;
                                next_op[p] = procs[p].remaining.next();
                                if let Some(next) = &next_op[p] {
                                    procs[p].ready_at = d.time + next.think.max(1);
                                }
                            }
                        }
                    }
                }
                (None, None) => break,
                _ => unreachable!(),
            }
        }

        stats.quiescent_at = self.net.now();
        stats.incomplete_ops = pending_invoked.len();
        let net_stats = self.net.stats();
        stats.msgs_sent = net_stats.msgs_sent;
        stats.bytes_sent = net_stats.bytes_sent;
        stats.net = net_stats;

        let final_states: Vec<T::State> = self.replicas.iter().map(|r| r.local_state()).collect();
        let arbitration = self.replicas.first().and_then(|r| {
            r.arbitration_hint()
                .map(|v| v.into_iter().map(|e| EventId(e as u32)).collect())
        });
        let live_states: Vec<&T::State> = final_states
            .iter()
            .enumerate()
            .filter(|(p, _)| !procs[*p].crashed)
            .map(|(_, s)| s)
            .collect();
        stats.converged = live_states.windows(2).all(|w| w[0] == w[1]);

        // build the history (events in id order; per-process chains)
        let mut builder: HistoryBuilder<T::Input, T::Output> = HistoryBuilder::new();
        for (i, (p, input)) in inputs.iter().enumerate() {
            match &outputs[i] {
                Some(o) => builder.op(*p, input.clone(), o.clone()),
                None => builder.hidden(*p, input.clone()),
            };
        }
        let history = builder.build();

        // delivered-before causal order: prefix pairs at each replica
        let m = history.len();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for p in 0..n {
            let own_set: std::collections::HashSet<u64> = own[p].iter().copied().collect();
            let mut prefix: Vec<u64> = Vec::new();
            for &e in &apply_orders[p] {
                if own_set.contains(&e) {
                    for &g in &prefix {
                        edges.push((g as usize, e as usize));
                    }
                }
                prefix.push(e);
            }
        }
        let causal =
            Relation::from_edges(m, &edges).expect("delivered-before relation must be acyclic");

        // real-time interval order: e < f iff complete(e) < invoke(f)
        let mut rt_edges: Vec<(usize, usize)> = Vec::new();
        for (e, ct) in complete_times.iter().enumerate() {
            let Some(tc) = ct else { continue };
            for (f, ti) in invoke_times.iter().enumerate() {
                if e != f && tc < ti {
                    rt_edges.push((e, f));
                }
            }
        }
        let realtime = Relation::from_edges(m, &rt_edges).expect("real time is acyclic");

        RunResult {
            history,
            causal,
            apply_orders: apply_orders
                .into_iter()
                .map(|v| v.into_iter().map(|e| EventId(e as u32)).collect())
                .collect(),
            own: own
                .into_iter()
                .map(|v| v.into_iter().map(|e| EventId(e as u32)).collect())
                .collect(),
            final_states,
            arbitration,
            realtime,
            stats,
        }
    }

    fn route(&mut self, from: NodeId, out: Vec<Outgoing<R::Msg>>, stats: &mut RunStats) {
        let _ = stats;
        for o in out {
            match o {
                Outgoing::Broadcast(m) => {
                    let size = self.replicas[from].msg_size(&m);
                    self.net.broadcast(from, m, size);
                }
                Outgoing::To(to, m) => {
                    let size = self.replicas[from].msg_size(&m);
                    self.net.send(from, to, m, size);
                }
            }
        }
    }

    /// The ADT this cluster replicates.
    pub fn adt(&self) -> &T {
        &self.adt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::CausalShared;
    use crate::convergent::ConvergentShared;
    use crate::seq::SeqShared;
    use cbm_adt::window::{WaInput, WindowArray};

    fn write_read_script(n: usize, writes_per_proc: usize) -> Script<WaInput> {
        let ops = (0..n)
            .map(|p| {
                let mut v = Vec::new();
                for i in 0..writes_per_proc {
                    v.push(ScriptOp {
                        think: 3,
                        input: WaInput::Write(0, (p * 100 + i) as u64 + 1),
                    });
                    v.push(ScriptOp {
                        think: 2,
                        input: WaInput::Read(0),
                    });
                }
                v
            })
            .collect();
        Script::new(ops)
    }

    #[test]
    fn causal_cluster_runs_wait_free() {
        let c: Cluster<WindowArray, CausalShared<WindowArray>> =
            Cluster::new(3, WindowArray::new(1, 2), LatencyModel::Uniform(5, 50), 1);
        let res = c.run(write_read_script(3, 4));
        assert_eq!(res.history.len(), 3 * 8);
        assert_eq!(res.stats.incomplete_ops, 0);
        // wait-free: all latencies zero
        assert!(res.stats.op_latencies.iter().all(|&l| l == 0));
        // every write is broadcast to 2 peers
        assert_eq!(res.stats.msgs_sent, (3 * 4 * 2) as u64);
    }

    #[test]
    fn convergent_cluster_converges() {
        let c: Cluster<WindowArray, ConvergentShared<WindowArray>> =
            Cluster::new(4, WindowArray::new(2, 3), LatencyModel::Uniform(1, 80), 7);
        let res = c.run(write_read_script(4, 5));
        assert!(
            res.stats.converged,
            "CCv replicas must converge at quiescence"
        );
    }

    #[test]
    fn causal_cluster_may_not_converge_but_history_is_recorded() {
        let c: Cluster<WindowArray, CausalShared<WindowArray>> =
            Cluster::new(2, WindowArray::new(1, 2), LatencyModel::Uniform(1, 30), 3);
        let res = c.run(write_read_script(2, 3));
        // history structure: 2 processes, 6 events each
        assert_eq!(res.history.n_procs(), 2);
        assert_eq!(res.history.process_events(cbm_history::ProcId(0)).len(), 6);
        // causal order contains program order
        assert!(res.causal.contains(res.history.prog()));
    }

    #[test]
    fn seq_cluster_ops_pay_latency() {
        let c: Cluster<WindowArray, SeqShared<WindowArray>> =
            Cluster::new(3, WindowArray::new(1, 2), LatencyModel::Constant(10), 5);
        let res = c.run(write_read_script(3, 2));
        assert_eq!(res.stats.incomplete_ops, 0);
        // non-sequencer ops take ≥ 2 hops of 10 ticks
        let max = res.stats.max_latency();
        assert!(max >= 20, "expected blocking latency, got {max}");
        // all replicas end identical (it is an RSM)
        assert!(res.stats.converged);
    }

    #[test]
    fn crashes_stop_a_process_without_blocking_others() {
        let mut script = write_read_script(3, 4);
        script.crash_at[2] = Some(1);
        let c: Cluster<WindowArray, CausalShared<WindowArray>> =
            Cluster::new(3, WindowArray::new(1, 2), LatencyModel::Uniform(5, 20), 11);
        let res = c.run(script);
        // p2 invoked nothing (crashed before its first op at think=3)
        assert_eq!(res.own[2].len(), 0);
        // p0 and p1 completed everything, wait-free
        assert_eq!(res.own[0].len(), 8);
        assert_eq!(res.own[1].len(), 8);
        assert_eq!(res.stats.incomplete_ops, 0);
    }

    #[test]
    fn crash_while_pending_resumes_script_after_recovery() {
        use cbm_net::fault::{Fault, FaultPlan};
        // SC baseline: non-sequencer ops block on the sequencer round
        // trip, so p1's first op is pending when it crashes at t=5.
        // After recovery it must abandon that op and invoke the rest
        // of its script instead of stalling forever.
        let script: Script<WaInput> = Script::new(vec![
            vec![
                ScriptOp {
                    think: 1,
                    input: WaInput::Write(0, 1),
                },
                ScriptOp {
                    think: 1,
                    input: WaInput::Write(0, 2),
                },
            ],
            vec![
                ScriptOp {
                    think: 1,
                    input: WaInput::Write(0, 10),
                },
                ScriptOp {
                    think: 1,
                    input: WaInput::Write(0, 20),
                },
            ],
        ]);
        let plan = FaultPlan::new()
            .at(5, Fault::Crash(1))
            .at(50, Fault::Recover(1));
        let c: Cluster<WindowArray, SeqShared<WindowArray>> =
            Cluster::new(2, WindowArray::new(1, 2), LatencyModel::Constant(10), 3);
        let res = c.run_faulted(script, plan);
        // both of p1's ops were invoked (the second one post-recovery)
        assert_eq!(res.own[1].len(), 2, "recovered process resumed its script");
        // the abandoned first op never completed
        assert!(res.stats.incomplete_ops >= 1);
        // the sequencer side finished everything
        assert_eq!(res.own[0].len(), 2);
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed: u64| {
            let c: Cluster<WindowArray, ConvergentShared<WindowArray>> = Cluster::new(
                3,
                WindowArray::new(1, 2),
                LatencyModel::Uniform(1, 60),
                seed,
            );
            let res = c.run(write_read_script(3, 3));
            (
                res.stats.msgs_sent,
                res.final_states.clone(),
                res.history.len(),
            )
        };
        assert_eq!(run(9), run(9));
    }
}

#[cfg(test)]
mod result_tests {
    use super::*;
    use crate::causal::CausalShared;
    use crate::convergent::ConvergentShared;
    use cbm_adt::window::{WaInput, WindowArray};

    fn tiny_run() -> RunResult<WindowArray> {
        let c: Cluster<WindowArray, ConvergentShared<WindowArray>> =
            Cluster::new(2, WindowArray::new(1, 2), LatencyModel::Constant(5), 1);
        c.run(Script::new(vec![
            vec![ScriptOp {
                think: 2,
                input: WaInput::Write(0, 1),
            }],
            vec![
                ScriptOp {
                    think: 3,
                    input: WaInput::Write(0, 2),
                },
                ScriptOp {
                    think: 50,
                    input: WaInput::Read(0),
                },
            ],
        ]))
    }

    #[test]
    fn ccv_total_covers_all_events_and_extends_causal() {
        let res = tiny_run();
        let arb = res.arbitration.clone().expect("arbitrated flavour");
        let total = res.ccv_total(&arb).expect("consistent arbitration");
        assert_eq!(total.len(), res.history.len());
        let mut pos = vec![0usize; res.history.len()];
        for (i, e) in total.iter().enumerate() {
            pos[e.idx()] = i;
        }
        for e in 0..res.history.len() {
            for p in res.causal.past(e).iter() {
                assert!(pos[p] < pos[e]);
            }
        }
    }

    #[test]
    fn ccv_total_rejects_contradictory_arbitration() {
        let res = tiny_run();
        let arb = res.arbitration.clone().unwrap();
        if arb.len() >= 2 {
            // reversing a causally ordered pair must be rejected when it
            // contradicts delivered-before (w(0,1) delivered before the
            // read that followed it on the same process)
            let reversed: Vec<EventId> = arb.iter().rev().copied().collect();
            // either rejected (cycle) or still consistent if the pair was
            // concurrent; both outcomes are legal, but the function must
            // not panic and must preserve the length invariant.
            if let Some(total) = res.ccv_total(&reversed) {
                assert_eq!(total.len(), res.history.len());
            }
        }
    }

    #[test]
    fn run_stats_latency_helpers() {
        let mut stats = RunStats::default();
        assert_eq!(stats.mean_latency(), 0.0);
        assert_eq!(stats.max_latency(), 0);
        stats.op_latencies = vec![2, 4, 6];
        assert_eq!(stats.mean_latency(), 4.0);
        assert_eq!(stats.max_latency(), 6);
    }

    #[test]
    fn script_helpers() {
        let s: Script<WaInput> = Script::new(vec![
            vec![ScriptOp {
                think: 1,
                input: WaInput::Read(0),
            }],
            vec![],
        ]);
        assert_eq!(s.n_procs(), 2);
        assert_eq!(s.total_ops(), 1);
    }

    #[test]
    fn realtime_is_empty_for_simultaneous_histories() {
        // one op per process at identical times: nothing completes
        // before anything else is invoked except by think offsets
        let c: Cluster<WindowArray, CausalShared<WindowArray>> =
            Cluster::new(2, WindowArray::new(1, 1), LatencyModel::Constant(1000), 2);
        let res = c.run(Script::new(vec![
            vec![ScriptOp {
                think: 5,
                input: WaInput::Write(0, 1),
            }],
            vec![ScriptOp {
                think: 5,
                input: WaInput::Write(0, 2),
            }],
        ]));
        // both invoked at t=5 and completed at t=5: concurrent in real time
        assert!(res.realtime.concurrent(0, 1));
    }
}
