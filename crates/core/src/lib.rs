//! # cbm-core — Causal consistency beyond memory
//!
//! The primary contribution of Perrin, Mostéfaoui & Jard (PPoPP 2016)
//! as a library: wait-free replicated shared objects for **arbitrary
//! abstract data types**, implemented over reliable broadcast layers,
//! together with the baselines needed to situate them on the Fig. 1
//! hierarchy.
//!
//! | replica | consistency | broadcast layer | paper |
//! |---------|-------------|-----------------|-------|
//! | [`CausalShared`](causal::CausalShared) | causal consistency (CC) | causal | Fig. 4, generalized; Prop. 6 |
//! | [`ConvergentShared`](convergent::ConvergentShared) | causal convergence (CCv) | causal + Lamport arbitration | Fig. 5, generalized; Prop. 7 |
//! | [`WkArrayCc`](wk_array::WkArrayCc) | CC for `W_k^K` | causal | Fig. 4, verbatim |
//! | [`WkArrayCcv`](wk_array::WkArrayCcv) | CCv for `W_k^K` | causal | Fig. 5, verbatim |
//! | [`PramShared`](pram::PramShared) | pipelined consistency (PC) | FIFO | §1 baseline |
//! | [`EcShared`](ec::EcShared) | eventual consistency (arbitration without causal delivery) | unordered | §1/§5 baseline |
//! | [`SeqShared`](seq::SeqShared) | sequential consistency (SC) | total order (sequencer) | §1 motivation: *not* wait-free |
//!
//! All wait-free replicas complete every operation locally, without any
//! network round-trip — the defining property of §6.1. The sequential
//! baseline's operations block until their global slot is delivered;
//! the latency gap between the two is exactly the paper's motivation
//! and is measured by `cbm-bench`.
//!
//! [`cluster::Cluster`] drives any replica flavour over the
//! deterministic simulator, records the resulting [`cbm_history`]
//! history with its ground-truth causal witness, and hands both to the
//! checkers (`cbm-check::verify`) — this is how Propositions 6 and 7
//! are validated on thousands of randomized executions. Runs can be
//! fault-injected through [`cluster::Cluster::run_faulted`] with a
//! `cbm-net` `FaultPlan` (partitions, loss, duplication, latency
//! degradation, crash/recover, clock skew); the fault architecture and
//! the scenario subsystem built on it (`cbm-sim`) are described in
//! `docs/SIMULATION.md`.

//! ## Example
//!
//! ```
//! use cbm_adt::window::{WaInput, WindowArray};
//! use cbm_core::causal::CausalShared;
//! use cbm_core::cluster::{Cluster, Script, ScriptOp};
//! use cbm_net::latency::LatencyModel;
//!
//! let adt = WindowArray::new(1, 2);
//! let cluster: Cluster<WindowArray, CausalShared<WindowArray>> =
//!     Cluster::new(2, adt, LatencyModel::Uniform(1, 40), 7);
//! let script = Script::new(vec![
//!     vec![ScriptOp { think: 3, input: WaInput::Write(0, 5) }],
//!     vec![ScriptOp { think: 50, input: WaInput::Read(0) }],
//! ]);
//! let result = cluster.run(script);
//! assert_eq!(result.history.len(), 2);
//! // p1's read happened 50 ticks in: the write (delay ≤ 40) is visible
//! use cbm_adt::window::WaOutput;
//! let read = result.history.label(cbm_history::EventId(1));
//! assert_eq!(read.output, Some(WaOutput::Window(vec![0, 5])));
//! ```
//!
//! (See `examples/quickstart.rs` for the end-to-end version with
//! witness verification.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal;
pub mod cluster;
pub mod consensus;
pub mod convergent;
pub mod ec;
pub mod pram;
pub mod replica;
pub mod seq;
pub mod wk_array;
pub mod workload;

pub use replica::{InvokeOutcome, Outgoing, Replica, Stamped};
