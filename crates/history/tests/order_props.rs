//! Property-based laws of the order/bitset machinery that every
//! checker leans on: transitive closure idempotence, linear-extension
//! soundness, projection laws, maximal-chain coverage.

use cbm_history::{BitSet, HistoryBuilder, Relation};
use proptest::prelude::*;

/// Random DAG edges over `n` nodes (forward edges only, so acyclic).
fn arb_dag(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..n, 0..n), 0..n * 2).prop_map(move |pairs| {
        pairs
            .into_iter()
            .filter_map(|(a, b)| {
                if a < b {
                    Some((a, b))
                } else if b < a {
                    Some((b, a))
                } else {
                    None
                }
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn closure_is_idempotent(edges in arb_dag(8)) {
        let r = Relation::from_edges(8, &edges).unwrap();
        let mut again = r.clone();
        again.close_transitive();
        prop_assert_eq!(r, again);
    }

    #[test]
    fn closure_is_transitive(edges in arb_dag(8)) {
        let r = Relation::from_edges(8, &edges).unwrap();
        for a in 0..8 {
            for b in 0..8 {
                for c in 0..8 {
                    if r.lt(a, b) && r.lt(b, c) {
                        prop_assert!(r.lt(a, c));
                    }
                }
            }
        }
    }

    #[test]
    fn linear_extensions_respect_the_order(edges in arb_dag(6)) {
        let r = Relation::from_edges(6, &edges).unwrap();
        let mut count = 0;
        r.linear_extensions(200, |perm| {
            count += 1;
            let mut pos = [0usize; 6];
            for (i, &e) in perm.iter().enumerate() {
                pos[e] = i;
            }
            for a in 0..6 {
                for b in 0..6 {
                    if r.lt(a, b) {
                        assert!(pos[a] < pos[b]);
                    }
                }
            }
            true
        });
        prop_assert!(count >= 1);
    }

    #[test]
    fn topo_order_is_a_linear_extension(edges in arb_dag(10)) {
        let r = Relation::from_edges(10, &edges).unwrap();
        let topo = r.topo_order();
        prop_assert_eq!(topo.len(), 10);
        let mut pos = [0usize; 10];
        for (i, &e) in topo.iter().enumerate() {
            pos[e] = i;
        }
        for a in 0..10 {
            for b in 0..10 {
                if r.lt(a, b) {
                    prop_assert!(pos[a] < pos[b]);
                }
            }
        }
    }

    #[test]
    fn add_pair_preserves_closure_and_containment(edges in arb_dag(7), a in 0usize..7, b in 0usize..7) {
        let r = Relation::from_edges(7, &edges).unwrap();
        prop_assume!(a != b && !r.lt(b, a));
        let mut r2 = r.clone();
        r2.add_pair_closed(a, b);
        prop_assert!(r2.is_acyclic());
        prop_assert!(r2.contains(&r));
        prop_assert!(r2.lt(a, b));
        let mut closed = r2.clone();
        closed.close_transitive();
        prop_assert_eq!(r2, closed);
    }

    #[test]
    fn cover_edges_regenerate_the_order(edges in arb_dag(8)) {
        let r = Relation::from_edges(8, &edges).unwrap();
        let covers = r.cover_edges();
        let r2 = Relation::from_edges(8, &covers).unwrap();
        prop_assert_eq!(r, r2);
    }

    #[test]
    fn bitset_union_intersection_laws(xs in prop::collection::vec(0usize..64, 0..20),
                                      ys in prop::collection::vec(0usize..64, 0..20)) {
        let mut a = BitSet::new(64);
        for x in &xs { a.insert(*x); }
        let mut b = BitSet::new(64);
        for y in &ys { b.insert(*y); }
        let mut union = a.clone();
        union.union_with(&b);
        let mut inter = a.clone();
        inter.intersect_with(&b);
        // |A ∪ B| + |A ∩ B| = |A| + |B|
        prop_assert_eq!(union.count() + inter.count(), a.count() + b.count());
        prop_assert!(inter.is_subset(&a) && inter.is_subset(&b));
        prop_assert!(a.is_subset(&union) && b.is_subset(&union));
    }
}

proptest! {
    /// Projection keeps exactly the requested events and preserves the
    /// induced order; maximal chains cover every event.
    #[test]
    fn projection_and_chains(ops0 in 1usize..4, ops1 in 1usize..4, keep_mask in 0u32..64) {
        let mut b: HistoryBuilder<u32, u32> = HistoryBuilder::new();
        for i in 0..ops0 {
            b.op(0, i as u32, 0);
        }
        for i in 0..ops1 {
            b.op(1, 100 + i as u32, 0);
        }
        let h = b.build();
        let n = h.len();

        // chains cover all events
        let chains = h.maximal_chains(64);
        let mut covered = BitSet::new(n);
        for c in &chains {
            for e in c {
                covered.insert(e.idx());
            }
        }
        prop_assert_eq!(covered.count(), n);

        // projection
        let mut keep = BitSet::new(n);
        for e in 0..n {
            if keep_mask & (1 << e) != 0 {
                keep.insert(e);
            }
        }
        let visible = BitSet::new(n);
        let (ph, mapping) = h.project(&keep, &visible);
        prop_assert_eq!(ph.len(), keep.count());
        // order preserved through the mapping
        for (i, a) in mapping.iter().enumerate() {
            for (j, bb) in mapping.iter().enumerate() {
                prop_assert_eq!(
                    h.prog_lt(*a, *bb),
                    ph.prog_lt(cbm_history::EventId(i as u32), cbm_history::EventId(j as u32))
                );
            }
        }
        // all outputs hidden
        for e in ph.events() {
            prop_assert!(!ph.label(e).is_visible());
        }
    }
}
