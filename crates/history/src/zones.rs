//! The six time zones of Fig. 2.
//!
//! Given a history augmented with a causal order, every event `f` falls,
//! relative to a reference event `e`, into exactly one of: the program
//! past/future, the causal-only past/future, the present (`e` itself) or
//! the concurrent present. "The more constraints the past imposes on the
//! present, the stronger the criterion" — the figure harness
//! `fig2_time_zones` renders these zones for each criterion.

use crate::history::History;
use crate::order::Relation;

/// Position of an event relative to a reference event (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Zone {
    /// The reference event itself.
    Present,
    /// Strict predecessor in the program order (hence also causal past).
    ProgramPast,
    /// Causal predecessor that is not a program predecessor.
    CausalPastOnly,
    /// Strict successor in the program order (hence also causal future).
    ProgramFuture,
    /// Causal successor that is not a program successor.
    CausalFutureOnly,
    /// Incomparable with the reference in both orders.
    ConcurrentPresent,
}

impl Zone {
    /// Short tag used by the renderers.
    pub fn tag(self) -> &'static str {
        match self {
            Zone::Present => "present",
            Zone::ProgramPast => "prog-past",
            Zone::CausalPastOnly => "causal-past",
            Zone::ProgramFuture => "prog-future",
            Zone::CausalFutureOnly => "causal-future",
            Zone::ConcurrentPresent => "concurrent",
        }
    }
}

/// Classify every event of `h` relative to `e` under `causal`.
///
/// `causal` must contain the program order (Definition 7); this is
/// asserted in debug builds.
pub fn classify<I: Clone, O: Clone>(h: &History<I, O>, causal: &Relation, e: usize) -> Vec<Zone> {
    debug_assert!(causal.contains(h.prog()), "not a causal order: ↦ ⊄ →");
    (0..h.len())
        .map(|f| {
            if f == e {
                Zone::Present
            } else if h.prog().lt(f, e) {
                Zone::ProgramPast
            } else if causal.lt(f, e) {
                Zone::CausalPastOnly
            } else if h.prog().lt(e, f) {
                Zone::ProgramFuture
            } else if causal.lt(e, f) {
                Zone::CausalFutureOnly
            } else {
                Zone::ConcurrentPresent
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;

    /// Two processes of three events each; the causal order adds
    /// p0.e0 → p1.e4.
    fn setup() -> (History<&'static str, u32>, Relation) {
        let mut b = HistoryBuilder::new();
        for p in 0..2 {
            for i in 0..3 {
                b.op(p, "op", i);
            }
        }
        let h = b.build();
        let mut causal = h.prog().clone();
        causal.add_pair_closed(0, 4);
        (h, causal)
    }

    #[test]
    fn zones_partition_the_history() {
        let (h, causal) = setup();
        for e in 0..h.len() {
            let zones = classify(&h, &causal, e);
            assert_eq!(zones.len(), h.len());
            assert_eq!(
                zones.iter().filter(|z| **z == Zone::Present).count(),
                1,
                "exactly one present"
            );
        }
    }

    #[test]
    fn cross_process_causal_edge_shows_up() {
        let (h, causal) = setup();
        // relative to e4 (p1, middle): e0 is causal-past-only,
        // e3 is program past, e5 is program future.
        let zones = classify(&h, &causal, 4);
        assert_eq!(zones[0], Zone::CausalPastOnly);
        assert_eq!(zones[3], Zone::ProgramPast);
        assert_eq!(zones[5], Zone::ProgramFuture);
        assert_eq!(zones[4], Zone::Present);
        // e1, e2 on p0 are concurrent with e4
        assert_eq!(zones[1], Zone::ConcurrentPresent);
        assert_eq!(zones[2], Zone::ConcurrentPresent);
    }

    #[test]
    fn causal_future_only() {
        let (h, causal) = setup();
        // relative to e0: e4 and e5 are causal-future-only; e1, e2 program future.
        let zones = classify(&h, &causal, 0);
        assert_eq!(zones[4], Zone::CausalFutureOnly);
        assert_eq!(zones[5], Zone::CausalFutureOnly);
        assert_eq!(zones[1], Zone::ProgramFuture);
        assert_eq!(zones[3], Zone::ConcurrentPresent);
    }

    #[test]
    fn with_trivial_causal_order_no_causal_only_zones() {
        let (h, _) = setup();
        let causal = h.prog().clone();
        for e in 0..h.len() {
            for z in classify(&h, &causal, e) {
                assert!(!matches!(z, Zone::CausalPastOnly | Zone::CausalFutureOnly));
            }
        }
    }

    #[test]
    fn tags_are_distinct() {
        use std::collections::HashSet;
        let all = [
            Zone::Present,
            Zone::ProgramPast,
            Zone::CausalPastOnly,
            Zone::ProgramFuture,
            Zone::CausalFutureOnly,
            Zone::ConcurrentPresent,
        ];
        let tags: HashSet<&str> = all.iter().map(|z| z.tag()).collect();
        assert_eq!(tags.len(), all.len());
    }
}
