//! Ergonomic construction of histories from sequential processes plus
//! optional cross-process program-order edges (forks/joins).

use crate::event::{EventId, Label, ProcId};
use crate::history::History;
use crate::order::Relation;

/// Builder for [`History`] values.
///
/// Events pushed on the same process index are chained in program order
/// automatically; [`HistoryBuilder::edge`] adds extra `↦` pairs for
/// non-sequential program structures (multithreaded fork/join, service
/// orchestration — §2.2 explicitly allows any partial order).
#[derive(Clone, Debug)]
pub struct HistoryBuilder<I, O> {
    labels: Vec<Label<I, O>>,
    proc_of: Vec<Option<ProcId>>,
    last_of_proc: Vec<Option<usize>>,
    edges: Vec<(usize, usize)>,
}

impl<I: Clone, O: Clone> Default for HistoryBuilder<I, O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Clone, O: Clone> HistoryBuilder<I, O> {
    /// An empty builder.
    pub fn new() -> Self {
        HistoryBuilder {
            labels: Vec::new(),
            proc_of: Vec::new(),
            last_of_proc: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Append a full operation `input/output` on process `p`.
    pub fn op(&mut self, p: usize, input: I, output: O) -> EventId {
        self.push(p, Label::op(input, output))
    }

    /// Append a hidden operation `input` on process `p`.
    pub fn hidden(&mut self, p: usize, input: I) -> EventId {
        self.push(p, Label::hidden(input))
    }

    /// Append a pre-built label on process `p`.
    pub fn push(&mut self, p: usize, label: Label<I, O>) -> EventId {
        let id = self.labels.len();
        self.labels.push(label);
        if self.last_of_proc.len() <= p {
            self.last_of_proc.resize(p + 1, None);
        }
        if let Some(prev) = self.last_of_proc[p] {
            self.edges.push((prev, id));
        }
        self.last_of_proc[p] = Some(id);
        self.proc_of.push(Some(ProcId(p as u32)));
        EventId(id as u32)
    }

    /// Append an event not assigned to any process (free point in the
    /// partial order); order it explicitly with [`HistoryBuilder::edge`].
    pub fn free(&mut self, label: Label<I, O>) -> EventId {
        let id = self.labels.len();
        self.labels.push(label);
        self.proc_of.push(None);
        EventId(id as u32)
    }

    /// Add a program-order pair `a ↦ b` across processes.
    pub fn edge(&mut self, a: EventId, b: EventId) {
        self.edges.push((a.idx(), b.idx()));
    }

    /// Number of events pushed so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// No events yet?
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Finish. Panics if the declared edges create a cycle (program
    /// orders are partial orders by Definition 4).
    pub fn build(self) -> History<I, O> {
        let n = self.labels.len();
        let prog = Relation::from_edges(n, &self.edges)
            .expect("program order must be acyclic (Definition 4)");
        let n_procs = self.last_of_proc.len();
        History::from_parts(self.labels, self.proc_of, n_procs, prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_chaining() {
        let mut b: HistoryBuilder<&str, u32> = HistoryBuilder::new();
        let a = b.op(0, "x", 1);
        let c = b.op(0, "y", 2);
        let h = b.build();
        assert!(h.prog_lt(a, c));
    }

    #[test]
    fn processes_are_independent() {
        let mut b: HistoryBuilder<&str, u32> = HistoryBuilder::new();
        let a = b.op(0, "x", 1);
        let c = b.op(3, "y", 2); // sparse process indices allowed
        let h = b.build();
        assert!(!h.prog_lt(a, c) && !h.prog_lt(c, a));
        assert_eq!(h.n_procs(), 4);
    }

    #[test]
    fn hidden_ops() {
        let mut b: HistoryBuilder<&str, u32> = HistoryBuilder::new();
        let a = b.hidden(0, "w");
        let h = b.build();
        assert!(!h.label(a).is_visible());
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn cyclic_edges_panic() {
        let mut b: HistoryBuilder<&str, u32> = HistoryBuilder::new();
        let a = b.op(0, "x", 1);
        let c = b.op(1, "y", 2);
        b.edge(a, c);
        b.edge(c, a);
        let _ = b.build();
    }

    #[test]
    fn free_events_are_unordered() {
        let mut b: HistoryBuilder<&str, u32> = HistoryBuilder::new();
        let a = b.free(Label::op("x", 1));
        let c = b.free(Label::op("y", 2));
        let h = b.build();
        assert!(h.prog().concurrent(a.idx(), c.idx()));
        assert_eq!(h.proc_of(a), None);
    }
}
