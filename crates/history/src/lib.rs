//! # cbm-history — Distributed histories as partially ordered event sets
//!
//! Implements Section 2.2 of Perrin, Mostéfaoui & Jard, *Causal
//! Consistency: Beyond Memory* (PPoPP 2016).
//!
//! A **distributed history** (Definition 4) is `H = (Σ, E, Λ, ↦)`:
//! a countable set of events `E`, a labelling `Λ : E → Σ` into
//! `Σ = (Σi × Σo) ∪ Σi` (full or *hidden* operations), and a partial
//! **program order** `↦` in which every event has a finite past. We
//! represent finite histories with an event arena ([`History`]), explicit
//! program-order edges, and precomputed reachability bitsets.
//!
//! The paper's derived notions map to:
//!
//! * processes `P_H` — maximal chains: [`History::maximal_chains`]
//!   (for histories built from sequential processes these are exactly the
//!   per-process event sequences, [`History::process_events`]);
//! * linearizations `lin(H)` — [`History::linearizations`] /
//!   [`History::is_linearization`];
//! * projection `H.π(E′, E″)` — [`History::project`] (keep `E′`, hide the
//!   outputs of events outside `E″`);
//! * re-ordering `H→` — checkers carry an explicit [`order::Relation`]
//!   alongside the history rather than materializing a new one;
//! * **causal orders** (Definition 7) — relations that contain `↦`; on
//!   finite histories the cofiniteness condition of Def. 7 is vacuous,
//!   which [`order::Relation::contains`] plus acyclicity capture.
//!
//! The [`zones`] module computes the six time zones of Fig. 2 (program
//! past/future, causal past/future, present, concurrent present) for an
//! event under a given causal order.
//!
//! ```
//! use cbm_history::HistoryBuilder;
//!
//! // Fig. 3d: p0: w(1), r/(0,1);  p1: w(2), r/(1,2)
//! let mut b: HistoryBuilder<&str, &str> = HistoryBuilder::new();
//! let w1 = b.op(0, "w(1)", "ack");
//! let r1 = b.op(0, "r", "(0,1)");
//! let w2 = b.op(1, "w(2)", "ack");
//! let h = b.build();
//!
//! assert!(h.prog_lt(w1, r1));                 // program order within p0
//! assert!(h.prog().concurrent(r1.idx(), w2.idx())); // across processes
//! assert_eq!(h.maximal_chains(16).len(), 2);  // P_H = the two processes
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod builder;
pub mod dot;
pub mod event;
pub mod hash;
pub mod history;
pub mod order;
pub mod zones;

pub use bitset::BitSet;
pub use builder::HistoryBuilder;
pub use event::{EventId, Label, ProcId};
pub use hash::{mix64, Fnv, MixHasher, NoHash, U64Map, U64Set};
pub use history::History;
pub use order::Relation;
