//! A minimal, stable FNV-1a hasher.
//!
//! `std`'s `RandomState` is seeded per process, so anything that must
//! hash identically across runs — checker memo keys, scenario run
//! fingerprints — uses this instead. One canonical copy lives here so
//! every crate hashes with the same constants.

use std::hash::Hasher;

/// FNV-1a over bytes; `Default` starts at the offset basis.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv {
    fn default() -> Self {
        Fnv(OFFSET)
    }
}

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }
}

/// Word-at-a-time mixing hasher for internal memo keys.
///
/// [`Fnv`] is byte-oriented (eight multiplies per `u64`), which is the
/// right trade for canonical, documented fingerprints but needless on
/// the search hot path, where keys only have to be well-distributed
/// and stable within a process run. This hasher folds each integer
/// write with one [`mix64`] round. Like [`Fnv`] it is deterministic
/// across runs.
#[derive(Debug, Clone)]
pub struct MixHasher(u64);

impl Default for MixHasher {
    fn default() -> Self {
        MixHasher(0x4D49_5848_4153_4845) // "MIXHASHE"
    }
}

impl Hasher for MixHasher {
    fn finish(&self) -> u64 {
        mix64(self.0)
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.0 = mix64(self.0 ^ u64::from_le_bytes(w));
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = mix64(self.0 ^ i);
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    fn write_u8(&mut self, i: u8) {
        self.write_u64(i as u64);
    }
}

/// Identity hasher for already-mixed `u64` keys.
///
/// The search memos key on 64-bit hashes that have been through
/// [`mix64`] or [`Fnv`] already; feeding those through SipHash again
/// (the `HashSet` default) costs real time on the hot path for zero
/// distribution benefit. This hasher passes the key through untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHash(u64);

impl Hasher for NoHash {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic path (unused by u64 keys, kept total for safety).
        let mut h = Fnv::default();
        h.write(bytes);
        self.0 = h.finish();
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = i;
    }
}

/// A `HashSet<u64>` that trusts its keys' existing mixing.
pub type U64Set = std::collections::HashSet<u64, std::hash::BuildHasherDefault<NoHash>>;

/// A `HashMap<u64, V>` that trusts its keys' existing mixing.
pub type U64Map<V> = std::collections::HashMap<u64, V, std::hash::BuildHasherDefault<NoHash>>;

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
///
/// The search kernels use it to derive per-event Zobrist keys and to
/// combine incrementally-maintained set hashes with state hashes into
/// one memo key. Stable across runs (no per-process seeding).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_stable_and_sensitive() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // avalanche sanity: one input bit flips many output bits
        assert!((mix64(3) ^ mix64(2)).count_ones() > 10);
    }

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(Fnv::default().finish(), OFFSET);
    }

    #[test]
    fn stable_and_input_sensitive() {
        let hash = |bytes: &[u8]| {
            let mut h = Fnv::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"abc"), hash(b"abc"));
        assert_ne!(hash(b"abc"), hash(b"abd"));
        assert_ne!(hash(b""), hash(b"\0"));
    }
}
