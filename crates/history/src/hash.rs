//! A minimal, stable FNV-1a hasher.
//!
//! `std`'s `RandomState` is seeded per process, so anything that must
//! hash identically across runs — checker memo keys, scenario run
//! fingerprints — uses this instead. One canonical copy lives here so
//! every crate hashes with the same constants.

use std::hash::Hasher;

/// FNV-1a over bytes; `Default` starts at the offset basis.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv {
    fn default() -> Self {
        Fnv(OFFSET)
    }
}

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(Fnv::default().finish(), OFFSET);
    }

    #[test]
    fn stable_and_input_sensitive() {
        let hash = |bytes: &[u8]| {
            let mut h = Fnv::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"abc"), hash(b"abc"));
        assert_ne!(hash(b"abc"), hash(b"abd"));
        assert_ne!(hash(b""), hash(b"\0"));
    }
}
