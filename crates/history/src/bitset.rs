//! Fixed-capacity bitsets over event ids.
//!
//! The consistency checkers in `cbm-check` manipulate many small sets of
//! events (pasts, downsets, frontiers) and memoise on them; a compact
//! `Vec<u64>` representation with word-wise operations keeps those inner
//! loops allocation-light and hashable.

use std::fmt;

/// A fixed-capacity set of `usize` indices backed by 64-bit words.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of valid bits (indices `0..len`).
    len: usize,
}

impl BitSet {
    /// The empty set over a universe of `len` indices.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set `{0, …, len-1}`.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// Universe size (not the cardinality; see [`BitSet::count`]).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Insert `i`. Panics if `i` is outside the universe.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Remove `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of elements.
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ∪= other` (universes must match).
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// `self ∩= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// `self ∖= other`.
    #[inline]
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Is `self ⊆ other`?
    #[inline]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Is `self ∩ other = ∅`?
    #[inline]
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterate over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Collect members into a vector (test convenience).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element + 1. Prefer
    /// [`BitSet::new`] + inserts when the universe size is known.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn out_of_universe_contains_is_false() {
        let s = BitSet::new(5);
        assert!(!s.contains(100));
    }

    #[test]
    #[should_panic]
    fn out_of_universe_insert_panics() {
        let mut s = BitSet::new(5);
        s.insert(5);
    }

    #[test]
    fn set_ops() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        a.insert(65);
        b.insert(65);
        b.insert(2);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 65]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![65]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1]);

        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(!a.is_subset(&b));
        assert!(!a.is_disjoint(&b));
        assert!(d.is_disjoint(&b));
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(66);
        assert_eq!(s.count(), 66);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn iter_order() {
        let mut s = BitSet::new(200);
        for i in [3, 199, 64, 63, 128] {
            s.insert(i);
        }
        assert_eq!(s.to_vec(), vec![3, 63, 64, 128, 199]);
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [4usize, 9, 2].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.to_vec(), vec![2, 4, 9]);
    }

    #[test]
    fn hash_and_eq_agree() {
        use std::collections::HashSet;
        let mut a = BitSet::new(64);
        a.insert(3);
        let mut b = BitSet::new(64);
        b.insert(3);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
