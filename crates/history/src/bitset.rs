//! Fixed-capacity bitsets over event ids.
//!
//! The consistency checkers in `cbm-check` manipulate many small sets of
//! events (pasts, downsets, frontiers) and memoise on them; a compact
//! word-wise representation keeps those inner loops allocation-light and
//! hashable. Universes of up to [`BitSet::INLINE_BITS`] indices — which
//! covers every paper figure and every registry scenario — are stored
//! **inline** (no heap allocation at all), so cloning and clearing the
//! sets the search kernels juggle is a couple of register moves.

use std::fmt;
use std::hash::{Hash, Hasher};

const INLINE_WORDS: usize = 2;

/// Word storage: inline for small universes, heap beyond.
#[derive(Clone)]
enum Words {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

/// A fixed-capacity set of `usize` indices backed by 64-bit words.
#[derive(Clone)]
pub struct BitSet {
    words: Words,
    /// Number of valid bits (indices `0..len`).
    len: usize,
}

impl Default for BitSet {
    fn default() -> Self {
        BitSet::new(0)
    }
}

impl BitSet {
    /// Universes of at most this many indices are stored inline
    /// (without heap allocation).
    pub const INLINE_BITS: usize = INLINE_WORDS * 64;

    #[inline]
    fn word_count(len: usize) -> usize {
        len.div_ceil(64)
    }

    /// The valid word slice (exactly `⌈len/64⌉` words).
    #[inline]
    fn words(&self) -> &[u64] {
        match &self.words {
            Words::Inline(a) => &a[..Self::word_count(self.len)],
            Words::Heap(v) => v,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.words {
            Words::Inline(a) => &mut a[..Self::word_count(self.len)],
            Words::Heap(v) => v,
        }
    }

    /// The empty set over a universe of `len` indices.
    pub fn new(len: usize) -> Self {
        let words = if len <= Self::INLINE_BITS {
            Words::Inline([0; INLINE_WORDS])
        } else {
            Words::Heap(vec![0; Self::word_count(len)])
        };
        BitSet { words, len }
    }

    /// The full set `{0, …, len-1}`.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        let tail = len % 64;
        let nwords = Self::word_count(len);
        let ws = s.words_mut();
        for w in ws.iter_mut() {
            *w = !0;
        }
        if tail != 0 {
            ws[nwords - 1] = (1u64 << tail) - 1;
        }
        s
    }

    /// Build from an iterator with a **known** universe size — the
    /// preferred constructor when callers already know `universe`
    /// (unlike `FromIterator`, which must size the set from the data).
    /// Panics if an element is outside the universe.
    pub fn with_capacity_from<I: IntoIterator<Item = usize>>(iter: I, universe: usize) -> Self {
        let mut s = Self::new(universe);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Universe size (not the cardinality; see [`BitSet::count`]).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Insert `i`. Panics if `i` is outside the universe.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words_mut()[i / 64] |= 1 << (i % 64);
    }

    /// Remove `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words_mut()[i / 64] &= !(1 << (i % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words()[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of elements.
    #[inline]
    pub fn count(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// `self ∪= other` (universes must match).
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a |= *b;
        }
    }

    /// `self ∩= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= *b;
        }
    }

    /// `self ∖= other`.
    #[inline]
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= !*b;
        }
    }

    /// Is `self ⊆ other`?
    #[inline]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & !b == 0)
    }

    /// Is `self ∩ mask ⊆ other`? Word-parallel and allocation-free —
    /// the search kernels use this for "are all *retained* predecessors
    /// done" without materializing the intersection.
    #[inline]
    pub fn subset_of_with_mask(&self, other: &BitSet, mask: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        debug_assert_eq!(self.len, mask.len);
        self.words()
            .iter()
            .zip(other.words())
            .zip(mask.words())
            .all(|((a, b), m)| a & m & !b == 0)
    }

    /// `|self ∪ other|` without materializing the union.
    #[inline]
    pub fn union_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words()
            .iter()
            .zip(other.words())
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// Is `self ∩ other = ∅`?
    #[inline]
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & b == 0)
    }

    /// Overwrite `self` with `other`'s contents. Universes must match;
    /// never allocates.
    #[inline]
    pub fn clear_and_copy_from(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        self.words_mut().copy_from_slice(other.words());
    }

    /// Iterate over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        Self::iter_words(self.words())
    }

    /// Iterate over `self ∖ other` in increasing order, without
    /// materializing the difference.
    pub fn iter_difference<'a>(&'a self, other: &'a BitSet) -> impl Iterator<Item = usize> + 'a {
        debug_assert_eq!(self.len, other.len);
        self.words()
            .iter()
            .zip(other.words())
            .enumerate()
            .flat_map(|(wi, (&a, &b))| {
                let mut w = a & !b;
                std::iter::from_fn(move || {
                    if w == 0 {
                        None
                    } else {
                        let bit = w.trailing_zeros() as usize;
                        w &= w - 1;
                        Some(wi * 64 + bit)
                    }
                })
            })
    }

    fn iter_words(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
        words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Collect members into a vector (test convenience).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words_mut().iter_mut().for_each(|w| *w = 0);
    }
}

impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words() == other.words()
    }
}

impl Eq for BitSet {}

impl Hash for BitSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        for &w in self.words() {
            w.hash(state);
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element + 1 in a single pass,
    /// growing as elements arrive. Prefer [`BitSet::with_capacity_from`]
    /// when the universe size is known.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new(0);
        for i in iter {
            if i >= s.len {
                s.grow_to(i + 1);
            }
            s.insert(i);
        }
        s
    }
}

impl BitSet {
    /// Enlarge the universe to `new_len`, preserving members.
    fn grow_to(&mut self, new_len: usize) {
        debug_assert!(new_len > self.len);
        let nwords = Self::word_count(new_len);
        match &mut self.words {
            Words::Inline(a) if new_len <= Self::INLINE_BITS => {
                let _ = a; // capacity already present
            }
            Words::Inline(a) => {
                let mut v = a.to_vec();
                v.resize(nwords, 0);
                self.words = Words::Heap(v);
            }
            Words::Heap(v) => v.resize(nwords, 0),
        }
        self.len = new_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn out_of_universe_contains_is_false() {
        let s = BitSet::new(5);
        assert!(!s.contains(100));
    }

    #[test]
    #[should_panic]
    fn out_of_universe_insert_panics() {
        let mut s = BitSet::new(5);
        s.insert(5);
    }

    #[test]
    fn set_ops() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        a.insert(65);
        b.insert(65);
        b.insert(2);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 65]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![65]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1]);

        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(!a.is_subset(&b));
        assert!(!a.is_disjoint(&b));
        assert!(d.is_disjoint(&b));
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(66);
        assert_eq!(s.count(), 66);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn full_exact_word_boundary() {
        let s = BitSet::full(128);
        assert_eq!(s.count(), 128);
        assert!(s.contains(127));
        let t = BitSet::full(192);
        assert_eq!(t.count(), 192);
        assert!(t.contains(191));
    }

    #[test]
    fn iter_order() {
        let mut s = BitSet::new(200);
        for i in [3, 199, 64, 63, 128] {
            s.insert(i);
        }
        assert_eq!(s.to_vec(), vec![3, 63, 64, 128, 199]);
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [4usize, 9, 2].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.to_vec(), vec![2, 4, 9]);
    }

    #[test]
    fn from_iterator_grows_past_inline() {
        let s: BitSet = [1usize, 300, 5].into_iter().collect();
        assert_eq!(s.capacity(), 301);
        assert_eq!(s.to_vec(), vec![1, 5, 300]);
    }

    #[test]
    fn with_capacity_from_keeps_universe() {
        let s = BitSet::with_capacity_from([2usize, 4], 40);
        assert_eq!(s.capacity(), 40);
        assert_eq!(s.to_vec(), vec![2, 4]);
    }

    #[test]
    fn subset_of_with_mask_matches_naive() {
        let mut a = BitSet::new(130);
        let mut b = BitSet::new(130);
        let mut m = BitSet::new(130);
        for i in [1, 7, 64, 127, 129] {
            a.insert(i);
        }
        for i in [1, 64] {
            b.insert(i);
        }
        for i in [1, 7, 64] {
            m.insert(i);
        }
        // a ∩ m = {1, 7, 64}; 7 ∉ b → not subset
        assert!(!a.subset_of_with_mask(&b, &m));
        m.remove(7);
        assert!(a.subset_of_with_mask(&b, &m));
        let naive = {
            let mut x = a.clone();
            x.intersect_with(&m);
            x.is_subset(&b)
        };
        assert!(naive);
    }

    #[test]
    fn union_count_matches_materialized_union() {
        let mut a = BitSet::new(150);
        let mut b = BitSet::new(150);
        for i in [0, 63, 64, 100] {
            a.insert(i);
        }
        for i in [63, 149] {
            b.insert(i);
        }
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(a.union_count(&b), u.count());
        assert_eq!(a.union_count(&b), 5);
    }

    #[test]
    fn iter_difference_matches_materialized_difference() {
        let mut a = BitSet::new(140);
        let mut b = BitSet::new(140);
        for i in [0, 5, 64, 128, 139] {
            a.insert(i);
        }
        for i in [5, 128] {
            b.insert(i);
        }
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(a.iter_difference(&b).collect::<Vec<_>>(), d.to_vec());
    }

    #[test]
    fn clear_and_copy_from_copies() {
        let mut a = BitSet::new(70);
        a.insert(3);
        let mut b = BitSet::new(70);
        b.insert(65);
        a.clear_and_copy_from(&b);
        assert_eq!(a.to_vec(), vec![65]);
    }

    #[test]
    fn hash_and_eq_agree() {
        use std::collections::HashSet;
        let mut a = BitSet::new(64);
        a.insert(3);
        let mut b = BitSet::new(64);
        b.insert(3);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn inline_and_heap_behave_identically() {
        for len in [1usize, 63, 64, 65, 128, 129, 300] {
            let mut s = BitSet::new(len);
            s.insert(0);
            s.insert(len - 1);
            assert_eq!(s.count(), if len == 1 { 1 } else { 2 });
            assert!(s.contains(len - 1));
            let t = s.clone();
            assert_eq!(s, t);
            s.remove(0);
            assert_ne!(s, t);
        }
    }
}
