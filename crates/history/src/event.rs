//! Events and labels.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an event within a [`crate::History`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId(pub u32);

impl EventId {
    /// The arena index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifier of a sequential process (a maximal chain in the common
/// disjoint-chains case).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The process index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A label `Λ(e) ∈ Σ = (Σi × Σo) ∪ Σi`.
///
/// `output = Some(σo)` is a full operation `σi/σo`; `output = None` is a
/// hidden operation `σi` whose return value is unconstrained
/// (Definition 2). Recorded executions always carry full labels; hidden
/// labels arise from projections and from workloads that model
/// fire-and-forget updates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Label<I, O> {
    /// The input symbol `σi` (the method and its arguments).
    pub input: I,
    /// The output symbol `σo`, or `None` when hidden.
    pub output: Option<O>,
}

impl<I, O> Label<I, O> {
    /// A full operation `σi/σo`.
    pub fn op(input: I, output: O) -> Self {
        Label {
            input,
            output: Some(output),
        }
    }

    /// A hidden operation `σi`.
    pub fn hidden(input: I) -> Self {
        Label {
            input,
            output: None,
        }
    }

    /// Hide the output (projection outside `E″`).
    pub fn hide(self) -> Self {
        Label {
            input: self.input,
            output: None,
        }
    }

    /// Is the output visible?
    pub fn is_visible(&self) -> bool {
        self.output.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_constructors() {
        let l: Label<&str, u32> = Label::op("r", 7);
        assert!(l.is_visible());
        let h = l.clone().hide();
        assert!(!h.is_visible());
        assert_eq!(h.input, "r");
        let g: Label<&str, u32> = Label::hidden("w");
        assert_eq!(g.output, None);
    }

    #[test]
    fn ids_display() {
        assert_eq!(EventId(3).to_string(), "e3");
        assert_eq!(ProcId(1).to_string(), "p1");
        assert_eq!(EventId(7).idx(), 7);
    }
}
