//! The [`History`] arena: Definition 4 made concrete.

use crate::bitset::BitSet;
use crate::event::{EventId, Label, ProcId};
use crate::order::Relation;

/// A finite distributed history `H = (Σ, E, Λ, ↦)` (Definition 4).
///
/// Events live in an arena indexed by [`EventId`]; the program order `↦`
/// is stored transitively closed as a [`Relation`]. Histories built from
/// sequential processes (the common case, via
/// [`crate::HistoryBuilder`]) also carry a process assignment, but the
/// model is the paper's general one: the program order may be any
/// partial order (forks/joins, orchestrations), and *processes* are
/// recovered as the maximal chains `P_H`.
#[derive(Clone, Debug)]
pub struct History<I, O> {
    labels: Vec<Label<I, O>>,
    proc_of: Vec<Option<ProcId>>,
    n_procs: usize,
    prog: Relation,
}

impl<I: Clone, O: Clone> History<I, O> {
    /// Assemble a history from parts (used by the builder; `prog` must
    /// already be transitively closed and acyclic).
    pub(crate) fn from_parts(
        labels: Vec<Label<I, O>>,
        proc_of: Vec<Option<ProcId>>,
        n_procs: usize,
        prog: Relation,
    ) -> Self {
        debug_assert_eq!(labels.len(), prog.len());
        debug_assert!(prog.is_acyclic());
        History {
            labels,
            proc_of,
            n_procs,
            prog,
        }
    }

    /// Number of events `|E|`.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Is the history empty?
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// All event ids.
    pub fn events(&self) -> impl Iterator<Item = EventId> {
        (0..self.labels.len() as u32).map(EventId)
    }

    /// The label `Λ(e)`.
    pub fn label(&self, e: EventId) -> &Label<I, O> {
        &self.labels[e.idx()]
    }

    /// All labels, arena-ordered.
    pub fn labels(&self) -> &[Label<I, O>] {
        &self.labels
    }

    /// The (strict, transitively closed) program order `↦`.
    pub fn prog(&self) -> &Relation {
        &self.prog
    }

    /// `a ↦ b` (strictly)?
    pub fn prog_lt(&self, a: EventId, b: EventId) -> bool {
        self.prog.lt(a.idx(), b.idx())
    }

    /// The strict program past of `e` as a bitset.
    pub fn prog_past(&self, e: EventId) -> &BitSet {
        self.prog.past(e.idx())
    }

    /// The process that invoked `e`, when the history was built from
    /// sequential processes.
    pub fn proc_of(&self, e: EventId) -> Option<ProcId> {
        self.proc_of[e.idx()]
    }

    /// Number of declared processes (0 for hand-rolled partial orders).
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// Events of a declared process, in program order.
    pub fn process_events(&self, p: ProcId) -> Vec<EventId> {
        let mut evs: Vec<EventId> = self
            .events()
            .filter(|e| self.proc_of[e.idx()] == Some(p))
            .collect();
        // within one process the program order is total: sort by it
        evs.sort_by(|a, b| {
            if self.prog_lt(*a, *b) {
                std::cmp::Ordering::Less
            } else if self.prog_lt(*b, *a) {
                std::cmp::Ordering::Greater
            } else {
                a.cmp(b)
            }
        });
        evs
    }

    /// The maximal chains `P_H` (the paper's generalized "processes"),
    /// as event-id sequences ordered along the chain.
    ///
    /// These are the maximal paths of the Hasse diagram. Enumeration is
    /// capped at `cap` chains (exponential in pathological orders; exact
    /// for the disjoint-union-of-chains histories that sequential
    /// processes produce, where it returns exactly the processes).
    pub fn maximal_chains(&self, cap: usize) -> Vec<Vec<EventId>> {
        let n = self.len();
        let covers = self.prog.cover_edges();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut has_pred = vec![false; n];
        for &(a, b) in &covers {
            succ[a].push(b);
            has_pred[b] = true;
        }
        let mut chains = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        for (start, _) in has_pred.iter().enumerate().filter(|(_, hp)| !**hp) {
            self.chains_dfs(start, &succ, &mut stack, &mut chains, cap);
            if chains.len() >= cap {
                break;
            }
        }
        chains
    }

    fn chains_dfs(
        &self,
        v: usize,
        succ: &[Vec<usize>],
        stack: &mut Vec<usize>,
        chains: &mut Vec<Vec<EventId>>,
        cap: usize,
    ) {
        if chains.len() >= cap {
            return;
        }
        stack.push(v);
        if succ[v].is_empty() {
            chains.push(stack.iter().map(|&i| EventId(i as u32)).collect());
        } else {
            for &w in &succ[v] {
                self.chains_dfs(w, succ, stack, chains, cap);
                if chains.len() >= cap {
                    break;
                }
            }
        }
        stack.pop();
    }

    /// Is `seq` a linearization of `H` (contains every event exactly
    /// once, in an order compatible with `↦`)?
    pub fn is_linearization(&self, seq: &[EventId]) -> bool {
        if seq.len() != self.len() {
            return false;
        }
        let mut seen = BitSet::new(self.len());
        for &e in seq {
            if seen.contains(e.idx()) || !self.prog.past(e.idx()).is_subset(&seen) {
                return false;
            }
            seen.insert(e.idx());
        }
        true
    }

    /// Enumerate linearizations `lin(H)` (capped); see
    /// [`Relation::linear_extensions`] for the budget contract.
    pub fn linearizations(&self, cap: usize) -> Vec<Vec<EventId>> {
        let mut out = Vec::new();
        self.prog.linear_extensions(cap, |perm| {
            out.push(perm.iter().map(|&i| EventId(i as u32)).collect());
            true
        });
        out
    }

    /// The projection `H.π(E′, E″)` (§2.2): keep only the events of
    /// `keep`, and hide the outputs of events outside `visible`.
    ///
    /// Returns the projected history plus the map from new ids to
    /// original ids (new id `i` is `mapping[i]`).
    pub fn project(&self, keep: &BitSet, visible: &BitSet) -> (History<I, O>, Vec<EventId>) {
        let mapping: Vec<EventId> = keep.iter().map(|i| EventId(i as u32)).collect();
        let mut new_idx = vec![usize::MAX; self.len()];
        for (ni, e) in mapping.iter().enumerate() {
            new_idx[e.idx()] = ni;
        }
        let labels: Vec<Label<I, O>> = mapping
            .iter()
            .map(|e| {
                let l = self.labels[e.idx()].clone();
                if visible.contains(e.idx()) {
                    l
                } else {
                    l.hide()
                }
            })
            .collect();
        let proc_of: Vec<Option<ProcId>> = mapping.iter().map(|e| self.proc_of[e.idx()]).collect();
        let m = mapping.len();
        let mut edges = Vec::new();
        for (ni, e) in mapping.iter().enumerate() {
            for p in self.prog.past(e.idx()).to_vec() {
                if keep.contains(p) {
                    edges.push((new_idx[p], ni));
                }
            }
        }
        let prog = Relation::from_edges(m, &edges).expect("projection preserves acyclicity");
        (
            History::from_parts(labels, proc_of, self.n_procs, prog),
            mapping,
        )
    }

    /// Turn an event sequence into a word over `Σ`, hiding the outputs
    /// of events outside `visible` — the bridge to
    /// [`cbm_adt::accepts`](https://docs.rs/cbm-adt)-style membership.
    pub fn word(&self, seq: &[EventId], visible: &BitSet) -> Vec<(I, Option<O>)> {
        seq.iter()
            .map(|e| {
                let l = &self.labels[e.idx()];
                let out = if visible.contains(e.idx()) {
                    l.output.clone()
                } else {
                    None
                };
                (l.input.clone(), out)
            })
            .collect()
    }

    /// Bitset of all events of declared process `p`.
    pub fn proc_set(&self, p: ProcId) -> BitSet {
        let mut s = BitSet::new(self.len());
        for e in self.events() {
            if self.proc_of[e.idx()] == Some(p) {
                s.insert(e.idx());
            }
        }
        s
    }

    /// Bitset of every event (`E_H`).
    pub fn all_set(&self) -> BitSet {
        BitSet::full(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;

    type H = History<&'static str, u32>;

    fn two_proc() -> H {
        // p0: a0 -> a1 ; p1: b0 -> b1
        let mut b = HistoryBuilder::new();
        b.op(0, "w1", 0);
        b.op(0, "r", 1);
        b.op(1, "w2", 0);
        b.op(1, "r", 2);
        b.build()
    }

    #[test]
    fn program_order_within_process() {
        let h = two_proc();
        assert!(h.prog_lt(EventId(0), EventId(1)));
        assert!(h.prog_lt(EventId(2), EventId(3)));
        assert!(!h.prog_lt(EventId(0), EventId(2)));
        assert!(h.prog().concurrent(1, 2));
    }

    #[test]
    fn process_events_ordered() {
        let h = two_proc();
        assert_eq!(h.process_events(ProcId(0)), vec![EventId(0), EventId(1)]);
        assert_eq!(h.process_events(ProcId(1)), vec![EventId(2), EventId(3)]);
        assert_eq!(h.n_procs(), 2);
    }

    #[test]
    fn maximal_chains_of_disjoint_processes_are_processes() {
        let h = two_proc();
        let mut chains = h.maximal_chains(100);
        chains.sort();
        assert_eq!(
            chains,
            vec![vec![EventId(0), EventId(1)], vec![EventId(2), EventId(3)],]
        );
    }

    #[test]
    fn maximal_chains_with_fork_join() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3 (fork at 0, join at 3)
        let mut b = HistoryBuilder::new();
        let e0 = b.op(0, "a", 0);
        let e1 = b.op(0, "b", 0);
        let e2 = b.op(1, "c", 0);
        let e3 = b.op(1, "d", 0);
        b.edge(e0, e2);
        b.edge(e1, e3);
        let h = b.build();
        let chains = h.maximal_chains(100);
        // chains: [0,1,3] and [0,2,3]
        assert_eq!(chains.len(), 2);
        for c in &chains {
            assert_eq!(c.first(), Some(&e0));
            assert_eq!(c.last(), Some(&e3));
            assert_eq!(c.len(), 3);
        }
        assert_ne!(chains[0], chains[1]);
    }

    #[test]
    fn linearization_check() {
        let h = two_proc();
        let good = vec![EventId(0), EventId(2), EventId(1), EventId(3)];
        let bad = vec![EventId(1), EventId(0), EventId(2), EventId(3)];
        let dup = vec![EventId(0), EventId(0), EventId(2), EventId(3)];
        assert!(h.is_linearization(&good));
        assert!(!h.is_linearization(&bad));
        assert!(!h.is_linearization(&dup));
        assert!(!h.is_linearization(&good[..3]));
    }

    #[test]
    fn linearization_count() {
        // two chains of 2: C(4,2) = 6 interleavings
        let h = two_proc();
        assert_eq!(h.linearizations(100).len(), 6);
    }

    #[test]
    fn projection_keeps_and_hides() {
        let h = two_proc();
        let mut keep = BitSet::new(4);
        keep.insert(0);
        keep.insert(1);
        keep.insert(2);
        let mut visible = BitSet::new(4);
        visible.insert(1);
        let (ph, map) = h.project(&keep, &visible);
        assert_eq!(ph.len(), 3);
        assert_eq!(map, vec![EventId(0), EventId(1), EventId(2)]);
        assert!(!ph.label(EventId(0)).is_visible());
        assert!(ph.label(EventId(1)).is_visible());
        assert!(!ph.label(EventId(2)).is_visible());
        // program order survives the projection
        assert!(ph.prog_lt(EventId(0), EventId(1)));
    }

    #[test]
    fn word_extraction() {
        let h = two_proc();
        let mut visible = BitSet::new(4);
        visible.insert(3);
        let w = h.word(&[EventId(2), EventId(3)], &visible);
        assert_eq!(w, vec![("w2", None), ("r", Some(2))]);
    }

    #[test]
    fn proc_set_and_all_set() {
        let h = two_proc();
        assert_eq!(h.proc_set(ProcId(1)).to_vec(), vec![2, 3]);
        assert_eq!(h.all_set().count(), 4);
    }
}
