//! Strict partial orders over event arenas, as reachability bitsets.
//!
//! A [`Relation`] stores, for each event, the bitset of its **strict
//! predecessors** (its "past row"). This makes the operations the
//! checkers need — containment, transitive closure, linear-extension
//! enumeration, downset queries — word-parallel.
//!
//! On finite histories a *causal order* (Definition 7) is simply a
//! partial order that contains the program order: the cofiniteness
//! requirement (`{e' : e ↛ e'}` finite for all `e`) is vacuous when `E`
//! is finite, so checkers only verify acyclicity and containment. The
//! paper's three reasons for cofiniteness (§3.1) all concern infinite
//! histories.

use crate::bitset::BitSet;

/// A strict partial order (or, transiently, an arbitrary DAG relation)
/// over events `0..n`, stored as per-event predecessor bitsets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Relation {
    /// `past[e]` = strict predecessors of `e`.
    past: Vec<BitSet>,
}

impl Relation {
    /// The empty relation over `n` events.
    pub fn empty(n: usize) -> Self {
        Relation {
            past: vec![BitSet::new(n); n],
        }
    }

    /// Build from a set of edges `(a, b)` meaning `a < b`, then close
    /// transitively. Returns `None` if the result has a cycle.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Option<Self> {
        let mut r = Relation::empty(n);
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range {n}");
            r.past[b].insert(a);
        }
        r.close_transitive();
        r.is_acyclic().then_some(r)
    }

    /// Adopt per-event predecessor rows that are **already transitively
    /// closed and acyclic** (e.g. the causal searchers' witness rows,
    /// closed by construction). Debug builds verify both invariants;
    /// release builds trust the caller and skip the `O(n²)` closure
    /// pass of [`Relation::from_edges`].
    pub fn from_closed_rows(past: Vec<BitSet>) -> Self {
        let r = Relation { past };
        debug_assert!(r.is_acyclic(), "from_closed_rows: cyclic rows");
        #[cfg(debug_assertions)]
        {
            let mut closed = r.clone();
            closed.close_transitive();
            debug_assert!(
                closed == r,
                "from_closed_rows: rows are not transitively closed"
            );
        }
        r
    }

    /// Build a total order from a permutation of `0..n` (`order[i]` is
    /// the `i`-th event).
    pub fn total_from_sequence(n: usize, order: &[usize]) -> Self {
        assert_eq!(order.len(), n);
        let mut r = Relation::empty(n);
        let mut seen = BitSet::new(n);
        for &e in order {
            r.past[e] = seen.clone();
            seen.insert(e);
        }
        r
    }

    /// Number of events in the universe.
    pub fn len(&self) -> usize {
        self.past.len()
    }

    /// Is the universe empty?
    pub fn is_empty(&self) -> bool {
        self.past.is_empty()
    }

    /// Does `a < b` hold?
    #[inline]
    pub fn lt(&self, a: usize, b: usize) -> bool {
        self.past[b].contains(a)
    }

    /// Does `a ≤ b` hold (reflexive closure)?
    #[inline]
    pub fn le(&self, a: usize, b: usize) -> bool {
        a == b || self.lt(a, b)
    }

    /// Are `a` and `b` incomparable?
    #[inline]
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        a != b && !self.lt(a, b) && !self.lt(b, a)
    }

    /// The strict past row of `e`.
    #[inline]
    pub fn past(&self, e: usize) -> &BitSet {
        &self.past[e]
    }

    /// The paper's `⌊e⌋`: the causal past **including `e` itself**
    /// (Definition 7's order is reflexive: Prop. 1's proof takes `e` as
    /// "the maximum of `⌊e⌋`").
    pub fn floor(&self, e: usize) -> BitSet {
        let mut s = self.past[e].clone();
        s.insert(e);
        s
    }

    /// Insert the single pair `a < b` **and restore transitivity**:
    /// every `x ≤ a` becomes `< b` and propagates to everything above `b`.
    pub fn add_pair_closed(&mut self, a: usize, b: usize) {
        let n = self.len();
        let mut delta = self.past[a].clone();
        delta.insert(a);
        // everything ≥ b (b and events whose past contains b) absorbs delta
        self.past[b].union_with(&delta);
        for e in 0..n {
            if self.past[e].contains(b) {
                self.past[e].union_with(&delta);
            }
        }
    }

    /// Floyd–Warshall-style transitive closure on bitset rows.
    pub fn close_transitive(&mut self) {
        let n = self.len();
        // iterate to fixpoint: past[e] ∪= past[p] for each p ∈ past[e]
        let mut changed = true;
        while changed {
            changed = false;
            for e in 0..n {
                let mut acc = self.past[e].clone();
                for p in self.past[e].to_vec() {
                    acc.union_with(&self.past[p]);
                }
                if acc != self.past[e] {
                    self.past[e] = acc;
                    changed = true;
                }
            }
        }
    }

    /// Strict orders are irreflexive; after closure, a cycle shows up as
    /// `e ∈ past[e]`.
    pub fn is_acyclic(&self) -> bool {
        (0..self.len()).all(|e| !self.past[e].contains(e))
    }

    /// Does `self` contain `other` (as sets of ordered pairs)?
    pub fn contains(&self, other: &Relation) -> bool {
        debug_assert_eq!(self.len(), other.len());
        self.past
            .iter()
            .zip(&other.past)
            .all(|(mine, theirs)| theirs.is_subset(mine))
    }

    /// Union with another relation (then re-close); returns `false` and
    /// leaves `self` unspecified-but-valid if the union has a cycle.
    pub fn union_closed(&mut self, other: &Relation) -> bool {
        for (mine, theirs) in self.past.iter_mut().zip(&other.past) {
            mine.union_with(theirs);
        }
        self.close_transitive();
        self.is_acyclic()
    }

    /// A topological order of the events (stable: ties broken by id).
    /// Requires acyclicity.
    #[allow(clippy::needless_range_loop)] // parallel indexing of indeg/placed
    pub fn topo_order(&self) -> Vec<usize> {
        let n = self.len();
        let mut indeg: Vec<usize> = (0..n).map(|e| self.past[e].count()).collect();
        // counting *all* predecessors, not just covers, still yields a
        // valid Kahn ordering because closure is monotone along the order
        let mut placed = BitSet::new(n);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let mut advanced = false;
            for e in 0..n {
                if !placed.contains(e) && indeg[e] == 0 {
                    placed.insert(e);
                    out.push(e);
                    advanced = true;
                    for f in 0..n {
                        if !placed.contains(f) && self.past[f].contains(e) {
                            indeg[f] -= 1;
                        }
                    }
                }
            }
            assert!(advanced, "topo_order on cyclic relation");
        }
        out
    }

    /// Enumerate all linear extensions, calling `visit` with each
    /// permutation; stops early (returning `false`) once `budget`
    /// permutations were produced or `visit` returns `false`.
    ///
    /// Exponential in general — callers pass a budget (the checkers use
    /// their own memoised search instead; this is for tests and small
    /// figure histories).
    pub fn linear_extensions<F: FnMut(&[usize]) -> bool>(
        &self,
        budget: usize,
        mut visit: F,
    ) -> bool {
        let n = self.len();
        let mut done = BitSet::new(n);
        let mut prefix = Vec::with_capacity(n);
        let mut remaining = budget;
        self.lin_rec(&mut done, &mut prefix, &mut remaining, &mut visit)
    }

    fn lin_rec<F: FnMut(&[usize]) -> bool>(
        &self,
        done: &mut BitSet,
        prefix: &mut Vec<usize>,
        remaining: &mut usize,
        visit: &mut F,
    ) -> bool {
        let n = self.len();
        if prefix.len() == n {
            if *remaining == 0 {
                return false;
            }
            *remaining -= 1;
            return visit(prefix);
        }
        for e in 0..n {
            if !done.contains(e) && self.past[e].is_subset(done) {
                done.insert(e);
                prefix.push(e);
                let keep_going = self.lin_rec(done, prefix, remaining, visit);
                prefix.pop();
                done.remove(e);
                if !keep_going {
                    return false;
                }
            }
        }
        true
    }

    /// Count linear extensions up to `cap`.
    pub fn count_linear_extensions(&self, cap: usize) -> usize {
        let mut count = 0;
        self.linear_extensions(cap, |_| {
            count += 1;
            true
        });
        count
    }

    /// The covering (Hasse) edges: pairs `a < b` with no `c`,
    /// `a < c < b`.
    pub fn cover_edges(&self) -> Vec<(usize, usize)> {
        let n = self.len();
        let mut covers = Vec::new();
        for b in 0..n {
            for a in self.past[b].to_vec() {
                let mut between = self.past[b].clone();
                // c with a < c < b: c ∈ past[b] and a ∈ past[c]
                let has_middle = between.iter().any(|c| c != a && self.past[c].contains(a));
                between.clear();
                if !has_middle {
                    covers.push((a, b));
                }
            }
        }
        covers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 < 1 < 3, 0 < 2 < 3 (diamond)
    fn diamond() -> Relation {
        Relation::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn closure_and_queries() {
        let r = diamond();
        assert!(r.lt(0, 3)); // transitivity
        assert!(r.le(1, 1));
        assert!(!r.lt(1, 1));
        assert!(r.concurrent(1, 2));
        assert!(!r.concurrent(0, 3));
    }

    #[test]
    fn cycles_detected() {
        assert!(Relation::from_edges(2, &[(0, 1), (1, 0)]).is_none());
        assert!(Relation::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).is_none());
    }

    #[test]
    fn floor_includes_self() {
        let r = diamond();
        assert_eq!(r.floor(3).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(r.floor(0).to_vec(), vec![0]);
    }

    #[test]
    fn add_pair_closed_propagates() {
        let mut r = Relation::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        r.add_pair_closed(1, 2);
        assert!(r.lt(0, 2));
        assert!(r.lt(0, 3));
        assert!(r.lt(1, 3));
        assert!(r.is_acyclic());
    }

    #[test]
    fn total_from_sequence_is_total() {
        let r = Relation::total_from_sequence(3, &[2, 0, 1]);
        assert!(r.lt(2, 0) && r.lt(0, 1) && r.lt(2, 1));
        assert_eq!(r.count_linear_extensions(10), 1);
    }

    #[test]
    fn containment() {
        let chain = Relation::from_edges(4, &[(0, 1), (1, 3)]).unwrap();
        let d = diamond();
        assert!(d.contains(&chain));
        assert!(!chain.contains(&d));
    }

    #[test]
    fn union_closed_detects_cycle() {
        let a = Relation::from_edges(2, &[(0, 1)]).unwrap();
        let b = Relation::from_edges(2, &[(1, 0)]).unwrap();
        let mut u = a.clone();
        assert!(!u.union_closed(&b));
    }

    #[test]
    fn topo_order_respects_order() {
        let r = diamond();
        let topo = r.topo_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &e) in topo.iter().enumerate() {
                p[e] = i;
            }
            p
        };
        for b in 0..4 {
            for a in r.past(b).to_vec() {
                assert!(pos[a] < pos[b]);
            }
        }
    }

    #[test]
    fn linear_extension_count_of_diamond() {
        // 0 first, 3 last, 1 and 2 in either order: 2 extensions.
        assert_eq!(diamond().count_linear_extensions(100), 2);
    }

    #[test]
    fn linear_extension_budget_stops_early() {
        let free = Relation::empty(6); // 720 extensions
        assert_eq!(free.count_linear_extensions(100), 100);
    }

    #[test]
    fn empty_relation_extensions_are_permutations() {
        let free = Relation::empty(3);
        let mut seen = std::collections::HashSet::new();
        free.linear_extensions(100, |p| {
            seen.insert(p.to_vec());
            true
        });
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn cover_edges_of_diamond() {
        let mut covers = diamond().cover_edges();
        covers.sort_unstable();
        assert_eq!(covers, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn cover_edges_drop_transitive_pair() {
        let r = Relation::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut covers = r.cover_edges();
        covers.sort_unstable();
        assert_eq!(covers, vec![(0, 1), (1, 2)]);
    }
}
