//! Graphviz DOT export of histories (program order solid, extra causal
//! pairs dashed) — the rendering convention of the paper's Fig. 3.

use crate::history::History;
use crate::order::Relation;
use std::fmt::Debug;
use std::fmt::Write as _;

/// Render `h` as a DOT digraph. When `causal` is given, its cover edges
/// that are not program-order pairs are drawn dashed (the paper's
/// "semantic causal relations").
pub fn to_dot<I: Clone + Debug, O: Clone + Debug>(
    h: &History<I, O>,
    causal: Option<&Relation>,
    name: &str,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");

    // group events by process for visual chains
    for p in 0..h.n_procs() {
        let evs: Vec<_> = h
            .events()
            .filter(|e| h.proc_of(*e).map(|q| q.idx()) == Some(p))
            .collect();
        if evs.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  subgraph cluster_p{p} {{");
        let _ = writeln!(out, "    label=\"p{p}\";");
        for e in &evs {
            let l = h.label(*e);
            let txt = match &l.output {
                Some(o) => format!("{:?}/{:?}", l.input, o),
                None => format!("{:?}", l.input),
            };
            let _ = writeln!(out, "    e{} [label=\"{}\"];", e.idx(), escape(&txt));
        }
        let _ = writeln!(out, "  }}");
    }
    for e in h.events() {
        if h.proc_of(e).is_none() {
            let l = h.label(e);
            let txt = match &l.output {
                Some(o) => format!("{:?}/{:?}", l.input, o),
                None => format!("{:?}", l.input),
            };
            let _ = writeln!(out, "  e{} [label=\"{}\"];", e.idx(), escape(&txt));
        }
    }

    for (a, b) in h.prog().cover_edges() {
        let _ = writeln!(out, "  e{a} -> e{b};");
    }
    if let Some(c) = causal {
        for (a, b) in c.cover_edges() {
            if !h.prog().lt(a, b) {
                let _ = writeln!(out, "  e{a} -> e{b} [style=dashed];");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;

    #[test]
    fn renders_nodes_edges_and_clusters() {
        let mut b: HistoryBuilder<&str, u32> = HistoryBuilder::new();
        let a = b.op(0, "w(1)", 0);
        b.op(0, "r", 1);
        let c = b.op(1, "w(2)", 0);
        let h = b.build();
        let mut causal = h.prog().clone();
        causal.add_pair_closed(a.idx(), c.idx());
        let dot = to_dot(&h, Some(&causal), "test");
        assert!(dot.contains("digraph \"test\""));
        assert!(dot.contains("cluster_p0"));
        assert!(dot.contains("cluster_p1"));
        assert!(dot.contains("e0 -> e1;"));
        assert!(dot.contains("e0 -> e2 [style=dashed];"));
    }

    #[test]
    fn hidden_labels_render_without_output() {
        let mut b: HistoryBuilder<&str, u32> = HistoryBuilder::new();
        b.hidden(0, "w(9)");
        let h = b.build();
        let dot = to_dot(&h, None, "t");
        assert!(dot.contains("w(9)"));
        assert!(!dot.contains('/'));
    }

    #[test]
    fn quotes_and_backslashes_are_escaped() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        // Debug-formatted &str labels round-trip through escape without
        // producing a bare quote that would terminate the DOT string.
        let mut b: HistoryBuilder<&str, u32> = HistoryBuilder::new();
        b.hidden(0, "a\"b");
        let h = b.build();
        let dot = to_dot(&h, None, "t");
        let label_line = dot
            .lines()
            .find(|l| l.contains("label=\"a") || l.contains("\\\"a"))
            .unwrap();
        assert!(label_line.ends_with("\"];"));
    }
}
