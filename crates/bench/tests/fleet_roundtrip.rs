//! End-to-end multi-process dispatch: a two-node `cbm-node` fleet must
//! reproduce the driver's in-process deterministic columns exactly —
//! the property that lets `loadgen --procs N` gate against the same
//! committed baselines as every other transport.

use cbm_bench::fleet::NodePool;
use cbm_bench::proto::LegSpec;
use cbm_bench::{run_workload, Transport, Workload};
use cbm_store::{
    BatchPolicy, DurableConfig, Mode, ObsConfig, ShardConfig, StoreConfig, VerifyConfig,
};

fn cfg(seed: u64) -> StoreConfig {
    StoreConfig {
        workers: 3,
        objects: 16,
        ops_per_worker: 600,
        mode: Mode::Causal,
        batch: BatchPolicy::Every(4),
        verify: VerifyConfig {
            every_ops: 200,
            window_ops: 24,
            sample_every: 1,
            monitor: true,
        },
        seed,
        sharding: ShardConfig::full(),
        chaos: cbm_net::fault::FaultPlan::new(),
        obs: ObsConfig::default(),
        durable: DurableConfig::default(),
    }
}

fn workload() -> Workload {
    Workload::Register {
        read_ratio: 0.5,
        remote_read_ratio: 0.0,
    }
}

#[test]
fn fleet_reproduces_in_process_counts() {
    // referencing the binary path makes cargo build cbm-node before
    // this test runs (NodePool finds it as a sibling in the target dir)
    let _ = env!("CARGO_BIN_EXE_cbm-node");

    let specs: Vec<LegSpec> = [7u64, 11]
        .iter()
        .map(|&seed| LegSpec {
            name: format!("fleet-seed-{seed}"),
            cfg: cfg(seed),
            workload: workload(),
            trace: false,
            trace_dir: "traces".into(),
        })
        .collect();

    let mut pool = NodePool::spawn(2).expect("fleet spawns");
    assert_eq!(pool.len(), 2);
    let reports = pool.run_batch(&specs).expect("fleet runs the batch");
    let killed = pool.shutdown();
    assert_eq!(killed, 0, "nodes exit gracefully on Shutdown");

    for (spec, remote) in specs.iter().zip(&reports) {
        let local = run_workload(&spec.workload, &spec.cfg, Transport::Thread);
        assert!(remote.verified(), "{} verifies", spec.name);
        assert!(remote.trace.is_none(), "traces never cross the wire");
        assert_eq!(remote.msgs_sent, local.msgs_sent, "{}", spec.name);
        assert_eq!(remote.batches_sent, local.batches_sent, "{}", spec.name);
        assert_eq!(remote.payloads_sent, local.payloads_sent, "{}", spec.name);
        assert_eq!(remote.total_ops, local.total_ops, "{}", spec.name);
        assert_eq!(remote.windows.len(), local.windows.len(), "{}", spec.name);
        assert_eq!(
            remote.monitor.ops_checked, local.monitor.ops_checked,
            "{}",
            spec.name
        );
        assert_eq!(
            remote.monitor.escalations, local.monitor.escalations,
            "{}",
            spec.name
        );
    }
}
