//! Documentation link checker: every relative markdown link in the
//! repo's top-level docs resolves to a real file, and every `#anchor`
//! fragment matches a heading in its target (GitHub slug rules). This
//! is the CI guard against cross-link drift — docs here name each
//! other heavily (`docs/ARCHITECTURE.md` is the hub), and renames
//! rot silently without it.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// The checked set: the root README plus everything under `docs/`.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![root.join("README.md"), root.join("ROADMAP.md")];
    let docs = root.join("docs");
    let mut entries: Vec<_> = std::fs::read_dir(&docs)
        .expect("docs/ directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    entries.sort();
    files.extend(entries);
    files.retain(|p| p.exists());
    files
}

/// GitHub heading → anchor slug: lowercase, drop everything but
/// alphanumerics/spaces/hyphens, spaces to hyphens.
fn slug(heading: &str) -> String {
    let mut s = String::new();
    for c in heading.trim().chars() {
        if c.is_alphanumeric() {
            s.extend(c.to_lowercase());
        } else if c == ' ' || c == '-' {
            s.push(if c == ' ' { '-' } else { c });
        }
    }
    s
}

/// Headings of a markdown file (outside fenced code blocks), as slugs
/// with GitHub's `-1`, `-2` duplicate suffixes.
fn anchors(text: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut fenced = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            fenced = !fenced;
            continue;
        }
        if fenced || !line.starts_with('#') {
            continue;
        }
        let heading = line.trim_start_matches('#');
        if !line[..line.len() - heading.len()].chars().all(|c| c == '#') {
            continue;
        }
        let base = slug(&heading.replace('`', ""));
        let n = counts.entry(base.clone()).or_insert(0);
        out.push(if *n == 0 {
            base.clone()
        } else {
            format!("{base}-{n}")
        });
        *n += 1;
    }
    out
}

/// Extract `[text](target)` links outside fenced code blocks and
/// inline code spans.
fn links(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut fenced = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            fenced = !fenced;
            continue;
        }
        if fenced {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        let mut in_code = false;
        while i < bytes.len() {
            match bytes[i] {
                b'`' => in_code = !in_code,
                b'[' if !in_code => {
                    if let Some(close) = line[i..].find("](") {
                        let start = i + close + 2;
                        if let Some(end) = line[start..].find(')') {
                            let target = &line[start..start + end];
                            if !target.contains(' ') {
                                out.push(target.to_string());
                            }
                            i = start + end;
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    out
}

#[test]
fn all_relative_links_and_anchors_resolve() {
    let root = repo_root();
    let files = doc_files(&root);
    assert!(
        files.len() >= 10,
        "expected README + ROADMAP + docs/*, found {files:?}"
    );
    let mut broken: Vec<String> = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).expect("read doc");
        let dir = file.parent().unwrap();
        for link in links(&text) {
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, frag) = match link.split_once('#') {
                Some((p, f)) => (p, Some(f)),
                None => (link.as_str(), None),
            };
            let target = if path_part.is_empty() {
                file.clone()
            } else {
                dir.join(path_part)
            };
            let display = format!("{}: ({link})", file.strip_prefix(&root).unwrap().display());
            let Ok(target) = target.canonicalize() else {
                broken.push(format!("{display} — no such file"));
                continue;
            };
            if let Some(frag) = frag {
                if target.extension().is_some_and(|e| e == "md") {
                    let ttext = std::fs::read_to_string(&target).expect("read target");
                    if !anchors(&ttext).iter().any(|a| a == frag) {
                        broken.push(format!("{display} — no heading for #{frag}"));
                    }
                }
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken doc links:\n{}",
        broken.join("\n")
    );
}

/// The which-doc table in `docs/ARCHITECTURE.md` must name every doc
/// in `docs/` — a new doc without a hub entry is drift by definition.
#[test]
fn architecture_hub_names_every_doc() {
    let root = repo_root();
    let hub = std::fs::read_to_string(root.join("docs/ARCHITECTURE.md"))
        .expect("docs/ARCHITECTURE.md is the navigation hub");
    let mut missing = Vec::new();
    for doc in doc_files(&root) {
        let name = doc.file_name().unwrap().to_string_lossy().into_owned();
        if name == "ARCHITECTURE.md" || !doc.starts_with(root.join("docs")) {
            continue;
        }
        if !hub.contains(&name) {
            missing.push(name);
        }
    }
    assert!(
        missing.is_empty(),
        "docs missing from the ARCHITECTURE.md which-doc table: {missing:?}"
    );
}

/// Every doc under `docs/` links back to the hub, so navigation works
/// from any entry point.
#[test]
fn every_doc_links_back_to_the_hub() {
    let root = repo_root();
    let mut missing = Vec::new();
    for doc in doc_files(&root) {
        if !doc.starts_with(root.join("docs")) || doc.file_name().unwrap() == "ARCHITECTURE.md" {
            continue;
        }
        let text = std::fs::read_to_string(&doc).expect("read doc");
        if !text.contains("ARCHITECTURE.md") {
            missing.push(doc.file_name().unwrap().to_string_lossy().into_owned());
        }
    }
    assert!(
        missing.is_empty(),
        "docs without a link back to docs/ARCHITECTURE.md: {missing:?}"
    );
}
