//! A missing or unparsable `--gate` baseline must fail **before** any
//! leg runs, with exit code 2 and a clean one-line message — never a
//! panic, and never minutes of legs followed by a post-run surprise.

use std::process::Command;

fn loadgen(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args(args)
        .current_dir(env!("CARGO_TARGET_TMPDIR"))
        .output()
        .expect("loadgen runs")
}

fn assert_clean_usage_error(out: &std::process::Output, expect: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "usage errors exit 2, got {:?} (stderr: {stderr})",
        out.status.code()
    );
    assert!(
        stderr.contains(expect),
        "stderr should explain the problem, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "operator errors must not panic: {stderr}"
    );
    // fail-fast contract: no leg ran, so no leg progress line was
    // printed and no output document was written
    assert!(
        !stderr.contains("ops/s"),
        "no leg should have run before the gate check: {stderr}"
    );
}

#[test]
fn missing_gate_baseline_fails_fast_and_cleanly() {
    let out = loadgen(&[
        "--quick",
        "--gate",
        "no-such-baseline.json",
        "--out",
        "unwritten.json",
    ]);
    assert_clean_usage_error(&out, "cannot read gate baseline");
}

#[test]
fn unparsable_gate_baseline_fails_fast_and_cleanly() {
    let dir = env!("CARGO_TARGET_TMPDIR");
    let path = std::path::Path::new(dir).join("not-a-baseline.json");
    std::fs::write(&path, "{\"schema\": \"something-else\"}\n").unwrap();
    let out = loadgen(&[
        "--quick",
        "--gate",
        "not-a-baseline.json",
        "--out",
        "unwritten.json",
    ]);
    assert_clean_usage_error(&out, "contains no legs");
}
