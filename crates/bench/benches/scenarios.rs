//! Scenario smoke bench: fault-injected convergence cost.
//!
//! Runs a fixed-seed slice of the `cbm-sim` registry (small clusters,
//! deterministic fault plans) so the `BENCH_*` trajectories cover
//! fault-injected convergence time and message cost, not just the
//! fault-free happy path. Each sample also asserts the run verifies —
//! a bench that silently measured broken runs would be worse than no
//! bench.

use cbm_sim::{registry, run_scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// The slice of scenarios the smoke bench tracks: one partition-shaped,
/// one duplication-shaped, one crash-shaped, one skew-shaped.
const SMOKE: &[&str] = &[
    "partition-while-writing",
    "duplicate-storm",
    "rolling-crashes",
    "skewed-clocks",
];

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenarios");
    for name in SMOKE {
        let scenario = registry::by_name(name).expect("smoke scenario exists");
        group.bench_with_input(BenchmarkId::new("run", name), &scenario, |b, s| {
            b.iter(|| {
                let o = run_scenario(s, 3);
                assert!(o.passes(), "{name}: {:?}", o.failure());
                (o.convergence_time, o.msgs_sent)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scenarios
}
criterion_main!(benches);
