//! Criterion bench: local operation cost of each replica flavour (the
//! wait-free path — no network, pure state-machine work). This
//! quantifies the price of convergence: the arbitrated log of the
//! generalized Fig. 5 replica vs the O(k) verbatim window
//! implementation vs the plain Fig. 4 fold.

use cbm_adt::window::{WaInput, WindowArray};
use cbm_core::causal::CausalShared;
use cbm_core::convergent::ConvergentShared;
use cbm_core::ec::EcShared;
use cbm_core::replica::Replica;
use cbm_core::wk_array::{WkArrayCc, WkArrayCcv};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_invoke<R: Replica<WindowArray>>(b: &mut criterion::Bencher<'_>, streams: usize) {
    let adt = WindowArray::new(streams, 3);
    b.iter_batched(
        || R::new_replica(0, 3, adt),
        |mut rep| {
            let mut out = Vec::with_capacity(4);
            for i in 0..256u64 {
                let input = if i % 3 == 0 {
                    WaInput::Read((i % streams as u64) as usize)
                } else {
                    WaInput::Write((i % streams as u64) as usize, i)
                };
                let _ = rep.invoke(i, &input, &mut out);
                out.clear();
            }
            rep.local_state()
        },
        criterion::BatchSize::SmallInput,
    );
}

fn bench_flavours(c: &mut Criterion) {
    let mut group = c.benchmark_group("invoke_256ops");
    for streams in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("CausalShared", streams),
            &streams,
            |b, &s| bench_invoke::<CausalShared<WindowArray>>(b, s),
        );
        group.bench_with_input(
            BenchmarkId::new("ConvergentShared", streams),
            &streams,
            |b, &s| bench_invoke::<ConvergentShared<WindowArray>>(b, s),
        );
        group.bench_with_input(BenchmarkId::new("WkArrayCc", streams), &streams, |b, &s| {
            bench_invoke::<WkArrayCc>(b, s)
        });
        group.bench_with_input(
            BenchmarkId::new("WkArrayCcv", streams),
            &streams,
            |b, &s| bench_invoke::<WkArrayCcv>(b, s),
        );
        group.bench_with_input(BenchmarkId::new("EcShared", streams), &streams, |b, &s| {
            bench_invoke::<EcShared<WindowArray>>(b, s)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_flavours
}
criterion_main!(benches);
