//! Criterion bench: cost of *deciding* each criterion as the history
//! grows (the checkers are worst-case exponential; this measures the
//! practical envelope on recorded causal executions, which are
//! satisfiable and hence near the easy end).

use cbm_adt::window::WindowArray;
use cbm_check::{check, Budget, Criterion};
use cbm_core::causal::CausalShared;
use cbm_core::cluster::Cluster;
use cbm_core::workload::{window_script, WindowWorkload};
use cbm_history::History;
use cbm_net::latency::LatencyModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion as Crit};

fn recorded_history(
    ops_per_proc: usize,
) -> History<cbm_adt::window::WaInput, cbm_adt::window::WaOutput> {
    let cfg = WindowWorkload {
        procs: 2,
        ops_per_proc,
        streams: 1,
        write_ratio: 0.5,
        max_think: 20,
        seed: 7,
    };
    let adt = WindowArray::new(1, 2);
    let cluster: Cluster<WindowArray, CausalShared<WindowArray>> =
        Cluster::new(2, adt, LatencyModel::Uniform(1, 50), 7);
    cluster.run(window_script(&cfg)).history
}

fn bench_checkers(c: &mut Crit) {
    let adt = WindowArray::new(1, 2);
    let mut group = c.benchmark_group("checker_scaling");
    for ops in [3usize, 5, 7] {
        let h = recorded_history(ops);
        let events = h.len();
        for crit in [
            Criterion::Sc,
            Criterion::Pc,
            Criterion::Wcc,
            Criterion::Cc,
            Criterion::Ccv,
        ] {
            group.bench_with_input(
                BenchmarkId::new(crit.name(), format!("{events}ev")),
                &h,
                |b, h| {
                    b.iter(|| {
                        let r = check(crit, &adt, h, &Budget::default());
                        // recorded CC executions are CC ⊇ {WCC, PC} by
                        // Prop. 6; SC and CCv may legitimately be unsat
                        if matches!(crit, Criterion::Cc | Criterion::Wcc | Criterion::Pc) {
                            assert!(r.verdict.is_sat());
                        }
                        r.nodes_used
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Crit::default().sample_size(20);
    targets = bench_checkers
}
criterion_main!(benches);
