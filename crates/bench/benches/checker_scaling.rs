//! Criterion bench: cost of *deciding* each criterion as the history
//! grows (the checkers are worst-case exponential; this measures the
//! practical envelope on recorded causal executions, which are
//! satisfiable and hence near the easy end).

use cbm_bench::{recorded_window_adt, recorded_window_history};
use cbm_check::{check, Budget, Criterion};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion as Crit};

fn bench_checkers(c: &mut Crit) {
    let adt = recorded_window_adt();
    let mut group = c.benchmark_group("checker_scaling");
    for ops in [3usize, 5, 7] {
        let h = recorded_window_history(ops, 7);
        let events = h.len();
        for crit in [
            Criterion::Sc,
            Criterion::Pc,
            Criterion::Wcc,
            Criterion::Cc,
            Criterion::Ccv,
        ] {
            group.bench_with_input(
                BenchmarkId::new(crit.name(), format!("{events}ev")),
                &h,
                |b, h| {
                    b.iter(|| {
                        let r = check(crit, &adt, h, &Budget::default());
                        // recorded CC executions are CC ⊇ {WCC, PC} by
                        // Prop. 6; SC and CCv may legitimately be unsat
                        if matches!(crit, Criterion::Cc | Criterion::Wcc | Criterion::Pc) {
                            assert!(r.verdict.is_sat());
                        }
                        r.nodes_used
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Crit::default().sample_size(20);
    targets = bench_checkers
}
criterion_main!(benches);
