//! Criterion bench: delivery cost of the arbitrated log (generalized
//! Fig. 5) under in-order vs out-of-order timestamp arrival — the
//! checkpointed replay is the data structure this measures — plus the
//! verbatim O(k) Fig. 5 window insert as the baseline.

use cbm_adt::window::{WaInput, WindowArray};
use cbm_core::convergent::{ArbUpdate, ConvergentShared};
use cbm_core::replica::{Outgoing, Replica, Stamped};
use cbm_core::wk_array::WkArrayCcv;
use cbm_net::broadcast::CausalBroadcast;
use cbm_net::clock::Timestamp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const N: usize = 2048;

/// Build the envelopes once: a remote replica's N writes.
fn envelopes(reverse_blocks: bool) -> Vec<cbm_net::broadcast::CausalMsg<ArbUpdate<WaInput>>> {
    let mut sender: CausalBroadcast<ArbUpdate<WaInput>> = CausalBroadcast::new(1, 2);
    let mut msgs: Vec<_> = (0..N as u64)
        .map(|i| {
            sender.broadcast(ArbUpdate {
                ts: Timestamp::new(i + 1, 1),
                op: Stamped {
                    event: i,
                    input: WaInput::Write(0, i),
                },
            })
        })
        .collect();
    if reverse_blocks {
        // reverse within blocks of 32: causal FIFO still admits it only
        // block-locally, so shuffle *timestamps* instead: swap pairs
        for chunk in msgs.chunks_mut(2) {
            if chunk.len() == 2 {
                let t = chunk[0].payload.ts;
                chunk[0].payload.ts = chunk[1].payload.ts;
                chunk[1].payload.ts = t;
            }
        }
    }
    msgs
}

fn bench_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("ccv_delivery");
    group.throughput(Throughput::Elements(N as u64));
    for (name, rev) in [("ts_in_order", false), ("ts_swapped_pairs", true)] {
        let msgs = envelopes(rev);
        group.bench_with_input(
            BenchmarkId::new("ConvergentShared", name),
            &msgs,
            |b, msgs| {
                b.iter_batched(
                    || {
                        let r: ConvergentShared<WindowArray> =
                            ConvergentShared::new_replica(0, 2, WindowArray::new(1, 3));
                        (r, msgs.clone())
                    },
                    |(mut r, msgs)| {
                        let mut out: Vec<Outgoing<_>> = Vec::new();
                        for m in msgs {
                            r.on_deliver(1, m, &mut out, &mut Vec::new(), &mut Vec::new());
                        }
                        r.log_len()
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    // verbatim Fig. 5: O(k) insert regardless of arrival order
    let mut sender = WkArrayCcv::new(1, 2, 1, 3);
    let msgs: Vec<_> = (0..N as u64).map(|i| sender.write(i, 0, i)).collect();
    group.bench_function("WkArrayCcv/ts_in_order", |b| {
        b.iter_batched(
            || (WkArrayCcv::new(0, 2, 1, 3), msgs.clone()),
            |(mut r, msgs)| {
                for m in msgs {
                    r.receive(m);
                }
                r.read(0)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Ablation: the checkpoint interval of the arbitrated log, under the
/// adversarial swapped-timestamp arrival. Interval 1 snapshots after
/// every entry (cheap replays, heavy snapshotting), `usize::MAX`
/// disables checkpointing (every out-of-order insert replays the whole
/// log); the default of 32 sits in the elbow.
fn bench_checkpoint_ablation(c: &mut Criterion) {
    let msgs = envelopes(true);
    let mut group = c.benchmark_group("ccv_checkpoint_ablation");
    group.throughput(Throughput::Elements(N as u64));
    for interval in [1usize, 8, 32, 128, usize::MAX] {
        let label = if interval == usize::MAX {
            "off".to_string()
        } else {
            interval.to_string()
        };
        group.bench_with_input(BenchmarkId::new("interval", label), &msgs, |b, msgs| {
            b.iter_batched(
                || {
                    let r: ConvergentShared<WindowArray> =
                        ConvergentShared::with_checkpoint_interval(
                            0,
                            2,
                            WindowArray::new(1, 3),
                            interval,
                        );
                    (r, msgs.clone())
                },
                |(mut r, msgs)| {
                    let mut out: Vec<Outgoing<_>> = Vec::new();
                    for m in msgs {
                        r.on_deliver(1, m, &mut out, &mut Vec::new(), &mut Vec::new());
                    }
                    r.log_len()
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_delivery, bench_checkpoint_ablation
}
criterion_main!(benches);
