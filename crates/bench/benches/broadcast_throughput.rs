//! Criterion bench: protocol-layer throughput. (a) the causal
//! broadcast state machine alone (buffering + delivery checks), and
//! (b) end-to-end over real threads (`ThreadNet`), which exercises the
//! wait-free pipeline under true parallelism.

use cbm_net::broadcast::{CausalBroadcast, CausalMsg};
use cbm_net::thread_net::ThreadNet;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use crossbeam::thread;

/// In-order delivery of `n_msgs` messages between two endpoints.
fn protocol_only(n_msgs: usize) {
    let mut a: CausalBroadcast<u64> = CausalBroadcast::new(0, 2);
    let mut b: CausalBroadcast<u64> = CausalBroadcast::new(1, 2);
    for i in 0..n_msgs as u64 {
        let m = a.broadcast(i);
        let delivered = b.on_receive(m);
        assert_eq!(delivered.len(), 1);
    }
}

/// Worst-case buffering: deliver everything in reverse send order.
fn protocol_reversed(n_msgs: usize) {
    let mut a: CausalBroadcast<u64> = CausalBroadcast::new(0, 2);
    let mut b: CausalBroadcast<u64> = CausalBroadcast::new(1, 2);
    let msgs: Vec<CausalMsg<u64>> = (0..n_msgs as u64).map(|i| a.broadcast(i)).collect();
    let mut total = 0;
    for m in msgs.into_iter().rev() {
        total += b.on_receive(m).len();
    }
    assert_eq!(total, n_msgs);
}

/// Two threads exchanging causal broadcasts over crossbeam channels.
fn threaded_exchange(n_msgs: usize) {
    let mut net: ThreadNet<CausalMsg<u64>> = ThreadNet::new(2);
    let e0 = net.endpoint(0);
    let e1 = net.endpoint(1);
    thread::scope(|s| {
        s.spawn(move |_| {
            let mut proto: CausalBroadcast<u64> = CausalBroadcast::new(0, 2);
            for i in 0..n_msgs as u64 {
                let m = proto.broadcast(i);
                e0.broadcast(m);
            }
        });
        s.spawn(move |_| {
            let mut proto: CausalBroadcast<u64> = CausalBroadcast::new(1, 2);
            let mut delivered = 0;
            while delivered < n_msgs {
                let (_, m) = e1.recv().expect("sender alive until done");
                delivered += proto.on_receive(m).len();
            }
        });
    })
    .unwrap();
}

fn bench_broadcast(c: &mut Criterion) {
    const N: usize = 4096;
    let mut group = c.benchmark_group("causal_broadcast");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("in_order", |b| b.iter(|| protocol_only(N)));
    group.bench_function("reversed", |b| b.iter(|| protocol_reversed(N)));
    group.bench_function("threaded", |b| b.iter(|| threaded_exchange(N)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_broadcast
}
criterion_main!(benches);
