//! Process fleet management for multi-process benchmark runs.
//!
//! [`NodePool::spawn`] launches `n` `cbm-node` processes (siblings of
//! the running binary in the cargo target dir), each of which dials
//! back to the driver's loopback control listener and announces its id
//! ([`crate::proto::Ctrl::Hello`]). Legs are then dispatched over the
//! control streams ([`NodePool::run_leg`]) and the nodes' engine runs
//! happen in **their** process — each hosting a full replica set over
//! its own in-process TCP mesh — so a matrix parallelises across
//! processes while every leg's deterministic columns stay a pure
//! function of `(config, seed)`.
//!
//! Cleanup is layered: [`NodePool::shutdown`] (and `Drop`) sends
//! [`crate::proto::Ctrl::Shutdown`] and waits briefly, then kills
//! stragglers; a node whose driver dies instead sees EOF on the
//! control stream and exits itself. CI adds a belt-and-suspenders
//! `pkill cbm-node` in an `always()` step (`docs/DEPLOYMENT.md`).

use crate::proto::{recv_ctrl, send_ctrl, Ctrl, LegSpec};
use cbm_store::StoreReport;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// One spawned `cbm-node` and its control stream.
struct NodeHandle {
    child: Child,
    stream: TcpStream,
}

/// A fleet of `cbm-node` worker processes on loopback.
pub struct NodePool {
    nodes: Vec<Option<NodeHandle>>,
}

/// Path of the `cbm-node` binary: a sibling of the currently running
/// executable (cargo puts every workspace binary of a profile in one
/// directory, and integration tests run from `<dir>/deps/`).
fn cbm_node_path() -> io::Result<std::path::PathBuf> {
    let me = std::env::current_exe()?;
    let dir = me
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "executable has no parent dir"))?;
    let direct = dir.join("cbm-node");
    if direct.exists() {
        return Ok(direct);
    }
    let from_deps = dir
        .parent()
        .map(|p| p.join("cbm-node"))
        .filter(|p| p.exists());
    from_deps.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("cbm-node not found next to {}", me.display()),
        )
    })
}

/// Send one leg down a node's control stream and block for its report.
fn dispatch(handle: &mut NodeHandle, node: usize, spec: &LegSpec) -> io::Result<StoreReport> {
    send_ctrl(&mut handle.stream, &Ctrl::Run(Box::new(spec.clone())))?;
    match recv_ctrl(&mut handle.stream)? {
        Some(Ctrl::Report(report)) => Ok(*report),
        Some(Ctrl::Error(text)) => Err(io::Error::other(format!(
            "node {node} failed leg '{}': {text}",
            spec.name
        ))),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("node {node}: expected Report, got {other:?}"),
        )),
    }
}

impl NodePool {
    /// Spawn `n` nodes and wait for all of them to dial back and
    /// announce themselves. Nodes inherit stderr (their per-leg
    /// progress lines interleave with the driver's, prefixed by id).
    pub fn spawn(n: usize) -> io::Result<NodePool> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let exe = cbm_node_path()?;
        let mut children: Vec<Option<Child>> = Vec::with_capacity(n);
        for id in 0..n {
            let child = Command::new(&exe)
                .arg("serve")
                .arg("--control")
                .arg(addr.to_string())
                .arg("--id")
                .arg(id.to_string())
                .stdin(Stdio::null())
                .spawn()?;
            children.push(Some(child));
        }
        // accept-and-slot by announced id, so accept order never
        // matters (same discipline as the data-plane handshake)
        let mut nodes: Vec<Option<NodeHandle>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            let id = match recv_ctrl(&mut stream)? {
                Some(Ctrl::Hello(id)) => id as usize,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("expected Hello from node, got {other:?}"),
                    ))
                }
            };
            if id >= n || nodes[id].is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("node announced bad or duplicate id {id}"),
                ));
            }
            nodes[id] = Some(NodeHandle {
                child: children[id].take().expect("child handle present"),
                stream,
            });
        }
        Ok(NodePool { nodes })
    }

    /// Number of nodes in the pool.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Run one leg on node `node`, blocking until its report arrives.
    pub fn run_leg(&mut self, node: usize, spec: &LegSpec) -> io::Result<StoreReport> {
        let handle = self.nodes[node]
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "node already shut down"))?;
        dispatch(handle, node, spec)
    }

    /// Run a batch of legs across the fleet — leg `i` on node
    /// `i % len`, every node working its share in parallel (each node
    /// is one process, so the parallelism is real even from a
    /// single-threaded driver). Reports come back in spec order; the
    /// first node failure aborts the batch.
    pub fn run_batch(&mut self, specs: &[LegSpec]) -> io::Result<Vec<StoreReport>> {
        let n = self.nodes.len();
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "empty node pool",
            ));
        }
        let mut results: Vec<Option<io::Result<StoreReport>>> =
            specs.iter().map(|_| None).collect();
        std::thread::scope(|s| {
            let workers: Vec<_> = self
                .nodes
                .iter_mut()
                .enumerate()
                .filter_map(|(node, h)| {
                    let handle = h.as_mut()?;
                    let mine: Vec<usize> = (node..specs.len()).step_by(n).collect();
                    if mine.is_empty() {
                        return None;
                    }
                    Some(s.spawn(move || {
                        mine.into_iter()
                            .map(|i| (i, dispatch(handle, node, &specs[i])))
                            .collect::<Vec<_>>()
                    }))
                })
                .collect();
            for w in workers {
                if let Ok(list) = w.join() {
                    for (i, r) in list {
                        results[i] = Some(r);
                    }
                }
            }
        });
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(io::Error::new(
                        io::ErrorKind::NotConnected,
                        "leg was assigned to a dead node",
                    ))
                })
            })
            .collect()
    }

    /// Graceful shutdown: ask every node to exit, give the fleet a
    /// grace period, then kill stragglers. Returns the number of nodes
    /// that had to be killed.
    pub fn shutdown(&mut self) -> usize {
        let mut handles: Vec<NodeHandle> = self.nodes.iter_mut().filter_map(Option::take).collect();
        for h in &mut handles {
            let _ = send_ctrl(&mut h.stream, &Ctrl::Shutdown);
            let _ = h.stream.shutdown(std::net::Shutdown::Both);
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut killed = 0;
        for h in &mut handles {
            loop {
                match h.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = h.child.kill();
                        let _ = h.child.wait();
                        killed += 1;
                        break;
                    }
                }
            }
        }
        killed
    }
}

impl Drop for NodePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}
