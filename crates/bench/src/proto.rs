//! Control protocol between a multi-process driver (`loadgen --procs`)
//! and its `cbm-node` worker processes.
//!
//! Framing reuses the transport's length-prefixed CRC frames
//! ([`cbm_net::tcp::write_frame`] / [`cbm_net::tcp::read_frame`]) over
//! one TCP stream per node; bodies are [`Wire`]-encoded [`Ctrl`]
//! messages. The driver listens, each spawned node dials back and
//! announces itself with [`Ctrl::Hello`], then serves [`Ctrl::Run`]
//! requests until [`Ctrl::Shutdown`] (or EOF — a dead driver must
//! never leave orphaned node processes computing).
//!
//! Reports cross the wire **without** their flight records
//! ([`cbm_store::codec`] encodes `trace` as absent): traces are dumped
//! node-side into the leg's `trace_dir`, which on a loopback fleet is
//! the same filesystem the driver's CI step uploads from.

use cbm_net::tcp::{read_frame, write_frame, MAX_FRAME};
use cbm_net::wire::{from_bytes, to_bytes, Wire};
use cbm_store::{StoreConfig, StoreReport};
use std::io::{self, Read, Write};

use crate::Workload;

/// One dispatched matrix cell: everything a node needs to reproduce
/// the driver's in-process run bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct LegSpec {
    /// Leg name (keys the gate baseline and trace filenames).
    pub name: String,
    /// Full engine configuration, seed included.
    pub cfg: StoreConfig,
    /// Which shared generator drives the ops ([`crate::run_workload`]).
    pub workload: Workload,
    /// Force a trace dump even for a green leg (`--trace`).
    pub trace: bool,
    /// Where the node writes flight-record dumps.
    pub trace_dir: String,
}

/// A control-stream message. Driver → node: `Run`, `Shutdown`;
/// node → driver: `Hello`, `Report`, `Error`.
#[derive(Debug)]
pub enum Ctrl {
    /// Announce this node's id right after connecting.
    Hello(u32),
    /// Run one leg and reply with `Report` (or `Error`).
    Run(Box<LegSpec>),
    /// The finished leg's report (flight record stays node-side).
    Report(Box<StoreReport>),
    /// The leg could not run; the driver fails the leg with this text.
    Error(String),
    /// Exit cleanly.
    Shutdown,
}

impl Wire for Workload {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            Workload::Register {
                read_ratio,
                remote_read_ratio,
            } => {
                out.push(0);
                read_ratio.put(out);
                remote_read_ratio.put(out);
            }
            Workload::Counter => out.push(1),
        }
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(match u8::get(buf, pos)? {
            0 => Workload::Register {
                read_ratio: f64::get(buf, pos)?,
                remote_read_ratio: f64::get(buf, pos)?,
            },
            1 => Workload::Counter,
            _ => return None,
        })
    }
}

impl Wire for LegSpec {
    fn put(&self, out: &mut Vec<u8>) {
        self.name.put(out);
        self.cfg.put(out);
        self.workload.put(out);
        self.trace.put(out);
        self.trace_dir.put(out);
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(LegSpec {
            name: String::get(buf, pos)?,
            cfg: StoreConfig::get(buf, pos)?,
            workload: Workload::get(buf, pos)?,
            trace: bool::get(buf, pos)?,
            trace_dir: String::get(buf, pos)?,
        })
    }
}

impl Wire for Ctrl {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            Ctrl::Hello(id) => {
                out.push(0);
                id.put(out);
            }
            Ctrl::Run(spec) => {
                out.push(1);
                spec.put(out);
            }
            Ctrl::Report(report) => {
                out.push(2);
                report.put(out);
            }
            Ctrl::Error(text) => {
                out.push(3);
                text.put(out);
            }
            Ctrl::Shutdown => out.push(4),
        }
    }
    fn get(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(match u8::get(buf, pos)? {
            0 => Ctrl::Hello(u32::get(buf, pos)?),
            1 => Ctrl::Run(Box::new(LegSpec::get(buf, pos)?)),
            2 => Ctrl::Report(Box::new(StoreReport::get(buf, pos)?)),
            3 => Ctrl::Error(String::get(buf, pos)?),
            4 => Ctrl::Shutdown,
            _ => return None,
        })
    }
}

/// Write one control message as a CRC frame.
pub fn send_ctrl<W: Write>(w: &mut W, msg: &Ctrl) -> io::Result<()> {
    write_frame(w, &to_bytes(msg))
}

/// Read one control message; `Ok(None)` on clean EOF at a frame
/// boundary (peer gone), `Err` on corruption or an undecodable body.
pub fn recv_ctrl<R: Read>(r: &mut R) -> io::Result<Option<Ctrl>> {
    match read_frame(r, MAX_FRAME)? {
        None => Ok(None),
        Some(body) => from_bytes::<Ctrl>(&body).map(Some).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "undecodable control message")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LegSpec {
        LegSpec {
            name: "cc-4w-64o-b8-r50-quick".into(),
            cfg: StoreConfig::default(),
            workload: Workload::Register {
                read_ratio: 0.5,
                remote_read_ratio: 0.05,
            },
            trace: false,
            trace_dir: "traces".into(),
        }
    }

    #[test]
    fn leg_spec_roundtrips() {
        let s = spec();
        let bytes = to_bytes(&s);
        assert_eq!(from_bytes::<LegSpec>(&bytes), Some(s));
    }

    #[test]
    fn ctrl_messages_roundtrip_over_a_stream() {
        let mut buf = Vec::new();
        send_ctrl(&mut buf, &Ctrl::Hello(3)).unwrap();
        send_ctrl(&mut buf, &Ctrl::Run(Box::new(spec()))).unwrap();
        send_ctrl(&mut buf, &Ctrl::Shutdown).unwrap();
        let mut r = &buf[..];
        assert!(matches!(recv_ctrl(&mut r).unwrap(), Some(Ctrl::Hello(3))));
        match recv_ctrl(&mut r).unwrap() {
            Some(Ctrl::Run(s)) => assert_eq!(*s, spec()),
            other => panic!("expected Run, got {other:?}"),
        }
        assert!(matches!(recv_ctrl(&mut r).unwrap(), Some(Ctrl::Shutdown)));
        assert!(recv_ctrl(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_control_stream_errors() {
        let mut buf = Vec::new();
        send_ctrl(&mut buf, &Ctrl::Hello(1)).unwrap();
        let mut r = &buf[..buf.len() - 1];
        assert!(recv_ctrl(&mut r).is_err(), "mid-frame EOF is an error");
    }
}
