//! Experiment E4 — **Fig. 4 + Proposition 6**: the causal-consistency
//! algorithm, swept over cluster size and network latency, every run
//! verified causally consistent against its own witness.
//!
//! Also prints the wait-freedom evidence the paper's §6.2 promises:
//! operation latency is identically zero regardless of network delay,
//! while the sequentially consistent baseline's latency tracks the
//! delay (the §1 motivation).
//!
//! ```text
//! cargo run --release -p cbm-bench --bin fig4_cc_algorithm
//! ```

use cbm_adt::window::WindowArray;
use cbm_bench::render_table;
use cbm_check::verify::verify_cc_execution;
use cbm_check::{check, Budget, Criterion, Verdict};
use cbm_core::causal::CausalShared;
use cbm_core::cluster::Cluster;
use cbm_core::seq::SeqShared;
use cbm_core::workload::{window_script, WindowWorkload};
use cbm_net::latency::LatencyModel;

fn main() {
    println!("== Fig. 4: wait-free causally consistent W_k^K (Prop. 6) ==\n");
    let adt = WindowArray::new(4, 3);

    let mut rows = Vec::new();
    let mut verified = 0u32;
    let mut runs = 0u32;
    for procs in [2usize, 4, 8, 16] {
        for mean_delay in [10u64, 100, 1000] {
            let latency = LatencyModel::Uniform(1, 2 * mean_delay);
            let mut msgs = 0u64;
            let mut bytes = 0u64;
            let mut ops = 0u64;
            let seeds = 5;
            for seed in 0..seeds {
                let cfg = WindowWorkload {
                    procs,
                    ops_per_proc: 20,
                    streams: 4,
                    write_ratio: 0.6,
                    max_think: 20,
                    seed: seed + procs as u64 * 1000 + mean_delay,
                };
                let cluster: Cluster<WindowArray, CausalShared<WindowArray>> =
                    Cluster::new(procs, adt, latency, seed);
                let res = cluster.run(window_script(&cfg));
                runs += 1;
                ops += res.history.len() as u64;
                msgs += res.stats.msgs_sent;
                bytes += res.stats.bytes_sent;
                assert!(
                    res.stats.op_latencies.iter().all(|&l| l == 0),
                    "wait-freedom violated"
                );
                let ok = verify_cc_execution(
                    &adt,
                    &res.history,
                    &res.causal,
                    &res.apply_orders,
                    &res.own,
                );
                assert_eq!(ok, Ok(()), "Prop. 6 violated: procs {procs} seed {seed}");
                verified += 1;
            }
            rows.push(vec![
                procs.to_string(),
                mean_delay.to_string(),
                format!("{}", ops),
                "0.0".to_string(),
                format!("{:.2}", msgs as f64 / ops as f64),
                format!("{:.1}", bytes as f64 / msgs.max(1) as f64),
                format!("{seeds}/{seeds}"),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "procs",
                "mean delay",
                "ops",
                "op latency",
                "msgs/op",
                "bytes/msg",
                "CC verified"
            ],
            &rows
        )
    );
    println!("({verified}/{runs} runs verified causally consistent via their witnesses)\n");

    // contrast with the SC baseline: latency tracks network delay
    println!("contrast (motivation, §1): mean op latency vs network delay\n");
    let mut rows = Vec::new();
    for mean_delay in [10u64, 50, 200, 800] {
        let latency = LatencyModel::Constant(mean_delay);
        let cfg = WindowWorkload {
            procs: 4,
            ops_per_proc: 10,
            streams: 2,
            write_ratio: 0.5,
            max_think: 5,
            seed: mean_delay,
        };
        let adt2 = WindowArray::new(2, 2);
        let sc: Cluster<WindowArray, SeqShared<WindowArray>> = Cluster::new(4, adt2, latency, 1);
        let cc: Cluster<WindowArray, CausalShared<WindowArray>> = Cluster::new(4, adt2, latency, 1);
        let rs = sc.run(window_script(&cfg));
        let rc = cc.run(window_script(&cfg));
        rows.push(vec![
            mean_delay.to_string(),
            format!("{:.1}", rc.stats.mean_latency()),
            format!("{:.1}", rs.stats.mean_latency()),
            cbm_bench::bar(rs.stats.mean_latency(), 1700.0, 30),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["delay", "CC latency", "SC latency", "SC latency bar"],
            &rows
        )
    );

    // small runs double-checked by the search decision procedure
    println!("\ncross-check: small runs decided CC by bounded search:");
    let mut all = true;
    for seed in 0..5 {
        let cfg = WindowWorkload {
            procs: 2,
            ops_per_proc: 5,
            streams: 1,
            write_ratio: 0.5,
            max_think: 25,
            seed,
        };
        let adt3 = WindowArray::new(1, 2);
        let cluster: Cluster<WindowArray, CausalShared<WindowArray>> =
            Cluster::new(2, adt3, LatencyModel::Uniform(1, 60), seed);
        let res = cluster.run(window_script(&cfg));
        let v = check(Criterion::Cc, &adt3, &res.history, &Budget::default()).verdict;
        all &= v == Verdict::Sat;
        println!("  seed {seed}: {v}");
    }
    assert!(all);
    println!("\nProp. 6 reproduced: every admitted history is causally consistent.");
}
