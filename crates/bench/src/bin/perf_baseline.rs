//! Emit the committed checker performance baseline (`BENCH_checker.json`).
//!
//! ```text
//! perf_baseline [--quick] [--out PATH] [--iters N] [--gate PATH] [--summary PATH]
//! ```
//!
//! `--summary` appends a markdown table of checker cells (nodes vs
//! the `--gate` baseline when given) — CI points it at
//! `$GITHUB_STEP_SUMMARY` so node regressions are readable without
//! downloading artifacts.
//!
//! Runs a **fixed workload matrix** — every generic criterion over the
//! recorded window-array histories of `checker_scaling` (3/5/7 ops per
//! process, seed 7), plus a scenario-sweep leg over the registry — and
//! writes one JSON document with, per cell: the verdict, the search
//! nodes used, and best/mean wall time over the measured iterations.
//!
//! Two consumers:
//!
//! * **the perf trajectory** — the emitted file is committed at the
//!   repo root as `BENCH_checker.json`; future PRs regenerate it on
//!   the same machine and diff `best_ns`/`nodes` to demonstrate (or
//!   catch) checker-speed movement;
//! * **CI `perf-smoke`** — runs `perf_baseline --quick --gate
//!   BENCH_checker.json`: fails on a panic, on any `unknown` verdict
//!   in the matrix (an "Unknown-storm" means a search regression blew
//!   the node budget), or — the deterministic regression gate — when a
//!   fresh cell's **search node count** exceeds the committed
//!   baseline's by more than 10% (node counts are a pure function of
//!   the seeded workload and the search, so they diff exactly across
//!   machines). Wall times are recorded but **never** gate CI, since
//!   runner hardware varies.
//!
//! Exit status: non-zero iff a verdict in the matrix is `unknown`, a
//! scenario run fails verification, or the node gate trips.
//!
//! The run also measures **tracing overhead**: one quick store leg
//! with the `cbm-obs` flight recorder off, then on, reporting the
//! throughput ratio to stdout and `--summary`. The column is
//! **non-gating** (wall-clock, machine-dependent) and is not part of
//! the committed JSON; the observability acceptance bar (tracing-on
//! within 10% of tracing-off) is checked by eye on this line.

use cbm_bench::{field_str, field_u64, recorded_window_adt, recorded_window_history};
use cbm_check::{check, Budget, Criterion, Verdict};
use cbm_sim::{registry, run_scenario};
use std::process::ExitCode;
use std::time::Instant;

struct CheckerCell {
    criterion: &'static str,
    ops_per_proc: usize,
    events: usize,
    verdict: Verdict,
    nodes: u64,
    best_ns: u128,
    mean_ns: u128,
}

struct ScenarioCell {
    scenario: String,
    seeds: u64,
    failures: usize,
    total_ms: u128,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = String::from("BENCH_checker.json");
    let mut iters: u32 = 0;
    let mut gate_path: Option<String> = None;
    let mut summary_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--gate" => match it.next() {
                Some(p) => gate_path = Some(p.clone()),
                None => {
                    eprintln!("--gate needs a path");
                    return ExitCode::from(2);
                }
            },
            "--summary" => match it.next() {
                Some(p) => summary_path = Some(p.clone()),
                None => {
                    eprintln!("--summary needs a path");
                    return ExitCode::from(2);
                }
            },
            "--iters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => iters = n,
                None => {
                    eprintln!("--iters needs a number");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "perf_baseline [--quick] [--out PATH] [--iters N] [--gate PATH] \
                     [--summary PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    if iters == 0 {
        iters = if quick { 3 } else { 15 };
    }
    let ops_matrix: &[usize] = if quick { &[3, 5] } else { &[3, 5, 7] };
    let seeds_per_scenario: u64 = if quick { 2 } else { 4 };

    // --- Checker matrix -------------------------------------------------
    let adt = recorded_window_adt();
    let budget = Budget::default();
    let mut cells: Vec<CheckerCell> = Vec::new();
    let mut unknowns = 0usize;
    for &ops in ops_matrix {
        let h = recorded_window_history(ops, 7);
        for crit in Criterion::ALL {
            let mut best = u128::MAX;
            let mut total = 0u128;
            let mut verdict = Verdict::Unknown;
            let mut nodes = 0u64;
            for _ in 0..iters {
                let t = Instant::now();
                let r = check(crit, &adt, &h, &budget);
                let ns = t.elapsed().as_nanos();
                best = best.min(ns);
                total += ns;
                verdict = r.verdict;
                nodes = r.nodes_used;
            }
            if verdict == Verdict::Unknown {
                unknowns += 1;
                eprintln!(
                    "UNKNOWN verdict: {} at {} ops/proc — node budget exhausted",
                    crit.name(),
                    ops
                );
            }
            cells.push(CheckerCell {
                criterion: crit.name(),
                ops_per_proc: ops,
                events: h.len(),
                verdict,
                nodes,
                best_ns: best,
                mean_ns: total / iters as u128,
            });
        }
    }

    // --- Scenario leg ---------------------------------------------------
    let mut scen_cells: Vec<ScenarioCell> = Vec::new();
    let mut scen_failures = 0usize;
    for scenario in registry::scenarios() {
        let t = Instant::now();
        let mut failures = 0usize;
        for seed in 0..seeds_per_scenario {
            let o = run_scenario(&scenario, seed);
            if !o.passes() {
                failures += 1;
                eprintln!("FAIL {} seed {}: {:?}", scenario.name, seed, o.failure());
            }
        }
        scen_failures += failures;
        scen_cells.push(ScenarioCell {
            scenario: scenario.name.to_string(),
            seeds: seeds_per_scenario,
            failures,
            total_ms: t.elapsed().as_millis(),
        });
    }

    // --- Tracing overhead (non-gating) ----------------------------------
    let (ops_off, ops_on) = tracing_overhead(quick);
    let overhead_pct = (ops_off / ops_on - 1.0) * 100.0;
    println!(
        "tracing overhead (store leg, non-gating): off {:.0} ops/s, on {:.0} ops/s ({:+.1}%)",
        ops_off, ops_on, overhead_pct
    );

    // --- Emit -----------------------------------------------------------
    let json = render_json(quick, iters, &cells, &scen_cells);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("could not write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out_path} ({} checker cells, {} scenarios)",
        cells.len(),
        scen_cells.len()
    );
    for c in &cells {
        println!(
            "  {:>4} {:>2} ops  {:>3}ev  {:>8}  nodes {:>6}  best {:>9} ns  mean {:>9} ns",
            c.criterion, c.ops_per_proc, c.events, c.verdict, c.nodes, c.best_ns, c.mean_ns
        );
    }

    // --- Node-count regression gate -------------------------------------
    let mut gate_failures = 0usize;
    // parsed once; reused by the job summary below
    let mut committed_nodes: std::collections::HashMap<(String, usize), u64> =
        std::collections::HashMap::new();
    if let Some(path) = gate_path.as_deref() {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("could not read gate baseline {path}: {e}");
                gate_failures += 1;
            }
            Ok(baseline) => {
                let committed = parse_checker_nodes(&baseline);
                if committed.is_empty() {
                    eprintln!("gate baseline {path} has no checker cells");
                    gate_failures += 1;
                }
                let mut compared = 0usize;
                for c in &cells {
                    let Some(&base_nodes) =
                        committed.get(&(c.criterion.to_string(), c.ops_per_proc))
                    else {
                        continue; // quick runs cover a subset of the committed matrix
                    };
                    compared += 1;
                    // >10% growth fails; node counts are deterministic, so
                    // this is machine-independent (wall times never gate)
                    if c.nodes * 10 > base_nodes * 11 {
                        gate_failures += 1;
                        eprintln!(
                            "NODE REGRESSION: {} at {} ops/proc used {} nodes vs committed {} (+{:.0}%)",
                            c.criterion,
                            c.ops_per_proc,
                            c.nodes,
                            base_nodes,
                            (c.nodes as f64 / base_nodes as f64 - 1.0) * 100.0
                        );
                    }
                }
                if compared == 0 {
                    eprintln!("gate baseline {path} shares no cells with this run's matrix");
                    gate_failures += 1;
                }
                println!("node gate: {compared} cell(s) compared against {path}");
                committed_nodes = committed;
            }
        }
    }

    if let Some(path) = summary_path {
        if let Err(e) = append_summary(&path, quick, &cells, &scen_cells, &committed_nodes) {
            eprintln!("could not write summary {path}: {e}");
        }
        let row = vec![vec![
            format!("{ops_off:.0}"),
            format!("{ops_on:.0}"),
            format!("{overhead_pct:+.1}%"),
        ]];
        if let Err(e) = cbm_bench::append_summary_table(
            &path,
            "Tracing overhead (non-gating)",
            &["ops/s trace off", "ops/s trace on", "overhead"],
            &row,
        ) {
            eprintln!("could not write summary {path}: {e}");
        }
    }

    if unknowns > 0 || scen_failures > 0 || gate_failures > 0 {
        eprintln!(
            "perf_baseline: {unknowns} unknown verdict(s), {scen_failures} scenario failure(s), \
             {gate_failures} gate failure(s)"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Run one small store leg with the flight recorder off, then on,
/// and return `(ops_per_sec_off, ops_per_sec_on)`. Same
/// `(config, seed)` both times — tracing must not change any
/// deterministic column, only (bounded) wall time.
fn tracing_overhead(quick: bool) -> (f64, f64) {
    use cbm_adt::register::{RegInput, Register};
    use cbm_adt::space::SpaceInput;
    use cbm_store::{
        BatchPolicy, DurableConfig, Mode, ObsConfig, ShardConfig, StoreConfig, VerifyConfig,
    };
    use rand::Rng;

    let ops = if quick { 4_000 } else { 40_000 };
    let mut cfg = StoreConfig {
        workers: 4,
        objects: 64,
        ops_per_worker: ops,
        mode: Mode::Causal,
        batch: BatchPolicy::Every(8),
        verify: VerifyConfig {
            every_ops: ops / 4,
            window_ops: 24,
            sample_every: 1,
            monitor: false,
        },
        seed: 42,
        sharding: ShardConfig::full(),
        chaos: cbm_net::fault::FaultPlan::new(),
        obs: ObsConfig::default(),
        durable: DurableConfig::default(),
    };
    let gen = |_: usize, _: u64, rng: &mut rand::rngs::StdRng| {
        let obj = rng.gen_range(0u32..64);
        if rng.gen_bool(0.5) {
            SpaceInput::new(obj, RegInput::Read)
        } else {
            SpaceInput::new(obj, RegInput::Write(rng.gen_range(1u64..1_000_000)))
        }
    };
    // best-of-3 per side: the legs are short, so single runs are too
    // noisy to read a ~5% effect from
    let best = |cfg: &cbm_store::StoreConfig| {
        (0..3)
            .map(|_| cbm_store::run(&Register, cfg, gen).ops_per_sec)
            .fold(0.0f64, f64::max)
    };
    let off = best(&cfg);
    cfg.obs.trace = true;
    (off, best(&cfg))
}

/// Append a GitHub Actions job-summary markdown table: checker node
/// counts against the committed baseline, plus the scenario sweep.
fn append_summary(
    path: &str,
    quick: bool,
    cells: &[CheckerCell],
    scen: &[ScenarioCell],
    committed: &std::collections::HashMap<(String, usize), u64>,
) -> std::io::Result<()> {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let (base, delta) = match committed.get(&(c.criterion.to_string(), c.ops_per_proc)) {
                Some(&b) if b > 0 => (
                    b.to_string(),
                    format!("{:+.1}%", (c.nodes as f64 / b as f64 - 1.0) * 100.0),
                ),
                _ => ("—".into(), "—".into()),
            };
            vec![
                c.criterion.to_string(),
                c.ops_per_proc.to_string(),
                c.verdict.to_string(),
                c.nodes.to_string(),
                base,
                delta,
                format!("{:.1}", c.best_ns as f64 / 1_000.0),
            ]
        })
        .collect();
    cbm_bench::append_summary_table(
        path,
        &format!(
            "Checker perf smoke ({})",
            if quick { "quick" } else { "full" }
        ),
        &[
            "criterion",
            "ops/proc",
            "verdict",
            "nodes",
            "baseline",
            "Δ nodes",
            "best µs",
        ],
        &rows,
    )?;
    let scen_rows: Vec<Vec<String>> = scen
        .iter()
        .map(|s| {
            vec![
                s.scenario.clone(),
                s.seeds.to_string(),
                s.failures.to_string(),
                s.total_ms.to_string(),
            ]
        })
        .collect();
    cbm_bench::append_summary_table(
        path,
        "",
        &["scenario", "seeds", "failures", "total ms"],
        &scen_rows,
    )
}

/// Extract `(criterion, ops_per_proc) -> nodes` from a committed
/// baseline document (the offline `serde` stand-in has no
/// deserializer; the emitter writes one checker cell per line, which
/// this scanner relies on).
fn parse_checker_nodes(json: &str) -> std::collections::HashMap<(String, usize), u64> {
    let mut out = std::collections::HashMap::new();
    for line in json.lines() {
        let Some(criterion) = field_str(line, "criterion") else {
            continue;
        };
        let (Some(ops), Some(nodes)) = (field_u64(line, "ops_per_proc"), field_u64(line, "nodes"))
        else {
            continue;
        };
        out.insert((criterion, ops as usize), nodes);
    }
    out
}

/// Hand-rolled JSON writer: the offline `serde` stand-in has no
/// serializer, and the schema is small enough that explicit rendering
/// doubles as its documentation.
fn render_json(quick: bool, iters: u32, cells: &[CheckerCell], scens: &[ScenarioCell]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"cbm-perf-baseline-v1\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"iters\": {iters},\n"));
    s.push_str("  \"workload\": \"recorded_window_history(ops, seed=7), 2 procs, W2^1\",\n");
    s.push_str("  \"checker\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"criterion\": \"{}\", \"ops_per_proc\": {}, \"events\": {}, \"verdict\": \"{}\", \"nodes\": {}, \"best_ns\": {}, \"mean_ns\": {}}}{}\n",
            c.criterion,
            c.ops_per_proc,
            c.events,
            c.verdict,
            c.nodes,
            c.best_ns,
            c.mean_ns,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"scenarios\": [\n");
    for (i, c) in scens.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"seeds\": {}, \"failures\": {}, \"total_ms\": {}}}{}\n",
            c.scenario,
            c.seeds,
            c.failures,
            c.total_ms,
            if i + 1 < scens.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}
