//! Experiment E5 — **Fig. 5 + Proposition 7**: the causal-convergence
//! algorithm. Every run must (a) verify causally convergent against
//! its timestamp witness, (b) converge at quiescence, and (c) agree
//! with the verbatim Fig. 5 object.
//!
//! ```text
//! cargo run --release -p cbm-bench --bin fig5_ccv_algorithm
//! ```

use cbm_adt::window::WindowArray;
use cbm_bench::render_table;
use cbm_check::verify::verify_ccv_execution;
use cbm_check::{check, Budget, Criterion, Verdict};
use cbm_core::cluster::Cluster;
use cbm_core::convergent::ConvergentShared;
use cbm_core::wk_array::WkArrayCcv;
use cbm_core::workload::{quiescent_script, window_script, WindowWorkload};
use cbm_net::latency::LatencyModel;

fn main() {
    println!("== Fig. 5: wait-free causally convergent W_k^K (Prop. 7) ==\n");
    let adt = WindowArray::new(4, 3);

    let mut rows = Vec::new();
    for procs in [2usize, 4, 8, 16] {
        for mean_delay in [10u64, 100, 1000] {
            let latency = LatencyModel::Uniform(1, 2 * mean_delay);
            let seeds = 5;
            let mut converged = 0;
            let mut verified = 0;
            let mut msgs = 0u64;
            let mut bytes = 0u64;
            let mut ops = 0u64;
            for seed in 0..seeds {
                let cfg = WindowWorkload {
                    procs,
                    ops_per_proc: 20,
                    streams: 4,
                    write_ratio: 0.6,
                    max_think: 20,
                    seed: seed + procs as u64 * 7000 + mean_delay,
                };
                let cluster: Cluster<WindowArray, ConvergentShared<WindowArray>> =
                    Cluster::new(procs, adt, latency, seed);
                let res = cluster.run(window_script(&cfg));
                ops += res.history.len() as u64;
                msgs += res.stats.msgs_sent;
                bytes += res.stats.bytes_sent;
                assert!(res.stats.op_latencies.iter().all(|&l| l == 0));
                converged += res.stats.converged as u32;
                // witness verification: arbitration from replica 0 plus
                // the delivered-before causal order
                let arb = res.arbitration.clone().expect("arbitrated flavour");
                if let Some(total) = res.ccv_total(&arb) {
                    let ok = verify_ccv_execution(&adt, &res.history, &res.causal, &total, 1);
                    assert_eq!(
                        ok,
                        Ok(()),
                        "Prop. 7 violated: procs {procs} delay {mean_delay} seed {seed}"
                    );
                    verified += 1;
                }
            }
            assert_eq!(converged as u64, seeds, "a CCv run failed to converge");
            rows.push(vec![
                procs.to_string(),
                mean_delay.to_string(),
                ops.to_string(),
                "0.0".into(),
                format!("{:.2}", msgs as f64 / ops as f64),
                format!("{:.1}", bytes as f64 / msgs.max(1) as f64),
                format!("{converged}/{seeds}"),
                format!("{verified}/{seeds}"),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "procs",
                "mean delay",
                "ops",
                "op latency",
                "msgs/op",
                "bytes/msg",
                "converged",
                "CCv verified",
            ],
            &rows
        )
    );

    // convergence time vs latency tail
    println!("\nconvergence time after the last update vs latency tail:\n");
    let mut rows = Vec::new();
    for tail in [20u64, 100, 500, 2000] {
        let adt2 = WindowArray::new(2, 2);
        let cluster: Cluster<WindowArray, ConvergentShared<WindowArray>> = Cluster::new(
            4,
            adt2,
            LatencyModel::HeavyTail {
                base: 5,
                tail_prob: 0.4,
                tail_max: tail,
            },
            tail,
        );
        let res = cluster.run(quiescent_script(4, 10, 2, tail * 20, tail));
        assert!(res.stats.converged);
        rows.push(vec![
            tail.to_string(),
            res.stats.makespan.to_string(),
            res.stats.quiescent_at.to_string(),
            cbm_bench::bar(res.stats.quiescent_at as f64, 4000.0, 30),
        ]);
    }
    println!(
        "{}",
        render_table(&["tail max", "last op", "quiescent at", "bar"], &rows)
    );

    // verbatim Fig. 5 equivalence
    println!("\nverbatim Fig. 5 object vs generalized replica (same seeds):");
    let mut equal = true;
    for seed in 0..5 {
        let cfg = WindowWorkload {
            procs: 3,
            ops_per_proc: 15,
            streams: 2,
            write_ratio: 0.7,
            max_think: 15,
            seed,
        };
        let adt3 = WindowArray::new(2, 3);
        let a: Cluster<WindowArray, ConvergentShared<WindowArray>> =
            Cluster::new(3, adt3, LatencyModel::Uniform(1, 80), seed);
        let b: Cluster<WindowArray, WkArrayCcv> =
            Cluster::new(3, adt3, LatencyModel::Uniform(1, 80), seed);
        let ra = a.run(window_script(&cfg));
        let rb = b.run(window_script(&cfg));
        let same = ra.final_states == rb.final_states;
        equal &= same;
        println!("  seed {seed}: states equal = {same}");
    }
    assert!(equal);

    // small runs decided CCv by search
    println!("\ncross-check: small runs decided CCv by bounded search:");
    for seed in 0..5 {
        let cfg = WindowWorkload {
            procs: 2,
            ops_per_proc: 5,
            streams: 1,
            write_ratio: 0.5,
            max_think: 25,
            seed: seed + 40,
        };
        let adt4 = WindowArray::new(1, 2);
        let cluster: Cluster<WindowArray, ConvergentShared<WindowArray>> =
            Cluster::new(2, adt4, LatencyModel::Uniform(1, 60), seed);
        let res = cluster.run(window_script(&cfg));
        let v = check(Criterion::Ccv, &adt4, &res.history, &Budget::default()).verdict;
        assert_eq!(v, Verdict::Sat);
        println!("  seed {seed}: {v}");
    }
    println!("\nProp. 7 reproduced: every admitted history is causally convergent.");
}
