//! List, run, and explore `cbm-sim` fault-injection scenarios.
//!
//! ```text
//! scenario_runner list
//! scenario_runner run [NAME] [--seed N]
//! scenario_runner explore [NAME] --seeds LO..HI [--threads N] [--record PATH]
//! ```
//!
//! * `list` — every registry scenario with flavour and expectations;
//! * `run` — run one scenario (or all of them) under one seed and
//!   print per-scenario stats: verification verdict, convergence time,
//!   messages/bytes, drop/duplicate counts;
//! * `explore` — sweep a seed range hunting for verification
//!   failures; `--threads N` spreads the `(scenario, seed)` pairs over
//!   N workers (reports stay byte-identical to `--threads 1`); with
//!   `--record`, failing `(scenario, seed)` pairs are appended to the
//!   regression corpus so `tests/scenarios.rs` replays them forever
//!   (see `docs/SIMULATION.md` and `docs/PERFORMANCE.md`).
//!
//! Exit status is non-zero if any run or sweep failed, so the binary
//! can gate CI jobs.

use cbm_bench::render_table;
use cbm_sim::corpus::CorpusEntry;
use cbm_sim::{corpus, explore, registry, run_scenario, Scenario, ScenarioOutcome};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut words = args.iter().map(String::as_str);
    match words.next() {
        None | Some("run") => cmd_run(&args),
        Some("list") => {
            cmd_list();
            ExitCode::SUCCESS
        }
        Some("explore") => cmd_explore(&args),
        Some("help") | Some("--help") | Some("-h") => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "scenario_runner — fault-injection scenarios over the cbm stack\n\n\
         USAGE:\n  scenario_runner list\n  scenario_runner run [NAME] [--seed N]\n  \
         scenario_runner explore [NAME] --seeds LO..HI [--threads N] [--record PATH]\n\n\
         Scenarios come from cbm-sim's registry; every run is verified\n\
         against its criterion (CC/CCv) and is a pure function of\n\
         (scenario, seed)."
    );
}

fn cmd_list() {
    let rows: Vec<Vec<String>> = registry::scenarios()
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.flavour.criterion().to_string(),
                s.procs.to_string(),
                format!("{}x{}", s.ops_per_proc, s.procs),
                if s.expect_converge { "yes" } else { "-" }.to_string(),
                s.description.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "scenario",
                "checks",
                "procs",
                "ops",
                "converge",
                "description"
            ],
            &rows
        )
    );
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut seed = 0u64;
    let mut name: Option<String> = None;
    let mut it = args
        .iter()
        .skip(if args.first().map(String::as_str) == Some("run") {
            1
        } else {
            0
        });
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = parse_or_die(it.next(), "--seed needs a value");
            }
            other if !other.starts_with('-') => name = Some(other.to_string()),
            other => {
                eprintln!("unknown flag '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    let targets: Vec<Scenario> = match &name {
        Some(n) => match registry::by_name(n) {
            Some(s) => vec![s],
            None => {
                eprintln!("unknown scenario '{n}' (try `scenario_runner list`)");
                return ExitCode::FAILURE;
            }
        },
        None => registry::scenarios(),
    };

    let outcomes: Vec<ScenarioOutcome> = targets.iter().map(|s| run_scenario(s, seed)).collect();
    let rows: Vec<Vec<String>> = outcomes.iter().map(outcome_row).collect();
    print!(
        "{}",
        render_table(
            &[
                "scenario", "seed", "verdict", "conv", "t_conv", "msgs", "bytes", "dropped", "dup",
                "parked",
            ],
            &rows
        )
    );
    let failed: Vec<&ScenarioOutcome> = outcomes.iter().filter(|o| !o.passes()).collect();
    if failed.is_empty() {
        println!(
            "\n{} scenario(s) verified under seed {seed}",
            outcomes.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failed {
            eprintln!("FAIL {} seed {}: {:?}", f.scenario, f.seed, f.failure());
        }
        ExitCode::FAILURE
    }
}

fn outcome_row(o: &ScenarioOutcome) -> Vec<String> {
    vec![
        o.scenario.clone(),
        o.seed.to_string(),
        match &o.verified {
            Ok(()) => format!("{} ok", o.criterion),
            Err(_) => format!("{} FAIL", o.criterion),
        },
        if o.converged { "yes" } else { "-" }.to_string(),
        o.convergence_time.to_string(),
        o.msgs_sent.to_string(),
        o.bytes_sent.to_string(),
        o.msgs_dropped.to_string(),
        o.msgs_duplicated.to_string(),
        o.msgs_parked.to_string(),
    ]
}

fn cmd_explore(args: &[String]) -> ExitCode {
    let mut name: Option<String> = None;
    let mut seeds = 0u64..16;
    let mut record: Option<PathBuf> = None;
    let mut threads = 1usize;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                threads = parse_or_die(it.next(), "--threads needs a count");
                if threads == 0 {
                    eprintln!("--threads must be at least 1");
                    return ExitCode::FAILURE;
                }
            }
            "--seeds" => {
                let spec: String = parse_or_die(it.next(), "--seeds needs LO..HI");
                let Some((lo, hi)) = spec.split_once("..") else {
                    eprintln!("--seeds wants LO..HI, got '{spec}'");
                    return ExitCode::FAILURE;
                };
                let (Ok(lo), Ok(hi)) = (lo.parse::<u64>(), hi.parse::<u64>()) else {
                    eprintln!("--seeds wants integers, got '{spec}'");
                    return ExitCode::FAILURE;
                };
                if lo >= hi {
                    eprintln!("--seeds range '{spec}' is empty — nothing would run");
                    return ExitCode::FAILURE;
                }
                seeds = lo..hi;
            }
            "--record" => {
                record = Some(PathBuf::from(parse_or_die::<String>(
                    it.next(),
                    "--record needs a path",
                )));
            }
            other if !other.starts_with('-') => name = Some(other.to_string()),
            other => {
                eprintln!("unknown flag '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    let reports = match &name {
        Some(n) => match registry::by_name(n) {
            Some(s) => vec![explore::explore_threaded(&s, seeds.clone(), threads)],
            None => {
                eprintln!("unknown scenario '{n}'");
                return ExitCode::FAILURE;
            }
        },
        None => explore::explore_all_threaded(seeds.clone(), threads),
    };

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.runs.to_string(),
                r.failures.len().to_string(),
                format!("{}/{}", r.converged_runs, r.runs),
                format!("{:.0}", r.mean_convergence_time),
                format!("{:.0}", r.mean_msgs_sent),
                r.total_dropped.to_string(),
                r.total_duplicated.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "scenario",
                "runs",
                "fails",
                "converged",
                "mean_t_conv",
                "mean_msgs",
                "dropped",
                "dup",
            ],
            &rows
        )
    );

    let mut any_fail = false;
    for r in &reports {
        for f in &r.failures {
            any_fail = true;
            eprintln!("FAIL {} seed {}: {}", f.scenario, f.seed, f.reason);
            if let Some(path) = &record {
                let entry = CorpusEntry {
                    scenario: f.scenario.clone(),
                    seed: f.seed,
                    note: format!("explorer: {}", f.reason),
                };
                // refuse duplicates: overlapping sweeps rediscover the
                // same pairs, and the committed corpus must not bloat
                match corpus::append_unique(path, &entry) {
                    Err(e) => eprintln!("could not record to corpus: {e}"),
                    Ok(true) => {
                        println!("recorded {} {} to {}", f.scenario, f.seed, path.display())
                    }
                    Ok(false) => println!(
                        "{} {} already in {} — not recorded again",
                        f.scenario,
                        f.seed,
                        path.display()
                    ),
                }
            }
        }
    }
    if any_fail {
        ExitCode::FAILURE
    } else {
        println!(
            "\nall scenarios clean over seeds {}..{}",
            seeds.start, seeds.end
        );
        ExitCode::SUCCESS
    }
}

fn parse_or_die<T: std::str::FromStr>(v: Option<&String>, msg: &str) -> T {
    match v.and_then(|s| s.parse().ok()) {
        Some(t) => t,
        None => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
