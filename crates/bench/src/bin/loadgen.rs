//! Drive the live store engine (`cbm-store`) across a workload matrix
//! and emit the committed throughput baseline (`BENCH_throughput.json`).
//!
//! ```text
//! loadgen [--quick] [--out PATH] [--summary PATH] [--baseline PATH]
//!         [--gate PATH] [--trace] [--trace-dir DIR] [--monitor]
//!         [--transport thread|tcp] [--procs N] [--log-dir DIR]
//!         [--workers N] [--objects N] [--ops N] [--read-ratio R]
//!         [--batch N|off] [--mode cc|ccv] [--seed S] [--rf N]
//!         [--locality N] [--remote-read-ratio R]
//! ```
//!
//! `--log-dir DIR` turns the per-worker durable epoch log on for every
//! leg (`docs/DURABILITY.md`), one subdirectory per leg. The log is
//! pure write-path — no messages, no ops — so the deterministic
//! columns are unchanged and the same `--gate` baselines hold; this is
//! what the `durability-smoke` CI job gates on.
//!
//! `--transport tcp` runs every leg's replica mesh over real loopback
//! sockets ([`cbm_net::tcp`]) instead of in-process channels. The
//! deterministic columns are transport-independent (the flush-marker
//! cut protocol pins the quiesce decision, `docs/DEPLOYMENT.md`), so
//! the same committed `--gate` baselines gate both transports — the
//! `socket-smoke` CI job holds that equivalence on every push.
//!
//! `--procs N` goes one step further: spawn `N` `cbm-node` worker
//! *processes* on loopback, dispatch the matrix legs across them over
//! a control socket (`cbm_bench::proto`), and collect their reports
//! into the same JSON/summary/gate paths. Each node hosts a full
//! replica set over its own TCP mesh, so every leg's counts stay a
//! pure function of `(config, seed)` while the matrix parallelises
//! across processes. Flight records are dumped node-side into
//! `--trace-dir` (same filesystem on a loopback fleet).
//!
//! `--trace` turns on the `cbm-obs` flight recorder for every leg and
//! dumps each leg's trace into `--trace-dir` (default `traces/`) as
//! both `<leg>.trace.json` (Chrome/Perfetto) and `<leg>.jsonl` (the
//! byte-comparable logical timeline; see `docs/OBSERVABILITY.md`).
//! Even without `--trace`, a leg that fails verification, escalates a
//! monitor suspicion, or needed repair/recovery dumps its flight
//! record automatically whenever the engine recorded one — the
//! `monitor-smoke` CI job uploads exactly those dumps. Tracing never
//! changes the deterministic message/byte counts, so `--trace`
//! composes with `--gate`.
//!
//! `--summary` appends a markdown table (one row per leg, with the
//! committed baseline's deterministic message count alongside when
//! `--baseline` names a readable throughput JSON) — CI points it at
//! `$GITHUB_STEP_SUMMARY` so regressions are readable without
//! downloading artifacts. Leg names key the lookup, so pass the
//! baseline generated from the **same matrix**: the committed
//! `BENCH_throughput_quick.json` for `--quick` runs,
//! `BENCH_throughput.json` for full runs.
//!
//! With no workload flags, runs the **fixed matrix** (threads ×
//! objects × read-ratio × batching × mode) and writes one JSON
//! document; passing any workload flag runs that single configuration
//! instead. Two consumers:
//!
//! * **the perf trajectory** — the matrix output is committed at the
//!   repo root as `BENCH_throughput.json`, the second axis next to
//!   `BENCH_checker.json`: future PRs regenerate it on the same
//!   machine and diff ops/sec, latency percentiles, and message
//!   counts. Message/batch/payload counts are **deterministic**
//!   (rendezvous points are operation-counted, not timed), so those
//!   columns diff exactly; wall-clock columns are machine-dependent.
//! * **CI `throughput-smoke`** — runs `loadgen --quick` and fails on a
//!   panic or on any failed sampled-window verification; wall times
//!   never gate CI.
//!
//! `--gate` turns the committed baseline into a **hard deterministic
//! gate**: every leg's `msgs_sent`, `batches_sent`, and
//! `payloads_sent` must reproduce the baseline's values exactly (they
//! are pure functions of config and seed — any deviation is a
//! behavioural change of the delivery path, not noise). Byte totals
//! are *not* gated: delta-encoded knowledge headers size by how much
//! changed on an edge since its previous envelope, which depends on
//! delivery interleaving (`docs/SHARDING.md`) — `bytes_sent` stays in
//! the JSON as an informational column. The `sharding-smoke` and
//! `scaling-smoke` CI jobs run the quick matrix under
//! `--gate BENCH_throughput_quick.json`, which pins the full-vs-partial
//! replication traffic win count-for-count.
//!
//! The **scaling axis** (`docs/SCALING.md`): the full matrix carries
//! 64/128/256-worker legs at rf 2 with locality-bounded placement
//! (`--locality`, [`ShardConfig::rf_local`]), whose committed curve is
//! the evidence that delta encoding keeps bytes/op flat-to-falling as
//! the cluster grows; the summary renders it as a bytes/op-vs-workers
//! table.
//!
//! The **monitor axis** (`docs/VERIFICATION.md`): both matrices carry
//! `-mon` twins of selected legs — identical workload with the
//! streaming bad-pattern monitor certifying every operation inline.
//! The monitor never sends messages, so a twin's deterministic counts
//! equal its base leg's and the pair measures pure checking tax —
//! wall-clock and machine-dependent; see "The monitor tax, honestly"
//! in `docs/THROUGHPUT.md`. `monitor_ops_checked` and
//! `monitor_escalations` are deterministic per (config, seed) and join
//! the `--gate` contract. `--monitor` forces the monitor on for every
//! leg of the run (or for the single `custom` leg), for ad-hoc
//! certification sweeps.
//!
//! Exit status: non-zero iff any leg reports a failed window, a
//! drain-point divergence (convergent mode), an uncertified op or
//! monitor-confirmed violation on a monitor-enabled leg, or a `--gate`
//! deviation.

use cbm_bench::fleet::NodePool;
use cbm_bench::proto::LegSpec;
use cbm_bench::{run_workload, Transport, Workload};
use cbm_store::{
    BatchPolicy, DurableConfig, Mode, ObsConfig, ShardConfig, StoreConfig, StoreReport,
    VerifyConfig,
};
use std::process::ExitCode;

/// One matrix cell.
#[derive(Clone)]
struct Leg {
    name: String,
    cfg: StoreConfig,
    read_ratio: f64,
    /// Fraction of reads that target an arbitrary object (and so may
    /// route to a remote replica under partial replication); the rest
    /// read objects the issuing worker hosts. Irrelevant at full
    /// replication, where every read is local anyway.
    remote_read_ratio: f64,
}

#[allow(clippy::too_many_arguments)] // a matrix-cell literal, not an API
fn leg(
    name: &str,
    mode: Mode,
    workers: usize,
    objects: usize,
    ops: usize,
    batch: BatchPolicy,
    read_ratio: f64,
    verify_every: usize,
    window_ops: usize,
    seed: u64,
) -> Leg {
    Leg {
        name: name.to_string(),
        cfg: StoreConfig {
            workers,
            objects,
            ops_per_worker: ops,
            mode,
            batch,
            verify: VerifyConfig {
                every_ops: verify_every,
                window_ops,
                sample_every: 1,
                monitor: false,
            },
            seed,
            sharding: ShardConfig::full(),
            chaos: cbm_net::fault::FaultPlan::new(),
            obs: ObsConfig::default(),
            durable: DurableConfig::default(),
        },
        read_ratio,
        remote_read_ratio: 0.0,
    }
}

/// A `leg` at replication factor `rf` with `remote` of its reads
/// targeting arbitrary (possibly non-hosted) objects.
fn sharded(mut l: Leg, rf: usize, remote: f64) -> Leg {
    l.cfg.sharding = ShardConfig::rf(rf);
    l.remote_read_ratio = remote;
    l
}

/// A `sharded` leg whose replicas are confined to a `locality`-worker
/// neighborhood of each shard's home — the large-cluster placement
/// that keeps interest fan-in (and delta-header size) bounded.
fn localized(mut l: Leg, rf: usize, locality: usize, remote: f64) -> Leg {
    l.cfg.sharding = ShardConfig::rf_local(rf, locality);
    l.remote_read_ratio = remote;
    l
}

/// The `-mon` twin of a leg: the identical workload with the
/// streaming bad-pattern monitor certifying every op inline
/// (`docs/VERIFICATION.md`). The monitor sends no messages, so the
/// twin's deterministic counts must equal the base leg's — the pair
/// isolates the pure checking tax.
fn monitored(base: &Leg) -> Leg {
    let mut l = base.clone();
    l.name.push_str("-mon");
    l.cfg.verify.monitor = true;
    l
}

/// Append `-mon` twins of the named legs to a matrix.
fn with_monitor_twins(mut legs: Vec<Leg>, names: &[&str]) -> Vec<Leg> {
    let twins: Vec<Leg> = legs
        .iter()
        .filter(|l| names.contains(&l.name.as_str()))
        .map(monitored)
        .collect();
    legs.extend(twins);
    legs
}

/// The committed matrix: the headline 1M-op batched run, its unbatched
/// twin (the ≥5× message-cut comparison), the convergent flavour, and
/// threads / objects / read-ratio sweep legs.
fn full_matrix() -> Vec<Leg> {
    let b32 = BatchPolicy::Every(32);
    let legs = vec![
        leg(
            "cc-4w-1024o-b32-r50",
            Mode::Causal,
            4,
            1024,
            250_000,
            b32,
            0.5,
            50_000,
            48,
            42,
        ),
        leg(
            "cc-4w-1024o-nobatch-r50",
            Mode::Causal,
            4,
            1024,
            250_000,
            BatchPolicy::Off,
            0.5,
            50_000,
            48,
            42,
        ),
        leg(
            "ccv-4w-1024o-b32-r50",
            Mode::Convergent,
            4,
            1024,
            250_000,
            b32,
            0.5,
            50_000,
            48,
            42,
        ),
        leg(
            "cc-2w-1024o-b32-r50",
            Mode::Causal,
            2,
            1024,
            250_000,
            b32,
            0.5,
            50_000,
            48,
            42,
        ),
        leg(
            "cc-8w-1024o-b32-r50",
            Mode::Causal,
            8,
            1024,
            125_000,
            b32,
            0.5,
            25_000,
            48,
            42,
        ),
        leg(
            "cc-4w-64o-b32-r50",
            Mode::Causal,
            4,
            64,
            250_000,
            b32,
            0.5,
            50_000,
            48,
            42,
        ),
        leg(
            "cc-4w-1024o-b32-r90",
            Mode::Causal,
            4,
            1024,
            250_000,
            b32,
            0.9,
            50_000,
            48,
            42,
        ),
        // the partial-replication axis: same workload shape as the
        // 8-worker full-replication leg, at rf 2 and rf 4, with 1% of
        // reads allowed to roam (exercising the request/reply path
        // without letting it dominate the traffic comparison)
        sharded(
            leg(
                "cc-8w-1024o-b32-r50-rf2",
                Mode::Causal,
                8,
                1024,
                125_000,
                b32,
                0.5,
                25_000,
                48,
                42,
            ),
            2,
            0.01,
        ),
        sharded(
            leg(
                "cc-8w-1024o-b32-r50-rf4",
                Mode::Causal,
                8,
                1024,
                125_000,
                b32,
                0.5,
                25_000,
                48,
                42,
            ),
            4,
            0.01,
        ),
        sharded(
            leg(
                "ccv-8w-1024o-b32-r50-rf2",
                Mode::Convergent,
                8,
                1024,
                125_000,
                b32,
                0.5,
                25_000,
                48,
                42,
            ),
            2,
            0.01,
        ),
        // the cluster-scaling axis (docs/SCALING.md): rf 2 with an
        // 8-worker aligned locality block, 64 -> 128 -> 256 workers at
        // a shrinking per-worker op count (the committed curve is
        // about bytes/op, which is per-op — not about wall time on an
        // oversubscribed runner). Roaming reads are rarer than on the
        // 8-worker rf legs (0.2% vs 1%) because a locality-placed
        // deployment is exactly one where clients read their own
        // block; the legs still route a few hundred cross-block reads
        // each, so the read-routing path stays exercised at every
        // cluster size. The curve these legs commit is the acceptance
        // evidence that delta-encoded metadata keeps bytes/op
        // flat-to-falling as the cluster grows.
        localized(
            leg(
                "cc-64w-1024o-b32-r50-rf2-loc8",
                Mode::Causal,
                64,
                1024,
                8_000,
                b32,
                0.5,
                4_000,
                24,
                42,
            ),
            2,
            8,
            0.002,
        ),
        localized(
            leg(
                "cc-128w-1024o-b32-r50-rf2-loc8",
                Mode::Causal,
                128,
                1024,
                4_000,
                b32,
                0.5,
                2_000,
                24,
                42,
            ),
            2,
            8,
            0.002,
        ),
        localized(
            leg(
                "cc-256w-1024o-b32-r50-rf2-loc8",
                Mode::Causal,
                256,
                1024,
                2_000,
                b32,
                0.5,
                1_000,
                24,
                42,
            ),
            2,
            8,
            0.002,
        ),
    ];
    // The monitor axis: the 1M-op 8-worker headline tax comparison,
    // the convergent flavour, and the rf-2 partial-replication leg
    // where served routed reads are certified on the serving side.
    with_monitor_twins(
        legs,
        &[
            "cc-8w-1024o-b32-r50",
            "ccv-4w-1024o-b32-r50",
            "cc-8w-1024o-b32-r50-rf2",
        ],
    )
}

/// CI smoke matrix: small enough for a debug-capable runner, still one
/// leg per mode plus the unbatched comparison.
fn quick_matrix() -> Vec<Leg> {
    let b8 = BatchPolicy::Every(8);
    let legs = vec![
        leg(
            "cc-4w-64o-b8-r50-quick",
            Mode::Causal,
            4,
            64,
            4_000,
            b8,
            0.5,
            1_000,
            24,
            42,
        ),
        leg(
            "cc-4w-64o-nobatch-r50-quick",
            Mode::Causal,
            4,
            64,
            4_000,
            BatchPolicy::Off,
            0.5,
            1_000,
            24,
            42,
        ),
        leg(
            "ccv-4w-64o-b8-r50-quick",
            Mode::Convergent,
            4,
            64,
            4_000,
            b8,
            0.5,
            1_000,
            24,
            42,
        ),
        // rf ∈ {1, 2}: the sharding-smoke axis (5% roaming reads keep
        // the routed-read path exercised in CI every run)
        sharded(
            leg(
                "cc-4w-64o-b8-r50-rf1-quick",
                Mode::Causal,
                4,
                64,
                4_000,
                b8,
                0.5,
                1_000,
                24,
                42,
            ),
            1,
            0.05,
        ),
        sharded(
            leg(
                "cc-4w-64o-b8-r50-rf2-quick",
                Mode::Causal,
                4,
                64,
                4_000,
                b8,
                0.5,
                1_000,
                24,
                42,
            ),
            2,
            0.05,
        ),
        sharded(
            leg(
                "ccv-4w-64o-b8-r50-rf2-quick",
                Mode::Convergent,
                4,
                64,
                4_000,
                b8,
                0.5,
                1_000,
                24,
                42,
            ),
            2,
            0.05,
        ),
        // the scaling-smoke cell: 64 workers, rf 2, locality 8 — keeps
        // the large-cluster delivery path (wide interest masks,
        // locality placement, delta headers over many edges) under the
        // exact-count gate on every push
        localized(
            leg(
                "cc-64w-256o-b8-r50-rf2-loc8-quick",
                Mode::Causal,
                64,
                256,
                1_000,
                b8,
                0.5,
                500,
                16,
                42,
            ),
            2,
            8,
            0.05,
        ),
    ];
    // the monitor-smoke cells: one per mode plus the rf-2 routed-read
    // flavour, gated on exact certified-op and escalation counts
    with_monitor_twins(
        legs,
        &[
            "cc-4w-64o-b8-r50-quick",
            "ccv-4w-64o-b8-r50-quick",
            "cc-4w-64o-b8-r50-rf2-quick",
        ],
    )
}

/// The shared register workload this leg denotes (the generator
/// itself lives in [`cbm_bench::run_workload`], where `cbm-node`
/// reproduces it bit-for-bit in multi-process runs).
fn workload_of(l: &Leg) -> Workload {
    Workload::Register {
        read_ratio: l.read_ratio,
        remote_read_ratio: l.remote_read_ratio,
    }
}

fn run_leg(l: &Leg, transport: Transport) -> StoreReport {
    run_workload(&workload_of(l), &l.cfg, transport)
}

/// Print one leg's verdict diagnostics and dump its flight record when
/// warranted; returns `true` iff the leg failed (a failed window, a
/// drain divergence, or an uncertified monitor-enabled run). In
/// multi-process runs the report arrives without its trace — the node
/// already dumped it into the shared `trace_dir`.
fn report_leg(l: &Leg, r: &StoreReport, trace: bool, trace_dir: &str) -> bool {
    for w in r.windows.iter().filter(|w| w.result.is_err()) {
        eprintln!(
            "{}: FAIL window {} [{}]: {:?}",
            l.name, w.window, w.criterion, w.result
        );
    }
    if r.monitor.enabled {
        eprintln!(
            "{}: monitor {}/{} ops certified, {} escalation(s) ({} cleared, {} violations)",
            l.name,
            r.monitor.ops_checked,
            r.total_ops,
            r.monitor.escalations,
            r.monitor.cleared,
            r.monitor.violations
        );
        for rec in &r.monitor.records {
            eprintln!(
                "  ESCALATE worker {} epoch {} op {}: {} ({} events) -> {}",
                rec.worker, rec.epoch, rec.at_op, rec.pattern, rec.events, rec.verdict
            );
        }
    }
    let uncertified = r.monitor.enabled && !r.monitor.certified(r.total_ops);
    if uncertified {
        eprintln!(
            "{}: FAIL monitor: certification shortfall ({}/{} ops) or confirmed violation",
            l.name, r.monitor.ops_checked, r.total_ops
        );
    }
    // Flight-recorder dump: always under --trace; automatically on a
    // failed verdict, a monitor escalation, or any repair/recovery the
    // engine traced — escalated legs always leave a post-mortem record
    // for CI to upload.
    if let Some(rec) = &r.trace {
        let wanted = trace
            || !r.verified()
            || r.monitor.escalations > 0
            || r.chaos.repairs > 0
            || !r.chaos.recoveries.is_empty();
        if wanted {
            match cbm_bench::write_trace(trace_dir, &l.name, rec) {
                Ok((chrome, jsonl)) => eprintln!("  trace: {chrome} + {jsonl}"),
                Err(e) => eprintln!("  trace: could not write to {trace_dir}: {e}"),
            }
        }
    }
    !r.verified() || uncertified
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path: Option<String> = None;
    let mut summary_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut gate_path: Option<String> = None;
    let mut trace = false;
    let mut trace_dir = String::from("traces");
    let mut force_monitor = false;
    let mut transport = Transport::Thread;
    let mut procs: usize = 0;
    let mut log_dir: Option<String> = None;
    let mut custom = StoreConfig::default();
    let mut custom_read_ratio = 0.5;
    let mut custom_remote_read_ratio = 0.05;
    let mut is_custom = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let next_usize = |flag: &str, it: &mut std::slice::Iter<String>| -> Option<usize> {
            let v = it.next().and_then(|v| v.parse().ok());
            if v.is_none() {
                eprintln!("{flag} needs a number");
            }
            v
        };
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--summary" => match it.next() {
                Some(p) => summary_path = Some(p.clone()),
                None => {
                    eprintln!("--summary needs a path");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(p.clone()),
                None => {
                    eprintln!("--baseline needs a path");
                    return ExitCode::from(2);
                }
            },
            "--gate" => match it.next() {
                Some(p) => gate_path = Some(p.clone()),
                None => {
                    eprintln!("--gate needs a baseline path");
                    return ExitCode::from(2);
                }
            },
            "--trace" => trace = true,
            "--monitor" => force_monitor = true,
            "--log-dir" => match it.next() {
                Some(p) => log_dir = Some(p.clone()),
                None => {
                    eprintln!("--log-dir needs a path");
                    return ExitCode::from(2);
                }
            },
            "--transport" => match it.next().map(String::as_str).and_then(Transport::parse) {
                Some(t) => transport = t,
                None => {
                    eprintln!("--transport needs thread or tcp");
                    return ExitCode::from(2);
                }
            },
            "--procs" => match next_usize("--procs", &mut it) {
                Some(v) if v > 0 => procs = v,
                _ => {
                    eprintln!("--procs needs a positive node count");
                    return ExitCode::from(2);
                }
            },
            "--trace-dir" => match it.next() {
                Some(p) => trace_dir = p.clone(),
                None => {
                    eprintln!("--trace-dir needs a path");
                    return ExitCode::from(2);
                }
            },
            "--rf" => match next_usize("--rf", &mut it) {
                Some(v) => {
                    custom.sharding = ShardConfig::rf(v);
                    is_custom = true;
                }
                None => return ExitCode::from(2),
            },
            "--locality" => match next_usize("--locality", &mut it) {
                Some(v) => {
                    custom.sharding.locality = v;
                    is_custom = true;
                }
                None => return ExitCode::from(2),
            },
            "--remote-read-ratio" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => {
                    custom_remote_read_ratio = v.clamp(0.0, 1.0);
                    is_custom = true;
                }
                None => {
                    eprintln!("--remote-read-ratio needs a number in [0,1]");
                    return ExitCode::from(2);
                }
            },
            "--workers" => match next_usize("--workers", &mut it) {
                Some(v) => {
                    custom.workers = v;
                    is_custom = true;
                }
                None => return ExitCode::from(2),
            },
            "--objects" => match next_usize("--objects", &mut it) {
                Some(v) => {
                    custom.objects = v.max(1);
                    is_custom = true;
                }
                None => return ExitCode::from(2),
            },
            "--ops" => match next_usize("--ops", &mut it) {
                Some(v) => {
                    custom.ops_per_worker = v;
                    is_custom = true;
                }
                None => return ExitCode::from(2),
            },
            "--read-ratio" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => {
                    custom_read_ratio = v.clamp(0.0, 1.0);
                    is_custom = true;
                }
                None => {
                    eprintln!("--read-ratio needs a number in [0,1]");
                    return ExitCode::from(2);
                }
            },
            "--batch" => match it.next().map(String::as_str) {
                Some("off") => {
                    custom.batch = BatchPolicy::Off;
                    is_custom = true;
                }
                Some(v) => match v.parse() {
                    Ok(k) => {
                        custom.batch = BatchPolicy::Every(k);
                        is_custom = true;
                    }
                    Err(_) => {
                        eprintln!("--batch needs a number or 'off'");
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("--batch needs a number or 'off'");
                    return ExitCode::from(2);
                }
            },
            "--mode" => match it.next().map(String::as_str) {
                Some("cc") => {
                    custom.mode = Mode::Causal;
                    is_custom = true;
                }
                Some("ccv") => {
                    custom.mode = Mode::Convergent;
                    is_custom = true;
                }
                _ => {
                    eprintln!("--mode needs cc or ccv");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => {
                    custom.seed = v;
                    is_custom = true;
                }
                None => {
                    eprintln!("--seed needs a number");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "loadgen [--quick] [--out PATH] [--summary PATH] [--baseline PATH] \
                     [--gate PATH] [--trace] [--trace-dir DIR] [--monitor] [--log-dir DIR] \
                     [--transport thread|tcp] [--procs N] [--workers N] \
                     [--objects N] [--ops N] [--read-ratio R] [--batch N|off] [--mode cc|ccv] \
                     [--seed S] [--rf N] [--locality N] [--remote-read-ratio R]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                return ExitCode::from(2);
            }
        }
    }

    let mut legs: Vec<Leg> = if is_custom {
        custom.verify.every_ops = custom
            .verify
            .every_ops
            .min(custom.ops_per_worker / 2)
            .max(1);
        vec![Leg {
            name: "custom".into(),
            cfg: custom,
            read_ratio: custom_read_ratio,
            remote_read_ratio: custom_remote_read_ratio,
        }]
    } else if quick {
        quick_matrix()
    } else {
        full_matrix()
    };
    if trace {
        for l in &mut legs {
            l.cfg.obs.trace = true;
        }
    }
    if force_monitor {
        for l in &mut legs {
            l.cfg.verify.monitor = true;
        }
    }
    // --log-dir turns the durable epoch log on for every leg (one
    // subdirectory each — legs must never share logs). Logging is
    // write-path only here: it sends no messages and issues no ops,
    // so every deterministic column stays equal to the memory-only
    // run's and the same committed `--gate` baselines keep gating
    // (`docs/DURABILITY.md`). Wall-clock columns absorb the fsyncs.
    if let Some(base) = &log_dir {
        for l in &mut legs {
            let dir = std::path::Path::new(base).join(&l.name);
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("could not create --log-dir {}: {e}", dir.display());
                return ExitCode::from(2);
            }
            l.cfg.durable = DurableConfig {
                log_dir: Some(dir.to_string_lossy().into_owned()),
                ..DurableConfig::default()
            };
        }
    }

    // Load the gate baseline *before* any leg runs: a missing or
    // unparsable baseline is an operator error that must fail fast
    // with a clean message and exit 2 — never a post-run surprise and
    // never a panic.
    let gate: Option<(String, std::collections::HashMap<String, GateCounts>)> = match gate_path {
        None => None,
        Some(path) => match std::fs::read_to_string(&path) {
            Err(e) => {
                eprintln!("loadgen: cannot read gate baseline {path}: {e}");
                return ExitCode::from(2);
            }
            Ok(text) => {
                let baseline = parse_baseline_counts(&text);
                if baseline.is_empty() {
                    eprintln!(
                        "loadgen: gate baseline {path} contains no legs — \
                         not a cbm-throughput document?"
                    );
                    return ExitCode::from(2);
                }
                Some((path, baseline))
            }
        },
    };

    let reports: Vec<(Leg, StoreReport)> = if procs > 0 {
        // Multi-process mode: every leg runs in a cbm-node worker
        // process (over its own in-process TCP mesh); the driver only
        // dispatches specs and collects reports.
        let specs: Vec<LegSpec> = legs
            .iter()
            .map(|l| LegSpec {
                name: l.name.clone(),
                cfg: l.cfg.clone(),
                workload: workload_of(l),
                trace,
                trace_dir: trace_dir.clone(),
            })
            .collect();
        eprintln!(
            "fleet: spawning {procs} cbm-node process(es) for {} leg(s)",
            specs.len()
        );
        let mut pool = match NodePool::spawn(procs) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("loadgen: cannot spawn the node fleet: {e}");
                return ExitCode::FAILURE;
            }
        };
        let collected = match pool.run_batch(&specs) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("loadgen: fleet run failed: {e}");
                pool.shutdown();
                return ExitCode::FAILURE;
            }
        };
        let killed = pool.shutdown();
        if killed > 0 {
            eprintln!("loadgen: {killed} node(s) had to be killed at shutdown");
        }
        legs.iter().cloned().zip(collected).collect()
    } else {
        let mut out: Vec<(Leg, StoreReport)> = Vec::new();
        for l in &legs {
            eprint!("{} [{}] ... ", l.name, transport.name());
            let r = run_leg(l, transport);
            eprintln!(
                "{:.0} ops/s, p50 {} ns, p99 {} ns, {} msgs, mean batch {:.1}, \
                 {} windows ({} failed)",
                r.ops_per_sec,
                r.latency.p50_ns,
                r.latency.p99_ns,
                r.msgs_sent,
                r.mean_batch,
                r.windows.len(),
                r.windows_failed
            );
            out.push((l.clone(), r));
        }
        out
    };

    let mut failures = 0usize;
    for (l, r) in &reports {
        if report_leg(l, r, trace, &trace_dir) {
            failures += 1;
        }
    }

    // default output mirrors the committed baseline the matrix
    // corresponds to, so a `--quick` gate run can't clobber the full
    // baseline
    let out_path = out_path.unwrap_or_else(|| {
        String::from(if quick {
            "BENCH_throughput_quick.json"
        } else {
            "BENCH_throughput.json"
        })
    });
    let json = render_json(quick, is_custom, &reports);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("could not write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path} ({} legs)", reports.len());

    if let Some(path) = summary_path {
        let baseline = baseline_path
            .as_deref()
            .and_then(|p| std::fs::read_to_string(p).ok())
            .map(|s| parse_baseline_msgs(&s))
            .unwrap_or_default();
        if let Err(e) = append_summary(&path, quick, &reports, &baseline) {
            eprintln!("could not write summary {path}: {e}");
        }
    }

    let mut gate_failures = 0usize;
    if let Some((path, baseline)) = &gate {
        for (l, r) in &reports {
            match baseline.get(&l.name) {
                None => {
                    eprintln!(
                        "GATE {}: leg missing from {path} — regenerate the \
                         committed baseline",
                        l.name
                    );
                    gate_failures += 1;
                }
                Some(base) => {
                    let mut deviations: Vec<String> = Vec::new();
                    let mut check = |col: &str, got: u64, want: Option<u64>| {
                        if let Some(w) = want {
                            if got != w {
                                deviations.push(format!("{col} {got} (baseline {w})"));
                            }
                        }
                    };
                    check("msgs", r.msgs_sent, base.msgs);
                    check("batches", r.batches_sent, base.batches);
                    check("payloads", r.payloads_sent, base.payloads);
                    // escalation behaviour is part of the
                    // determinism contract: same (config,
                    // seed) => same certified-op and
                    // escalation counts. Exception: --monitor
                    // forcing the monitor onto a leg whose
                    // baseline recorded it off (mon_ops == 0)
                    // makes the columns incomparable — the
                    // monitor-smoke job pins those legs by
                    // diffing two forced runs instead, and
                    // the uncertified-leg failure still
                    // applies.
                    if !(force_monitor && base.mon_ops == Some(0)) {
                        check("monitor_ops_checked", r.monitor.ops_checked, base.mon_ops);
                        check("monitor_escalations", r.monitor.escalations, base.mon_esc);
                    }
                    if !deviations.is_empty() {
                        eprintln!(
                            "GATE {}: deterministic counts deviate from {path}: {}",
                            l.name,
                            deviations.join(", ")
                        );
                        gate_failures += 1;
                    }
                }
            }
        }
        if gate_failures == 0 {
            println!(
                "gate: {} leg(s) reproduce {} exactly \
                 (msgs + batches + payloads + monitor counters; bytes \
                 are interleaving-dependent and not gated)",
                reports.len(),
                path
            );
        }
    }

    if failures > 0 || gate_failures > 0 {
        eprintln!(
            "loadgen: {failures} leg(s) failed verification, \
             {gate_failures} deterministic gate deviation(s)"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// One leg's gated deterministic counts from a committed baseline.
/// `bytes_sent` is deliberately absent — delta headers make byte
/// totals interleaving-dependent. The monitor columns are optional so
/// pre-monitor baselines still parse (they then simply don't gate the
/// monitor counters).
#[derive(Default, Clone, Copy)]
struct GateCounts {
    msgs: Option<u64>,
    batches: Option<u64>,
    payloads: Option<u64>,
    mon_ops: Option<u64>,
    mon_esc: Option<u64>,
}

/// Extract `name -> GateCounts` from a committed baseline document
/// (one field per line; see `cbm_bench::field_str`).
fn parse_baseline_counts(json: &str) -> std::collections::HashMap<String, GateCounts> {
    let mut out = std::collections::HashMap::new();
    let mut current: Option<String> = None;
    let mut acc = GateCounts::default();
    let flush = |name: &mut Option<String>,
                 acc: &mut GateCounts,
                 out: &mut std::collections::HashMap<String, GateCounts>| {
        if let Some(n) = name.take() {
            out.insert(n, *acc);
        }
        *acc = GateCounts::default();
    };
    for line in json.lines() {
        if let Some(name) = cbm_bench::field_str(line, "name") {
            flush(&mut current, &mut acc, &mut out);
            current = Some(name);
        } else if let Some(v) = cbm_bench::field_u64(line, "msgs_sent") {
            acc.msgs = Some(v);
        } else if let Some(v) = cbm_bench::field_u64(line, "batches_sent") {
            acc.batches = Some(v);
        } else if let Some(v) = cbm_bench::field_u64(line, "payloads_sent") {
            acc.payloads = Some(v);
        } else if let Some(v) = cbm_bench::field_u64(line, "monitor_ops_checked") {
            acc.mon_ops = Some(v);
        } else if let Some(v) = cbm_bench::field_u64(line, "monitor_escalations") {
            acc.mon_esc = Some(v);
        }
    }
    flush(&mut current, &mut acc, &mut out);
    out
}

/// Extract `name -> msgs_sent` from a committed baseline document
/// (one field per line; see `cbm_bench::field_str`).
fn parse_baseline_msgs(json: &str) -> std::collections::HashMap<String, u64> {
    let mut out = std::collections::HashMap::new();
    let mut current: Option<String> = None;
    for line in json.lines() {
        if let Some(name) = cbm_bench::field_str(line, "name") {
            current = Some(name);
        } else if let Some(v) = cbm_bench::field_u64(line, "msgs_sent") {
            if let Some(name) = current.take() {
                out.insert(name, v);
            }
        }
    }
    out
}

/// Append a GitHub Actions job-summary markdown table.
fn append_summary(
    path: &str,
    quick: bool,
    reports: &[(Leg, StoreReport)],
    baseline: &std::collections::HashMap<String, u64>,
) -> std::io::Result<()> {
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|(l, r)| {
            vec![
                l.name.clone(),
                l.cfg.mode.criterion().to_string(),
                l.cfg.workers.to_string(),
                if l.cfg.sharding.replication == 0 {
                    "full".into()
                } else {
                    l.cfg.sharding.replication.to_string()
                },
                format!("{:.0}", r.ops_per_sec),
                r.latency.p50_ns.to_string(),
                r.latency.p99_ns.to_string(),
                r.msgs_sent.to_string(),
                baseline
                    .get(&l.name)
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "—".into()),
                r.remote_reads.to_string(),
                format!("{:.1}", r.mean_batch),
                format!("{}/{}", r.windows.len() - r.windows_failed, r.windows.len()),
            ]
        })
        .collect();
    cbm_bench::append_summary_table(
        path,
        &format!(
            "Throughput smoke ({})",
            if quick { "quick" } else { "full" }
        ),
        &[
            "leg",
            "mode",
            "workers",
            "rf",
            "ops/s",
            "p50 ns",
            "p99 ns",
            "msgs",
            "baseline msgs",
            "remote reads",
            "mean batch",
            "windows",
        ],
        &rows,
    )?;

    // The scaling curve (docs/SCALING.md): bytes/op vs cluster size
    // for the partial-replication legs. bytes/op is informational
    // (delta headers are interleaving-dependent) but stable to within
    // a fraction of a percent; the deterministic msgs/op column
    // travels alongside it.
    let mut scaling_rows: Vec<Vec<String>> = reports
        .iter()
        .filter(|(l, _)| l.cfg.sharding.replication > 0)
        .map(|(l, r)| {
            vec![
                l.name.clone(),
                l.cfg.workers.to_string(),
                l.cfg.sharding.replication.to_string(),
                l.cfg.sharding.locality.to_string(),
                r.msgs_sent.to_string(),
                r.bytes_sent.to_string(),
                format!("{:.2}", r.msgs_sent as f64 / r.total_ops as f64),
                format!("{:.1}", r.bytes_sent as f64 / r.total_ops as f64),
            ]
        })
        .collect();
    scaling_rows.sort_by_key(|row| row[1].parse::<usize>().unwrap_or(0));
    if !scaling_rows.is_empty() {
        cbm_bench::append_summary_table(
            path,
            "Scaling: bytes/op vs workers (rf legs)",
            &[
                "leg", "workers", "rf", "locality", "msgs", "bytes", "msgs/op", "bytes/op",
            ],
            &scaling_rows,
        )?;
    }

    // Monitor certification (docs/VERIFICATION.md): certified-op
    // coverage and escalation counts are deterministic; the overhead
    // column compares each `-mon` twin against its monitor-off base
    // leg from the same run (wall-clock, so machine-dependent — see
    // "The monitor tax, honestly" in docs/THROUGHPUT.md for how to
    // read it, especially on single-core runners).
    let monitor_rows: Vec<Vec<String>> = reports
        .iter()
        .filter(|(_, r)| r.monitor.enabled)
        .map(|(l, r)| {
            let base_ops = l
                .name
                .strip_suffix("-mon")
                .and_then(|base| reports.iter().find(|(b, _)| b.name == base))
                .map(|(_, b)| b.ops_per_sec);
            vec![
                l.name.clone(),
                format!(
                    "{}/{} ({:.1}%)",
                    r.monitor.ops_checked,
                    r.total_ops,
                    100.0 * r.monitor.ops_checked as f64 / (r.total_ops.max(1)) as f64
                ),
                r.monitor.escalations.to_string(),
                r.monitor.violations.to_string(),
                format!("{:.0}", r.ops_per_sec),
                base_ops
                    .map(|b| format!("{:.1}%", 100.0 * (1.0 - r.ops_per_sec / b)))
                    .unwrap_or_else(|| "—".into()),
                if r.monitor.certified(r.total_ops) {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]
        })
        .collect();
    if !monitor_rows.is_empty() {
        cbm_bench::append_summary_table(
            path,
            "Monitor certification (streaming bad-pattern checker)",
            &[
                "leg",
                "ops certified",
                "escalations",
                "violations",
                "ops/s",
                "overhead vs base",
                "certified",
            ],
            &monitor_rows,
        )?;
    }

    // Per-epoch dashboard: every column deterministic per
    // (config, seed), so this table diffs exactly across reruns.
    let mut epoch_rows: Vec<Vec<String>> = Vec::new();
    for (l, r) in reports {
        for e in &r.epochs {
            let mut row = vec![l.name.clone()];
            row.extend(cbm_bench::epoch_row(e));
            epoch_rows.push(row);
        }
    }
    let mut columns: Vec<&str> = vec!["leg"];
    columns.extend(cbm_bench::EPOCH_COLUMNS);
    cbm_bench::append_summary_table(path, "Per-epoch activity", &columns, &epoch_rows)
}

/// Hand-rolled JSON (the offline `serde` stand-in has no serializer;
/// the explicit schema doubles as documentation).
fn render_json(quick: bool, custom: bool, reports: &[(Leg, StoreReport)]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"cbm-throughput-v1\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"custom\": {custom},\n"));
    // bytes_sent is informational, not deterministic: delta-encoded
    // knowledge headers depend on delivery interleaving
    s.push_str(
        "  \"deterministic_columns\": [\"total_ops\", \"msgs_sent\", \
         \"batches_sent\", \"payloads_sent\", \"mean_batch\", \"remote_reads\", \
         \"windows\", \"monitor_ops_checked\", \"monitor_escalations\"],\n",
    );
    s.push_str("  \"legs\": [\n");
    for (i, (l, r)) in reports.iter().enumerate() {
        let batch = match l.cfg.batch {
            BatchPolicy::Off => "\"off\"".to_string(),
            BatchPolicy::Every(k) => k.to_string(),
        };
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", l.name));
        s.push_str(&format!(
            "      \"mode\": \"{}\",\n",
            l.cfg.mode.criterion()
        ));
        s.push_str(&format!("      \"workers\": {},\n", l.cfg.workers));
        s.push_str(&format!("      \"objects\": {},\n", l.cfg.objects));
        s.push_str(&format!(
            "      \"ops_per_worker\": {},\n",
            l.cfg.ops_per_worker
        ));
        s.push_str(&format!("      \"read_ratio\": {},\n", l.read_ratio));
        s.push_str(&format!(
            "      \"replication\": {},\n",
            l.cfg.sharding.replication
        ));
        s.push_str(&format!(
            "      \"locality\": {},\n",
            l.cfg.sharding.locality
        ));
        s.push_str(&format!(
            "      \"remote_read_ratio\": {},\n",
            l.remote_read_ratio
        ));
        s.push_str(&format!("      \"batch\": {batch},\n"));
        s.push_str(&format!("      \"seed\": {},\n", l.cfg.seed));
        s.push_str(&format!("      \"total_ops\": {},\n", r.total_ops));
        s.push_str(&format!("      \"wall_ms\": {},\n", r.wall_ns / 1_000_000));
        s.push_str(&format!("      \"ops_per_sec\": {:.0},\n", r.ops_per_sec));
        s.push_str(&format!("      \"p50_ns\": {},\n", r.latency.p50_ns));
        s.push_str(&format!("      \"p99_ns\": {},\n", r.latency.p99_ns));
        s.push_str(&format!("      \"max_ns\": {},\n", r.latency.max_ns));
        s.push_str(&format!("      \"mean_ns\": {},\n", r.latency.mean_ns));
        s.push_str(&format!("      \"msgs_sent\": {},\n", r.msgs_sent));
        s.push_str(&format!("      \"bytes_sent\": {},\n", r.bytes_sent));
        s.push_str(&format!("      \"batches_sent\": {},\n", r.batches_sent));
        s.push_str(&format!("      \"payloads_sent\": {},\n", r.payloads_sent));
        s.push_str(&format!("      \"mean_batch\": {:.2},\n", r.mean_batch));
        s.push_str(&format!("      \"remote_reads\": {},\n", r.remote_reads));
        s.push_str(&format!("      \"monitor\": {},\n", r.monitor.enabled));
        s.push_str(&format!(
            "      \"monitor_ops_checked\": {},\n",
            r.monitor.ops_checked
        ));
        s.push_str(&format!(
            "      \"monitor_escalations\": {},\n",
            r.monitor.escalations
        ));
        s.push_str(&format!(
            "      \"monitor_violations\": {},\n",
            r.monitor.violations
        ));
        s.push_str(&format!(
            "      \"monitor_certified\": {},\n",
            r.monitor.enabled && r.monitor.certified(r.total_ops)
        ));
        s.push_str(&format!(
            "      \"drains_converged\": {},\n",
            r.drains_converged
        ));
        s.push_str(&format!(
            "      \"windows_failed\": {},\n",
            r.windows_failed
        ));
        s.push_str("      \"windows\": [\n");
        for (j, w) in r.windows.iter().enumerate() {
            let verdict = match &w.result {
                Ok(()) => "\"ok\"".to_string(),
                Err(e) => format!("\"{}\"", e.replace('"', "'")),
            };
            let shard = w
                .shard
                .map(|s| s.to_string())
                .unwrap_or_else(|| "null".into());
            s.push_str(&format!(
                "        {{\"window\": {}, \"shard\": {}, \"criterion\": \"{}\", \"events\": {}, \"verdict\": {}}}{}\n",
                w.window,
                shard,
                w.criterion,
                w.events,
                verdict,
                if j + 1 < r.windows.len() { "," } else { "" }
            ));
        }
        s.push_str("      ]\n");
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}
