//! `cbm-node` — host a store replica set in one OS process, its
//! replication traffic on a real loopback TCP mesh.
//!
//! ```text
//! cbm-node serve --control HOST:PORT --id N [--trace-dir DIR]
//! cbm-node run [--workers N] [--objects N] [--ops N] [--mode cc|ccv]
//!              [--batch N|off] [--seed S] [--rf N] [--locality N]
//!              [--read-ratio R] [--remote-read-ratio R]
//!              [--workload register|counter] [--profile NAME] [--monitor]
//! ```
//!
//! **`serve`** is the fleet worker behind `loadgen --procs N`: dial
//! the driver's control listener, announce the id, then execute
//! [`Ctrl::Run`] legs until [`Ctrl::Shutdown`] — or EOF, so a dead
//! driver never leaves orphaned nodes computing. Each leg runs the
//! shared workload generator over the in-process TCP mesh
//! ([`cbm_bench::run_workload`] with [`Transport::Tcp`]), so its
//! deterministic columns reproduce the driver's committed baselines
//! exactly. Flight records never cross the control socket: a leg that
//! wants one (failed verification, escalation, repair/recovery, or
//! `trace` forced in the spec) dumps it node-side into the spec's
//! `trace_dir`.
//!
//! **`run`** is the standalone deployment demo of `docs/DEPLOYMENT.md`:
//! one self-contained process hosting the whole replica set, printing
//! the report summary, exit status non-zero on any verification
//! failure. `--profile` applies a named chaos profile
//! ([`cbm_store::profile`]) — the full fault-injection story works
//! over sockets.

use cbm_bench::proto::{recv_ctrl, send_ctrl, Ctrl, LegSpec};
use cbm_bench::{run_workload, Transport, Workload};
use cbm_store::{profile, BatchPolicy, Mode, ObsConfig, ShardConfig, StoreConfig, VerifyConfig};
use std::net::TcpStream;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("run") => run_once(&args[1..]),
        Some("--help") | Some("-h") => {
            print_help();
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("cbm-node: expected a subcommand (serve | run)");
            print_help();
            ExitCode::from(2)
        }
    }
}

fn print_help() {
    println!(
        "cbm-node serve --control HOST:PORT --id N [--trace-dir DIR]\n\
         cbm-node run [--workers N] [--objects N] [--ops N] [--mode cc|ccv] \
         [--batch N|off] [--seed S] [--rf N] [--locality N] [--read-ratio R] \
         [--remote-read-ratio R] [--workload register|counter] [--profile NAME] [--monitor]"
    );
}

/// Execute one leg and report node-side: run over the TCP mesh, dump
/// the flight record if the leg wants one, strip it, log one line.
///
/// A durable leg's `log_dir` is rewritten to a `node-{id}`
/// subdirectory first: the driver may dispatch the same spec to
/// several nodes (retries, future replication across nodes), and
/// epoch logs are single-writer files — two processes must never
/// share one (`docs/DURABILITY.md`).
fn execute(id: usize, spec: &LegSpec) -> cbm_store::StoreReport {
    let mut cfg = spec.cfg.clone();
    if let Some(base) = &cfg.durable.log_dir {
        let dir = std::path::Path::new(base).join(format!("node-{id}"));
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!(
                "cbm-node[{id}] {}: cannot create log dir {}: {e} — logging disabled",
                spec.name,
                dir.display()
            );
            cfg.durable.log_dir = None;
        } else {
            cfg.durable.log_dir = Some(dir.to_string_lossy().into_owned());
        }
    }
    let mut report = run_workload(&spec.workload, &cfg, Transport::Tcp);
    eprintln!(
        "cbm-node[{id}] {}: {:.0} ops/s, {} msgs, {} windows ({} failed)",
        spec.name,
        report.ops_per_sec,
        report.msgs_sent,
        report.windows.len(),
        report.windows_failed
    );
    if let Some(rec) = &report.trace {
        let wanted = spec.trace
            || !report.verified()
            || report.monitor.escalations > 0
            || report.chaos.repairs > 0
            || !report.chaos.recoveries.is_empty();
        if wanted {
            match cbm_bench::write_trace(&spec.trace_dir, &spec.name, rec) {
                Ok((chrome, jsonl)) => eprintln!("cbm-node[{id}]   trace: {chrome} + {jsonl}"),
                Err(e) => eprintln!(
                    "cbm-node[{id}]   trace: could not write to {}: {e}",
                    spec.trace_dir
                ),
            }
        }
    }
    report.trace = None; // never crosses the control socket
    report
}

fn serve(args: &[String]) -> ExitCode {
    let mut control: Option<String> = None;
    let mut id: usize = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--control" => control = it.next().cloned(),
            "--id" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => id = v,
                None => {
                    eprintln!("cbm-node: --id needs a number");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("cbm-node serve: unknown flag '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(addr) = control else {
        eprintln!("cbm-node serve: --control HOST:PORT is required");
        return ExitCode::from(2);
    };
    let mut stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cbm-node[{id}]: cannot reach driver at {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _ = stream.set_nodelay(true);
    if let Err(e) = send_ctrl(&mut stream, &Ctrl::Hello(id as u32)) {
        eprintln!("cbm-node[{id}]: hello failed: {e}");
        return ExitCode::FAILURE;
    }
    loop {
        match recv_ctrl(&mut stream) {
            Ok(Some(Ctrl::Run(spec))) => {
                let report = execute(id, &spec);
                if let Err(e) = send_ctrl(&mut stream, &Ctrl::Report(Box::new(report))) {
                    eprintln!("cbm-node[{id}]: report send failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Ok(Some(Ctrl::Shutdown)) | Ok(None) => return ExitCode::SUCCESS,
            Ok(Some(other)) => {
                let _ = send_ctrl(
                    &mut stream,
                    &Ctrl::Error(format!("unexpected control message {other:?}")),
                );
            }
            Err(e) => {
                // a dying driver must not leave this node computing
                eprintln!("cbm-node[{id}]: control stream lost: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
}

fn run_once(args: &[String]) -> ExitCode {
    let mut cfg = StoreConfig::default();
    let mut read_ratio = 0.5;
    let mut remote_read_ratio = 0.05;
    let mut workload_name = String::from("register");
    let mut profile_name: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let next_usize = |flag: &str, it: &mut std::slice::Iter<String>| -> Option<usize> {
            let v = it.next().and_then(|v| v.parse().ok());
            if v.is_none() {
                eprintln!("cbm-node: {flag} needs a number");
            }
            v
        };
        match a.as_str() {
            "--workers" => match next_usize("--workers", &mut it) {
                Some(v) => cfg.workers = v,
                None => return ExitCode::from(2),
            },
            "--objects" => match next_usize("--objects", &mut it) {
                Some(v) => cfg.objects = v.max(1),
                None => return ExitCode::from(2),
            },
            "--ops" => match next_usize("--ops", &mut it) {
                Some(v) => cfg.ops_per_worker = v,
                None => return ExitCode::from(2),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.seed = v,
                None => {
                    eprintln!("cbm-node: --seed needs a number");
                    return ExitCode::from(2);
                }
            },
            "--rf" => match next_usize("--rf", &mut it) {
                Some(v) => cfg.sharding = ShardConfig::rf(v),
                None => return ExitCode::from(2),
            },
            "--locality" => match next_usize("--locality", &mut it) {
                Some(v) => cfg.sharding.locality = v,
                None => return ExitCode::from(2),
            },
            "--mode" => match it.next().map(String::as_str) {
                Some("cc") => cfg.mode = Mode::Causal,
                Some("ccv") => cfg.mode = Mode::Convergent,
                _ => {
                    eprintln!("cbm-node: --mode needs cc or ccv");
                    return ExitCode::from(2);
                }
            },
            "--batch" => match it.next().map(String::as_str) {
                Some("off") => cfg.batch = BatchPolicy::Off,
                Some(v) => match v.parse() {
                    Ok(k) => cfg.batch = BatchPolicy::Every(k),
                    Err(_) => {
                        eprintln!("cbm-node: --batch needs a number or 'off'");
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("cbm-node: --batch needs a number or 'off'");
                    return ExitCode::from(2);
                }
            },
            "--read-ratio" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => read_ratio = v.clamp(0.0, 1.0),
                None => {
                    eprintln!("cbm-node: --read-ratio needs a number in [0,1]");
                    return ExitCode::from(2);
                }
            },
            "--remote-read-ratio" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => remote_read_ratio = v.clamp(0.0, 1.0),
                None => {
                    eprintln!("cbm-node: --remote-read-ratio needs a number in [0,1]");
                    return ExitCode::from(2);
                }
            },
            "--workload" => match it.next().map(String::as_str) {
                Some(w @ ("register" | "counter")) => workload_name = w.to_string(),
                _ => {
                    eprintln!("cbm-node: --workload needs register or counter");
                    return ExitCode::from(2);
                }
            },
            "--profile" => match it.next() {
                Some(p) => profile_name = Some(p.clone()),
                None => {
                    eprintln!("cbm-node: --profile needs a chaos profile name");
                    return ExitCode::from(2);
                }
            },
            "--monitor" => cfg.verify.monitor = true,
            other => {
                eprintln!("cbm-node run: unknown flag '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    cfg.verify = VerifyConfig {
        every_ops: cfg.verify.every_ops.min(cfg.ops_per_worker / 2).max(1),
        ..cfg.verify
    };
    cfg.obs = ObsConfig::default();
    if let Some(name) = &profile_name {
        match profile(name, cfg.workers, cfg.verify.every_ops) {
            Some(plan) => cfg.chaos = plan,
            None => {
                eprintln!(
                    "cbm-node: unknown chaos profile '{name}' (known: {})",
                    cbm_store::PROFILE_NAMES.join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }
    let workload = match workload_name.as_str() {
        "counter" => Workload::Counter,
        _ => Workload::Register {
            read_ratio,
            remote_read_ratio,
        },
    };
    let r = run_workload(&workload, &cfg, Transport::Tcp);
    println!(
        "cbm-node: {} workers over TCP, {} ops, {:.0} ops/s, {} msgs, \
         {} windows ({} failed), drains converged: {}",
        cfg.workers,
        r.total_ops,
        r.ops_per_sec,
        r.msgs_sent,
        r.windows.len(),
        r.windows_failed,
        r.drains_converged
    );
    if r.monitor.enabled {
        println!(
            "cbm-node: monitor certified {}/{} ops, {} escalation(s), {} violation(s)",
            r.monitor.ops_checked, r.total_ops, r.monitor.escalations, r.monitor.violations
        );
    }
    if r.verified() && (!r.monitor.enabled || r.monitor.certified(r.total_ops)) {
        ExitCode::SUCCESS
    } else {
        eprintln!("cbm-node: verification FAILED");
        ExitCode::FAILURE
    }
}
