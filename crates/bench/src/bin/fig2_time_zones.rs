//! Experiment E2 — regenerate **Fig. 2** (the time zones and what each
//! criterion requires of them).
//!
//! The grid history (3 processes × 4 events) is rebuilt with the causal
//! order drawn in the figure; the zone of every event relative to the
//! "present" event is computed by `cbm-history::zones`, and the
//! per-criterion constraint legend is printed under it — "the more
//! constraints the past imposes on the present, the stronger the
//! criterion".
//!
//! ```text
//! cargo run --release -p cbm-bench --bin fig2_time_zones
//! ```

use cbm_check::figures::fig2_grid;
use cbm_history::zones::{classify, Zone};
use cbm_history::ProcId;

fn zone_symbol(z: Zone) -> &'static str {
    match z {
        Zone::Present => "[*]",
        Zone::ProgramPast => "PP ",
        Zone::CausalPastOnly => "CP ",
        Zone::ProgramFuture => "PF ",
        Zone::CausalFutureOnly => "CF ",
        Zone::ConcurrentPresent => " . ",
    }
}

fn main() {
    println!("== Fig. 2: time zones around an event ==\n");
    let (h, causal, present) = fig2_grid();
    let zones = classify(&h, &causal, present);

    println!("grid (rows = processes, columns = program order; present = [*]):\n");
    for p in 0..h.n_procs() {
        let evs = h.process_events(ProcId(p as u32));
        let row: Vec<&str> = evs.iter().map(|e| zone_symbol(zones[e.idx()])).collect();
        println!("  p{p}:  {}", row.join("  "));
    }
    println!("\n  PP = program past    CP = causal past (only)");
    println!("  PF = program future  CF = causal future (only)");
    println!("   . = concurrent present\n");

    // zone counts
    let count = |z: Zone| zones.iter().filter(|x| **x == z).count();
    println!("zone sizes: program past {}, causal-only past {}, program future {}, causal-only future {}, concurrent {}\n",
        count(Zone::ProgramPast),
        count(Zone::CausalPastOnly),
        count(Zone::ProgramFuture),
        count(Zone::CausalFutureOnly),
        count(Zone::ConcurrentPresent),
    );

    // Fig. 2's caption, as a constraint table: which zones must be
    // respected totally (outputs too) and which contribute updates only.
    println!("per-criterion constraints on the present event's value:\n");
    let rows = [
        (
            "PC  (Def. 6)",
            "program past: outputs + updates",
            "writes of an arbitrary prefix of every other process",
        ),
        (
            "WCC (Def. 8)",
            "—",
            "updates of the whole causal past (and only them)",
        ),
        (
            "CC  (Def. 9)",
            "program past: outputs + updates",
            "updates of the whole causal past",
        ),
        (
            "SC  (Def. 5)",
            "every past event: outputs + updates",
            "total order: concurrent present is empty",
        ),
    ];
    for (c, plain, striped) in rows {
        println!("  {c:<14}");
        println!("      fully respected : {plain}");
        println!("      updates count   : {striped}");
    }
    println!("\nThe inclusion of constraint sets along the arrows of Fig. 1 is");
    println!("visible directly: CC's constraints contain both PC's and WCC's,");
    println!("and SC's contain everything.");
}
