//! Validate flight-recorder exports against the `cbm-trace-v1` schema.
//!
//! ```text
//! trace_check [--schema PATH] FILE...
//! ```
//!
//! Each `FILE` is dispatched by suffix: `*.jsonl` files are checked as
//! deterministic logical timelines, `*.trace.json` (or any other
//! `*.json`) as Chrome trace event documents. The checks mirror the
//! checked-in `docs/trace.schema.json` (pass `--schema` to point at a
//! copy; the file's pinned schema id must match the binary's):
//!
//! * **JSONL** — header object carries `schema` = `cbm-trace-v1`,
//!   `workers` ≥ 1, and a `spans` count equal to the number of span
//!   lines that follow; every span line carries exactly the
//!   deterministic fields (`epoch`, `kind`, `worker`, `logical`,
//!   `peer`, `shard`, `a`, `b`, `flag`), the `kind` is one of the
//!   eleven span kinds, the lane fits the worker count (the verifier uses
//!   lane `workers`), and lines are sorted by the timeline key — the
//!   order `cbm_obs` seals, which is what makes two runs at the same
//!   `(config, seed)` byte-comparable. Nondeterministic fields (`vc`,
//!   wall times) must **not** appear.
//! * **Chrome JSON** — the document opens a `traceEvents` array,
//!   carries `process_name`/`thread_name` metadata for every lane plus
//!   the verifier, stamps the schema id in `otherData`, and every
//!   event line is a metadata (`"M"`), complete (`"X"`, with
//!   `ts`/`dur`), or instant (`"i"`) event.
//!
//! Exit status: non-zero iff any file fails validation — the CI
//! `obs-smoke` job runs this over the artifacts `loadgen --quick
//! --trace` produced.

use cbm_bench::{field_str, field_u64};
use cbm_obs::export::TRACE_SCHEMA;
use cbm_obs::SpanKind;
use std::process::ExitCode;

/// `"key": -3` on a line (signed twin of `cbm_bench::field_u64`).
fn field_i64(line: &str, key: &str) -> Option<i64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let digits: String = rest
        .chars()
        .enumerate()
        .take_while(|(i, c)| c.is_ascii_digit() || (*i == 0 && *c == '-'))
        .map(|(_, c)| c)
        .collect();
    digits.parse().ok()
}

/// `"key": true|false` on a line.
fn field_bool(line: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Timeline rank of a kind name — the seal order spans are emitted in.
fn kind_rank(name: &str) -> Option<usize> {
    SpanKind::ALL.iter().position(|k| k.name() == name)
}

fn check_jsonl(path: &str, text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let mut lines = text.lines();
    let Some(header) = lines.next() else {
        return vec![format!("{path}: empty file")];
    };
    match field_str(header, "schema") {
        Some(s) if s == TRACE_SCHEMA => {}
        Some(s) => errs.push(format!("{path}: schema '{s}', expected '{TRACE_SCHEMA}'")),
        None => errs.push(format!("{path}: header missing 'schema'")),
    }
    let workers = match field_u64(header, "workers") {
        Some(w) if w >= 1 => w,
        Some(w) => {
            errs.push(format!("{path}: implausible workers {w}"));
            w
        }
        None => {
            errs.push(format!("{path}: header missing 'workers'"));
            0
        }
    };
    let declared = field_u64(header, "spans");
    if declared.is_none() {
        errs.push(format!("{path}: header missing 'spans'"));
    }
    if field_u64(header, "dropped").is_none() {
        errs.push(format!("{path}: header missing 'dropped'"));
    }

    // the timeline sort key of one parsed span line
    type Key = (u64, usize, u64, i64, u64, i64, u64, u64, bool);

    let mut count = 0u64;
    let mut prev_key: Option<Key> = None;
    for (i, line) in lines.enumerate() {
        let lno = i + 2;
        count += 1;
        if line.contains("\"vc\"") || line.contains("wall") || line.contains("dur") {
            errs.push(format!(
                "{path}:{lno}: nondeterministic field leaked into the logical timeline"
            ));
        }
        let kind = field_str(line, "kind");
        let rank = match kind.as_deref().and_then(kind_rank) {
            Some(r) => r,
            None => {
                errs.push(format!("{path}:{lno}: unknown kind {:?}", kind));
                continue;
            }
        };
        let (Some(epoch), Some(worker), Some(logical), Some(a), Some(b)) = (
            field_u64(line, "epoch"),
            field_u64(line, "worker"),
            field_u64(line, "logical"),
            field_u64(line, "a"),
            field_u64(line, "b"),
        ) else {
            errs.push(format!("{path}:{lno}: missing numeric field"));
            continue;
        };
        let (Some(peer), Some(shard)) = (field_i64(line, "peer"), field_i64(line, "shard")) else {
            errs.push(format!("{path}:{lno}: missing peer/shard"));
            continue;
        };
        let Some(flag) = field_bool(line, "flag") else {
            errs.push(format!("{path}:{lno}: missing flag"));
            continue;
        };
        // lane `workers` is the verifier
        if worker > workers {
            errs.push(format!(
                "{path}:{lno}: worker {worker} out of range (workers = {workers})"
            ));
        }
        let key = (epoch, rank, worker, peer, logical, shard, a, b, flag);
        if let Some(p) = prev_key {
            if key < p {
                errs.push(format!("{path}:{lno}: spans out of timeline order"));
            }
        }
        prev_key = Some(key);
    }
    if let Some(d) = declared {
        if d != count {
            errs.push(format!(
                "{path}: header declares {d} spans, found {count} lines"
            ));
        }
    }
    errs
}

fn check_chrome(path: &str, text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    if !text.trim_start().starts_with("{\"traceEvents\": [") {
        errs.push(format!("{path}: does not open a traceEvents array"));
    }
    if !text.contains(&format!("\"schema\": \"{TRACE_SCHEMA}\"")) {
        errs.push(format!("{path}: otherData does not pin '{TRACE_SCHEMA}'"));
    }
    if !text.contains("\"displayTimeUnit\"") {
        errs.push(format!("{path}: missing displayTimeUnit"));
    }
    if !text.contains("\"name\": \"process_name\"") || !text.contains("\"name\": \"verifier\"") {
        errs.push(format!("{path}: missing lane metadata events"));
    }
    for (i, line) in text.lines().enumerate().skip(1) {
        let t = line.trim().trim_start_matches(',');
        if !t.starts_with('{') {
            continue; // the trailer line
        }
        let lno = i + 1;
        let Some(ph) = field_str(t, "ph") else {
            errs.push(format!("{path}:{lno}: event without 'ph'"));
            continue;
        };
        match ph.as_str() {
            "M" => {}
            "X" => {
                if !t.contains("\"ts\": ") || !t.contains("\"dur\": ") {
                    errs.push(format!("{path}:{lno}: complete event missing ts/dur"));
                }
            }
            "i" => {
                if !t.contains("\"ts\": ") {
                    errs.push(format!("{path}:{lno}: instant event missing ts"));
                }
            }
            other => errs.push(format!("{path}:{lno}: unexpected phase '{other}'")),
        }
        if ph != "M"
            && field_str(t, "name")
                .as_deref()
                .and_then(kind_rank)
                .is_none()
        {
            errs.push(format!("{path}:{lno}: event name is not a span kind"));
        }
    }
    errs
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut schema_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--schema" => match it.next() {
                Some(p) => schema_path = Some(p.clone()),
                None => {
                    eprintln!("--schema needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("trace_check [--schema PATH] FILE...");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag '{other}'");
                return ExitCode::from(2);
            }
            f => files.push(f.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("trace_check: no files given (trace_check [--schema PATH] FILE...)");
        return ExitCode::from(2);
    }

    let mut errs: Vec<String> = Vec::new();
    if let Some(p) = schema_path {
        match std::fs::read_to_string(&p) {
            Ok(s) if s.contains(TRACE_SCHEMA) => {}
            Ok(_) => errs.push(format!(
                "{p}: schema document does not pin '{TRACE_SCHEMA}'"
            )),
            Err(e) => errs.push(format!("{p}: cannot read schema document: {e}")),
        }
    }
    let mut checked = 0usize;
    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                errs.push(format!("{f}: cannot read: {e}"));
                continue;
            }
        };
        checked += 1;
        if f.ends_with(".jsonl") {
            errs.extend(check_jsonl(f, &text));
        } else {
            errs.extend(check_chrome(f, &text));
        }
    }

    if errs.is_empty() {
        println!("trace_check: {checked} file(s) valid against {TRACE_SCHEMA}");
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            eprintln!("trace_check: {e}");
        }
        eprintln!("trace_check: {} error(s)", errs.len());
        ExitCode::FAILURE
    }
}
