//! Experiment E3 — regenerate **Fig. 3**: the classification of the
//! nine example histories against every criterion, expected (paper
//! claims + hierarchy closure) vs measured.
//!
//! ```text
//! cargo run --release -p cbm-bench --bin fig3_classification
//! ```

use cbm_adt::memory::Memory;
use cbm_adt::queue::{FifoQueue, HdRhQueue};
use cbm_adt::window::WindowStream;
use cbm_bench::{classify, expect_mark, mark, render_table};
use cbm_check::cm::check_cm;
use cbm_check::figures::{self, EXPECTED};
use cbm_check::{Budget, Verdict};

fn main() {
    println!("== Fig. 3: classification of the nine example histories ==\n");
    let budget = Budget::default();
    let w2 = WindowStream::new(2);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut mismatches = Vec::new();

    let mut push_row = |tag: &str,
                        object: &str,
                        measured: [Verdict; 5],
                        cm: Option<Verdict>,
                        mismatches: &mut Vec<String>| {
        let exp = EXPECTED.iter().find(|e| e.tag == tag).unwrap();
        let expected = [exp.sc, exp.cc, exp.ccv, exp.wcc, exp.pc];
        let names = ["SC", "CC", "CCv", "WCC", "PC"];
        for i in 0..5 {
            if let Some(e) = expected[i] {
                if measured[i] != Verdict::Unknown && measured[i].is_sat() != e {
                    mismatches.push(format!("{tag}/{}", names[i]));
                }
            }
        }
        if let (Some(e), Some(m)) = (exp.cm, cm) {
            if m != Verdict::Unknown && m.is_sat() != e {
                mismatches.push(format!("{tag}/CM"));
            }
        }
        let fmt = |i: usize| format!("{}/{}", expect_mark(expected[i]), mark(measured[i]));
        rows.push(vec![
            tag.to_string(),
            object.to_string(),
            fmt(0),
            fmt(1),
            fmt(2),
            fmt(3),
            fmt(4),
            match cm {
                Some(m) => format!("{}/{}", expect_mark(exp.cm), mark(m)),
                None => "n/a".to_string(),
            },
        ]);
    };

    push_row(
        "3a",
        "W2",
        classify(&w2, &figures::fig3a(), &budget),
        None,
        &mut mismatches,
    );
    push_row(
        "3b",
        "W2",
        classify(&w2, &figures::fig3b(), &budget),
        None,
        &mut mismatches,
    );
    push_row(
        "3c",
        "W2",
        classify(&w2, &figures::fig3c(), &budget),
        None,
        &mut mismatches,
    );
    push_row(
        "3d",
        "W2",
        classify(&w2, &figures::fig3d(), &budget),
        None,
        &mut mismatches,
    );
    push_row(
        "3e",
        "Q",
        classify(&FifoQueue, &figures::fig3e(), &budget),
        None,
        &mut mismatches,
    );
    push_row(
        "3f",
        "Q",
        classify(&FifoQueue, &figures::fig3f(), &budget),
        None,
        &mut mismatches,
    );
    push_row(
        "3g",
        "Q'",
        classify(&HdRhQueue, &figures::fig3g(), &budget),
        None,
        &mut mismatches,
    );
    let mem5 = Memory::new(5);
    push_row(
        "3h",
        "M[a-e]",
        classify(&mem5, &figures::fig3h(), &budget),
        Some(check_cm(&mem5, &figures::fig3h(), &budget).verdict),
        &mut mismatches,
    );
    let mem4 = Memory::new(4);
    push_row(
        "3i",
        "M[a-d]",
        classify(&mem4, &figures::fig3i(), &budget),
        Some(check_cm(&mem4, &figures::fig3i(), &budget).verdict),
        &mut mismatches,
    );

    println!(
        "{}",
        render_table(
            &["hist", "object", "SC", "CC", "CCv", "WCC", "PC", "CM"],
            &rows
        )
    );
    println!("cells are expected/measured; '-' = the paper leaves it open\n");

    println!("paper captions:");
    println!("  3a: CCv, not PC        3b: PC, not WCC      3c: CC, not CCv");
    println!("  3d: SC                 3e: WCC+PC, not CC   3f: CC, not SC");
    println!("  3g: CC, not SC (but see note)               3h: CCv, not CC");
    println!("  3i: CM, not CC\n");
    println!("note on 3g: as drawn, the history admits the SC interleaving");
    println!("  push(1).push(2).hd/1.hd/1.rh(1).rh(1).hd/2.hd/2.rh(2).rh(2),");
    println!("  so our checker reports SC = yes; the caption's 'not SC' does");
    println!("  not affect any theorem (details in EXPERIMENTS.md).");

    if mismatches.is_empty() {
        println!("\nall paper claims reproduced");
    } else {
        println!("\nMISMATCHES: {mismatches:?}");
        std::process::exit(1);
    }
}
