//! Export the nine Fig. 3 histories (and, where the criterion is
//! causal and satisfiable, a witnessing causal order) as Graphviz DOT —
//! the visual counterpart of `fig3_classification`.
//!
//! ```text
//! cargo run --release -p cbm-bench --bin fig3_dot [out_dir]
//! ```
//!
//! Writes `fig3a.dot` … `fig3i.dot` into `out_dir` (default
//! `target/figures`). Render with `dot -Tsvg fig3c.dot -o fig3c.svg`.

use cbm_adt::memory::Memory;
use cbm_adt::queue::{FifoQueue, HdRhQueue};
use cbm_adt::window::WindowStream;
use cbm_adt::Adt;
use cbm_check::causal::check_cc;
use cbm_check::figures;
use cbm_check::Budget;
use cbm_history::dot::to_dot;
use cbm_history::History;
use std::fmt::Debug;
use std::fs;
use std::path::Path;

fn export<T: Adt>(
    dir: &Path,
    name: &str,
    adt: &T,
    h: &History<T::Input, T::Output>,
) -> std::io::Result<()>
where
    T::Input: Debug,
    T::Output: Debug,
{
    // attach a CC witness when one exists (dashed extra edges)
    let witness = check_cc(adt, h, &Budget::default()).witness;
    let dot = to_dot(h, witness.as_ref(), name);
    let path = dir.join(format!("{name}.dot"));
    fs::write(&path, dot)?;
    println!("wrote {}", path.display());
    Ok(())
}

fn main() -> std::io::Result<()> {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/figures".to_string());
    let dir = Path::new(&dir);
    fs::create_dir_all(dir)?;

    let w2 = WindowStream::new(2);
    export(dir, "fig3a", &w2, &figures::fig3a())?;
    export(dir, "fig3b", &w2, &figures::fig3b())?;
    export(dir, "fig3c", &w2, &figures::fig3c())?;
    export(dir, "fig3d", &w2, &figures::fig3d())?;
    export(dir, "fig3e", &FifoQueue, &figures::fig3e())?;
    export(dir, "fig3f", &FifoQueue, &figures::fig3f())?;
    export(dir, "fig3g", &HdRhQueue, &figures::fig3g())?;
    export(dir, "fig3h", &Memory::new(5), &figures::fig3h())?;
    export(dir, "fig3i", &Memory::new(4), &figures::fig3i())?;
    println!("\nrender with: dot -Tsvg <file>.dot -o <file>.svg");
    Ok(())
}
