//! Drive the live store engine through the chaos fault-profile matrix
//! and emit the committed chaos baseline (`BENCH_chaos.json`).
//!
//! ```text
//! chaos_loadgen [--quick] [--out PATH] [--seeds N] [--summary PATH] [--rf N]
//!               [--workers N] [--locality N] [--monitor] [--trace] [--trace-dir DIR]
//!               [--transport thread|tcp] [--log-dir DIR]
//! ```
//!
//! `--transport tcp` runs every cell's replica mesh over real loopback
//! sockets; the chaos layer (`ChaosEndpoint`) wraps the socket
//! endpoint unchanged, and the flush-marker cut protocol
//! (`docs/DEPLOYMENT.md`) keeps every deterministic column — fault
//! counts included — equal to the in-process transport's, so the
//! replay and twin gates below hold identically. The workload is a
//! commutative counter space, so even the byte-identical twin-state
//! gate is transport-independent.
//!
//! Tracing is **automatic** for chaos runs (the engine's flight
//! recorder turns on whenever a fault schedule is active), so every
//! failing cell dumps its flight record into `--trace-dir` (default
//! `traces/`) as `<profile>-<mode>-s<seed>.trace.json` +
//! `.jsonl` without any flag; `--trace` additionally dumps the green
//! cells. The nightly chaos matrix uploads these dumps as artifacts
//! for non-green cells (see `docs/OBSERVABILITY.md`).
//!
//! For every **fault profile × mode × seed** cell this binary runs the
//! engine **three times**:
//!
//! 1. the chaos run — fault plan active, sampled online verification
//!    on (CC or CCv per mode);
//! 2. the chaos run again — every deterministic column (messages,
//!    drops, dups, nacks, repairs, replay counts) must reproduce
//!    **exactly**, which is the live-engine determinism contract of
//!    `docs/CHAOS.md`. Byte totals are *not* in the fingerprint:
//!    delta-encoded knowledge headers size by flush-time knowledge,
//!    which depends on thread interleaving (`docs/SHARDING.md`);
//! 3. the fault-free twin of the same `(config, seed)` — the workload
//!    is a counter space (commutative updates), so the chaos run must
//!    converge to **byte-identical final state**: a crashed-and-
//!    recovered worker resumes its script, and the recovery protocol
//!    loses and duplicates nothing.
//!
//! A cell fails on: any unverified window, a drain divergence, a
//! missing recovery (crash profiles must report every span recovered,
//! with at least one verified window spanning the recovery drain), a
//! final-state mismatch against the twin, or any determinism mismatch
//! between the two chaos runs. Exit status is non-zero iff any cell
//! failed — this is what the `chaos-smoke` CI job (and the nightly
//! extended sweep) gates on. Wall-clock columns are recorded but never
//! gate.
//!
//! `--workers`/`--locality` override the matrix dimensions — the
//! nightly sweep runs one 128-worker rf-2 locality-8 cell to keep the
//! large-cluster delivery path (wide interest masks, delta headers
//! over many edges, crash recovery at scale) under the twin-state and
//! determinism gates.
//!
//! `--monitor` turns the tier-3 streaming monitor on for every cell
//! (`docs/VERIFICATION.md`): each monitored cell must then certify
//! 100% of its ops (`ops_checked == total_ops`, zero confirmed
//! violations) *under the fault plan*, and the monitor counters join
//! the deterministic fingerprint so the replay pins the escalation
//! count too. The nightly sweep runs one monitor-on rf-2 sweep this
//! way.
//!
//! Beyond the fault-profile matrix, the sweep always runs the
//! **durability cells** of `docs/DURABILITY.md`:
//!
//! * `crash-recover-disk` / `rolling-crashes-disk` — the same crash
//!   profiles with the per-worker epoch log on (`--log-dir`,
//!   `recover_from_disk`): a crashed worker's in-memory replica is
//!   discarded and it restarts by replaying its own snapshot + log
//!   tail, then fetching only the post-cut delta from co-replicas.
//!   The twin stays memory-only, so the byte-identical state gate
//!   proves the disk path equivalent to the live transfer; the
//!   `log_bytes` / `replayed_records` columns join the deterministic
//!   fingerprint.
//! * `cold-restart` — no faults at all: the run is halted at its
//!   middle epoch boundary (every worker seals and exits), the whole
//!   fleet restarts from disk and resumes its scripts, and the final
//!   state must be byte-identical to the uninterrupted twin. The
//!   halt+resume pair runs twice to pin its determinism.

use cbm_bench::{run_workload, Transport, Workload};
use cbm_store::{
    profile, BatchPolicy, DurableConfig, Mode, ObsConfig, ShardConfig, StoreConfig, StoreReport,
    VerifyConfig, PROFILE_NAMES,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Cell {
    profile: String,
    mode: Mode,
    seed: u64,
    report: StoreReport,
    ops_survived: u64,
    windows_spanning_recovery: usize,
    determinism_match: bool,
    state_match: bool,
    failures: Vec<String>,
}

/// Shared matrix dimensions: (workers, every_ops) feed both the
/// config and the fault-profile constructors, so crash/recover ticks
/// always land on this config's epoch boundaries. `workers` = 0 takes
/// the default 4; larger clusters shrink the per-worker op count so
/// the cell's total work stays bounded on oversubscribed runners.
fn dims(quick: bool, workers: usize) -> (usize, usize) {
    let w = if workers == 0 { 4 } else { workers };
    if quick {
        (w, 500)
    } else {
        (w, 2_000)
    }
}

/// Per-worker ops for a cell: the quick/full defaults, divided down
/// when the cluster axis grows past the default 4 workers — but never
/// below 4 epochs, because the crash profiles schedule their last
/// `Recover` at tick `3 * every_ops` and the recovery drain needs one
/// more epoch boundary after it.
fn cell_ops(quick: bool, workers: usize, every: usize) -> (usize, usize) {
    let (ops, window) = if quick { (2_000, 16) } else { (20_000, 32) };
    let scale = (workers.max(4) / 4).max(1);
    ((ops / scale).max(4 * every), window)
}

fn cfg(
    mode: Mode,
    seed: u64,
    quick: bool,
    dim: Dims,
    chaos: cbm_net::fault::FaultPlan,
) -> StoreConfig {
    let (workers, every) = dims(quick, dim.workers);
    let (ops, window) = cell_ops(quick, workers, every);
    StoreConfig {
        workers,
        // partial replication needs every worker to host a shard
        // (shards = min(objects, workers)), so the object space grows
        // with the cluster axis; at the default 4 workers this is the
        // long-standing 64-object space of the committed baseline
        objects: 64.max(workers),
        ops_per_worker: ops,
        mode,
        batch: BatchPolicy::Every(8),
        verify: VerifyConfig {
            every_ops: every,
            window_ops: window,
            sample_every: 1,
            monitor: dim.monitor,
        },
        seed,
        sharding: ShardConfig::rf_local(dim.rf, dim.locality),
        chaos,
        obs: ObsConfig::default(),
        durable: DurableConfig::default(),
    }
}

/// The deterministic fingerprint of a run, diffed across the replay.
fn det_columns(r: &StoreReport) -> Vec<(&'static str, String)> {
    vec![
        ("total_ops", r.total_ops.to_string()),
        ("msgs_sent", r.msgs_sent.to_string()),
        // bytes_sent is deliberately absent: delta-encoded knowledge
        // headers are interleaving-dependent (docs/SHARDING.md)
        ("batches_sent", r.batches_sent.to_string()),
        ("payloads_sent", r.payloads_sent.to_string()),
        ("drops", r.chaos.drops.to_string()),
        ("dups", r.chaos.dups.to_string()),
        ("parked", r.chaos.parked.to_string()),
        ("released", r.chaos.released.to_string()),
        ("delayed", r.chaos.delayed.to_string()),
        ("pruned", r.chaos.pruned.to_string()),
        ("crash_discarded", r.chaos.crash_discarded.to_string()),
        ("nacks", r.chaos.nacks.to_string()),
        ("repairs", r.chaos.repairs.to_string()),
        ("repaired_batches", r.chaos.repaired_batches.to_string()),
        (
            "dropped_per_node",
            format!("{:?}", r.chaos.dropped_per_node),
        ),
        ("dup_per_node", format!("{:?}", r.chaos.dup_per_node)),
        (
            "syncs",
            format!(
                "{:?}",
                r.chaos
                    .recoveries
                    .iter()
                    .map(|x| (x.worker, x.synced_shards, x.synced_objects))
                    .collect::<Vec<_>>()
            ),
        ),
        ("remote_reads", r.remote_reads.to_string()),
        ("windows", r.windows.len().to_string()),
        // present (and zero) even with the monitor off, so the
        // fingerprint shape never depends on the flag
        ("monitor_ops_checked", r.monitor.ops_checked.to_string()),
        ("monitor_escalations", r.monitor.escalations.to_string()),
        ("monitor_violations", r.monitor.violations.to_string()),
        // the disk columns: zero for memory-only cells, the epoch-log
        // replay footprint for the durable ones — log record framing
        // is knowledge-free (unlike delta headers), so sizes reproduce
        ("log_bytes", disk_cols(r).0.to_string()),
        ("replayed_records", disk_cols(r).1.to_string()),
    ]
}

/// Summed disk-recovery footprint of a run: `(log_bytes,
/// replayed_records)` across every recovery (and resume) row.
fn disk_cols(r: &StoreReport) -> (u64, u64) {
    r.chaos.recoveries.iter().fold((0, 0), |(lb, rr), x| {
        (lb + x.log_bytes, rr + x.replayed_records)
    })
}

/// The sweep's cluster-axis overrides (defaults = the 4-worker
/// full-replication matrix of `docs/CHAOS.md`).
#[derive(Clone, Copy)]
struct Dims {
    workers: usize,
    rf: usize,
    locality: usize,
    monitor: bool,
}

/// The durable override for one cell run: its own subdirectory (cells
/// must never share logs) with the disk-first recovery ladder on.
fn cell_durable(base: &Path, label: &str, mode: Mode, seed: u64) -> DurableConfig {
    DurableConfig {
        log_dir: Some(
            base.join(format!("{label}-{}-s{seed}", mode.criterion()))
                .to_string_lossy()
                .into_owned(),
        ),
        snapshot_every: 2,
        recover_from_disk: true,
        resume: false,
        halt_at_boundary: 0,
    }
}

fn run_cell(
    name: &'static str,
    mode: Mode,
    seed: u64,
    quick: bool,
    dim: Dims,
    transport: Transport,
    log_base: Option<&Path>,
) -> Cell {
    let (workers, every) = dims(quick, dim.workers);
    let label = if log_base.is_some() {
        format!("{name}-disk")
    } else {
        name.to_string()
    };
    let plan = profile(name, workers, every).expect("known profile");
    let mut chaos_cfg = cfg(mode, seed, quick, dim, plan);
    if let Some(base) = log_base {
        // the replay (run 2) reopens the same directory fresh — the
        // log is wiped and rewritten, which is exactly the contract
        chaos_cfg.durable = cell_durable(base, &label, mode, seed);
    }
    // the twin stays memory-only: byte-identical convergence then
    // proves the disk ladder equivalent to the live state transfer
    let free_cfg = cfg(mode, seed, quick, dim, cbm_net::fault::FaultPlan::new());

    let a = run_workload(&Workload::Counter, &chaos_cfg, transport);
    let a2 = run_workload(&Workload::Counter, &chaos_cfg, transport);
    let twin = run_workload(&Workload::Counter, &free_cfg, transport);

    let mut failures = Vec::new();
    for w in a.windows.iter().filter(|w| w.result.is_err()) {
        failures.push(format!(
            "window {} [{}]: {:?}",
            w.window, w.criterion, w.result
        ));
    }
    if !a.drains_converged {
        failures.push("drain divergence".into());
    }

    let determinism_match = det_columns(&a) == det_columns(&a2);
    if !determinism_match {
        for ((k, va), (_, vb)) in det_columns(&a).iter().zip(det_columns(&a2).iter()) {
            if va != vb {
                failures.push(format!("nondeterministic {k}: {va} vs {vb}"));
            }
        }
    }

    // the chaos run must end byte-identical to its fault-free twin,
    // replica by replica; under full replication every replica must
    // additionally agree (partial replicas host different shards, so
    // cross-replica equality only holds per shard there — the drain
    // convergence check covers that)
    let full =
        chaos_cfg.sharding.replication == 0 || chaos_cfg.sharding.replication >= chaos_cfg.workers;
    let state_match = a.final_state_hashes == twin.final_state_hashes
        && (!full
            || a.final_state_hashes
                .iter()
                .all(|&x| x == a.final_state_hashes[0]));
    if !state_match {
        failures.push(format!(
            "final state mismatch: chaos {:x?} vs twin {:x?}",
            a.final_state_hashes, twin.final_state_hashes
        ));
    }

    // the schedule itself says how many crash spans the profile has —
    // no hand-maintained table to drift out of sync with the profiles
    let want_rec = cbm_store::ChaosSchedule::build(&chaos_cfg).spans.len();
    if a.chaos.recoveries.len() != want_rec {
        failures.push(format!(
            "expected {want_rec} recoveries, saw {}",
            a.chaos.recoveries.len()
        ));
    }
    let windows_spanning_recovery = a
        .windows
        .iter()
        .filter(|w| w.spans_recovery && w.result.is_ok())
        .count();
    if want_rec > 0 && windows_spanning_recovery == 0 {
        failures.push("no verified window spans a recovery".into());
    }
    if a.total_ops != chaos_cfg.total_ops() {
        failures.push(format!(
            "ops lost: {} of {}",
            a.total_ops,
            chaos_cfg.total_ops()
        ));
    }

    // a monitored cell must certify every op despite the fault plan:
    // nack-repaired deliveries fold exactly once, recovered workers
    // rebuild their shadows from the state transfer
    if dim.monitor {
        if a.monitor.ops_checked != a.total_ops {
            failures.push(format!(
                "monitor certified {} of {} ops",
                a.monitor.ops_checked, a.total_ops
            ));
        }
        if a.monitor.violations != 0 {
            failures.push(format!(
                "{} confirmed monitor violation(s): {:?}",
                a.monitor.violations, a.monitor.records
            ));
        }
    }

    Cell {
        profile: label,
        mode,
        seed,
        ops_survived: a.total_ops,
        windows_spanning_recovery,
        determinism_match,
        state_match,
        failures,
        report: a,
    }
}

/// The fault-free cold-restart cell: run to the middle epoch boundary
/// and halt (every worker seals its cut and exits), restart the whole
/// fleet from disk and resume the scripts, and require byte-identical
/// convergence with the uninterrupted memory-only twin. The
/// halt+resume pair runs **twice** (fresh directories) so the disk
/// columns sit under the same determinism gate as everything else.
fn run_cold_cell(
    mode: Mode,
    seed: u64,
    quick: bool,
    dim: Dims,
    transport: Transport,
    log_base: &Path,
) -> Cell {
    let base_cfg = cfg(mode, seed, quick, dim, cbm_net::fault::FaultPlan::new());
    let epochs = (base_cfg.ops_per_worker / base_cfg.verify.every_ops.max(1)) as u64;
    let halt = (epochs / 2).max(1);

    let pair = |tag: &str| -> (StoreReport, StoreReport) {
        let mut halted_cfg = base_cfg.clone();
        halted_cfg.durable = cell_durable(log_base, &format!("cold-restart-{tag}"), mode, seed);
        // snapshot cadence off the halt boundary, so the resume
        // replays real log records, not just the compacted snapshot
        halted_cfg.durable.snapshot_every = 4;
        halted_cfg.durable.halt_at_boundary = halt;
        let halted = run_workload(&Workload::Counter, &halted_cfg, transport);
        let mut resumed_cfg = halted_cfg.clone();
        resumed_cfg.durable.halt_at_boundary = 0;
        resumed_cfg.durable.resume = true;
        let resumed = run_workload(&Workload::Counter, &resumed_cfg, transport);
        (halted, resumed)
    };

    let (halted, a) = pair("a");
    let (_, a2) = pair("b");
    let twin = run_workload(&Workload::Counter, &base_cfg, transport);

    let mut failures = Vec::new();
    if !halted.verified() {
        failures.push("halted prefix run had unverified windows".into());
    }
    for w in a.windows.iter().filter(|w| w.result.is_err()) {
        failures.push(format!(
            "window {} [{}]: {:?}",
            w.window, w.criterion, w.result
        ));
    }
    if !a.drains_converged {
        failures.push("drain divergence".into());
    }
    if a.total_ops != base_cfg.total_ops() {
        failures.push(format!(
            "resume lost ops: {} of {}",
            a.total_ops,
            base_cfg.total_ops()
        ));
    }

    let determinism_match = det_columns(&a) == det_columns(&a2);
    if !determinism_match {
        for ((k, va), (_, vb)) in det_columns(&a).iter().zip(det_columns(&a2).iter()) {
            if va != vb {
                failures.push(format!("nondeterministic {k}: {va} vs {vb}"));
            }
        }
    }

    let full =
        base_cfg.sharding.replication == 0 || base_cfg.sharding.replication >= base_cfg.workers;
    let state_match = a.final_state_hashes == twin.final_state_hashes
        && (!full
            || a.final_state_hashes
                .iter()
                .all(|&x| x == a.final_state_hashes[0]));
    if !state_match {
        failures.push(format!(
            "cold restart diverged from uninterrupted twin: {:x?} vs {:x?}",
            a.final_state_hashes, twin.final_state_hashes
        ));
    }

    // every worker resumed from its own disk: one self-helper row each
    if a.chaos.recoveries.len() != base_cfg.workers {
        failures.push(format!(
            "expected {} resume rows, saw {}",
            base_cfg.workers,
            a.chaos.recoveries.len()
        ));
    }
    for rec in &a.chaos.recoveries {
        if rec.helper != rec.worker {
            failures.push(format!(
                "worker {} resumed through helper {} instead of its own disk",
                rec.worker, rec.helper
            ));
        }
    }
    if disk_cols(&a).1 == 0 {
        failures.push("resume replayed no log records".into());
    }

    if dim.monitor {
        if a.monitor.ops_checked != a.total_ops {
            failures.push(format!(
                "monitor certified {} of {} ops across the restart",
                a.monitor.ops_checked, a.total_ops
            ));
        }
        if a.monitor.violations != 0 {
            failures.push(format!(
                "{} confirmed monitor violation(s): {:?}",
                a.monitor.violations, a.monitor.records
            ));
        }
    }

    Cell {
        profile: "cold-restart".into(),
        mode,
        seed,
        ops_survived: a.total_ops,
        windows_spanning_recovery: 0,
        determinism_match,
        state_match,
        failures,
        report: a,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = String::from("BENCH_chaos.json");
    let mut summary_path: Option<String> = None;
    let mut seeds: u64 = 0;
    let mut rf: usize = 0;
    let mut workers: usize = 0;
    let mut locality: usize = 0;
    let mut trace = false;
    let mut trace_dir = String::from("traces");
    let mut monitor = false;
    let mut transport = Transport::Thread;
    let mut log_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--trace" => trace = true,
            "--monitor" => monitor = true,
            "--log-dir" => match it.next() {
                Some(p) => log_dir = Some(p.clone()),
                None => {
                    eprintln!("--log-dir needs a path");
                    return ExitCode::from(2);
                }
            },
            "--transport" => match it.next().map(String::as_str).and_then(Transport::parse) {
                Some(t) => transport = t,
                None => {
                    eprintln!("--transport needs thread or tcp");
                    return ExitCode::from(2);
                }
            },
            "--trace-dir" => match it.next() {
                Some(p) => trace_dir = p.clone(),
                None => {
                    eprintln!("--trace-dir needs a path");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--summary" => match it.next() {
                Some(p) => summary_path = Some(p.clone()),
                None => {
                    eprintln!("--summary needs a path");
                    return ExitCode::from(2);
                }
            },
            "--seeds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seeds = n,
                None => {
                    eprintln!("--seeds needs a number");
                    return ExitCode::from(2);
                }
            },
            "--rf" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => rf = n,
                None => {
                    eprintln!("--rf needs a replication factor (0 = full)");
                    return ExitCode::from(2);
                }
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => workers = n,
                None => {
                    eprintln!("--workers needs a worker count (0 = default 4)");
                    return ExitCode::from(2);
                }
            },
            "--locality" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => locality = n,
                None => {
                    eprintln!("--locality needs a window size (0 = global draw)");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "chaos_loadgen [--quick] [--out PATH] [--seeds N] [--summary PATH] \
                     [--rf N] [--workers N] [--locality N] [--monitor] [--trace] \
                     [--trace-dir DIR] [--transport thread|tcp] [--log-dir DIR]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    if seeds == 0 {
        seeds = if quick { 2 } else { 3 };
    }

    let dim = Dims {
        workers,
        rf,
        locality,
        monitor,
    };
    // the durability cells always run; without --log-dir they write
    // under a process-scoped scratch directory in $TMPDIR
    let log_base: PathBuf = log_dir.map(PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("cbm-chaos-logs-{}", std::process::id()))
    });
    if let Err(e) = std::fs::create_dir_all(&log_base) {
        eprintln!("could not create --log-dir {}: {e}", log_base.display());
        return ExitCode::from(2);
    }

    let mut cells: Vec<Cell> = Vec::new();
    let mut failed = 0usize;
    let finish = |cell: Cell, cells: &mut Vec<Cell>, failed: &mut usize| {
        eprint!(
            "{:>20} {} seed {}: {} msgs, {} drops [{}], {} dups [{}], \
             {} delayed, {} repairs",
            cell.profile,
            cell.mode.criterion(),
            cell.seed,
            cell.report.msgs_sent,
            cell.report.chaos.drops,
            per_node(&cell.report.chaos.dropped_per_node),
            cell.report.chaos.dups,
            per_node(&cell.report.chaos.dup_per_node),
            cell.report.chaos.delayed,
            cell.report.chaos.repairs,
        );
        let green = cell.failures.is_empty();
        if green {
            eprintln!(" ... ok");
        } else {
            *failed += 1;
            eprintln!(" ... FAIL");
            for f in &cell.failures {
                eprintln!("    {f}");
            }
        }
        // tracing is auto-on under chaos, so every non-green cell has
        // a flight record to dump for post-mortems; --trace keeps the
        // green ones too
        if let Some(rec) = &cell.report.trace {
            if trace || !green {
                let fname = format!("{}-{}-s{}", cell.profile, cell.mode.criterion(), cell.seed);
                match cbm_bench::write_trace(&trace_dir, &fname, rec) {
                    Ok((chrome, jsonl)) => eprintln!("    trace: {chrome} + {jsonl}"),
                    Err(e) => eprintln!("    trace: could not write to {trace_dir}: {e}"),
                }
            }
        }
        cells.push(cell);
    };
    for name in PROFILE_NAMES {
        for mode in [Mode::Causal, Mode::Convergent] {
            for s in 0..seeds {
                let seed = 42 + s;
                let cell = run_cell(name, mode, seed, quick, dim, transport, None);
                finish(cell, &mut cells, &mut failed);
            }
        }
    }
    // the durability matrix: the crash profiles again, recovering
    // from the epoch log instead of the live transfer...
    for name in ["crash-recover", "rolling-crashes"] {
        for mode in [Mode::Causal, Mode::Convergent] {
            for s in 0..seeds {
                let seed = 42 + s;
                let cell = run_cell(name, mode, seed, quick, dim, transport, Some(&log_base));
                finish(cell, &mut cells, &mut failed);
            }
        }
    }
    // ...and the fault-free cold restart of the whole fleet
    for mode in [Mode::Causal, Mode::Convergent] {
        for s in 0..seeds {
            let seed = 42 + s;
            let cell = run_cold_cell(mode, seed, quick, dim, transport, &log_base);
            finish(cell, &mut cells, &mut failed);
        }
    }

    let json = render_json(quick, seeds, rf, &cells);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("could not write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path} ({} cells)", cells.len());

    if let Some(path) = summary_path {
        if let Err(e) = append_summary(&path, quick, &cells) {
            eprintln!("could not write summary {path}: {e}");
        }
    }

    if failed > 0 {
        eprintln!("chaos_loadgen: {failed} cell(s) failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Hand-rolled JSON (the offline `serde` stand-in has no serializer;
/// the explicit schema doubles as documentation).
fn render_json(quick: bool, seeds: u64, rf: usize, cells: &[Cell]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"cbm-chaos-v1\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"seeds_per_cell\": {seeds},\n"));
    s.push_str(&format!("  \"replication\": {rf},\n"));
    // bytes_sent stays in each cell as an informational column but is
    // not deterministic: delta headers depend on delivery interleaving
    s.push_str(
        "  \"deterministic_columns\": [\"total_ops\", \"msgs_sent\", \
         \"drops\", \"dups\", \"parked\", \"released\", \"delayed\", \"pruned\", \"crash_discarded\", \"nacks\", \"repairs\", \
         \"repaired_batches\", \"recoveries\", \"remote_reads\", \"windows\", \
         \"monitor_ops_checked\", \"monitor_escalations\", \
         \"log_bytes\", \"replayed_records\"],\n",
    );
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.report;
        s.push_str("    {\n");
        s.push_str(&format!("      \"profile\": \"{}\",\n", c.profile));
        s.push_str(&format!("      \"mode\": \"{}\",\n", c.mode.criterion()));
        s.push_str(&format!("      \"seed\": {},\n", c.seed));
        s.push_str(&format!("      \"workers\": {},\n", r.config.workers));
        s.push_str(&format!(
            "      \"ops_per_worker\": {},\n",
            r.config.ops_per_worker
        ));
        s.push_str(&format!("      \"ops_survived\": {},\n", c.ops_survived));
        s.push_str(&format!("      \"wall_ms\": {},\n", r.wall_ns / 1_000_000));
        s.push_str(&format!("      \"msgs_sent\": {},\n", r.msgs_sent));
        s.push_str(&format!("      \"bytes_sent\": {},\n", r.bytes_sent));
        s.push_str(&format!("      \"drops\": {},\n", r.chaos.drops));
        s.push_str(&format!("      \"dups\": {},\n", r.chaos.dups));
        s.push_str(&format!("      \"parked\": {},\n", r.chaos.parked));
        s.push_str(&format!("      \"released\": {},\n", r.chaos.released));
        s.push_str(&format!("      \"delayed\": {},\n", r.chaos.delayed));
        s.push_str(&format!("      \"pruned\": {},\n", r.chaos.pruned));
        s.push_str(&format!(
            "      \"crash_discarded\": {},\n",
            r.chaos.crash_discarded
        ));
        s.push_str(&format!("      \"nacks\": {},\n", r.chaos.nacks));
        s.push_str(&format!("      \"repairs\": {},\n", r.chaos.repairs));
        s.push_str(&format!(
            "      \"repaired_batches\": {},\n",
            r.chaos.repaired_batches
        ));
        s.push_str(&format!(
            "      \"dropped_per_node\": {:?},\n",
            r.chaos.dropped_per_node
        ));
        s.push_str(&format!("      \"remote_reads\": {},\n", r.remote_reads));
        let (log_bytes, replayed) = disk_cols(r);
        s.push_str(&format!("      \"log_bytes\": {log_bytes},\n"));
        s.push_str(&format!("      \"replayed_records\": {replayed},\n"));
        s.push_str("      \"recoveries\": [\n");
        for (j, rec) in r.chaos.recoveries.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"worker\": {}, \"helper\": {}, \"crash_epoch\": {}, \
                 \"recover_epoch\": {}, \"synced_shards\": {}, \"synced_objects\": {}, \
                 \"replayed_records\": {}, \"log_bytes\": {}, \"sync_ms\": {}}}{}\n",
                rec.worker,
                rec.helper,
                rec.crash_epoch,
                rec.recover_epoch,
                rec.synced_shards,
                rec.synced_objects,
                rec.replayed_records,
                rec.log_bytes,
                rec.sync_wall_ns / 1_000_000,
                if j + 1 < r.chaos.recoveries.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("      ],\n");
        s.push_str(&format!("      \"windows\": {},\n", r.windows.len()));
        s.push_str(&format!(
            "      \"windows_failed\": {},\n",
            r.windows_failed
        ));
        s.push_str(&format!(
            "      \"windows_spanning_recovery\": {},\n",
            c.windows_spanning_recovery
        ));
        if r.monitor.enabled {
            s.push_str(&format!(
                "      \"monitor_ops_checked\": {},\n",
                r.monitor.ops_checked
            ));
            s.push_str(&format!(
                "      \"monitor_escalations\": {},\n",
                r.monitor.escalations
            ));
            s.push_str(&format!(
                "      \"monitor_violations\": {},\n",
                r.monitor.violations
            ));
        }
        s.push_str(&format!(
            "      \"determinism_match\": {},\n",
            c.determinism_match
        ));
        s.push_str(&format!("      \"state_match\": {},\n", c.state_match));
        s.push_str(&format!("      \"ok\": {}\n", c.failures.is_empty()));
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// Per-recipient fault counts as `a/b/c/d` (one slot per node), the
/// compact breakdown for one-line reports and summary cells.
fn per_node(counts: &[u64]) -> String {
    counts
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join("/")
}

/// Append a GitHub Actions job-summary markdown table.
fn append_summary(path: &str, quick: bool, cells: &[Cell]) -> std::io::Result<()> {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let r = &c.report;
            vec![
                c.profile.to_string(),
                c.mode.criterion().to_string(),
                c.seed.to_string(),
                r.msgs_sent.to_string(),
                format!(
                    "{} ({})",
                    r.chaos.drops,
                    per_node(&r.chaos.dropped_per_node)
                ),
                format!("{} ({})", r.chaos.dups, per_node(&r.chaos.dup_per_node)),
                r.chaos.delayed.to_string(),
                r.chaos.repairs.to_string(),
                r.chaos.recoveries.len().to_string(),
                {
                    let (lb, rr) = disk_cols(r);
                    if lb == 0 && rr == 0 {
                        "—".to_string()
                    } else {
                        format!("{} KiB / {}", lb / 1024, rr)
                    }
                },
                format!("{}/{}", r.windows.len() - r.windows_failed, r.windows.len()),
                if !r.monitor.enabled {
                    "—".to_string()
                } else if r.monitor.certified(r.total_ops) {
                    format!("{} ✓", r.monitor.ops_checked)
                } else {
                    format!("{}/{} ✗", r.monitor.ops_checked, r.total_ops)
                },
                (if c.state_match { "✓" } else { "✗" }).to_string(),
                (if c.determinism_match { "✓" } else { "✗" }).to_string(),
                (if c.failures.is_empty() { "✓" } else { "✗" }).to_string(),
            ]
        })
        .collect();
    cbm_bench::append_summary_table(
        path,
        &format!("Chaos sweep ({})", if quick { "quick" } else { "full" }),
        &[
            "profile",
            "mode",
            "seed",
            "msgs",
            "drops (per node)",
            "dups (per node)",
            "delayed",
            "repairs",
            "recoveries",
            "log / replayed",
            "windows",
            "certified",
            "state",
            "det",
            "ok",
        ],
        &rows,
    )
}
