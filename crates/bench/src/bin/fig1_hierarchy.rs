//! Experiment E1 — regenerate **Fig. 1** (the relative strength of the
//! criteria) empirically.
//!
//! For every ordered pair of criteria (C_strong, C_weak) we test the
//! implication `C_strong ⇒ C_weak` over the nine Fig. 3 histories plus
//! hundreds of random histories. The paper's hierarchy predicts which
//! implications hold; for every non-implication we exhibit a concrete
//! separating witness.
//!
//! ```text
//! cargo run --release -p cbm-bench --bin fig1_hierarchy
//! ```

use cbm_adt::queue::{FifoQueue, HdRhQueue};
use cbm_adt::window::WindowStream;
use cbm_adt::Adt;
use cbm_bench::{classify, random_histories, random_histories_adt, render_table, RandomHistories};
use cbm_check::figures;
use cbm_check::{Budget, Verdict};
use cbm_history::History;

const NAMES: [&str; 5] = ["SC", "CC", "CCv", "WCC", "PC"];

/// Fig. 1's transitive closure: does `strong ⇒ weak` per the paper?
fn paper_implies(strong: usize, weak: usize) -> bool {
    // indices into NAMES
    let table: [&[usize]; 5] = [
        &[0, 1, 2, 3, 4], // SC ⇒ everything
        &[1, 3, 4],       // CC ⇒ WCC, PC
        &[2, 3],          // CCv ⇒ WCC
        &[3],             // WCC
        &[4],             // PC
    ];
    table[strong].contains(&weak)
}

struct Evidence {
    /// `violations[strong][weak]` = #histories satisfying strong but not weak
    violations: [[u32; 5]; 5],
    /// a tag of the first witness per pair
    witness: [[Option<String>; 5]; 5],
    histories: u32,
    unknowns: u32,
}

impl Evidence {
    fn new() -> Self {
        Evidence {
            violations: [[0; 5]; 5],
            witness: Default::default(),
            histories: 0,
            unknowns: 0,
        }
    }

    fn add(&mut self, tag: &str, verdicts: [Verdict; 5]) {
        self.histories += 1;
        if verdicts.contains(&Verdict::Unknown) {
            self.unknowns += 1;
            return;
        }
        let sat: Vec<bool> = verdicts.iter().map(|v| v.is_sat()).collect();
        for s in 0..5 {
            for w in 0..5 {
                if sat[s] && !sat[w] {
                    self.violations[s][w] += 1;
                    if self.witness[s][w].is_none() {
                        self.witness[s][w] = Some(tag.to_string());
                    }
                }
            }
        }
    }
}

fn add_history<T: Adt>(ev: &mut Evidence, tag: &str, adt: &T, h: &History<T::Input, T::Output>) {
    ev.add(tag, classify(adt, h, &Budget::default()));
}

#[allow(clippy::needless_range_loop)] // s/w index parallel 5x5 tables
fn main() {
    println!("== Fig. 1: empirical criteria hierarchy ==\n");
    let mut ev = Evidence::new();

    // the paper's own separating histories
    let w2 = WindowStream::new(2);
    add_history(&mut ev, "fig3a", &w2, &figures::fig3a());
    add_history(&mut ev, "fig3b", &w2, &figures::fig3b());
    add_history(&mut ev, "fig3c", &w2, &figures::fig3c());
    add_history(&mut ev, "fig3d", &w2, &figures::fig3d());
    add_history(&mut ev, "fig3e", &FifoQueue, &figures::fig3e());
    add_history(&mut ev, "fig3f", &FifoQueue, &figures::fig3f());
    add_history(&mut ev, "fig3g", &HdRhQueue, &figures::fig3g());
    add_history(
        &mut ev,
        "fig3h",
        &cbm_adt::memory::Memory::new(5),
        &figures::fig3h(),
    );
    add_history(
        &mut ev,
        "fig3i",
        &cbm_adt::memory::Memory::new(4),
        &figures::fig3i(),
    );

    // randomized sweep
    for seed in 0..4 {
        let cfg = RandomHistories {
            count: 400,
            seed,
            ..Default::default()
        };
        let adt = random_histories_adt(&cfg);
        for (i, h) in random_histories(&cfg).iter().enumerate() {
            add_history(&mut ev, &format!("rand{seed}:{i}"), &adt, h);
        }
    }

    println!(
        "checked {} histories ({} undecided within budget)\n",
        ev.histories, ev.unknowns
    );

    // implication matrix
    let mut rows = Vec::new();
    let mut all_consistent = true;
    for s in 0..5 {
        let mut row = vec![NAMES[s].to_string()];
        for w in 0..5 {
            let cell = if s == w {
                "=".to_string()
            } else if paper_implies(s, w) {
                if ev.violations[s][w] == 0 {
                    "=>".to_string()
                } else {
                    all_consistent = false;
                    format!("CONTRADICTED({})", ev.violations[s][w])
                }
            } else {
                match &ev.witness[s][w] {
                    Some(tag) => format!("x ({tag})"),
                    None => "x (no witness)".to_string(),
                }
            };
            row.push(cell);
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("==>").chain(NAMES).collect();
    println!("{}", render_table(&headers, &rows));
    println!("legend: '=>' implication predicted by Fig. 1, confirmed on every history;");
    println!("        'x (tag)' no implication — `tag` is a separating witness");
    println!("        (witness satisfies the row criterion but not the column one)\n");

    // paper arrows, spelled out
    let arrows = [
        (
            "EC <- CCv",
            "CCv implies convergence (see convergence tests; EC itself is a liveness property)",
        ),
        ("WCC <- CCv", "confirmed above"),
        ("WCC <- CC", "confirmed above"),
        ("PC <- CC", "confirmed above"),
        ("CC <- SC", "confirmed above"),
        ("CCv <- SC", "confirmed above"),
    ];
    println!("paper arrows (weak <- strong):");
    for (a, note) in arrows {
        println!("  {a:<12} {note}");
    }

    assert!(all_consistent, "hierarchy contradicted!");
    // every non-implication must be separated by some witness
    let mut missing = Vec::new();
    for s in 0..5 {
        for w in 0..5 {
            if s != w && !paper_implies(s, w) && ev.witness[s][w].is_none() {
                missing.push(format!("{} -/-> {}", NAMES[s], NAMES[w]));
            }
        }
    }
    if missing.is_empty() {
        println!("\nall non-implications separated by witnesses — Fig. 1 reproduced");
    } else {
        println!("\nWARNING: no witness found for: {missing:?}");
    }
}
